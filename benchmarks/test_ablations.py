"""Ablations: quantify the design choices DESIGN.md calls out.

Each ablation removes or perturbs one Direct-pNFS mechanism and
measures the consequence the paper attributes to it:

* **accurate layouts** — Direct-pNFS vs a 2-tier system configured with
  the *same* stripe unit as PVFS2 (so only data locality differs, no
  block-size mismatch): the cost of blind layouts alone.
* **block-size mismatch** — 2-tier with matched vs mismatched stripe
  units (§3.4.1).
* **client write-back cache** — 8 KB writes with wsize reduced to the
  application block size (no coalescing) vs the paper's 2 MB wsize.
* **readahead** — 8 KB sequential reads with prefetch disabled.
* **loopback conduit tax** — warm-cache reads with the conduit copy
  cost removed: the Figure 7b crossover disappears.
* **commit through the MDS** — OLTP with COMMIT routed through the
  metadata server instead of the data servers.
* **metadata sync** — Postmark with PVFS2's synchronous metadata
  journalling disabled.
"""

import os

import pytest

from repro.bench.runner import run_cell
from repro.cluster.configs import build_direct_pnfs, build_pnfs_2tier
from repro.cluster.testbed import Testbed
from repro.core.system import DirectPnfsSystem
from repro.pvfs2.system import Pvfs2System
from repro.workloads import IorWorkload, OltpWorkload, PostmarkWorkload

MB = 1024 * 1024
SCALE = float(os.environ.get("REPRO_SCALE", "0.25"))


def run_deployment(dep, workload, n_clients):
    """Run a workload over an already-built deployment."""
    tb = dep.testbed
    sim = tb.sim
    admin = dep.make_client(tb.client_nodes[0])

    def prep():
        yield from admin.mount()
        yield from workload.prepare(sim, admin, n_clients)

    sim.run(until=sim.process(prep()))
    clients = [dep.make_client(tb.client_nodes[i]) for i in range(n_clients)]

    def mounts():
        for c in clients:
            yield from c.mount()

    sim.run(until=sim.process(mounts()))
    t0 = sim.now
    procs = [
        sim.process(workload.client_proc(sim, c, i, n_clients))
        for i, c in enumerate(clients)
    ]
    sim.run(until=sim.all_of(procs))
    total = sum(p.value.bytes_moved for p in procs)
    return total / 1e6 / (sim.now - t0)


def test_ablation_accurate_layouts(benchmark):
    """Blind layouts (2-tier, matched stripes) vs the layout translator.

    With the stripe unit matched, the ONLY difference from Direct-pNFS
    is whether the layout reflects where the bytes actually live.  The
    synthetic provider's per-file rotation could accidentally line up
    with PVFS2's own rotation, so it is offset by one here: every
    stripe lands one data server away from its data — the fully
    indirect case of Figure 3b.
    """
    out = {}

    def once():
        w = IorWorkload(op="read", block_size=4 * MB, scale=SCALE)
        direct = run_deployment(
            build_direct_pnfs(Testbed(n_clients=8)), w, 8
        )
        w = IorWorkload(op="read", block_size=4 * MB, scale=SCALE)
        blind_dep = build_pnfs_2tier(Testbed(n_clients=8), stripe_unit=2 * MB)
        blind_dep.servers[-1].layout_provider._issued = 1  # break alignment
        blind = run_deployment(blind_dep, w, 8)
        out.update(direct=direct, blind=blind)

    benchmark.pedantic(once, rounds=1, iterations=1)
    print(
        f"\naccurate layouts: direct {out['direct']:.0f} MB/s vs "
        f"blind-but-matched {out['blind']:.0f} MB/s "
        f"({out['direct'] / out['blind']:.2f}x from direct access alone)"
    )
    assert out["direct"] > 1.2 * out["blind"]


def test_ablation_block_size_mismatch(benchmark):
    """2-tier with matched vs mismatched stripe units (§3.4.1)."""
    out = {}

    def once():
        w = IorWorkload(op="write", block_size=4 * MB, scale=SCALE)
        matched = run_deployment(
            build_pnfs_2tier(Testbed(n_clients=4), stripe_unit=2 * MB), w, 4
        )
        w = IorWorkload(op="write", block_size=4 * MB, scale=SCALE)
        mismatched = run_deployment(
            build_pnfs_2tier(Testbed(n_clients=4), stripe_unit=1 * MB), w, 4
        )
        out.update(matched=matched, mismatched=mismatched)

    benchmark.pedantic(once, rounds=1, iterations=1)
    print(
        f"\nblock-size mismatch: matched {out['matched']:.0f} MB/s vs "
        f"mismatched {out['mismatched']:.0f} MB/s"
    )
    assert out["matched"] >= 0.95 * out["mismatched"]


def test_ablation_write_back_cache(benchmark):
    """8 KB writes with and without the write-back cache (Figure 6d).

    "Without" means synchronous small writes (wsize = the block size
    and durability per block, O_SYNC-style) — asynchronous batching
    would otherwise hide most of the per-RPC cost and understate what
    the cache buys.
    """
    out = {}

    def once():
        out["with"] = run_cell(
            "direct-pnfs", IorWorkload(op="write", block_size=8192, scale=SCALE), 4
        ).aggregate_mbps
        out["without"] = run_cell(
            "direct-pnfs",
            IorWorkload(
                op="write", block_size=8192, fsync_every=1, scale=SCALE * 0.05
            ),
            4,
            nfs_overrides={"wsize": 8192},
        ).aggregate_mbps

    benchmark.pedantic(once, rounds=1, iterations=1)
    print(
        f"\nwrite-back coalescing: cached {out['with']:.0f} MB/s vs "
        f"synchronous 8KB {out['without']:.0f} MB/s"
    )
    assert out["with"] > 2 * out["without"]


def test_ablation_readahead(benchmark):
    """8 KB sequential reads with and without prefetch (Figure 7c's cause)."""
    out = {}

    def once():
        out["with"] = run_cell(
            "direct-pnfs", IorWorkload(op="read", block_size=8192, scale=SCALE), 4
        ).aggregate_mbps
        out["without"] = run_cell(
            "direct-pnfs",
            IorWorkload(op="read", block_size=8192, scale=SCALE * 0.2),
            4,
            nfs_overrides={"readahead": 0, "rsize": 8192},
        ).aggregate_mbps

    benchmark.pedantic(once, rounds=1, iterations=1)
    print(
        f"\nreadahead: on {out['with']:.0f} MB/s vs off {out['without']:.0f} MB/s"
    )
    assert out["with"] > 2 * out["without"]


def test_ablation_loopback_tax(benchmark):
    """The conduit copy cost is what lets PVFS2 win Figure 7b's top end."""
    out = {}

    def once():
        w = IorWorkload(op="read", block_size=4 * MB, shared_file=True, scale=SCALE)
        tb = Testbed(n_clients=8)
        pvfs = Pvfs2System(tb.sim, tb.storage_nodes)
        from repro.cluster.testbed import default_nfs_config

        taxed = DirectPnfsSystem(tb.sim, pvfs, default_nfs_config())
        out["taxed"] = run_deployment(
            _as_deployment(taxed, tb), w, 8
        )
        w = IorWorkload(op="read", block_size=4 * MB, shared_file=True, scale=SCALE)
        tb2 = Testbed(n_clients=8)
        pvfs2sys = Pvfs2System(tb2.sim, tb2.storage_nodes)
        free = DirectPnfsSystem(
            tb2.sim, pvfs2sys, default_nfs_config(), loopback_copy_per_byte=0.0
        )
        for ds in free.data_servers:
            ds.rpc.costs = ds.cfg.costs  # drop read-extra too
        out["free"] = run_deployment(_as_deployment(free, tb2), w, 8)

    benchmark.pedantic(once, rounds=1, iterations=1)
    print(
        f"\nloopback tax: default {out['taxed']:.0f} MB/s vs "
        f"zero-copy conduit {out['free']:.0f} MB/s"
    )
    assert out["free"] > out["taxed"]


def _as_deployment(system, tb):
    from repro.cluster.configs import Deployment

    return Deployment(
        label="direct-ablation",
        testbed=tb,
        make_client=system.make_client,
        pvfs=system.pvfs,
        servers=system.data_servers + [system.mds],
    )


def test_ablation_commit_through_mds(benchmark):
    """OLTP with COMMIT recentralised at the MDS vs at the data servers."""
    out = {}

    def once():
        for label, through_mds in (("ds", False), ("mds", True)):
            tb = Testbed(n_clients=4)
            pvfs = Pvfs2System(tb.sim, tb.storage_nodes)
            from repro.cluster.testbed import default_nfs_config

            system = DirectPnfsSystem(tb.sim, pvfs, default_nfs_config())
            system.translator.commit_through_mds = through_mds
            out[label] = run_deployment(
                _as_deployment(system, tb), OltpWorkload(scale=SCALE * 0.1), 4
            )

    benchmark.pedantic(once, rounds=1, iterations=1)
    print(
        f"\ncommit path: data servers {out['ds']:.1f} MB/s vs "
        f"through MDS {out['mds']:.1f} MB/s"
    )
    assert out["ds"] >= 0.9 * out["mds"]


def test_ablation_metadata_sync(benchmark):
    """Postmark with PVFS2's synchronous metadata journalling disabled."""
    out = {}

    def once():
        for label, sync in (("sync", None), ("nosync", {"metadata_sync": False})):
            r = run_cell(
                "pvfs2",
                PostmarkWorkload(scale=SCALE),
                4,
                pvfs_overrides={"stripe_size": 64 * 1024, **(sync or {})},
            )
            out[label] = r.transactions_per_second

    benchmark.pedantic(once, rounds=1, iterations=1)
    print(
        f"\nmetadata sync: on {out['sync']:.1f} tps vs off {out['nosync']:.1f} tps"
    )
    assert out["nosync"] > out["sync"]
