"""§6.4.3 in-text result: the SSH-build phase split.

Direct-pNFS reduces compilation time (small read/write dominated) but
increases uncompress and configure time (creates and attribute updates,
which NFS recentralises at its metadata server).
"""


def test_sshbuild_phase_split(run_panel):
    run_panel("sshbuild")
