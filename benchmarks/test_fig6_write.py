"""Figure 6: aggregate write throughput across the five architectures."""


def test_fig6a_write_separate_large_block(run_panel):
    """Separate 500 MB files, 2-4 MB blocks: Direct-pNFS matches PVFS2's
    disk-bound ceiling; 3-tier plateaus early; NFSv4 flat and lowest."""
    run_panel("fig6a")


def test_fig6b_write_single_file_large_block(run_panel):
    """Disjoint portions of one file: same ordering as 6a at a slightly
    lower ceiling."""
    run_panel("fig6b")


def test_fig6c_write_100mbps(run_panel):
    """100 Mbps Ethernet exposes pNFS-2tier's inter-server transfers:
    half the throughput of Direct-pNFS/PVFS2."""
    run_panel("fig6c")


def test_fig6d_write_separate_8kb(run_panel):
    """8 KB application blocks: the NFSv4 client write-back cache keeps
    every NFS-based curve at its large-block level while PVFS2
    collapses to ~1/3."""
    run_panel("fig6d")


def test_fig6e_write_single_8kb(run_panel):
    """Single-file variant of 6d."""
    run_panel("fig6e")
