"""Benchmark harness plumbing.

Each benchmark test regenerates one figure panel of the paper: it runs
the sweep on the simulated testbed, prints a measured-vs-paper table,
asserts the qualitative shape criteria from DESIGN.md §3, and records
the measured values under ``benchmarks/results/`` (consumed when
updating EXPERIMENTS.md).

Scale: set ``REPRO_SCALE`` (default 0.25 — 125 MB IOR files) to trade
run time against steady-state fidelity; 1.0 reproduces the paper's full
500 MB-per-client runs.  Client counts default to {1, 2, 4, 8} (the
paper sweeps 1-8); set ``REPRO_FULL_SWEEP=1`` for every count.

Parallelism: ``REPRO_JOBS=N`` fans each panel's cells over N worker
processes (results are identical whatever N is — the cells are pure
functions of their specs).  ``REPRO_CACHE=1`` enables the content-
addressed result cache so unchanged panels are free to re-run; the
cache key includes a fingerprint of every ``repro`` source file, so any
code edit invalidates it.
"""

import json
import os
import pathlib

import pytest

from repro.bench.experiments import EXPERIMENTS, run_experiment
from repro.bench.report import format_table, shape_checks

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def bench_scale() -> float:
    return float(os.environ.get("REPRO_SCALE", "0.25"))


def bench_net_model() -> str:
    """Network flow model for the panel sweeps (``REPRO_NET_MODEL``).

    ``chunked`` (default, calibrated), ``fluid``, or ``auto`` — see
    :mod:`repro.sim.network`.  Running a panel under ``fluid`` is how
    the chunked-vs-fluid drift acceptance is checked at figure scale.
    """
    model = os.environ.get("REPRO_NET_MODEL", "chunked")
    if model not in ("chunked", "fluid", "auto"):
        raise ValueError(f"REPRO_NET_MODEL must be chunked|fluid|auto, got {model!r}")
    return model


def bench_jobs() -> int:
    """Worker processes per panel sweep (``REPRO_JOBS``, default 1)."""
    return max(1, int(os.environ.get("REPRO_JOBS", "1")))


def bench_cache():
    """Shared result cache when ``REPRO_CACHE=1`` (else ``None``)."""
    if not os.environ.get("REPRO_CACHE"):
        return None
    from repro.parallel import ResultCache

    return ResultCache()


def bench_counts(exp_id: str) -> list[int] | None:
    exp = EXPERIMENTS[exp_id]
    if os.environ.get("REPRO_FULL_SWEEP") or len(exp.client_counts) <= 4:
        return None  # the experiment's own counts
    return [n for n in exp.client_counts if n in (1, 2, 4, 8)]


@pytest.fixture
def run_panel(benchmark):
    """Run one figure panel under pytest-benchmark; verify its shape."""

    def _run(exp_id: str):
        holder = {}

        def once():
            holder["res"] = run_experiment(
                exp_id,
                scale=bench_scale(),
                client_counts=bench_counts(exp_id),
                net_model=bench_net_model(),
                jobs=bench_jobs(),
                cache=bench_cache(),
            )

        benchmark.pedantic(once, rounds=1, iterations=1)
        res = holder["res"]
        print()
        print(format_table(res))
        checks = shape_checks(res)
        for check in checks:
            print("  ", check)
        # Aggregate engine cost over the sweep: how much the cells
        # cost to *simulate*, alongside what they measured.
        cells = list(res.raw.values())
        engine = {
            "net_model": bench_net_model(),
            "events_scheduled": sum(c.engine["events_scheduled"] for c in cells),
            "events_processed": sum(c.engine["events_processed"] for c in cells),
            "peak_heap": max(c.engine["peak_heap"] for c in cells),
            "wall_seconds": sum(c.engine["wall_seconds"] for c in cells),
            "flows_chunked": sum(c.engine["flows_chunked"] for c in cells),
            "flows_fluid": sum(c.engine["flows_fluid"] for c in cells),
        }
        RESULTS_DIR.mkdir(exist_ok=True)
        with open(RESULTS_DIR / f"{exp_id}.json", "w") as fh:
            json.dump(
                {
                    "experiment": exp_id,
                    "title": res.experiment.title,
                    "metric": res.experiment.metric,
                    "scale": res.scale,
                    "values": res.values,
                    "engine": engine,
                    "parallel": res.parallel,
                    "checks": [
                        {"name": c.name, "ok": c.ok, "detail": c.detail}
                        for c in checks
                    ],
                },
                fh,
                indent=2,
            )
        failed = [c for c in checks if not c.ok]
        assert not failed, "shape criteria failed: " + "; ".join(
            f"{c.name} ({c.detail})" for c in failed
        )
        return res

    return _run
