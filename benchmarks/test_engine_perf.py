"""Perf smoke: the fluid network model must actually be faster.

Runs one fixed cell — 8-client IOR write, 16 MB blocks, separate files,
NFSv4 — under both network models and fails if

* the fluid model is not >= 3x cheaper in engine wall-seconds on this
  large-transfer config, or
* either model's aggregate throughput drifts > 5 % from the checked-in
  baseline (``engine_perf_baseline.json``), or
* the two models disagree with each other by > 5 %.

Why this config: the fluid path removes per-chunk *network* events, so
the gate must run where those dominate.  NFSv4 moves every byte across
the wire twice (client -> server, then the server's parallel-FS client
-> storage nodes) with large 16 MB RPCs and flow units, so the chunked
event bill is ~2 x 64 chunks per block while the protocol event bill
stays per-RPC.  The paper-calibrated figure configs (2 MB wsize,
256 KB flow units) are protocol-event-bound instead — there the fluid
model is accuracy-neutral but only ~1.2x cheaper, which is why the
speedup gate lives on this pinned config and not on the figure sweeps.

The config ignores the ``REPRO_*`` knobs so the baseline stays
comparable across runs and machines: simulated throughput is
deterministic for a fixed config, and the wall-second *ratio* is
machine-independent to first order even though the absolute wall time
is not.  Results land in ``benchmarks/results/engine_perf.json`` for
the CI artifact trail.
"""

import json
import pathlib

import pytest

from repro.bench.runner import run_cell
from repro.workloads import IorWorkload

MB = 1024 * 1024
RESULTS_DIR = pathlib.Path(__file__).parent / "results"
BASELINE = pathlib.Path(__file__).parent / "engine_perf_baseline.json"

#: Pinned config: large enough that the chunked event storm dominates
#: (the regime the fluid model exists for), small enough for CI.
SCALE = 0.2  # 100 MB per client
N_CLIENTS = 8
ARCH = "nfsv4"
BLOCK = 16 * MB

MIN_SPEEDUP = 3.0
MAX_DRIFT = 0.05


def run_model(model: str):
    workload = IorWorkload(
        op="write", block_size=BLOCK, shared_file=False, scale=SCALE
    )
    res = run_cell(
        ARCH,
        workload,
        N_CLIENTS,
        net_model=model,
        nfs_overrides={"wsize": BLOCK, "rsize": BLOCK},
        pvfs_overrides={"flow_unit": BLOCK, "stripe_size": BLOCK},
    )
    return {
        "aggregate_mbps": res.aggregate_mbps,
        "makespan": res.makespan,
        "total_bytes": res.total_bytes,
        **res.engine,
    }


def test_fluid_speedup_and_throughput_drift():
    chunked = run_model("chunked")
    fluid = run_model("fluid")
    speedup = chunked["wall_seconds"] / fluid["wall_seconds"]
    event_ratio = chunked["events_processed"] / fluid["events_processed"]
    report = {
        "config": {
            "arch": ARCH,
            "workload": "ior-write-16MB-separate",
            "n_clients": N_CLIENTS,
            "scale": SCALE,
        },
        "chunked": chunked,
        "fluid": fluid,
        "wall_speedup": speedup,
        "event_ratio": event_ratio,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    with open(RESULTS_DIR / "engine_perf.json", "w") as fh:
        json.dump(report, fh, indent=2)
    print()
    for model, r in (("chunked", chunked), ("fluid", fluid)):
        print(
            f"  {model:8s} {r['aggregate_mbps']:7.1f} MB/s  "
            f"{r['events_processed']:>9} events  {r['wall_seconds']:.3f}s wall"
        )
    print(f"  wall speedup {speedup:.1f}x, event ratio {event_ratio:.1f}x")

    # Cross-model agreement: the fast path must not change the physics.
    assert fluid["aggregate_mbps"] == pytest.approx(
        chunked["aggregate_mbps"], rel=MAX_DRIFT
    )
    # Drift against the checked-in baseline (simulated throughput is
    # deterministic, so this is a tight regression tripwire).
    baseline = json.loads(BASELINE.read_text())
    for model, r in (("chunked", chunked), ("fluid", fluid)):
        expect = baseline[model]["aggregate_mbps"]
        assert r["aggregate_mbps"] == pytest.approx(expect, rel=MAX_DRIFT), (
            f"{model} throughput drifted >5% from baseline "
            f"({r['aggregate_mbps']:.1f} vs {expect:.1f} MB/s)"
        )
    # The point of the fast path, enforced: >= 3x cheaper to simulate.
    assert speedup >= MIN_SPEEDUP, (
        f"fluid model only {speedup:.1f}x faster than chunked "
        f"(need >= {MIN_SPEEDUP}x)"
    )


def test_observability_is_pay_for_what_you_use():
    """The obs layer's contract: off means free, on means same physics.

    * With no registry or collector installed (the default — every run
      above), the instrumented code paths must not change the simulated
      outcome; the baseline-drift gate in the previous test is the
      wall-clock guard for that path.
    * With metrics + tracing on, the simulation must compute the exact
      same physics (makespan, bytes, throughput): observation reads the
      run, it never perturbs it.  Wall overhead must stay bounded.
    """
    import time

    from repro.obs import spans as obs_spans

    assert obs_spans.ACTIVE is None  # default-off really is off

    workload_kw = dict(op="write", block_size=4 * MB, shared_file=False, scale=0.05)

    def run(**obs_kw):
        t0 = time.perf_counter()
        res = run_cell(
            ARCH, IorWorkload(**workload_kw), 4, net_model="fluid", **obs_kw
        )
        return res, time.perf_counter() - t0

    plain, wall_off = run()
    observed, wall_on = run(metrics=True, trace=True)

    # Identical simulated physics, to the bit.
    assert observed.makespan == plain.makespan
    assert observed.total_bytes == plain.total_bytes
    # The only extra engine events allowed are the sampler's own ticks
    # (one timeout per sample); spans and gauges schedule nothing.
    extra_events = (
        observed.engine["events_processed"] - plain.engine["events_processed"]
    )
    n_samples = len(observed.metrics["series"]["t"])
    assert 0 <= extra_events <= n_samples + 2

    # The observed run actually captured something.
    assert observed.metrics["counters"]
    assert observed.metrics["bottleneck"]
    assert len(observed.metrics["series"]["t"]) >= 2
    assert observed.trace.spans

    # Collector is uninstalled again: later runs are back to zero-cost.
    assert obs_spans.ACTIVE is None

    ratio = wall_on / wall_off
    print(f"\n  obs overhead: {wall_off:.3f}s off, {wall_on:.3f}s on ({ratio:.2f}x)")
    # Generous bound (CI wall clocks are noisy); catches accidental
    # per-event work sneaking into the hot path, not micro-costs.
    assert ratio < 3.0, f"observability overhead {ratio:.1f}x (need < 3x)"


# ---------------------------------------------------------------------------
# Parallel experiment engine (repro.parallel): determinism, cache, speedup
# ---------------------------------------------------------------------------

import os
import time

PANEL = "fig7a"
PANEL_KW = dict(scale=0.05, client_counts=[1, 2, 4])
TORTURE_ARCHES = ["direct-pnfs", "pnfs-2tier"]
TORTURE_SEEDS = 20  # x2 arches = 40 episodes

CORES = os.cpu_count() or 1
#: Worker count for the parallel legs: up to 8 (the acceptance
#: criterion's core count), at least 2 so the pool path is always
#: exercised — even a 1-core CI runner must produce identical results.
PAR_JOBS = min(8, CORES) if CORES > 1 else 2


def _speedup_floor(serial_seconds: float, job_walls: list[float]) -> float:
    """Assertable speedup on this machine, with slack.

    Ideal speedup is bounded by the worker count, the core count, and
    the batch's critical path (no pool can beat serial-total divided by
    its longest single job).  Half of that bound is the slack that
    absorbs pool startup and scheduling noise; on >= 8 cores the
    torture batch's bound is 8, so the floor there is the >= 4x the
    acceptance criterion names.
    """
    longest = max(job_walls) if job_walls else serial_seconds
    ideal = min(PAR_JOBS, CORES, serial_seconds / max(longest, 1e-9))
    return 0.5 * ideal


def _small_io_cell():
    """One fig6d-style cell: IOR separate-file writes, 8 KB blocks.

    Small blocks maximise per-byte page-cache traffic, which is where
    the serial hot-path cuts (bisect interval ops, zero-copy reads)
    show up.
    """
    workload = IorWorkload(op="write", block_size=8192, scale=0.05)
    res = run_cell("direct-pnfs", workload, 2)
    return res.makespan, res.total_bytes


def _time_small_io_cell(repeats: int = 3):
    best = float("inf")
    physics = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        this = _small_io_cell()
        best = min(best, time.perf_counter() - t0)
        assert physics is None or physics == this
        physics = this
    return best, physics


def test_serial_small_io_cell_hot_path_cut():
    """The serial leg of the tentpole: zero-copy reads pay on small I/O.

    Times a fig6d-style 8 KB-block cell with the current zero-copy
    ``FileData.read`` and again with the pre-PR copying read
    reinstated, asserting identical physics and recording the ratio in
    ``BENCH_parallel.json`` (under ``serial_cell``; the engine test
    below merges its sections into the same file).  The wall assertion
    only guards against the zero-copy path being a regression — the
    recorded ratio is the measurement.
    """
    from repro.vfs.api import Payload
    from repro.vfs.filedata import FileData

    zero_copy_s, zero_copy_phys = _time_small_io_cell()

    orig = FileData.read

    def read_copying(self, offset, nbytes):
        p = orig(self, offset, nbytes)
        if p.is_synthetic:
            return p
        return Payload(p.data)  # force-materialise: the pre-PR copy

    FileData.read = read_copying
    try:
        copying_s, copying_phys = _time_small_io_cell()
    finally:
        FileData.read = orig

    assert zero_copy_phys == copying_phys, "zero-copy read changed the physics"
    ratio = copying_s / zero_copy_s
    section = {
        "cell": "direct-pnfs / ior-write-8k (fig6d-style) @ 2 clients",
        "zero_copy_seconds": zero_copy_s,
        "copying_read_seconds": copying_s,
        "speedup": ratio,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_parallel.json"
    report = json.loads(path.read_text()) if path.exists() else {}
    report["serial_cell"] = section
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2)
    print(
        f"\n  small-I/O cell  {zero_copy_s:.2f}s zero-copy  "
        f"{copying_s:.2f}s copying read  ({ratio:.2f}x)"
    )
    # Slack for wall noise: the cut must at minimum not cost anything.
    assert ratio > 0.90, (
        f"zero-copy read slower than the copying read it replaced "
        f"({zero_copy_s:.2f}s vs {copying_s:.2f}s)"
    )


def test_parallel_engine_determinism_cache_and_speedup(tmp_path):
    """The tentpole gate: jobs=N is hash-identical to jobs=1 and pays off.

    * figure panel: the deterministic report (values, per-cell
      makespans/bytes/event counts) is byte-identical between serial
      and process-pool runs;
    * torture sweep: every episode trace hash matches serially;
    * cache: a second run of the unchanged panel completes in < 10% of
      the cold time;
    * speedup: asserted against a machine-aware floor (>= 4x on >= 8
      cores for the torture batch; recorded, not asserted, on boxes
      without real parallelism).

    Everything lands in ``benchmarks/results/BENCH_parallel.json``.
    """
    from repro.bench.experiments import run_experiment
    from repro.bench.report import canonical_json, experiment_report
    from repro.check.runner import sweep
    from repro.parallel import ResultCache

    # -- figure panel: serial vs parallel --------------------------------
    t0 = time.perf_counter()
    serial = run_experiment(PANEL, **PANEL_KW)
    panel_serial_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    par = run_experiment(PANEL, jobs=PAR_JOBS, **PANEL_KW)
    panel_par_s = time.perf_counter() - t0
    serial_report = canonical_json(experiment_report(serial))
    par_report = canonical_json(experiment_report(par))
    assert serial_report == par_report, (
        f"parallel panel diverged from serial (jobs={PAR_JOBS})"
    )

    # -- torture sweep: serial vs parallel trace hashes ------------------
    t0 = time.perf_counter()
    eps_serial = sweep(TORTURE_ARCHES, seeds=TORTURE_SEEDS)
    torture_serial_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    eps_par = sweep(TORTURE_ARCHES, seeds=TORTURE_SEEDS, jobs=PAR_JOBS)
    torture_par_s = time.perf_counter() - t0
    assert [e.trace_hash for e in eps_serial] == [
        e.trace_hash for e in eps_par
    ], "parallel torture episodes diverged from serial"
    assert all(e.ok for e in eps_serial)

    # -- content-addressed cache: warm run nearly free -------------------
    cache = ResultCache(tmp_path / "cache")
    t0 = time.perf_counter()
    cold = run_experiment(PANEL, cache=cache, **PANEL_KW)
    cold_s = time.perf_counter() - t0
    assert canonical_json(experiment_report(cold)) == serial_report
    warm_cache = ResultCache(tmp_path / "cache")
    t0 = time.perf_counter()
    warm = run_experiment(PANEL, cache=warm_cache, **PANEL_KW)
    warm_s = time.perf_counter() - t0
    assert canonical_json(experiment_report(warm)) == serial_report
    assert warm_cache.hits == len(serial.raw), "warm run missed the cache"
    assert warm_s < 0.10 * cold_s, (
        f"cached re-run took {warm_s:.2f}s vs {cold_s:.2f}s cold "
        f"(need < 10%)"
    )

    # -- wall-clock speedup, floor scaled to this machine ----------------
    panel_speedup = panel_serial_s / panel_par_s
    torture_speedup = torture_serial_s / torture_par_s
    panel_walls = [j["wall_seconds"] for j in par.parallel["per_job"]]
    panel_floor = _speedup_floor(panel_serial_s, panel_walls)
    # Episodes are near-uniform in cost, so the torture bound is just
    # the worker count — on >= 8 cores the floor is the criterion's 4x.
    torture_floor = 0.5 * min(PAR_JOBS, CORES)

    # Merge into BENCH_parallel.json rather than overwrite it: the
    # serial hot-path test above contributes its own section.
    out_path = RESULTS_DIR / "BENCH_parallel.json"
    report = json.loads(out_path.read_text()) if out_path.exists() else {}
    report |= {
        "cores": CORES,
        "jobs": PAR_JOBS,
        "panel": {
            "experiment": PANEL,
            "cells": len(serial.raw),
            "serial_seconds": panel_serial_s,
            "parallel_seconds": panel_par_s,
            "speedup": panel_speedup,
            "floor": panel_floor,
        },
        "torture": {
            "arches": TORTURE_ARCHES,
            "episodes": TORTURE_SEEDS * len(TORTURE_ARCHES),
            "serial_seconds": torture_serial_s,
            "parallel_seconds": torture_par_s,
            "speedup": torture_speedup,
            "floor": torture_floor,
        },
        "cache": {
            "cold_seconds": cold_s,
            "warm_seconds": warm_s,
            "hits": warm_cache.hits,
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    with open(out_path, "w") as fh:
        json.dump(report, fh, indent=2)
    print()
    print(
        f"  panel   {panel_serial_s:5.1f}s serial  {panel_par_s:5.1f}s "
        f"x{PAR_JOBS} jobs  ({panel_speedup:.1f}x, floor {panel_floor:.1f}x)"
    )
    print(
        f"  torture {torture_serial_s:5.1f}s serial  {torture_par_s:5.1f}s "
        f"x{PAR_JOBS} jobs  ({torture_speedup:.1f}x, floor {torture_floor:.1f}x)"
    )
    print(f"  cache   {cold_s:5.1f}s cold    {warm_s:5.2f}s warm")

    if CORES >= 2:
        assert panel_speedup >= panel_floor, (
            f"panel speedup {panel_speedup:.2f}x below floor "
            f"{panel_floor:.2f}x on {CORES} cores"
        )
        assert torture_speedup >= torture_floor, (
            f"torture speedup {torture_speedup:.2f}x below floor "
            f"{torture_floor:.2f}x on {CORES} cores"
        )
