"""Perf smoke: the fluid network model must actually be faster.

Runs one fixed cell — 8-client IOR write, 16 MB blocks, separate files,
NFSv4 — under both network models and fails if

* the fluid model is not >= 3x cheaper in engine wall-seconds on this
  large-transfer config, or
* either model's aggregate throughput drifts > 5 % from the checked-in
  baseline (``engine_perf_baseline.json``), or
* the two models disagree with each other by > 5 %.

Why this config: the fluid path removes per-chunk *network* events, so
the gate must run where those dominate.  NFSv4 moves every byte across
the wire twice (client -> server, then the server's parallel-FS client
-> storage nodes) with large 16 MB RPCs and flow units, so the chunked
event bill is ~2 x 64 chunks per block while the protocol event bill
stays per-RPC.  The paper-calibrated figure configs (2 MB wsize,
256 KB flow units) are protocol-event-bound instead — there the fluid
model is accuracy-neutral but only ~1.2x cheaper, which is why the
speedup gate lives on this pinned config and not on the figure sweeps.

The config ignores the ``REPRO_*`` knobs so the baseline stays
comparable across runs and machines: simulated throughput is
deterministic for a fixed config, and the wall-second *ratio* is
machine-independent to first order even though the absolute wall time
is not.  Results land in ``benchmarks/results/engine_perf.json`` for
the CI artifact trail.
"""

import json
import pathlib

import pytest

from repro.bench.runner import run_cell
from repro.workloads import IorWorkload

MB = 1024 * 1024
RESULTS_DIR = pathlib.Path(__file__).parent / "results"
BASELINE = pathlib.Path(__file__).parent / "engine_perf_baseline.json"

#: Pinned config: large enough that the chunked event storm dominates
#: (the regime the fluid model exists for), small enough for CI.
SCALE = 0.2  # 100 MB per client
N_CLIENTS = 8
ARCH = "nfsv4"
BLOCK = 16 * MB

MIN_SPEEDUP = 3.0
MAX_DRIFT = 0.05


def run_model(model: str):
    workload = IorWorkload(
        op="write", block_size=BLOCK, shared_file=False, scale=SCALE
    )
    res = run_cell(
        ARCH,
        workload,
        N_CLIENTS,
        net_model=model,
        nfs_overrides={"wsize": BLOCK, "rsize": BLOCK},
        pvfs_overrides={"flow_unit": BLOCK, "stripe_size": BLOCK},
    )
    return {
        "aggregate_mbps": res.aggregate_mbps,
        "makespan": res.makespan,
        "total_bytes": res.total_bytes,
        **res.engine,
    }


def test_fluid_speedup_and_throughput_drift():
    chunked = run_model("chunked")
    fluid = run_model("fluid")
    speedup = chunked["wall_seconds"] / fluid["wall_seconds"]
    event_ratio = chunked["events_processed"] / fluid["events_processed"]
    report = {
        "config": {
            "arch": ARCH,
            "workload": "ior-write-16MB-separate",
            "n_clients": N_CLIENTS,
            "scale": SCALE,
        },
        "chunked": chunked,
        "fluid": fluid,
        "wall_speedup": speedup,
        "event_ratio": event_ratio,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    with open(RESULTS_DIR / "engine_perf.json", "w") as fh:
        json.dump(report, fh, indent=2)
    print()
    for model, r in (("chunked", chunked), ("fluid", fluid)):
        print(
            f"  {model:8s} {r['aggregate_mbps']:7.1f} MB/s  "
            f"{r['events_processed']:>9} events  {r['wall_seconds']:.3f}s wall"
        )
    print(f"  wall speedup {speedup:.1f}x, event ratio {event_ratio:.1f}x")

    # Cross-model agreement: the fast path must not change the physics.
    assert fluid["aggregate_mbps"] == pytest.approx(
        chunked["aggregate_mbps"], rel=MAX_DRIFT
    )
    # Drift against the checked-in baseline (simulated throughput is
    # deterministic, so this is a tight regression tripwire).
    baseline = json.loads(BASELINE.read_text())
    for model, r in (("chunked", chunked), ("fluid", fluid)):
        expect = baseline[model]["aggregate_mbps"]
        assert r["aggregate_mbps"] == pytest.approx(expect, rel=MAX_DRIFT), (
            f"{model} throughput drifted >5% from baseline "
            f"({r['aggregate_mbps']:.1f} vs {expect:.1f} MB/s)"
        )
    # The point of the fast path, enforced: >= 3x cheaper to simulate.
    assert speedup >= MIN_SPEEDUP, (
        f"fluid model only {speedup:.1f}x faster than chunked "
        f"(need >= {MIN_SPEEDUP}x)"
    )


def test_observability_is_pay_for_what_you_use():
    """The obs layer's contract: off means free, on means same physics.

    * With no registry or collector installed (the default — every run
      above), the instrumented code paths must not change the simulated
      outcome; the baseline-drift gate in the previous test is the
      wall-clock guard for that path.
    * With metrics + tracing on, the simulation must compute the exact
      same physics (makespan, bytes, throughput): observation reads the
      run, it never perturbs it.  Wall overhead must stay bounded.
    """
    import time

    from repro.obs import spans as obs_spans

    assert obs_spans.ACTIVE is None  # default-off really is off

    workload_kw = dict(op="write", block_size=4 * MB, shared_file=False, scale=0.05)

    def run(**obs_kw):
        t0 = time.perf_counter()
        res = run_cell(
            ARCH, IorWorkload(**workload_kw), 4, net_model="fluid", **obs_kw
        )
        return res, time.perf_counter() - t0

    plain, wall_off = run()
    observed, wall_on = run(metrics=True, trace=True)

    # Identical simulated physics, to the bit.
    assert observed.makespan == plain.makespan
    assert observed.total_bytes == plain.total_bytes
    # The only extra engine events allowed are the sampler's own ticks
    # (one timeout per sample); spans and gauges schedule nothing.
    extra_events = (
        observed.engine["events_processed"] - plain.engine["events_processed"]
    )
    n_samples = len(observed.metrics["series"]["t"])
    assert 0 <= extra_events <= n_samples + 2

    # The observed run actually captured something.
    assert observed.metrics["counters"]
    assert observed.metrics["bottleneck"]
    assert len(observed.metrics["series"]["t"]) >= 2
    assert observed.trace.spans

    # Collector is uninstalled again: later runs are back to zero-cost.
    assert obs_spans.ACTIVE is None

    ratio = wall_on / wall_off
    print(f"\n  obs overhead: {wall_off:.3f}s off, {wall_on:.3f}s on ({ratio:.2f}x)")
    # Generous bound (CI wall clocks are noisy); catches accidental
    # per-event work sneaking into the hot path, not micro-costs.
    assert ratio < 3.0, f"observability overhead {ratio:.1f}x (need < 3x)"
