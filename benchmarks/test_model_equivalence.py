"""Figure-level chunked-vs-fluid equivalence (the acceptance gate).

Reruns the Fig. 6/7 write and read panels under both network models and
asserts the fluid fast path does not change the *science*:

* the paper's ordering at full client count must match — with ties
  allowed, because the paper's own claim is "Direct-pNFS ≈ PVFS2 >
  pNFS > NFSv4" and the top two sit within ~2 % of each other;
* per-point throughput must agree within the chunked reference's own
  noise floor.

On tolerances: the chunked model's seeded-random pipe arbitration makes
its figures seed-sensitive — measured spread across five seeds at the
most volatile cells (single-client gateway configs, whose flush
coalescing sits on a scheduling cliff) is 4–13 %, while saturated
multi-client cells sit under 2 %.  The fluid model is one deterministic
schedule, so we hold its drift from the default-seed chunked run to
``PER_POINT_TOL`` (inside that measured noise) and the *median* drift —
where seed noise averages out — to ``MEDIAN_TOL``.  Tightening the
per-point bound below the reference's own seed variance would test the
arbitration dice, not the physics.

Config matches the validation runs: scale 0.1, client counts {1, 4, 8}.
"""

import statistics

import pytest

from repro.bench.experiments import run_experiment

SCALE = 0.1
COUNTS = [1, 4, 8]

#: Per-point ceiling: inside the chunked model's measured 4-13 % seed
#: spread at its most volatile (n=1 gateway) cells.
PER_POINT_TOL = 0.10
#: Median across a panel, where arbitration noise averages out.
MEDIAN_TOL = 0.03
#: Two systems closer than this are a tie for ordering purposes.
TIE_TOL = 0.02


def ordering(values: dict[str, dict[int, float]], n: int) -> list[str]:
    return sorted(values, key=lambda arch: -values[arch][n])


def orderings_agree(cv, fv, n: int) -> bool:
    """Same ranking, treating near-equal systems as interchangeable.

    Every pair the chunked model separates by more than ``TIE_TOL``
    must keep its order under fluid; pairs inside the tie band (e.g.
    Direct-pNFS vs PVFS2 at saturation) may legitimately swap.
    """
    co = ordering(cv, n)
    for i, x in enumerate(co):
        for y in co[i + 1 :]:
            gap = (cv[x][n] - cv[y][n]) / cv[x][n]
            if gap > TIE_TOL and fv[x][n] < fv[y][n]:
                return False
    return True


@pytest.mark.parametrize("exp_id", ["fig6a", "fig7a"])
def test_fluid_reproduces_figure(exp_id):
    chunked = run_experiment(
        exp_id, scale=SCALE, client_counts=COUNTS, net_model="chunked"
    )
    fluid = run_experiment(
        exp_id, scale=SCALE, client_counts=COUNTS, net_model="fluid"
    )
    cv, fv = chunked.values, fluid.values

    drifts = {}
    for arch in cv:
        for n in COUNTS:
            drifts[(arch, n)] = abs(fv[arch][n] - cv[arch][n]) / cv[arch][n]
    print()
    for (arch, n), d in sorted(drifts.items(), key=lambda kv: -kv[1])[:5]:
        print(f"  worst drift {arch} n={n}: {d * 100:.1f}%")
    print(f"  median drift: {statistics.median(drifts.values()) * 100:.1f}%")

    assert max(drifts.values()) <= PER_POINT_TOL, (
        "fluid drifted beyond the chunked seed-noise envelope: "
        + ", ".join(
            f"{arch} n={n}: {d * 100:.1f}%"
            for (arch, n), d in drifts.items()
            if d > PER_POINT_TOL
        )
    )
    assert statistics.median(drifts.values()) <= MEDIAN_TOL

    assert orderings_agree(cv, fv, max(COUNTS)), (
        f"paper ordering changed under fluid: "
        f"chunked {ordering(cv, max(COUNTS))} vs "
        f"fluid {ordering(fv, max(COUNTS))}"
    )
