"""Extension benchmark: decentralised metadata (the §6.4.3 future work).

Sweeps the number of metadata shards under an mdtest create/stat/remove
storm over Direct-pNFS, quantifying how far partitioning the namespace
recovers the parallel file system's decentralised-metadata advantage
that NFSv4's central server gives up.
"""

import os

from repro.core.multi_mds import ShardedDirectPnfs, ShardedPvfs2System
from repro.cluster.testbed import Testbed, default_nfs_config, default_pvfs2_config
from repro.workloads import MdtestWorkload

SCALE = float(os.environ.get("REPRO_SCALE", "0.25"))


def run_storm(n_meta: int, n_clients: int = 8, metadata_sync: bool = True) -> float:
    tb = Testbed(n_clients=n_clients)
    pvfs = ShardedPvfs2System(
        tb.sim,
        tb.storage_nodes,
        default_pvfs2_config(metadata_sync=metadata_sync),
        n_meta=n_meta,
    )
    system = ShardedDirectPnfs(tb.sim, pvfs, default_nfs_config())
    # mdtest-style: 8 ranks per client node so the metadata path is
    # actually saturated rather than client-latency-bound.
    workload = MdtestWorkload(nfiles=400, concurrency=8, scale=SCALE)
    clients = [system.make_client(tb.client_nodes[i]) for i in range(n_clients)]

    def prep():
        yield from clients[0].mount()
        yield from workload.prepare(tb.sim, clients[0], n_clients)

    tb.sim.run(until=tb.sim.process(prep()))

    def one(i):
        if i != 0:
            yield from clients[i].mount()
        return (yield from workload.client_proc(tb.sim, clients[i], i, n_clients))

    t0 = tb.sim.now
    procs = [tb.sim.process(one(i)) for i in range(n_clients)]
    tb.sim.run(until=tb.sim.all_of(procs))
    return tb.sim.now - t0


def test_metadata_scaling_with_shards(benchmark):
    """Two regimes, one finding each:

    * with PVFS2's synchronous per-create journalling ON, sharding
      helps (the metadata servers' own journals shard) but the gain is
      capped — every create still journals on EVERY storage daemon's
      disk, a cost that does not shard;
    * with the journal ablated, the metadata-server path is the
      bottleneck and the storm scales near-linearly with the shard
      count — the decentralisation §6.4.3 calls for.
    """
    out = {True: {}, False: {}}

    def once():
        for sync in (True, False):
            for n_meta in (1, 2, 4):
                out[sync][n_meta] = run_storm(n_meta, metadata_sync=sync)

    benchmark.pedantic(once, rounds=1, iterations=1)
    for sync, label in ((True, "journalling ON"), (False, "journalling OFF")):
        print(f"\nmdtest storm over Direct-pNFS ({label}):")
        for n_meta, t in out[sync].items():
            print(
                f"  {n_meta} shard(s): {t:7.2f} s  "
                f"({out[sync][1] / t:.2f}x vs centralised)"
            )
    speedup_sync = out[True][1] / out[True][4]
    speedup_nosync = out[False][1] / out[False][4]
    # Journalled: sharding helps…
    assert out[True][2] < out[True][1]
    # …but the unsharded daemon-side journals cap the gain below the
    # journal-free scaling.
    assert speedup_sync < speedup_nosync
    # Ablated: near-linear scaling with shards.
    assert speedup_nosync >= 2.5
    assert out[False][2] < 0.7 * out[False][1]
