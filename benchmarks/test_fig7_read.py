"""Figure 7: aggregate read throughput (warm server cache)."""


def test_fig7a_read_separate_large_block(run_panel):
    """Direct-pNFS matches PVFS2 and scales ~4-5x beyond single-server
    NFSv4; the indirect tiers are bandwidth-limited."""
    run_panel("fig7a")


def test_fig7b_read_single_file_large_block(run_panel):
    """Single file: PVFS2 edges past Direct-pNFS at the top client count
    (data servers pay the loopback-conduit CPU tax)."""
    run_panel("fig7b")


def test_fig7c_read_separate_8kb(run_panel):
    """8 KB blocks: page cache + readahead keep NFS-based curves at
    their large-block level; PVFS2 collapses by ~10x."""
    run_panel("fig7c")


def test_fig7d_read_single_8kb(run_panel):
    """Single-file variant of 7c."""
    run_panel("fig7d")
