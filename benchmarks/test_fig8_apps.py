"""Figure 8: scientific applications and synthetic macro-benchmarks."""


def test_fig8a_atlas(run_panel):
    """ATLAS digitization mix (95% small requests, 95% of bytes large):
    Direct-pNFS loses ~14% off its peak, PVFS2 drops to ~41%."""
    run_panel("fig8a")


def test_fig8b_btio(run_panel):
    """BTIO class A runtimes comparable; Direct-pNFS ~5% slower at nine
    clients (PVFS2 buffer-pool effect)."""
    run_panel("fig8b")


def test_fig8c_oltp(run_panel):
    """8 KB read-modify-write with per-transaction durability:
    Direct-pNFS several times PVFS2's throughput."""
    run_panel("fig8c")


def test_fig8d_postmark(run_panel):
    """Small-file transactions: Direct-pNFS an order of magnitude (paper:
    up to 36x) more transactions per second than PVFS2."""
    run_panel("fig8d")
