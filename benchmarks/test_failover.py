"""Extension benchmark: throughput dip and recovery under data-server loss.

Runs an IOR-style parallel sequential read over Direct-pNFS on the
paper's six-server testbed, kills one of the six data-server services
mid-run, and restarts it — measuring the aggregate-throughput dip while
the victim's stripes are proxied through the MDS, and the time to
recover direct-access throughput after the restart.

The quantity of interest is recovery-path behaviour: with client-side
RPC timeouts, session-reply-cache retransmission, and MDS fallback in
place, the run *completes with correct accounting* instead of wedging —
the paper's §5 versatility claim made measurable.
"""

import json
import os
import pathlib

from repro.cluster.testbed import Testbed, default_nfs_config, default_pvfs2_config
from repro.core import DirectPnfsSystem
from repro.pvfs2 import Pvfs2System
from repro.sim import FaultInjector
from repro.vfs import Payload

SCALE = float(os.environ.get("REPRO_SCALE", "0.25"))
MB = 1024 * 1024
RESULTS_DIR = pathlib.Path(__file__).parent / "results"

N_CLIENTS = 4
BLOCK = max(256 * 1024, int(2 * MB * min(SCALE * 2, 1.0)))
PER_CLIENT_BYTES = int(500 * MB * SCALE)


def build(rpc_timeout: float, ds_retry: float):
    tb = Testbed(n_clients=N_CLIENTS)
    pvfs = Pvfs2System(
        tb.sim, tb.storage_nodes, default_pvfs2_config(stripe_size=BLOCK)
    )
    system = DirectPnfsSystem(
        tb.sim,
        pvfs,
        default_nfs_config(
            rsize=BLOCK,
            wsize=BLOCK,
            readahead=0,  # per-block completion stamps stay meaningful
            rpc_timeout=rpc_timeout,
            rpc_max_retries=1,
            ds_retry_interval=ds_retry,
        ),
    )
    clients = [system.make_client(tb.client_nodes[i]) for i in range(N_CLIENTS)]
    return tb, system, clients


def run_ior(
    outage: tuple[float, float] | None,
    rpc_timeout: float = 0.2,
    ds_retry: float = 1.0,
):
    """One IOR read run; returns (duration, stamps, clients, injector)."""
    tb, system, clients = build(rpc_timeout, ds_retry)
    sim = tb.sim
    nblocks = max(8, PER_CLIENT_BYTES // BLOCK)

    def prepare(i):
        yield from clients[i].mount()
        f = yield from clients[i].create(f"/ior{i}.dat")
        # Write in bounded bursts: flushing the whole file at once would
        # put every WRITE in flight together and inflate per-RPC latency
        # past any sane retry timeout.
        for b in range(nblocks):
            yield from clients[i].write(f, b * BLOCK, Payload.synthetic(BLOCK))
            if b % 4 == 3:
                yield from clients[i].fsync(f)
        yield from clients[i].close(f)

    for i in range(N_CLIENTS):
        sim.run(until=sim.process(prepare(i)))

    inj = FaultInjector(sim)
    victim = system.data_server_for(tb.storage_nodes[2]).rpc
    t0 = sim.now
    if outage is not None:
        inj.outage(victim, start=t0 + outage[0], duration=outage[1] - outage[0])

    stamps: list[tuple[float, int]] = []

    def reader(i):
        # Read the neighbour's file so nothing is in the page cache.
        f = yield from clients[i].open(f"/ior{(i + 1) % N_CLIENTS}.dat", write=False)
        for b in range(nblocks):
            yield from clients[i].read(f, b * BLOCK, BLOCK)
            stamps.append((sim.now - t0, BLOCK))
        yield from clients[i].close(f)

    procs = [sim.process(reader(i)) for i in range(N_CLIENTS)]
    sim.run(until=sim.all_of(procs))
    return sim.now - t0, stamps, clients, inj


def bucketise(stamps, duration, nbuckets=24):
    width = duration / nbuckets
    buckets = [0.0] * nbuckets
    for t, nbytes in stamps:
        buckets[min(int(t / width), nbuckets - 1)] += nbytes
    return width, [b / width for b in buckets]  # bytes/s per bucket


def test_failover_dip_and_recovery(benchmark):
    holder = {}

    def once():
        base_dur, _s, _c, _i = run_ior(outage=None)
        # Kill the victim a third of the way through the healthy run
        # length, bring it back at two thirds.  The retry ladder and
        # blacklist window scale with the run so the outage geometry is
        # the same at every REPRO_SCALE: the full ladder
        # (timeout + backoff*timeout ~ 3*rpc_timeout) fits well inside
        # the outage, and the blacklist lapses well before the tail of
        # the run ends.
        fail_at, restore_at = base_dur / 3, 2 * base_dur / 3
        dur, stamps, clients, inj = run_ior(
            outage=(fail_at, restore_at),
            rpc_timeout=base_dur / 16,
            ds_retry=base_dur / 8,
        )
        holder.update(
            base_dur=base_dur, dur=dur, stamps=stamps, clients=clients,
            inj=inj, fail_at=fail_at, restore_at=restore_at,
        )

    benchmark.pedantic(once, rounds=1, iterations=1)

    base_dur, dur = holder["base_dur"], holder["dur"]
    steady = N_CLIENTS * PER_CLIENT_BYTES / base_dur
    width, buckets = bucketise(holder["stamps"], dur)
    fail_at, restore_at = holder["fail_at"], holder["restore_at"]

    outage_buckets = [
        b for i, b in enumerate(buckets)
        if fail_at <= i * width and (i + 1) * width <= restore_at
    ]
    dip = min(outage_buckets) if outage_buckets else 0.0
    recovery_time = None
    for i, b in enumerate(buckets):
        t = i * width
        if t >= restore_at and b >= 0.7 * steady:
            recovery_time = t - restore_at
            break

    failovers = sum(c.failovers for c in holder["clients"])
    recoveries = sum(c.recoveries for c in holder["clients"])
    proxied = sum(c.proxied_bytes for c in holder["clients"])

    print()
    print(f"healthy run      : {base_dur:6.2f} s  ({steady / 1e6:7.1f} MB/s aggregate)")
    print(f"run with outage  : {dur:6.2f} s  (victim dead {fail_at:.2f}s..{restore_at:.2f}s)")
    print(f"worst outage bucket: {dip / 1e6:7.1f} MB/s")
    print(f"recovery time    : "
          f"{'%.2f s' % recovery_time if recovery_time is not None else 'n/a'}")
    print(f"failovers={failovers} recoveries={recoveries} proxied={proxied / 1e6:.1f} MB")
    print("timeline (MB/s per bucket):")
    print("  " + " ".join(f"{b / 1e6:6.0f}" for b in buckets))

    RESULTS_DIR.mkdir(exist_ok=True)
    with open(RESULTS_DIR / "failover.json", "w") as fh:
        json.dump(
            {
                "scale": SCALE,
                "steady_MBps": steady / 1e6,
                "dip_MBps": dip / 1e6,
                "recovery_time_s": recovery_time,
                "outage_run_s": dur,
                "healthy_run_s": base_dur,
                "failovers": failovers,
                "recoveries": recoveries,
                "proxied_MB": proxied / 1e6,
            },
            fh,
            indent=2,
        )

    # The run completed with every byte accounted for (no wedge), the
    # outage cost throughput, and throughput came back after restart.
    assert len(holder["stamps"]) == N_CLIENTS * max(8, PER_CLIENT_BYTES // BLOCK)
    assert failovers >= 1 and recoveries >= 1 and proxied > 0
    assert dur > base_dur
    assert dip < 0.9 * steady
    assert recovery_time is not None
