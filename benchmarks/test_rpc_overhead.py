"""Events-per-RPC gate: the kernel must stay cheap per protocol op.

The two-lane scheduler exists to cut what one RPC costs the event
kernel: before it, the pinned cell below (Direct-pNFS, 8-client IOR
separate-file writes) pushed ~243 events — all heap — per served RPC,
most of them zero-delay bookkeeping (process kicks, free-resource
grants, leg joins).  With the fast lane and lightweight spawn the heap
sees ~59 events per RPC and the rest ride a deque.

This gate pins that down so it cannot silently regress:

* heap events per RPC must stay below ``HEAP_EVENTS_PER_RPC_MAX``,
* total events per RPC must stay below ``EVENTS_PER_RPC_MAX``,
* the fast lane must carry the majority of scheduled events (the
  structural claim of the two-lane design on this workload),
* simulated physics must match the checked-in throughput (the kernel
  is a scheduler, not a model: it must never change results).

The measurement lands in ``benchmarks/results/BENCH_engine.json`` —
the engine-cost trajectory artifact CI uploads next to
``engine_perf.json`` and ``BENCH_parallel.json``.
"""

import json
import pathlib

import pytest

from repro.bench.runner import run_cell
from repro.workloads import IorWorkload

MB = 1024 * 1024
RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Pinned cell: the acceptance-criteria config (direct-pnfs/ior-write
#: @ 8 clients), RPC-dense (2 MB blocks -> many WRITEs + layout traffic)
#: so per-RPC kernel overhead, not byte-moving, dominates the bill.
ARCH = "direct-pnfs"
N_CLIENTS = 8
BLOCK = 2 * MB
SCALE = 0.2

#: Measured on the pinned cell before the two-lane scheduler: every
#: event was a heap event, ~243 of them per served RPC.  Kept as the
#: recorded reference point for the trajectory artifact.
PRE_TWO_LANE_EVENTS_PER_RPC = 242.9

#: Ceilings with headroom over the measured post-change values (~59
#: heap / ~220 total per RPC): loose enough for config drift in other
#: layers, tight enough that losing the fast lane (or re-growing a
#: per-leg Process + AllOf chain) trips them immediately.
HEAP_EVENTS_PER_RPC_MAX = 90.0
EVENTS_PER_RPC_MAX = 235.0

#: Simulated aggregate throughput of the pinned cell (deterministic for
#: a fixed config; scheduler changes must not move it at all).
EXPECTED_MBPS = 112.73
MAX_DRIFT = 0.05


def test_events_per_rpc_stays_below_ceiling():
    res = run_cell(
        ARCH,
        IorWorkload(op="write", block_size=BLOCK, shared_file=False, scale=SCALE),
        N_CLIENTS,
        keep_deployment=True,
    )
    engine = res.engine
    rpcs = sum(s.rpc.calls_served for s in res.deployment.servers)
    assert rpcs > 0
    heap_per_rpc = engine["heap_events"] / rpcs
    events_per_rpc = engine["events_processed"] / rpcs

    report = {
        "config": {
            "arch": ARCH,
            "workload": f"ior-write-{BLOCK // MB}MB-separate",
            "n_clients": N_CLIENTS,
            "scale": SCALE,
        },
        "rpcs": rpcs,
        "events_per_rpc": events_per_rpc,
        "heap_events_per_rpc": heap_per_rpc,
        "pre_two_lane_events_per_rpc": PRE_TWO_LANE_EVENTS_PER_RPC,
        "ceilings": {
            "heap_events_per_rpc": HEAP_EVENTS_PER_RPC_MAX,
            "events_per_rpc": EVENTS_PER_RPC_MAX,
        },
        "aggregate_mbps": res.aggregate_mbps,
        "engine": dict(engine),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    with open(RESULTS_DIR / "BENCH_engine.json", "w") as fh:
        json.dump(report, fh, indent=2)
    print()
    print(
        f"  {rpcs} RPCs, {events_per_rpc:.1f} events/RPC "
        f"({heap_per_rpc:.1f} heap, was {PRE_TWO_LANE_EVENTS_PER_RPC} pre-two-lane)"
    )

    # The physics is untouched by kernel scheduling changes.
    assert res.aggregate_mbps == pytest.approx(EXPECTED_MBPS, rel=MAX_DRIFT)
    # The structural claim: most events never touch the heap here.
    assert engine["fast_lane_events"] > engine["heap_events"]
    assert engine["events_processed"] == pytest.approx(
        engine["events_scheduled"], abs=64
    )
    # The gate.
    assert heap_per_rpc < HEAP_EVENTS_PER_RPC_MAX, (
        f"{heap_per_rpc:.1f} heap events per RPC "
        f"(ceiling {HEAP_EVENTS_PER_RPC_MAX})"
    )
    assert events_per_rpc < EVENTS_PER_RPC_MAX, (
        f"{events_per_rpc:.1f} events per RPC (ceiling {EVENTS_PER_RPC_MAX})"
    )


def test_engine_stats_flow_into_run_result():
    """The lane counters are observable per run: ``RunResult.engine``
    carries them (and therefore every benchmark JSON that embeds it),
    and ``repro.obs`` exports them as gauges."""
    from repro.obs import MetricsRegistry, observe_engine

    res = run_cell(
        ARCH,
        IorWorkload(op="write", block_size=BLOCK, shared_file=False, scale=0.02),
        2,
        keep_deployment=True,
    )
    for key in ("fast_lane_events", "heap_events", "events_scheduled"):
        assert key in res.engine
    assert (
        res.engine["fast_lane_events"] + res.engine["heap_events"]
        == res.engine["events_scheduled"]
    )

    reg = MetricsRegistry()
    observe_engine(reg, res.deployment.testbed.sim)
    snap = reg.sample_numeric()
    assert snap["engine.fast_lane_events"] == res.engine["fast_lane_events"]
    assert snap["engine.heap_events"] == res.engine["heap_events"]
