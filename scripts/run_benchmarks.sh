#!/usr/bin/env bash
# Regenerate every figure panel + ablations, record results, and
# rebuild EXPERIMENTS.md.  Scale via REPRO_SCALE (default 0.25).
set -uo pipefail
cd "$(dirname "$0")/.."

python -m pytest benchmarks/ --benchmark-only -q 2>&1 | tee bench_output.txt
python scripts/update_experiments.py
