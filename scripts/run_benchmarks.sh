#!/usr/bin/env bash
# Regenerate every figure panel + ablations, record results, and
# rebuild EXPERIMENTS.md.  Scale via REPRO_SCALE (default 0.25).
#
# Panel cells fan out over REPRO_JOBS worker processes (default: all
# cores) via repro.parallel; results are identical to a serial run.
# Set REPRO_CACHE=1 to reuse cells whose (spec, code-fingerprint) key
# is already in the content-addressed cache (.repro-cache/ or
# REPRO_CACHE_DIR).
set -uo pipefail
cd "$(dirname "$0")/.."

export REPRO_JOBS="${REPRO_JOBS:-$(nproc 2>/dev/null || echo 1)}"

python -m pytest benchmarks/ --benchmark-only -q 2>&1 | tee bench_output.txt
python scripts/update_experiments.py
