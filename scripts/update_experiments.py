#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md from benchmark results.

Run the benchmark suite first (it writes ``benchmarks/results/*.json``),
then::

    python scripts/update_experiments.py

The generated document records, per figure panel: measured vs paper
values at every client count swept, plus the verdicts of the
qualitative shape criteria.
"""

from __future__ import annotations

import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.bench.experiments import EXPERIMENTS  # noqa: E402
from repro.bench.paper_data import PAPER  # noqa: E402

ROOT = pathlib.Path(__file__).resolve().parents[1]
RESULTS = ROOT / "benchmarks" / "results"

HEADER = """\
# Experiments: paper vs measured

Every figure panel of the paper's evaluation (§6), regenerated on the
calibrated simulator.  Absolute values are *not* expected to match the
authors' 2006 testbed; the comparison criteria are the paper's claims —
who wins, by roughly what factor, where curves flatten.  Each table
reports ``measured (paper)`` per client count; the shape criteria below
each table are asserted by the benchmark suite
(``python -m pytest benchmarks/ --benchmark-only``).

Scale note: these results were produced at the scale recorded per
experiment (fraction of the paper's 500 MB-per-client data volumes);
steady-state throughputs and all ratios are scale-invariant to within a
few percent, except where noted in DESIGN.md.

## Known deviations (and why)

Reproduced faithfully: every Figure 6/7 ordering and plateau; the
small-block invariance of the NFS-based systems vs PVFS2's collapse
(6d/6e, 7c/7d); the 2-tier halving on 100 Mbps (6c); OLTP's absolute
level (≈25 vs the paper's 26 MB/s) and winner; BTIO parity; the
SSH-build phase split (Direct faster compiling, slower in the
metadata-bound phases).

Deviations we do not attempt to force:

* **Fig 8a (ATLAS)** — Direct-pNFS's *relative* penalty from the small
  request mix (~14% off its own peak) is reproduced, but our PVFS2
  loses far less than the paper's 59%.  Our storage daemon drains
  random writes through a sorted elevator over its write-behind
  buffer; a rational model of 2 MB-extent random writes simply is not
  2× slower than sequential.  The paper's measured collapse most
  likely reflects PVFS2 1.5.1 implementation pathologies (trove/BDB
  behaviour, allocator fragmentation) that we chose not to hard-code.
* **Fig 7b (single-file read crossover)** — the paper shows PVFS2
  edging past Direct-pNFS at eight clients (530.7 vs ~505 MB/s); we
  measure near-parity with Direct-pNFS slightly ahead.  The
  loopback-conduit CPU tax narrows Direct-pNFS's lead exactly as the
  paper's mechanism predicts, but does not flip the order at benchmark
  scale.
* **Fig 8c (OLTP)** — measured ratio ≈2.7× vs the paper's ≈4.3×; both
  absolute levels are close (25 vs 26 and 9 vs 6 MB/s).
* **Fig 8d (Postmark)** — the paper reports up to 36× more
  transactions/s for Direct-pNFS, with PVFS2 at ~1 tps.  In our model
  both systems sit on the *same* metadata substrate (synchronous
  create/remove journalling at the MDS and storage daemons), which
  bounds both sides equally; PVFS2's measured ~1 tps (≈1 s per small
  transaction) is only reachable by hard-coding second-scale
  per-operation penalties into its client, for which the paper offers
  no mechanism — note it would contradict §6.4.3, where native PVFS2
  *wins* the create-dominated build phases.  We reproduce direction at
  parity-or-better and record the magnitude gap here.
* **Fig 6 absolute writes** sit ~10% above the paper's 119 MB/s at
  benchmark scale because the final write-cache allowance (16 MB per
  daemon, the era's lying-ATA-cache semantics) is a larger fraction of
  a scaled run; at scale 1.0 the gap shrinks to a few percent.
"""


def metric_unit(metric: str) -> str:
    return {"mbps": "MB/s", "runtime": "s", "tps": "tps"}[metric]


def main() -> None:
    sections: list[str] = [HEADER]
    for exp_id, exp in EXPERIMENTS.items():
        path = RESULTS / f"{exp_id}.json"
        if not path.exists():
            sections.append(
                f"\n## {exp_id}: {exp.title}\n\n*(no results recorded — run the benchmarks)*\n"
            )
            continue
        data = json.loads(path.read_text())
        values = {
            system: {int(n): v for n, v in series.items()}
            for system, series in data["values"].items()
        }
        paper = PAPER.get(exp_id, {})
        systems = [s for s in exp.systems if s in values]
        counts = sorted(next(iter(values.values())).keys())
        unit = metric_unit(data["metric"])

        lines = [f"\n## {exp_id}: {exp.title}", ""]
        lines.append(f"Scale: {data['scale']}.  Values in {unit}, shown as measured (paper).")
        lines.append("")
        lines.append("| clients | " + " | ".join(systems) + " |")
        lines.append("|---:|" + "---|" * len(systems))
        for n in counts:
            row = [f"{n}"]
            for s in systems:
                measured = values[s].get(n)
                ref = paper.get(s, {}).get(n)
                cell = f"{measured:.1f}" if measured is not None else "-"
                if ref is not None:
                    cell += f" ({ref:g})"
                row.append(cell)
            lines.append("| " + " | ".join(row) + " |")
        lines.append("")
        lines.append("Shape criteria:")
        for check in data.get("checks", []):
            mark = "✅" if check["ok"] else "❌"
            lines.append(f"* {mark} {check['name']} — {check['detail']}")
        sections.append("\n".join(lines) + "\n")

    out = ROOT / "EXPERIMENTS.md"
    out.write_text("\n".join(sections))
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
