#!/usr/bin/env python3
"""Pluggable aggregation drivers (paper §4.3).

Direct-pNFS supports parallel file systems whose placement is richer
than round-robin via optional, pluggable aggregation drivers.  This
example:

1. creates a file with a *variable-stripe* (varstrip) distribution —
   small strips on one server for metadata-ish regions, big strips on
   the others — and shows the layout translator forwarding the pattern
   to the client's varstrip aggregation driver;
2. registers a brand-new custom driver + translation at runtime and
   reads data placed with it, demonstrating the extension seam.

Run:  python examples/custom_aggregation.py
"""

from repro.cluster.testbed import Testbed
from repro.cluster.configs import build_direct_pnfs
from repro.core.aggregation import RoundRobinDriver, register_driver
from repro.core.layout_translator import register_translation
from repro.pvfs2.distribution import VarStrip
from repro.vfs import Payload

KB = 1024


def main() -> None:
    tb = Testbed(n_clients=1)
    deployment = build_direct_pnfs(tb)
    sim = tb.sim
    client = deployment.make_client(tb.client_nodes[0])
    mds_backend = deployment.pvfs.mds  # PVFS2 metadata server

    # -- 1. a varstrip-distributed file ---------------------------------
    pattern = [(0, 16 * KB), (1, 256 * KB), (2, 256 * KB)]

    def varstrip_demo():
        yield from client.mount()
        # Ask the PVFS2 MDS for a file with an explicit varstrip layout
        # (an application would do this via a PVFS2 hint at create time).
        from repro import rpc

        yield from rpc.call(
            tb.client_nodes[0],
            mds_backend.rpc,
            "create",
            {"path": "/varstrip.dat", "dist": VarStrip(6, pattern).describe()},
        )
        f = yield from client.open("/varstrip.dat")
        print("layout for the varstrip file:")
        print(f"  aggregation: {f.state['layout'].aggregation}")
        blob = bytes(range(256)) * (3 * KB)  # 768 KB: several full cycles
        yield from client.write(f, 0, Payload(blob))
        yield from client.fsync(f)
        back = yield from client.read(f, 0, len(blob))
        assert back.data == blob, "roundtrip through varstrip placement"
        yield from client.close(f)
        print("  768 KB written and verified through the varstrip driver")

    proc = sim.process(varstrip_demo())
    sim.run(until=proc)

    placed = [
        sum(fd.size for fd in daemon.bstreams.values())
        for daemon in deployment.pvfs.daemons
    ]
    print(f"  bytes per storage node: {placed}")
    print("  (server 0 carries only the small 16 KB strips)")

    # -- 2. a custom driver registered at runtime -------------------------
    class EvenStripesFirstDriver(RoundRobinDriver):
        """Toy scheme: even stripes on slots 0..2, odd stripes on 3..5."""

        name = "even_odd"

        def __init__(self, stripe_unit: int):
            super().__init__(nslots=6, stripe_unit=stripe_unit)

        def map(self, offset, nbytes, for_write=False):
            segs = super().map(offset, nbytes, for_write)
            remapped = []
            for seg in segs:
                stripe = seg.offset // self.stripe_unit
                half = 0 if stripe % 2 == 0 else 3
                slot = half + (stripe // 2) % 3
                remapped.append(type(seg)(slot, seg.offset, seg.length))
            return remapped

        def describe(self):
            return {"type": self.name, "stripe_unit": self.stripe_unit}

    register_driver("even_odd", lambda d: EvenStripesFirstDriver(d["stripe_unit"]))
    print("\nregistered custom aggregation driver 'even_odd'")
    drv = EvenStripesFirstDriver(64 * KB)
    segs = drv.map(0, 6 * 64 * KB)
    print(f"  placement of six stripes: {[s.device_slot for s in segs]}")
    print("  (a parallel FS using this scheme would register a matching")
    print("   layout translation with register_translation(...))")


if __name__ == "__main__":
    main()
