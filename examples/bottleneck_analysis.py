#!/usr/bin/env python3
"""Bottleneck and RPC analysis of one experiment cell.

Reproduces the paper's §6.2.1 discussion *with instruments attached*:
run an IOR cell on a chosen architecture, then print

* per-server-node utilisation (CPU / NIC / disk) and the dominant
  resource, and
* the RPC mix: per-procedure call counts, latencies, and bytes moved.

Run:  python examples/bottleneck_analysis.py [arch] [read|write] [scale]
      e.g. python examples/bottleneck_analysis.py direct-pnfs write 0.1
"""

import sys

from repro.bench.runner import run_cell
from repro.tracing import RpcTracer
from repro.workloads import IorWorkload

MB = 1024 * 1024


def main() -> None:
    arch = sys.argv[1] if len(sys.argv) > 1 else "direct-pnfs"
    op = sys.argv[2] if len(sys.argv) > 2 else "write"
    scale = float(sys.argv[3]) if len(sys.argv) > 3 else 0.1

    workload = IorWorkload(op=op, block_size=4 * MB, scale=scale)
    with RpcTracer() as tracer:
        result = run_cell(arch, workload, n_clients=8, measure_utilisation=True)

    print(f"{arch} / IOR {op} @ 8 clients (scale {scale})")
    print(f"aggregate: {result.aggregate_mbps:.1f} MB/s over {result.makespan:.2f} s\n")

    print("server-node utilisation over the measured window:")
    for report in result.utilisation:
        print(f"  {report}")

    print("\nRPC mix (includes preparation traffic):")
    print(tracer.summary())

    dominant = {r.dominant for r in result.utilisation if r.node.startswith("server")}
    print(
        f"\nDominant server resource(s): {sorted(dominant)} — the paper's "
        f"§6.2.1 expectation is 'disk' for large writes and 'cpu' for "
        f"warm-cache reads."
    )


if __name__ == "__main__":
    main()
