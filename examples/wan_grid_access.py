#!/usr/bin/env python3
"""GridNFS-style WAN access (the paper's motivating scenario, §1).

The GridNFS project wants scalable, transparent data access for Grid
computations — clients that may sit across a WAN from the storage
cluster.  Because Direct-pNFS speaks plain NFSv4.1, the same client
works at any latency; this example measures how aggregate throughput
degrades as the one-way latency grows from LAN (80 µs) to
cross-country WAN (30 ms), and how the NFSv4.1 client's deep
readahead/write-back pipelines hide much of it.

Run:  python examples/wan_grid_access.py  [scale]
"""

import sys

from repro.cluster.configs import build_direct_pnfs
from repro.cluster.testbed import Testbed
from repro.workloads import IorWorkload

MB = 1024 * 1024


def measure(latency: float, op: str, scale: float) -> float:
    tb = Testbed(n_clients=4, latency=latency)
    deployment = build_direct_pnfs(tb)
    sim = tb.sim
    workload = IorWorkload(op=op, block_size=4 * MB, scale=scale)
    admin = deployment.make_client(tb.client_nodes[0])

    def prep():
        yield from admin.mount()
        yield from workload.prepare(sim, admin, 4)

    sim.run(until=sim.process(prep()))
    clients = [deployment.make_client(tb.client_nodes[i]) for i in range(4)]

    def mounts():
        for c in clients:
            yield from c.mount()

    sim.run(until=sim.process(mounts()))
    t0 = sim.now
    procs = [
        sim.process(workload.client_proc(sim, c, i, 4))
        for i, c in enumerate(clients)
    ]
    sim.run(until=sim.all_of(procs))
    total = sum(p.value.bytes_moved for p in procs)
    return total / 1e6 / (sim.now - t0)


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.1
    scenarios = [
        ("LAN (80 us)", 80e-6),
        ("metro (1 ms)", 1e-3),
        ("regional (10 ms)", 10e-3),
        ("cross-country (30 ms)", 30e-3),
    ]
    print(f"Direct-pNFS over increasing latency (4 clients, scale={scale})")
    print(f"{'link':>22} {'write MB/s':>12} {'read MB/s':>12}")
    for name, latency in scenarios:
        w = measure(latency, "write", scale)
        r = measure(latency, "read", scale)
        print(f"{name:>22} {w:>12.1f} {r:>12.1f}")
    print(
        "\nThe write-back cache and readahead windows keep the pipes full"
        "\nuntil the bandwidth-delay product outgrows them — transparent"
        "\nWAN access from the same unmodified client."
    )


if __name__ == "__main__":
    main()
