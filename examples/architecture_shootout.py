#!/usr/bin/env python3
"""Architecture shootout: a miniature Figure 6a/7a.

Runs the IOR micro-benchmark (sequential separate-file streams, large
blocks) over all five architectures at several client counts and prints
write and read throughput tables next to the paper's reported values —
the core comparison of the paper in one script.

Run:  python examples/architecture_shootout.py  [scale]
      (default scale 0.1; expect a few minutes at 0.25+)
"""

import sys

from repro.bench.experiments import run_experiment
from repro.bench.report import format_table, shape_checks


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.1
    for exp_id in ("fig6a", "fig7a"):
        result = run_experiment(exp_id, scale=scale, client_counts=[1, 2, 4, 8])
        print()
        print(format_table(result))
        for check in shape_checks(result):
            print("  ", check)


if __name__ == "__main__":
    main()
