#!/usr/bin/env python3
"""Quickstart: build a Direct-pNFS deployment and do file I/O.

Builds the paper's testbed (six PVFS2 storage nodes, one doubling as
metadata manager), layers Direct-pNFS on top, mounts an unmodified
NFSv4.1 client, and performs ordinary file operations.  Along the way
it prints the pNFS file-based layout the layout translator produced —
the exact knowledge of data placement that lets the client reach
storage nodes directly.

Run:  python examples/quickstart.py
"""

from repro.cluster.testbed import Testbed
from repro.cluster.configs import build_direct_pnfs
from repro.vfs import Payload


def main() -> None:
    tb = Testbed(n_clients=2)
    deployment = build_direct_pnfs(tb)
    sim = tb.sim
    client = deployment.make_client(tb.client_nodes[0])

    def app():
        yield from client.mount()
        print(f"mounted {deployment.label}; devices: "
              f"{[ds.name for ds in client.devices]}")

        yield from client.mkdir("/demo")
        f = yield from client.create("/demo/hello.dat")

        layout = f.state["layout"]
        print("\nlayout from the layout translator:")
        print(f"  aggregation : {layout.aggregation}")
        print(f"  device slots: {layout.device_slots}")
        print(f"  policy      : {layout.policy}")

        message = b"Direct-pNFS: direct, parallel access via stock NFSv4.1\n"
        yield from client.write(f, 0, Payload(message * 100))
        yield from client.fsync(f)  # durable on the storage nodes' disks
        yield from client.close(f)

        g = yield from client.open("/demo/hello.dat")
        data = yield from client.read(g, 0, len(message))
        print(f"\nread back: {data.data!r}")
        attrs = yield from client.getattr("/demo/hello.dat")
        print(f"file size: {attrs.size} bytes "
              f"(striped over {len(deployment.pvfs.daemons)} storage nodes)")
        yield from client.close(g)

        names = yield from client.readdir("/demo")
        print(f"directory listing of /demo: {names}")

    proc = sim.process(app())
    sim.run(until=proc)
    print(f"\nsimulated time elapsed: {sim.now * 1e3:.2f} ms")
    per_node = [
        sum(fd.size for fd in daemon.bstreams.values())
        for daemon in deployment.pvfs.daemons
    ]
    print(f"bytes per storage node: {per_node}")


if __name__ == "__main__":
    main()
