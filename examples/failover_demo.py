#!/usr/bin/env python3
"""Failover demo: kill a data server mid-read and watch Direct-pNFS degrade
gracefully, then recover.

Builds the paper's testbed (six storage nodes), writes a striped file,
and reads it back in three phases:

1. **healthy** — every stripe is fetched directly from its data server;
2. **degraded** — one of the six data-server services is failed
   (the parallel-FS daemon under it keeps running): reads aimed at it
   time out, the client returns its layout and proxies those stripes
   through the MDS as plain NFSv4 reads — §5's versatility fallback;
3. **recovered** — the service is restarted and the client's blacklist
   lapses: the next probe succeeds and direct access resumes.

The per-phase throughput prints the dip and the recovery, and the RPC
trace shows the retries and timeouts the fault layer absorbed.

Run:  python examples/failover_demo.py [scale]
      (scale defaults to 0.25; 1.0 uses the paper's 2 MB stripes)
"""

import sys

from repro.cluster.testbed import Testbed, default_nfs_config, default_pvfs2_config
from repro.core import DirectPnfsSystem
from repro.pvfs2 import Pvfs2System
from repro.sim import FaultInjector
from repro.tracing import RpcTracer
from repro.vfs import Payload

N_BLOCKS = 12  # four per phase, striped round-robin over six servers


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.25
    block = max(64 * 1024, int(2 * 1024 * 1024 * scale))

    tb = Testbed(n_clients=2)
    pvfs = Pvfs2System(tb.sim, tb.storage_nodes, default_pvfs2_config(stripe_size=block))
    system = DirectPnfsSystem(
        tb.sim,
        pvfs,
        default_nfs_config(
            rsize=block,
            wsize=block,
            readahead=0,  # keep each phase honest: no prefetch across the kill
            rpc_timeout=0.2,
            rpc_max_retries=1,
            ds_retry_interval=1.0,
        ),
    )
    sim = tb.sim
    inj = FaultInjector(sim)
    writer = system.make_client(tb.client_nodes[0])
    reader = system.make_client(tb.client_nodes[1])
    victim = tb.storage_nodes[4]  # its stripes fall in every phase

    def prepare():
        yield from writer.mount()
        yield from reader.mount()
        f = yield from writer.create("/ior.dat")
        yield from writer.write(f, 0, Payload.synthetic(N_BLOCKS * block))
        yield from writer.close(f)

    sim.run(until=sim.process(prepare()))
    print(f"wrote {N_BLOCKS * block / 1e6:.1f} MB over "
          f"{len(system.data_servers)} data servers (block {block // 1024} KB)")

    def read_phase(f, lo, hi):
        t0 = sim.now
        for i in range(lo, hi):
            yield from reader.read(f, i * block, block)
        return (hi - lo) * block / (sim.now - t0)

    def run_demo():
        f = yield from reader.open("/ior.dat", write=False)

        healthy = yield from read_phase(f, 0, 4)

        inj.fail_server(system.data_server_for(victim).rpc)
        degraded = yield from read_phase(f, 4, 8)

        inj.restore_server(system.data_server_for(victim).rpc)
        yield sim.timeout(1.2)  # let the client's blacklist lapse
        recovered = yield from read_phase(f, 8, 12)

        yield from reader.close(f)
        return healthy, degraded, recovered

    with RpcTracer() as tracer:
        healthy, degraded, recovered = sim.run(until=sim.process(run_demo()))

    print(f"\nthroughput healthy  : {healthy / 1e6:8.1f} MB/s")
    print(f"throughput degraded : {degraded / 1e6:8.1f} MB/s   "
          f"(one server dead; its stripes proxied via the MDS)")
    print(f"throughput recovered: {recovered / 1e6:8.1f} MB/s")

    print(f"\nfailovers={reader.failovers}  recoveries={reader.recoveries}  "
          f"proxied={reader.proxied_bytes / 1e6:.1f} MB")
    print("\ninjected events:")
    for t, what in inj.events:
        print(f"  t={t:7.3f}s  {what}")
    print("\nRPC trace (note the retries and errors the fault layer absorbed):")
    print(tracer.summary())

    assert degraded < healthy, "the dead server should cost throughput"
    assert recovered > degraded, "direct access should come back"
    assert reader.failovers >= 1 and reader.recoveries >= 1


if __name__ == "__main__":
    main()
