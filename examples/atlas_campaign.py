#!/usr/bin/env python3
"""ATLAS digitization campaign: Direct-pNFS vs native PVFS2.

The motivating scenario of the paper's §6.3.1: high-energy-physics
detector simulation writes ~650 MB per 500-event run, dominated by
small requests by count and by large requests by volume.  This example
replays the digitization write trace on both architectures with 1, 4,
and 8 concurrent clients and reports aggregate throughput — showing
how Direct-pNFS's NFSv4.1 write-back cache absorbs the small-request
mix that hurts the native parallel file system client.

Run:  python examples/atlas_campaign.py  [scale]
      (scale defaults to 0.1 -> ~65 MB per client; 1.0 is the paper's
      full 650 MB)
"""

import sys

from repro.bench.runner import run_cell
from repro.workloads import AtlasWorkload


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.1
    print(f"ATLAS digitization replay (scale={scale})")
    print(f"{'clients':>8} {'direct-pnfs':>14} {'pvfs2':>14} {'speedup':>9}")
    for n in (1, 4, 8):
        row = {}
        for arch in ("direct-pnfs", "pvfs2"):
            result = run_cell(arch, AtlasWorkload(scale=scale), n_clients=n)
            row[arch] = result.aggregate_mbps
        print(
            f"{n:>8} {row['direct-pnfs']:>11.1f} MB/s {row['pvfs2']:>9.1f} MB/s "
            f"{row['direct-pnfs'] / row['pvfs2']:>8.2f}x"
        )
    print("\npaper (Fig 8a): direct-pnfs reaches 102.5 MB/s at 8 clients, ~2x PVFS2;")
    print("small requests cost Direct-pNFS ~14% off its peak but PVFS2 ~59%.")


if __name__ == "__main__":
    main()
