"""Parallel experiment engine: cache, determinism, reporting, wiring.

The heavyweight speedup/scale gates live in
``benchmarks/test_engine_perf.py``; these tier-1 tests pin the
*semantics* — content-addressed keys, parallel-equals-serial results,
cache round-trips, clean stdout — on batches small enough for the unit
suite.
"""

import io
import json
import pickle

from repro.parallel import (
    EngineReport,
    ProgressReporter,
    ResultCache,
    describe,
    figure_cell_spec,
    run_job,
    run_jobs,
    spec_key,
    torture_spec,
)


class TestCacheKeys:
    def test_key_is_stable_and_order_insensitive(self):
        a = {"kind": "torture", "seed": 3, "arch": "nfsv4", "buggy_writeback": False}
        b = {"buggy_writeback": False, "arch": "nfsv4", "seed": 3, "kind": "torture"}
        assert spec_key(a, "fp") == spec_key(b, "fp")

    def test_key_depends_on_every_spec_field_and_code(self):
        base = torture_spec(3, "nfsv4")
        assert spec_key(base, "fp") != spec_key(torture_spec(4, "nfsv4"), "fp")
        assert spec_key(base, "fp") != spec_key(torture_spec(3, "pvfs2"), "fp")
        assert spec_key(base, "fp") != spec_key(base, "other-code")

    def test_code_fingerprint_covers_the_package(self):
        from repro.parallel.cache import code_fingerprint

        fp = code_fingerprint()
        assert len(fp) == 64
        assert code_fingerprint() == fp  # cached, stable in-process


class TestResultCache:
    def test_roundtrip_and_hit_counters(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.key_for({"kind": "x", "n": 1})
        assert cache.get(key) is None
        assert cache.misses == 1
        cache.put(key, {"value": 42})
        assert cache.get(key) == {"value": 42}
        assert cache.hits == 1

    def test_corrupt_entry_degrades_to_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.key_for({"kind": "x"})
        cache.put(key, [1, 2, 3])
        cache._path(key).write_bytes(b"not a pickle")
        assert cache.get(key) is None

    def test_unpicklable_value_is_not_stored(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.key_for({"kind": "x"})
        cache.put(key, lambda: None)  # silently skipped
        assert cache.get(key) is None


class TestEngine:
    SPECS = [torture_spec(seed, "direct-pnfs") for seed in (0, 1, 2)]

    def test_parallel_results_identical_to_serial(self):
        serial, _ = run_jobs(self.SPECS, jobs=1)
        parallel, report = run_jobs(self.SPECS, jobs=2)
        assert [r.trace_hash for r in serial] == [r.trace_hash for r in parallel]
        assert report.jobs == len(self.SPECS)
        assert report.workers == 2

    def test_results_come_back_in_input_order(self):
        results, _ = run_jobs(self.SPECS, jobs=2)
        assert [r.seed for r in results] == [0, 1, 2]

    def test_cache_short_circuits_second_run(self, tmp_path):
        cache = ResultCache(tmp_path)
        cold, cold_report = run_jobs(self.SPECS[:2], cache=cache)
        assert cold_report.cache_hits == 0
        warm, warm_report = run_jobs(self.SPECS[:2], cache=ResultCache(tmp_path))
        assert warm_report.cache_hits == 2
        assert warm_report.job_seconds == 0.0
        assert [r.trace_hash for r in cold] == [r.trace_hash for r in warm]

    def test_episode_results_survive_pickling(self):
        result = run_job(self.SPECS[0])
        clone = pickle.loads(pickle.dumps(result))
        assert clone.trace_hash == result.trace_hash
        assert clone.violations == result.violations

    def test_progress_called_per_job(self):
        seen = []
        run_jobs(
            self.SPECS[:2],
            progress=lambda spec, res, wall, cached: seen.append(
                (describe(spec), cached)
            ),
        )
        assert seen == [
            ("torture seed 0 / direct-pnfs", False),
            ("torture seed 1 / direct-pnfs", False),
        ]

    def test_unknown_kind_rejected(self):
        try:
            run_job({"kind": "nope"})
        except ValueError as exc:
            assert "nope" in str(exc)
        else:
            raise AssertionError("unknown kind accepted")


class TestEngineReport:
    def test_to_metrics_exports_counters(self):
        from repro.obs import MetricsRegistry

        report = EngineReport(workers=4, jobs=10, cache_hits=3)
        report.job_seconds = 8.0
        report.wall_seconds = 2.0
        registry = MetricsRegistry()
        report.to_metrics(registry)
        counters = registry.collect()
        assert counters["parallel.jobs"] == 10
        assert counters["parallel.cache_hits"] == 3
        assert report.speedup == 4.0

    def test_as_dict_round_trips_through_json(self):
        report = EngineReport(workers=2, jobs=1)
        assert json.loads(json.dumps(report.as_dict()))["workers"] == 2


class TestExperimentWiring:
    KW = dict(scale=0.02, client_counts=[1], systems=["nfsv4"])

    def test_run_experiment_parallel_equals_serial(self):
        from repro.bench.experiments import run_experiment
        from repro.bench.report import canonical_json, experiment_report

        serial = run_experiment("fig6d", **self.KW)
        parallel = run_experiment("fig6d", jobs=2, **self.KW)
        assert canonical_json(experiment_report(serial)) == canonical_json(
            experiment_report(parallel)
        )
        assert parallel.parallel["workers"] >= 1
        assert parallel.parallel["jobs"] == 1

    def test_figure_cell_spec_runs_and_matches_run_cell(self):
        from repro.bench.experiments import EXPERIMENTS
        from repro.bench.runner import run_cell

        spec = figure_cell_spec("fig6d", "nfsv4", 1, 0.02)
        via_engine = run_job(spec)
        exp = EXPERIMENTS["fig6d"]
        direct = run_cell(
            "nfsv4", exp.workload(0.02 * exp.scale_factor), 1, net_bw=exp.net_bw
        )
        assert via_engine.makespan == direct.makespan
        assert via_engine.total_bytes == direct.total_bytes

    def test_sweep_jobs_matches_serial(self):
        from repro.check.runner import sweep

        serial = sweep(["nfsv4"], seeds=2)
        parallel = sweep(["nfsv4"], seeds=2, jobs=2)
        assert [r.trace_hash for r in serial] == [r.trace_hash for r in parallel]


class TestReporter:
    def test_progress_goes_to_given_stream_only(self, capsys):
        stream = io.StringIO()
        rep = ProgressReporter(2, label="cells", stream=stream)
        rep.update("cell-a", 0.5)
        rep.update("cell-b", cached=True)
        rep.note("FAIL something")
        rep.close()
        text = stream.getvalue()
        assert "[1/2] cell-a" in text
        assert "cached" in text
        assert "FAIL something" in text
        assert "2/2 cells" in text and "1 cached" in text
        assert capsys.readouterr().out == ""  # stdout untouched


class TestCliJson:
    def test_run_json_dash_keeps_stdout_machine_readable(self, capsys):
        from repro.cli import main

        rc = main(
            [
                "run", "fig8b", "--scale", "0.02", "--clients", "1",
                "--jobs", "2", "--json", "-",
            ]
        )
        captured = capsys.readouterr()
        report = json.loads(captured.out)  # stdout is one JSON document
        assert report["experiment"] == "fig8b"
        assert report["result_hash"]
        assert report["timing"]["workers"] >= 1
        assert "[" in captured.err  # progress lines went to stderr
        assert rc in (0, 1)

    def test_profile_verb_reports_hot_functions(self, capsys):
        from repro.cli import main

        rc = main(
            [
                "profile", "nfsv4", "ior-write", "--clients", "1",
                "--scale", "0.02", "--top", "5", "--json", "-",
            ]
        )
        assert rc == 0
        captured = capsys.readouterr()
        report = json.loads(captured.out)
        assert report["top"], "no profile rows"
        assert any("run_cell" in row["function"] for row in report["top"])
        assert "cumulative" in captured.err or "makespan" in captured.err
