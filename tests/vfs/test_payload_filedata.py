"""Tests for Payload and FileData."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.vfs import FileData, Payload


class TestPayload:
    def test_real_payload_roundtrip(self):
        p = Payload(b"hello")
        assert len(p) == 5
        assert not p.is_synthetic
        assert p.data == b"hello"

    def test_synthetic_payload(self):
        p = Payload.synthetic(1000)
        assert len(p) == 1000
        assert p.is_synthetic
        assert p.data is None

    def test_negative_synthetic_rejected(self):
        with pytest.raises(ValueError):
            Payload.synthetic(-1)

    def test_slice_real(self):
        p = Payload(b"abcdef")
        assert p.slice(1, 3).data == b"bcd"

    def test_slice_clamps_to_bounds(self):
        p = Payload(b"abc")
        assert p.slice(2, 100).data == b"c"
        assert p.slice(10, 5).nbytes == 0

    def test_slice_synthetic(self):
        p = Payload.synthetic(100)
        s = p.slice(90, 50)
        assert s.is_synthetic and s.nbytes == 10

    def test_concat_real(self):
        assert Payload.concat([Payload(b"ab"), Payload(b"cd")]).data == b"abcd"

    def test_concat_mixed_becomes_synthetic(self):
        out = Payload.concat([Payload(b"ab"), Payload.synthetic(3)])
        assert out.is_synthetic and out.nbytes == 5

    def test_equality(self):
        assert Payload(b"x") == Payload(b"x")
        assert Payload(b"x") != Payload(b"y")
        assert Payload.synthetic(5) == Payload.synthetic(5)
        assert Payload.synthetic(5) != Payload(b"12345")

    def test_accepts_bytearray_and_memoryview(self):
        assert Payload(bytearray(b"ab")).data == b"ab"
        assert Payload(memoryview(b"ab")).data == b"ab"


class TestFileData:
    def test_write_read_roundtrip(self):
        fd = FileData()
        fd.write(0, Payload(b"hello world"))
        assert fd.read(0, 11).data == b"hello world"
        assert fd.size == 11

    def test_sparse_hole_reads_zero(self):
        fd = FileData()
        fd.write(10, Payload(b"xy"))
        assert fd.read(0, 12).data == b"\x00" * 10 + b"xy"

    def test_read_truncated_at_eof(self):
        fd = FileData()
        fd.write(0, Payload(b"abc"))
        assert fd.read(1, 100).data == b"bc"
        assert fd.read(5, 10).nbytes == 0

    def test_overwrite(self):
        fd = FileData()
        fd.write(0, Payload(b"aaaa"))
        fd.write(1, Payload(b"bb"))
        assert fd.read(0, 4).data == b"abba"

    def test_synthetic_write_degrades_to_size_only(self):
        fd = FileData()
        fd.write(0, Payload(b"real"))
        fd.write(100, Payload.synthetic(50))
        assert fd.size == 150
        out = fd.read(0, 150)
        assert out.is_synthetic and out.nbytes == 150

    def test_cap_degrades_to_size_only(self):
        fd = FileData(cap=100)
        fd.write(0, Payload(b"x" * 200))
        assert fd.size == 200
        assert fd.read(0, 10).is_synthetic

    def test_truncate_shrinks(self):
        fd = FileData()
        fd.write(0, Payload(b"abcdef"))
        fd.truncate(3)
        assert fd.size == 3
        assert fd.read(0, 10).data == b"abc"

    def test_truncate_grows_sparse(self):
        fd = FileData()
        fd.write(0, Payload(b"ab"))
        fd.truncate(5)
        assert fd.read(0, 5).data == b"ab\x00\x00\x00"

    def test_invalid_args(self):
        fd = FileData()
        with pytest.raises(ValueError):
            fd.write(-1, Payload(b"x"))
        with pytest.raises(ValueError):
            fd.read(-1, 1)
        with pytest.raises(ValueError):
            fd.truncate(-1)

    @given(
        writes=st.lists(
            st.tuples(st.integers(0, 200), st.binary(min_size=0, max_size=64)),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_property_matches_reference_bytearray(self, writes):
        """FileData agrees with a plain bytearray reference model."""
        fd = FileData()
        ref = bytearray()
        for offset, data in writes:
            fd.write(offset, Payload(data))
            end = offset + len(data)
            if len(ref) < end:
                ref.extend(b"\x00" * (end - len(ref)))
            ref[offset:end] = data
        assert fd.size == len(ref)
        assert fd.read(0, len(ref)).data == bytes(ref)
        # Random window
        assert fd.read(7, 31).data == bytes(ref[7 : 7 + 31])
