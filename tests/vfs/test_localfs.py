"""Tests for the in-memory reference file system."""

import pytest

from repro.sim import Simulator
from repro.vfs import IsDirectory, NoEntry, Payload
from repro.vfs.localfs import LocalClient, LocalFileSystem

from tests.conftest import drive


@pytest.fixture
def fs():
    sim = Simulator()
    shared = LocalFileSystem()
    return sim, shared, LocalClient(sim, shared)


class TestLocalFs:
    def test_roundtrip(self, fs):
        sim, _shared, client = fs

        def scenario():
            yield from client.mount()
            f = yield from client.create("/a")
            yield from client.write(f, 0, Payload(b"xyz"))
            return (yield from client.read(f, 0, 10))

        assert drive(sim, scenario()).data == b"xyz"

    def test_two_clients_share_state(self, fs):
        sim, shared, c0 = fs
        c1 = LocalClient(sim, shared)

        def scenario():
            f = yield from c0.create("/s")
            yield from c0.write(f, 0, Payload(b"shared"))
            g = yield from c1.open("/s")
            return (yield from c1.read(g, 0, 6))

        assert drive(sim, scenario()).data == b"shared"

    def test_open_by_handle(self, fs):
        sim, _shared, client = fs

        def scenario():
            f = yield from client.create("/h")
            yield from client.write(f, 0, Payload(b"by-handle"))
            g = yield from client.open_by_handle(f.handle)
            return g.path, (yield from client.read(g, 0, 9))

        path, data = drive(sim, scenario())
        assert path == "/h"
        assert data.data == b"by-handle"

    def test_getattr_and_size_hint(self, fs):
        sim, shared, client = fs

        def scenario():
            f = yield from client.create("/g")
            yield from client.write(f, 0, Payload(b"12345"))
            a1 = yield from client.getattr("/g")
            yield from client.size_hint(f.handle, 100)
            a2 = yield from client.getattr_handle(f.handle)
            return f, a1, a2

        f, a1, a2 = drive(sim, scenario())
        assert a1.size == 5
        # content remains authoritative for getattr…
        assert a2.size == 5
        # …but the hint recorded the (possibly larger) size metadata.
        assert shared.namespace.by_handle(f.handle).attrs.size == 100

    def test_dir_operations(self, fs):
        sim, _shared, client = fs

        def scenario():
            yield from client.mkdir("/d")
            yield from client.create("/d/f")
            names = yield from client.readdir("/d")
            yield from client.rename("/d/f", "/d/g")
            names2 = yield from client.readdir("/d")
            yield from client.remove("/d/g")
            names3 = yield from client.readdir("/d")
            return names, names2, names3

        assert drive(sim, scenario()) == (["f"], ["g"], [])

    def test_open_dir_rejected(self, fs):
        sim, _shared, client = fs

        def scenario():
            yield from client.mkdir("/d")
            try:
                yield from client.open("/d")
            except IsDirectory:
                return "isdir"

        assert drive(sim, scenario()) == "isdir"

    def test_truncate_and_setattr(self, fs):
        sim, _shared, client = fs

        def scenario():
            f = yield from client.create("/t")
            yield from client.write(f, 0, Payload(b"123456"))
            yield from client.truncate("/t", 2)
            attrs = yield from client.setattr("/t", mode=0o600)
            data = yield from client.read(f, 0, 10)
            return attrs, data

        attrs, data = drive(sim, scenario())
        assert attrs.mode == 0o600
        assert data.data == b"12"

    def test_op_delay_advances_clock(self):
        sim = Simulator()
        client = LocalClient(sim, LocalFileSystem(), op_delay=0.5)

        def scenario():
            yield from client.mount()
            yield from client.create("/x")
            return sim.now

        assert drive(sim, scenario()) == pytest.approx(1.0)

    def test_missing_path_raises(self, fs):
        sim, _shared, client = fs

        def scenario():
            try:
                yield from client.open("/ghost")
            except NoEntry:
                return "noent"

        assert drive(sim, scenario()) == "noent"
