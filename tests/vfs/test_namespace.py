"""Tests for the server-side namespace tree."""

import pytest

from repro.vfs import Exists, Namespace, NoEntry, NotDirectory
from repro.vfs.api import split_path


class TestSplitPath:
    def test_root(self):
        assert split_path("/") == []

    def test_components(self):
        assert split_path("/a/b/c") == ["a", "b", "c"]

    def test_relative_rejected(self):
        with pytest.raises(ValueError):
            split_path("a/b")

    def test_dots_rejected(self):
        with pytest.raises(ValueError):
            split_path("/a/../b")


class TestNamespace:
    def test_create_and_resolve_file(self):
        ns = Namespace()
        entry = ns.create("/f")
        assert ns.resolve("/f") is entry
        assert not entry.is_dir

    def test_create_nested(self):
        ns = Namespace()
        ns.create("/d", is_dir=True)
        ns.create("/d/e", is_dir=True)
        f = ns.create("/d/e/file")
        assert ns.resolve("/d/e/file") is f
        assert ns.path_of(f) == "/d/e/file"

    def test_create_without_parent_fails(self):
        ns = Namespace()
        with pytest.raises(NoEntry):
            ns.create("/missing/file")

    def test_duplicate_create_fails(self):
        ns = Namespace()
        ns.create("/f")
        with pytest.raises(Exists):
            ns.create("/f")

    def test_file_component_in_path_fails(self):
        ns = Namespace()
        ns.create("/f")
        with pytest.raises(NotDirectory):
            ns.resolve("/f/child")

    def test_handles_unique_and_resolvable(self):
        ns = Namespace()
        a = ns.create("/a")
        b = ns.create("/b")
        assert a.handle != b.handle
        assert ns.by_handle(a.handle) is a
        assert ns.by_handle(b.handle) is b

    def test_stale_handle_raises(self):
        ns = Namespace()
        a = ns.create("/a")
        ns.remove("/a")
        with pytest.raises(NoEntry):
            ns.by_handle(a.handle)

    def test_remove_nonempty_dir_fails(self):
        ns = Namespace()
        ns.create("/d", is_dir=True)
        ns.create("/d/f")
        with pytest.raises(Exists):
            ns.remove("/d")

    def test_remove_empty_dir(self):
        ns = Namespace()
        ns.create("/d", is_dir=True)
        ns.remove("/d")
        with pytest.raises(NoEntry):
            ns.resolve("/d")

    def test_listdir_sorted(self):
        ns = Namespace()
        for name in ("zeta", "alpha", "mid"):
            ns.create(f"/{name}")
        assert ns.listdir("/") == ["alpha", "mid", "zeta"]

    def test_listdir_on_file_fails(self):
        ns = Namespace()
        ns.create("/f")
        with pytest.raises(NotDirectory):
            ns.listdir("/f")

    def test_rename_moves_entry(self):
        ns = Namespace()
        ns.create("/d", is_dir=True)
        f = ns.create("/f")
        ns.rename("/f", "/d/g")
        assert ns.resolve("/d/g") is f
        assert ns.path_of(f) == "/d/g"
        with pytest.raises(NoEntry):
            ns.resolve("/f")

    def test_rename_replaces_file_target(self):
        ns = Namespace()
        src = ns.create("/src")
        tgt = ns.create("/tgt")
        ns.rename("/src", "/tgt")
        assert ns.resolve("/tgt") is src
        with pytest.raises(NoEntry):
            ns.by_handle(tgt.handle)

    def test_rename_onto_directory_fails(self):
        ns = Namespace()
        ns.create("/src")
        ns.create("/d", is_dir=True)
        with pytest.raises(Exists):
            ns.rename("/src", "/d")

    def test_mtime_updates_on_mutation(self):
        ns = Namespace()
        ns.create("/f", now=5.0)
        assert ns.root.attrs.mtime == 5.0
        assert ns.resolve("/f").attrs.ctime == 5.0
