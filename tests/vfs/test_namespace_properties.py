"""Property tests for the server-side namespace (repro.vfs.namespace).

A seeded op fuzzer drives :class:`Namespace` against a naive
path-set reference model; any divergence is minimised with
:func:`repro.check.shrink_list` before being reported.  Targeted
cases pin the rename/remove edge semantics the torture harness
leans on: rename into one's own descendant (EINVAL), rename over an
existing file (target dies) or directory (EEXIST), rename onto
itself (no-op), handle staleness after remove, handle stability and
``path_of`` after rename.
"""

import numpy as np
import pytest

from repro.check import shrink_list
from repro.vfs.api import Exists, FsError, InvalidArgument, NoEntry
from repro.vfs.namespace import FsErrorNotEmpty, Namespace


# ---------------------------------------------------------------------------
# Targeted edge cases
# ---------------------------------------------------------------------------


class TestRenameEdges:
    def test_rename_dir_into_own_descendant_is_einval(self):
        ns = Namespace()
        ns.create("/a", is_dir=True)
        ns.create("/a/b", is_dir=True)
        with pytest.raises(InvalidArgument):
            ns.rename("/a", "/a/b/a2")
        # The tree is untouched: both directories still resolve.
        assert ns.listdir("/a") == ["b"]
        assert ns.listdir("/a/b") == []

    def test_rename_dir_onto_itself_via_descendant_parent(self):
        ns = Namespace()
        ns.create("/d", is_dir=True)
        with pytest.raises(InvalidArgument):
            ns.rename("/d", "/d/sub")

    def test_rename_over_existing_file_replaces_it(self):
        ns = Namespace()
        src = ns.create("/src")
        victim = ns.create("/victim")
        moved = ns.rename("/src", "/victim")
        assert moved is src
        assert ns.resolve("/victim") is src
        with pytest.raises(NoEntry):
            ns.resolve("/src")
        # The replaced file's handle is stale, the mover's survives.
        with pytest.raises(NoEntry):
            ns.by_handle(victim.handle)
        assert ns.by_handle(src.handle) is src

    def test_rename_over_existing_dir_is_eexist(self):
        ns = Namespace()
        ns.create("/f")
        ns.create("/d", is_dir=True)
        with pytest.raises(Exists):
            ns.rename("/f", "/d")
        assert ns.resolve("/f") is not None

    def test_rename_dir_over_file_is_enotdir(self):
        # Found by the fuzzer below: the old code silently unlinked the
        # file target when a *directory* was renamed over it.
        from repro.vfs.api import NotDirectory

        ns = Namespace()
        ns.create("/d", is_dir=True)
        f = ns.create("/f")
        with pytest.raises(NotDirectory):
            ns.rename("/d", "/f")
        assert ns.resolve("/f") is f
        assert ns.listdir("/d") == []

    def test_rename_onto_itself_is_noop(self):
        ns = Namespace()
        e = ns.create("/same")
        assert ns.rename("/same", "/same") is e
        assert ns.resolve("/same") is e
        assert ns.by_handle(e.handle) is e  # not dropped from the handle map

    def test_path_of_follows_rename(self):
        ns = Namespace()
        ns.create("/d1", is_dir=True)
        ns.create("/d2", is_dir=True)
        f = ns.create("/d1/f")
        assert ns.path_of(f) == "/d1/f"
        ns.rename("/d1/f", "/d2/g")
        assert ns.path_of(f) == "/d2/g"

    def test_path_of_inside_renamed_dir(self):
        ns = Namespace()
        ns.create("/old", is_dir=True)
        leaf = ns.create("/old/leaf")
        ns.rename("/old", "/new")
        assert ns.path_of(leaf) == "/new/leaf"
        assert ns.resolve("/new/leaf") is leaf
        with pytest.raises(NoEntry):
            ns.resolve("/old/leaf")


class TestRemoveEdges:
    def test_remove_invalidates_handle(self):
        ns = Namespace()
        f = ns.create("/gone")
        ns.remove("/gone")
        with pytest.raises(NoEntry):
            ns.by_handle(f.handle)

    def test_recreate_never_reuses_the_dead_handle(self):
        ns = Namespace()
        first = ns.create("/cycle")
        ns.remove("/cycle")
        second = ns.create("/cycle")
        assert second.handle != first.handle
        assert second.handle > first.handle  # monotonic allocation

    def test_remove_nonempty_dir_refused(self):
        ns = Namespace()
        ns.create("/d", is_dir=True)
        ns.create("/d/child")
        with pytest.raises(FsErrorNotEmpty):
            ns.remove("/d")
        ns.remove("/d/child")
        ns.remove("/d")  # empty now: fine
        with pytest.raises(NoEntry):
            ns.resolve("/d")


# ---------------------------------------------------------------------------
# Seeded fuzz against a naive reference model
# ---------------------------------------------------------------------------

_NAMES = ["a", "b", "c", "d"]


def _paths():
    out = []
    for n in _NAMES:
        out.append(f"/{n}")
        for m in _NAMES:
            out.append(f"/{n}/{m}")
    return out


class _RefModel:
    """Path-set semantics of a POSIX-ish namespace (no handles)."""

    def __init__(self):
        self.dirs = {"/"}
        self.files = set()

    def _parent(self, path):
        return path.rsplit("/", 1)[0] or "/"

    def _children(self, path):
        prefix = path.rstrip("/") + "/"
        return {p for p in (self.dirs | self.files) if p.startswith(prefix)}

    def create(self, path, is_dir):
        if self._parent(path) not in self.dirs:
            raise FsError(path)
        if path in self.dirs or path in self.files:
            raise Exists(path)
        (self.dirs if is_dir else self.files).add(path)

    def remove(self, path):
        if path in self.dirs:
            if self._children(path):
                raise FsErrorNotEmpty(path)
            self.dirs.discard(path)
        elif path in self.files:
            self.files.discard(path)
        else:
            raise NoEntry(path)

    def rename(self, old, new):
        if old not in self.dirs and old not in self.files:
            raise NoEntry(old)
        if new == old:
            return
        if old in self.dirs and (new + "/").startswith(old + "/"):
            raise InvalidArgument(new)
        if self._parent(new) not in self.dirs:
            raise FsError(new)
        if new in self.dirs:
            raise Exists(new)
        if old in self.files:
            self.files.discard(old)
            self.files.discard(new)
            self.files.add(new)
            return
        if new in self.files:
            raise FsError(new)  # dir over file: implementation-defined refusal
        moved = self._children(old)
        self.dirs.discard(old)
        self.dirs.add(new)
        for p in moved:
            tail = p[len(old):]
            tgt = new + tail
            if p in self.dirs:
                self.dirs.discard(p)
                self.dirs.add(tgt)
            else:
                self.files.discard(p)
                self.files.add(tgt)

    def listdir(self, path):
        if path not in self.dirs:
            raise NoEntry(path)
        prefix = path.rstrip("/") + "/"
        return sorted(
            p[len(prefix):]
            for p in (self.dirs | self.files)
            if p != path and p.startswith(prefix) and "/" not in p[len(prefix):]
        )


def _gen_ops(seed, count=60):
    rng = np.random.default_rng(seed)
    paths = _paths()
    ops = []
    for _ in range(count):
        kind = str(rng.choice(["create", "mkdir", "remove", "rename", "list"]))
        p = paths[int(rng.integers(len(paths)))]
        q = paths[int(rng.integers(len(paths)))]
        ops.append((kind, p, q))
    return ops


def _divergence(ops):
    """First op index where Namespace and the reference model disagree,
    or None if they agree throughout."""
    ns = Namespace()
    ref = _RefModel()
    for i, (kind, p, q) in enumerate(ops):
        for impl, m in ((ns, "ns"), (ref, "ref")):
            try:
                if kind == "create":
                    impl.create(p) if m == "ns" else impl.create(p, False)
                elif kind == "mkdir":
                    impl.create(p, is_dir=True) if m == "ns" else impl.create(p, True)
                elif kind == "remove":
                    impl.remove(p)
                elif kind == "rename":
                    impl.rename(p, q)
                else:
                    impl.listdir(p)
                outcome = "ok"
            except FsError:
                outcome = "err"
            if m == "ns":
                ns_outcome = outcome
            else:
                if (outcome == "ok") != (ns_outcome == "ok"):
                    return i
        # Structural agreement on every extant directory.
        for d in sorted(ref.dirs):
            if ns.listdir(d) != ref.listdir(d):
                return i
    return None


class TestFuzzAgainstModel:
    @pytest.mark.parametrize("seed", range(25))
    def test_agrees_with_reference_model(self, seed):
        ops = _gen_ops(seed)
        bad = _divergence(ops)
        if bad is not None:
            minimal = shrink_list(
                ops[: bad + 1], lambda sub: _divergence(sub) is not None
            )
            pytest.fail(f"namespace diverges from model on: {minimal}")

    def test_handles_stay_unique_and_monotonic(self):
        rng = np.random.default_rng(7)
        ns = Namespace()
        seen = set()
        last = 1
        paths = _paths()
        for _ in range(200):
            p = paths[int(rng.integers(len(paths)))]
            try:
                if rng.random() < 0.55:
                    e = ns.create(p, is_dir=bool(rng.random() < 0.3))
                    assert e.handle not in seen
                    assert e.handle > last
                    seen.add(e.handle)
                    last = e.handle
                else:
                    ns.remove(p)
            except FsError:
                pass
