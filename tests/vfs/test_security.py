"""Access-control tests: credentials, mode bits, NFSv4-style ACEs."""

import pytest

from repro.vfs import AccessDenied, FileAttributes, Payload
from repro.vfs.security import ACE, EXECUTE, READ, WRITE, Credential, check_access


def attrs(mode=0o644, owner="alice", acl=()):
    return FileAttributes(mode=mode, owner=owner, acl=tuple(acl))


class TestModeBits:
    def test_owner_class_applies_to_owner(self):
        check_access(attrs(0o600), Credential("alice"), READ | WRITE)

    def test_other_class_applies_to_strangers(self):
        check_access(attrs(0o604), Credential("bob"), READ)
        with pytest.raises(AccessDenied):
            check_access(attrs(0o604), Credential("bob"), WRITE)

    def test_owner_restricted_by_owner_class(self):
        with pytest.raises(AccessDenied):
            check_access(attrs(0o400), Credential("alice"), WRITE)

    def test_root_bypasses_everything(self):
        check_access(attrs(0o000), Credential("root"), READ | WRITE | EXECUTE)

    def test_invalid_want_rejected(self):
        with pytest.raises(ValueError):
            check_access(attrs(), Credential("alice"), 0)
        with pytest.raises(ValueError):
            check_access(attrs(), Credential("alice"), 8)


class TestAces:
    def test_allow_ace_grants_beyond_mode(self):
        a = attrs(0o600, acl=[ACE("bob", allow=True, mask=READ)])
        check_access(a, Credential("bob"), READ)

    def test_deny_ace_overrides_mode(self):
        a = attrs(0o644, acl=[ACE("bob", allow=False, mask=READ)])
        with pytest.raises(AccessDenied):
            check_access(a, Credential("bob"), READ)

    def test_first_matching_ace_wins(self):
        a = attrs(
            0o000,
            acl=[
                ACE("bob", allow=True, mask=READ),
                ACE("bob", allow=False, mask=READ),
            ],
        )
        check_access(a, Credential("bob"), READ)

    def test_group_ace(self):
        a = attrs(0o600, acl=[ACE("group:physics", allow=True, mask=READ | WRITE)])
        check_access(a, Credential("carol", groups=("physics",)), READ | WRITE)
        with pytest.raises(AccessDenied):
            check_access(a, Credential("dave"), READ)

    def test_everyone_ace(self):
        a = attrs(0o000, acl=[ACE("EVERYONE", allow=True, mask=READ)])
        check_access(a, Credential("anyone"), READ)

    def test_partial_ace_falls_back_to_mode(self):
        # ACE grants READ only; WRITE still decided by mode (owner class).
        a = attrs(0o200, owner="alice", acl=[ACE("alice", allow=True, mask=READ)])
        check_access(a, Credential("alice"), READ | WRITE)


class TestNfsIntegration:
    def test_open_denied_for_unauthorised_user(self, cluster):
        from repro.nfs import Nfs4Client, Nfs4Server, NfsConfig
        from repro.vfs.localfs import LocalClient, LocalFileSystem
        from tests.conftest import drive

        cfg = NfsConfig()
        backing = LocalFileSystem()
        server = Nfs4Server(
            cluster.sim, cluster.storage[0], LocalClient(cluster.sim, backing), cfg
        )
        owner = Nfs4Client(cluster.sim, cluster.clients[0], server, cfg)
        stranger = Nfs4Client(
            cluster.sim,
            cluster.clients[1],
            server,
            cfg,
            cred=Credential("mallory"),
        )

        def scenario():
            yield from owner.mount()
            yield from stranger.mount()
            f = yield from owner.create("/secret")
            yield from owner.write(f, 0, Payload(b"classified"))
            yield from owner.close(f)
            yield from owner.setattr("/secret", mode=0o600)
            try:
                yield from stranger.open("/secret")
            except AccessDenied:
                return "denied"

        assert drive(cluster.sim, scenario()) == "denied"
