"""Zero-copy read path: same observable behaviour as the copying one.

``FileData.read`` returns ``Payload``s borrowing ``memoryview``s of the
store's buffer; the store freezes outstanding views before any buffer
mutation.  These tests pin the snapshot semantics directly, and then
prove the equivalence end-to-end: a torture episode's sha256 trace hash
and a figure cell's measured outputs are identical whether reads
borrow views (current code) or copy every slice (the pre-PR behaviour,
reintroduced here by monkeypatching the read path).
"""

import pickle

import pytest

from repro.vfs.api import Payload
from repro.vfs.filedata import FileData


class TestSnapshotSemantics:
    def test_read_observes_bytes_as_of_the_read(self):
        fd = FileData()
        fd.write(0, Payload(b"aaaa"))
        snap = fd.read(0, 4)
        fd.write(0, Payload(b"bbbb"))  # freezes the outstanding view
        assert snap.data == b"aaaa"
        assert fd.read(0, 4).data == b"bbbb"

    def test_truncate_freezes_views(self):
        fd = FileData()
        fd.write(0, Payload(b"abcdef"))
        snap = fd.read(0, 6)
        fd.truncate(2)
        assert snap.data == b"abcdef"
        assert fd.read(0, 6).data == b"ab"

    def test_degradation_to_synthetic_keeps_snapshots(self):
        fd = FileData(cap=8)
        fd.write(0, Payload(b"12345678"))
        snap = fd.read(0, 8)
        fd.write(8, Payload(b"xx"))  # over cap: store goes size-only
        assert snap.data == b"12345678"
        assert fd.read(0, 4).is_synthetic

    def test_sliced_payload_shares_until_escape(self):
        p = Payload(b"hello world")
        s = p.slice(6, 5)
        assert s.nbytes == 5
        assert isinstance(s.raw, memoryview)  # no copy yet
        assert s.data == b"world"  # escape materialises
        assert isinstance(s.raw, bytes)

    def test_view_payloads_pickle_as_bytes(self):
        fd = FileData()
        fd.write(0, Payload(b"abcd"))
        p = fd.read(0, 4)
        clone = pickle.loads(pickle.dumps(p))
        assert clone.data == b"abcd"

    def test_equality_and_hash_across_kinds(self):
        fd = FileData()
        fd.write(0, Payload(b"abcd"))
        view = fd.read(0, 4)
        assert view == Payload(b"abcd")
        assert hash(view) == hash(Payload(b"abcd"))

    def test_many_reads_then_mutation_freezes_all(self):
        fd = FileData()
        fd.write(0, Payload(bytes(range(64))))
        snaps = [fd.read(i, 8) for i in range(0, 64, 8)]
        fd.write(0, Payload(b"\xff" * 64))
        for i, snap in enumerate(snaps):
            assert snap.data == bytes(range(i * 8, i * 8 + 8))


def _copying_read(orig):
    """The pre-PR behaviour: every exact read copies its slice."""

    def read_copying(self, offset, nbytes):
        p = orig(self, offset, nbytes)
        if p.is_synthetic:
            return p
        return Payload(p.data)  # force-materialise: the old copy

    return read_copying


class TestEndToEndEquivalence:
    SEED = 7

    def _episode_hash(self):
        from repro.check.program import generate
        from repro.check.runner import run_episode

        res = run_episode(generate(self.SEED), "direct-pnfs")
        assert res.ok, res.violations
        return res.trace_hash

    def _cell_outputs(self):
        from repro.bench.runner import run_cell
        from repro.workloads import IorWorkload

        res = run_cell(
            "direct-pnfs",
            IorWorkload(op="write", block_size=8192, scale=0.02),
            2,
        )
        return (res.makespan, res.total_bytes, res.aggregate_mbps)

    def test_torture_trace_hash_unchanged(self, monkeypatch):
        zero_copy = self._episode_hash()
        with monkeypatch.context() as m:
            m.setattr(FileData, "read", _copying_read(FileData.read))
            copying = self._episode_hash()
        assert zero_copy == copying

    def test_figure_cell_outputs_unchanged(self, monkeypatch):
        zero_copy = self._cell_outputs()
        with monkeypatch.context() as m:
            m.setattr(FileData, "read", _copying_read(FileData.read))
            copying = self._cell_outputs()
        assert zero_copy == copying
