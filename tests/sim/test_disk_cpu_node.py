"""Tests for disk, CPU, node, and stats models."""

import pytest

from repro.sim import (
    Cpu,
    CpuSpec,
    Disk,
    DiskSpec,
    Network,
    Node,
    NodeSpec,
    Simulator,
)
from repro.sim.resources import Resource
from repro.sim.stats import Counter, LatencyRecorder, ThroughputMeter


class TestDisk:
    def make(self, sim, **kw):
        spec = DiskSpec(
            read_bw=kw.pop("read_bw", 50e6),
            write_bw=kw.pop("write_bw", 25e6),
            positioning=kw.pop("positioning", 0.010),
        )
        return Disk(sim, spec, **kw)

    def test_sequential_write_rate(self):
        sim = Simulator()
        disk = self.make(sim, positioning=0.0)

        def io():
            yield from disk.io(0, 25_000_000, write=True)
            return sim.now

        p = sim.process(io())
        sim.run()
        assert p.value == pytest.approx(1.0, rel=0.01)

    def test_full_positioning_charged_on_long_jump(self):
        sim = Simulator()
        disk = self.make(sim)

        def io():
            yield from disk.io(0, 0, write=False)
            yield from disk.io(1_000_000_000, 0, write=False)  # far jump
            return sim.now

        p = sim.process(io())
        sim.run()
        assert p.value == pytest.approx(0.020, rel=0.01)

    def test_short_forward_sweep_is_cheap(self):
        sim = Simulator()
        disk = self.make(sim)

        def io():
            yield from disk.io(0, 1000, write=False)
            t_mid = sim.now
            yield from disk.io(51_000, 1000, write=False)  # 50 KB forward gap
            return sim.now - t_mid

        p = sim.process(io())
        sim.run()
        # settle + gap pass-over, far below the 10 ms full positioning
        expected = disk.spec.settle + 50_000 / 50e6 + 1000 / 50e6
        assert p.value == pytest.approx(expected, rel=0.02)

    def test_backward_jump_pays_full_positioning(self):
        sim = Simulator()
        disk = self.make(sim)

        def io():
            yield from disk.io(1_000_000, 1000, write=False)
            t_mid = sim.now
            yield from disk.io(0, 1000, write=False)  # rewind
            return sim.now - t_mid

        p = sim.process(io())
        sim.run()
        assert p.value == pytest.approx(0.010 + 1000 / 50e6, rel=0.02)

    def test_sequential_continuation_skips_positioning(self):
        sim = Simulator()
        disk = self.make(sim)

        def io():
            yield from disk.io(0, 1000, write=True)
            t_mid = sim.now
            yield from disk.io(1000, 1000, write=True)  # continues
            return t_mid, sim.now

        p = sim.process(io())
        sim.run()
        t_mid, t_end = p.value
        xfer = 1000 / 25e6
        assert t_mid == pytest.approx(0.010 + xfer, rel=0.01)
        assert t_end - t_mid == pytest.approx(xfer, rel=0.01)

    def test_arm_serialises_requests(self):
        sim = Simulator()
        disk = self.make(sim, positioning=0.0)
        ends = []

        def io(off):
            yield from disk.io(off, 25_000_000, write=True)
            ends.append(sim.now)

        sim.process(io(0))
        sim.process(io(10**9))
        sim.run()
        assert ends == [pytest.approx(1.0, rel=0.01), pytest.approx(2.0, rel=0.01)]

    def test_two_disks_share_io_bus_ceiling(self):
        """Two disks on a 30 MB/s bus deliver 30, not 2x25, MB/s."""
        sim = Simulator()
        bus = Resource(sim, 1)
        spec = DiskSpec(read_bw=50e6, write_bw=25e6, positioning=0.0)
        d0 = Disk(sim, spec, io_bus=bus, bus_bw=30e6)
        d1 = Disk(sim, spec, io_bus=bus, bus_bw=30e6)
        ends = []

        def io(disk):
            yield from disk.io(0, 30_000_000, write=True)
            ends.append(sim.now)

        sim.process(io(d0))
        sim.process(io(d1))
        sim.run()
        # 60 MB total through a 30 MB/s bus ≈ 2 s (each disk alone would take 1.2 s).
        assert max(ends) == pytest.approx(2.0, rel=0.05)

    def test_read_and_write_rates_differ(self):
        sim = Simulator()
        disk = self.make(sim, positioning=0.0)

        def io():
            yield from disk.io(0, 50_000_000, write=False)
            t_read = sim.now
            yield from disk.io(0, 50_000_000, write=True)
            return t_read, sim.now - t_read

        p = sim.process(io())
        sim.run()
        t_read, t_write = p.value
        assert t_read == pytest.approx(1.0, rel=0.02)
        assert t_write == pytest.approx(2.0, rel=0.02)

    def test_counters(self):
        sim = Simulator()
        disk = self.make(sim)

        def io():
            yield from disk.io(0, 1000, write=True)
            yield from disk.io(0, 500, write=False)

        sim.process(io())
        sim.run()
        assert disk.write_bytes == 1000
        assert disk.read_bytes == 500
        assert disk.requests == 2

    def test_invalid_args_rejected(self):
        sim = Simulator()
        disk = self.make(sim)
        with pytest.raises(ValueError):
            list(disk.io(-1, 10, write=True))
        with pytest.raises(ValueError):
            DiskSpec(read_bw=0)


class TestCpu:
    def test_work_scaled_by_speed(self):
        sim = Simulator()
        cpu = Cpu(sim, CpuSpec(cores=1, speed=2.0))

        def work():
            yield from cpu.consume(1.0)
            return sim.now

        p = sim.process(work())
        sim.run()
        assert p.value == pytest.approx(0.5)

    def test_cores_run_in_parallel(self):
        sim = Simulator()
        cpu = Cpu(sim, CpuSpec(cores=2, speed=1.0))
        ends = []

        def work():
            yield from cpu.consume(1.0)
            ends.append(sim.now)

        for _ in range(4):
            sim.process(work())
        sim.run()
        # 4 jobs, 2 cores: finish in two waves at t=1 and t=2.
        assert ends == [1.0, 1.0, 2.0, 2.0]

    def test_zero_work_is_free(self):
        sim = Simulator()
        cpu = Cpu(sim, CpuSpec(cores=1))

        def work():
            yield from cpu.consume(0.0)
            return sim.now

        p = sim.process(work())
        sim.run()
        assert p.value == 0.0

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError):
            CpuSpec(cores=0)
        with pytest.raises(ValueError):
            CpuSpec(speed=0)


class TestNode:
    def test_node_builds_all_components(self):
        sim = Simulator()
        net = Network(sim)
        spec = NodeSpec(name="s0", disks=(DiskSpec(), DiskSpec()))
        node = Node(sim, spec, net)
        assert node.cpu is not None
        assert len(node.disks) == 2
        assert net.nic("s0") is node.nic
        assert node.io_bus is not None

    def test_diskless_node_has_no_bus(self):
        sim = Simulator()
        net = Network(sim)
        node = Node(sim, NodeSpec(name="c0"), net)
        assert node.disks == []
        assert node.io_bus is None
        with pytest.raises(ValueError):
            _ = node.disk

    def test_send_between_nodes(self):
        sim = Simulator()
        net = Network(sim, latency=0, per_message_bytes=0)
        a = Node(sim, NodeSpec(name="a", nic_bw=10e6), net)
        b = Node(sim, NodeSpec(name="b", nic_bw=10e6), net)

        def xfer():
            yield from a.send(b, 10_000_000)
            return sim.now

        p = sim.process(xfer())
        sim.run()
        # one extra chunk-time of store-and-forward pipeline fill
        assert p.value == pytest.approx(1.0, rel=0.05)


class TestStats:
    def test_counter(self):
        c = Counter("ops")
        c.add()
        c.add(4)
        assert c.value == 5

    def test_throughput_meter_aggregate(self):
        m = ThroughputMeter()
        m.record(50_000_000, now=1.0)
        m.record(50_000_000, now=2.0)
        assert m.aggregate_mbps(0.0, 2.0) == pytest.approx(50.0)
        assert m.total_bytes == 100_000_000

    def test_throughput_meter_rejects_bad_window(self):
        m = ThroughputMeter()
        with pytest.raises(ValueError):
            m.aggregate_mbps(2.0, 1.0)  # end precedes start

    def test_throughput_meter_degenerate_windows(self):
        # An empty meter moved nothing: 0 MB/s whatever the window,
        # including the zero-width one (this used to raise and abort
        # report generation for idle components).
        m = ThroughputMeter()
        assert m.aggregate_mbps(2.0, 2.0) == 0.0
        assert m.aggregate_mbps(0.0, 5.0) == 0.0
        # Bytes moved in a zero-width window is an infinite rate, not
        # a crash — the caller decides how to render it.
        m.record(1_000_000, now=2.0)
        assert m.aggregate_mbps(2.0, 2.0) == float("inf")

    def test_latency_recorder_percentiles(self):
        r = LatencyRecorder()
        for v in [1, 2, 3, 4, 5, 6, 7, 8, 9, 10]:
            r.record(v)
        assert r.mean == 5.5
        assert r.percentile(50) == 5
        assert r.percentile(95) == 10
        assert r.percentile(100) == 10

    def test_latency_recorder_cached_sort_sees_new_samples(self):
        r = LatencyRecorder()
        r.record(5)
        assert r.percentile(50) == 5
        r.record(1)  # must invalidate the cached sort
        assert r.percentile(50) == 1
        assert r.percentile(0) == 1

    def test_nearest_rank_shared_between_stats_and_tracing(self):
        from repro.sim.stats import nearest_rank
        from repro.tracing import nearest_rank as tracing_nearest_rank

        assert tracing_nearest_rank is nearest_rank
        assert nearest_rank([1, 2, 3, 4], 0.5) == 2
        assert nearest_rank([1, 2, 3, 4], 1.0) == 4

    def test_latency_recorder_empty_errors(self):
        r = LatencyRecorder()
        with pytest.raises(ValueError):
            _ = r.mean
        with pytest.raises(ValueError):
            r.percentile(50)
