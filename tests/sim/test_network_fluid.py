"""Chunked-vs-fluid network model equivalence and fault interaction.

The fluid model is a fast path, not a different physics: for the
canonical contention patterns (1:1, N:1 incast, 1:N fan-out, staggered
arrivals) its completion times must agree with the chunked reference
oracle within a small tolerance, byte counters must be identical, and
both models must expose faults the same way (a dead NIC strands the
flow; only an RPC timeout notices).
"""

import pytest

from repro import rpc
from repro.sim import FaultInjector, Network, Simulator
from repro.sim.network import DEFAULT_FLUID_THRESHOLD
from repro.vfs import Payload

from tests.conftest import build_cluster, drive

MB = 1024 * 1024
GIGE = 117e6

#: Relative tolerance for completion-time agreement.  The models differ
#: only in chunk-boundary rounding and window fill/drain, both bounded
#: by a few chunk times (a chunk is ~2.2 ms at gigabit rates).
TOL = 0.02


def make_net(model, n_nics=10, bw=GIGE, seed=1234):
    sim = Simulator(seed=seed)
    net = Network(sim, latency=60e-6, model=model)
    for i in range(n_nics):
        net.add_nic(f"n{i}", bw)
    return sim, net


def run_pattern(model, flows, seed=1234):
    """Run ``flows`` = [(start, src, dst, nbytes)]; return completion times."""
    sim, net = make_net(model, seed=seed)
    done = {}

    def one(start, src, dst, nbytes, key):
        if start > 0:
            yield sim.timeout(start)
        yield from net.transfer(src, dst, nbytes)
        done[key] = sim.now

    for i, (start, src, dst, nbytes) in enumerate(flows):
        sim.process(one(start, src, dst, nbytes, i))
    sim.run()
    assert len(done) == len(flows)
    return done, net


class TestEquivalence:
    def test_one_to_one(self):
        flows = [(0.0, "n0", "n1", 100 * MB)]
        chunked, _ = run_pattern("chunked", flows)
        fluid, _ = run_pattern("fluid", flows)
        assert fluid[0] == pytest.approx(chunked[0], rel=TOL)

    def test_incast(self):
        flows = [(0.0, f"n{i + 1}", "n0", 20 * MB) for i in range(8)]
        chunked, _ = run_pattern("chunked", flows)
        fluid, _ = run_pattern("fluid", flows)
        assert max(fluid.values()) == pytest.approx(max(chunked.values()), rel=TOL)

    def test_fan_out(self):
        flows = [(0.0, "n0", f"n{i + 1}", 20 * MB) for i in range(8)]
        chunked, _ = run_pattern("chunked", flows)
        fluid, _ = run_pattern("fluid", flows)
        assert max(fluid.values()) == pytest.approx(max(chunked.values()), rel=TOL)

    def test_staggered_arrivals(self):
        # A long flow joined mid-way by two latecomers sharing its rx
        # pipe: rates must shift at each arrival/departure.
        flows = [
            (0.0, "n1", "n0", 60 * MB),
            (0.2, "n2", "n0", 20 * MB),
            (0.3, "n3", "n0", 20 * MB),
        ]
        chunked, _ = run_pattern("chunked", flows)
        fluid, _ = run_pattern("fluid", flows)
        for k in chunked:
            assert fluid[k] == pytest.approx(chunked[k], rel=TOL)

    def test_small_transfer_exact(self):
        # Sub-chunk: the fluid store-and-forward tail must reproduce
        # the chunked 2x serialization exactly, not just within TOL.
        flows = [(0.0, "n0", "n1", 8 * 1024)]
        chunked, _ = run_pattern("chunked", flows)
        fluid, _ = run_pattern("fluid", flows)
        assert fluid[0] == pytest.approx(chunked[0], rel=1e-9)

    def test_byte_counters_identical(self):
        flows = [
            (0.0, "n1", "n0", 10 * MB),
            (0.1, "n0", "n2", 5 * MB),
            (0.0, "n3", "n3", 3 * MB),  # loopback
        ]
        _, cnet = run_pattern("chunked", flows)
        _, fnet = run_pattern("fluid", flows)
        for name in ("n0", "n1", "n2", "n3"):
            cn, fn = cnet.nic(name), fnet.nic(name)
            assert (cn.tx_bytes, cn.rx_bytes, cn.loopback_bytes) == (
                fn.tx_bytes,
                fn.rx_bytes,
                fn.loopback_bytes,
            )
        # Payload-only invariant: framing never lands in the counters.
        assert cnet.nic("n1").tx_bytes == 10 * MB
        assert fnet.nic("n3").loopback_bytes == 3 * MB

    def test_fluid_determinism_across_runs(self):
        flows = [(0.01 * i, f"n{i + 1}", "n0", 15 * MB) for i in range(6)]
        a, _ = run_pattern("fluid", flows, seed=7)
        b, _ = run_pattern("fluid", flows, seed=7)
        assert a == b

    def test_seed_insensitivity_of_fluid_times(self):
        # The fluid schedule involves no random arbitration at all:
        # different seeds give bit-identical completion times.
        flows = [(0.0, f"n{i + 1}", "n0", 15 * MB) for i in range(4)]
        a, _ = run_pattern("fluid", flows, seed=1)
        b, _ = run_pattern("fluid", flows, seed=2)
        assert a == b


class TestModelKnob:
    def test_unknown_model_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Network(sim, model="quantum")

    def test_auto_routes_by_threshold(self):
        sim, net = make_net("auto")
        assert net.fluid_threshold == DEFAULT_FLUID_THRESHOLD

        def xfers():
            yield from net.transfer("n0", "n1", 8 * 1024)  # below
            yield from net.transfer("n0", "n1", 8 * MB)  # above

        drive(sim, xfers())
        assert net.flows_chunked == 1
        assert net.flows_fluid == 1

    def test_chunked_never_uses_solver(self):
        flows = [(0.0, "n1", "n0", 30 * MB)]
        _, net = run_pattern("chunked", flows)
        assert net.flows_fluid == 0
        assert net.fluid_recomputes == 0

    def test_fluid_recompute_count_is_flow_bounded(self):
        # The whole point: recomputes scale with flow arrivals and
        # departures (2 per flow + completion batches), not with bytes.
        flows = [(0.0, f"n{i + 1}", "n0", 50 * MB) for i in range(8)]
        _, net = run_pattern("fluid", flows)
        assert net.flows_fluid == 8
        assert net.fluid_recomputes <= 4 * 8


class TestFluidFaults:
    def test_nic_down_strands_in_flight_fluid_flow(self):
        sim, net = make_net("fluid")
        outcome = []

        def xfer():
            yield from net.transfer("n1", "n0", 50 * MB)
            outcome.append("completed")

        def killer():
            yield sim.timeout(0.1)  # mid-flow (takes ~0.45 s)
            net.nic("n0").down = True

        sim.process(xfer())
        sim.process(killer())
        sim.run()
        assert outcome == []
        assert net.nic("n1").flows_stranded == 1
        assert net.fluid_flows_active == 0
        assert net.nic("n0").rx_bytes == 0  # counters only on completion

    def test_survivors_reclaim_bandwidth_after_strand(self):
        # Two incast flows; one sender dies mid-way.  The survivor must
        # finish faster than full-contention would predict.
        sim, net = make_net("fluid")
        done = {}

        def xfer(src, key):
            yield from net.transfer(src, "n0", 40 * MB)
            done[key] = sim.now

        def killer():
            yield sim.timeout(0.2)
            net.nic("n2").down = True

        sim.process(xfer("n1", "a"))
        sim.process(xfer("n2", "b"))
        sim.process(killer())
        sim.run()
        assert "b" not in done
        # Shared until 0.2 s (~11 MB moved at half rate), alone after:
        # 0.2 + ~29 MB / full-bw ~= 0.46 s, vs ~0.72 s if the dead
        # sender had kept contending.
        assert done["a"] == pytest.approx(0.46, abs=0.02)

    @pytest.mark.parametrize("model", ["chunked", "fluid"])
    def test_nic_death_mid_rpc_raises_timeout(self, model):
        """Kill the server NIC mid-transfer: the RPC retry layer must
        surface RpcTimeout identically under both flow models."""
        cluster = build_cluster(net_model=model)
        sim = cluster.sim
        server = rpc.RpcServer(
            sim, cluster.storage[0], "svc", rpc.RpcCosts(), threads=2
        )

        def sink(args, payload):
            return {"ok": True}, None
            yield  # pragma: no cover

        server.register("put", sink)
        inj = FaultInjector(sim)
        # A 50 MB payload takes ~0.45 s on the wire; cut it at 0.1 s.
        inj.at(0.1, lambda: inj.nic_down(cluster.storage[0].nic))
        policy = rpc.RpcPolicy(timeout=0.3, max_retries=1, backoff=1.0)

        def scenario():
            try:
                yield from rpc.call(
                    cluster.clients[0],
                    server,
                    "put",
                    {},
                    payload=Payload.synthetic(50 * MB),
                    policy=policy,
                )
            except rpc.RpcTimeout as exc:
                return exc, sim.now

        exc, gave_up = drive(sim, scenario())
        assert isinstance(exc, rpc.RpcTimeout)
        assert exc.attempts == 2
        # 0.3 s first patience + 0.3 s retry patience.
        assert gave_up == pytest.approx(0.6, abs=0.05)
        if model == "fluid":
            assert cluster.clients[0].nic.flows_stranded == 1
        # The retransmission found the NIC already down at flow start.
        assert cluster.clients[0].nic.flows_dropped >= 1
