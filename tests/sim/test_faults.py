"""Fault-injector tests: schedules, targets, determinism."""

import pytest

from repro import rpc
from repro.sim import DiskFailed, FaultInjector, Network, Simulator
from repro.sim.faults import FaultInjector as DirectImport  # noqa: F401

from tests.conftest import build_cluster, drive


class TestSchedules:
    def test_actions_fire_at_sim_times(self, cluster):
        sim = cluster.sim
        inj = FaultInjector(sim)
        fired = []
        inj.at(2.0, lambda: fired.append(sim.now), name="late")
        inj.at(1.0, lambda: fired.append(sim.now), name="early")
        sim.run()
        assert fired == [1.0, 2.0]
        assert [(t, n) for t, n in inj.events] == [(1.0, "early"), (2.0, "late")]

    def test_past_schedule_rejected(self, cluster):
        sim = cluster.sim

        def idle():
            yield sim.timeout(5.0)

        sim.process(idle())
        sim.run()
        with pytest.raises(ValueError):
            FaultInjector(sim).at(1.0, lambda: None)

    def test_server_outage_window(self, cluster):
        server = rpc.RpcServer(
            cluster.sim, cluster.storage[0], "svc", rpc.RpcCosts()
        )
        inj = FaultInjector(cluster.sim)
        inj.outage(server, start=1.0, duration=0.5)
        observed = []

        def probe():
            for _ in range(4):
                observed.append((cluster.sim.now, server.up))
                yield cluster.sim.timeout(0.6)

        drive(cluster.sim, probe())
        assert [up for _t, up in observed] == [True, True, False, True]
        assert [t for t, _up in observed] == pytest.approx([0.0, 0.6, 1.2, 1.8])
        assert server.fail_count == 1


class TestDiskFaults:
    def test_failed_disk_raises_and_recovers(self, cluster):
        disk = cluster.storage[0].disk
        inj = FaultInjector(cluster.sim)
        inj.fail_disk(disk)

        def io():
            yield from disk.io(0, 4096, write=True)

        with pytest.raises(DiskFailed):
            drive(cluster.sim, io())
        assert disk.failed_requests == 1
        inj.restore_disk(disk)
        drive(cluster.sim, io())
        assert disk.write_bytes == 4096


class TestNicFaults:
    def test_nic_down_loses_flows(self, cluster):
        inj = FaultInjector(cluster.sim)
        inj.nic_down(cluster.storage[0].nic)

        def xfer():
            yield from cluster.network.transfer("c0", "s0", 10_000)

        p = cluster.sim.process(xfer())
        cluster.sim.run()
        # The flow vanished: it never completes and no bytes land.
        assert p.is_alive
        assert cluster.storage[0].nic.rx_bytes == 0
        assert cluster.clients[0].nic.flows_dropped == 1
        inj.nic_up(cluster.storage[0].nic)

        def xfer2():
            yield from cluster.network.transfer("c0", "s0", 10_000)

        drive(cluster.sim, xfer2())
        assert cluster.storage[0].nic.rx_bytes == 10_000

    def test_nic_delay_slows_flows(self, cluster):
        inj = FaultInjector(cluster.sim)

        def timed():
            t0 = cluster.sim.now
            yield from cluster.network.transfer("c0", "s0", 1000)
            return cluster.sim.now - t0

        base = drive(cluster.sim, timed())
        inj.nic_delay(cluster.storage[0].nic, 0.25)
        slowed = drive(cluster.sim, timed())
        assert slowed == pytest.approx(base + 0.25, rel=1e-6)

    def test_drop_probability_is_seed_deterministic(self):
        def run(seed):
            sim = Simulator(seed=seed)
            net = Network(sim, latency=0.0)
            net.add_nic("a", 100e6)
            net.add_nic("b", 100e6)
            net.nic("a").drop_prob = 0.5
            for _ in range(40):
                sim.process(net.transfer("a", "b", 1000))
            sim.run()
            return net.nic("a").flows_dropped

        dropped = run(1234)
        assert dropped == run(1234)  # same seed, same losses
        assert 0 < dropped < 40  # the coin actually flips both ways


class TestNodeCrash:
    def test_crash_and_restart_node(self, cluster):
        node = cluster.storage[0]
        server = rpc.RpcServer(cluster.sim, node, "svc", rpc.RpcCosts())
        inj = FaultInjector(cluster.sim)
        inj.crash_node(node, services=[server])
        assert node.nic.down and node.disk.failed and not server.up
        inj.restart_node(node, services=[server])
        assert not node.nic.down and not node.disk.failed and server.up
        kinds = [name.split()[0] for _t, name in inj.events]
        assert kinds == ["crash", "restart"]
