"""Additional engine edge-case tests."""

import pytest

from repro.sim import AnyOf, Interrupt, Resource, Simulator
from repro.sim.engine import SimulationError


class TestAnyOfFailures:
    def test_any_of_fails_when_member_fails_first(self):
        sim = Simulator()

        def bad():
            yield sim.timeout(1)
            raise RuntimeError("boom")

        def waiter():
            try:
                yield AnyOf(sim, [sim.process(bad()), sim.timeout(5)])
            except RuntimeError:
                return "caught"

        p = sim.process(waiter())
        sim.run(until=p)
        assert p.value == "caught"

    def test_any_of_ignores_later_failure(self):
        sim = Simulator()

        def bad():
            yield sim.timeout(5)
            raise RuntimeError("late boom")

        bad_proc = sim.process(bad())

        def waiter():
            idx, _val = yield AnyOf(sim, [sim.timeout(1), bad_proc])
            return idx

        p = sim.process(waiter())
        sim.run(until=p)
        assert p.value == 0
        # defuse the late failure so the drain doesn't raise
        def absorb():
            try:
                yield bad_proc
            except RuntimeError:
                pass

        sim.process(absorb())
        sim.run()


class TestInterruptResourceInteraction:
    def test_interrupted_waiter_does_not_receive_grant_twice(self):
        sim = Simulator()
        res = Resource(sim, 1)
        order = []

        def holder():
            yield res.acquire()
            yield sim.timeout(10)
            res.release()

        def impatient():
            try:
                yield res.acquire()
                order.append("granted")
                res.release()
            except Interrupt:
                order.append("interrupted")

        def third():
            yield sim.timeout(11)
            yield res.acquire()
            order.append("third")
            res.release()

        sim.process(holder())
        p = sim.process(impatient())

        def interrupter():
            yield sim.timeout(1)
            p.interrupt()

        sim.process(interrupter())
        sim.process(third())
        sim.run()
        assert order[0] == "interrupted"
        # The interrupted waiter's pending acquire is withdrawn (the
        # abandon protocol), so the unit is not leaked:
        assert "third" in order
        assert res.in_use == 0


class TestRandomPolicyDeterminism:
    def test_same_seed_same_grant_order(self):
        def run(seed):
            sim = Simulator(seed=seed)
            res = Resource(sim, 1, policy="random")
            order = []

            def holder():
                yield res.acquire()
                yield sim.timeout(1)
                res.release()

            def waiter(tag):
                yield res.acquire()
                order.append(tag)
                res.release()

            sim.process(holder())
            for tag in range(6):
                sim.process(waiter(tag))
            sim.run()
            return order

        assert run(1) == run(1)
        # Different seeds usually differ (6! orderings; collision unlikely)
        assert run(1) != run(2) or run(3) != run(4)

    def test_random_policy_multiunit_respects_capacity(self):
        sim = Simulator()
        res = Resource(sim, 3, policy="random")
        peak = []

        def user(units, hold):
            yield res.acquire(units)
            peak.append(res.in_use)
            yield sim.timeout(hold)
            res.release(units)

        for units, hold in [(2, 3), (1, 1), (3, 2), (1, 4), (2, 2)]:
            sim.process(user(units, hold))
        sim.run()
        assert max(peak) <= 3
        assert res.in_use == 0


class TestEngineMisc:
    def test_step_processes_exactly_one_event(self):
        sim = Simulator()
        hits = []
        sim.timeout(1).add_callback(lambda e: hits.append(1))
        sim.timeout(2).add_callback(lambda e: hits.append(2))
        sim.step()
        assert hits == [1]
        assert sim.now == 1

    def test_run_past_deadline_then_continue(self):
        sim = Simulator()
        done = []

        def proc():
            yield sim.timeout(10)
            done.append(sim.now)

        sim.process(proc())
        sim.run(until=5)
        assert done == []
        sim.run()
        assert done == [10]

    def test_condition_across_simulators_rejected(self):
        a, b = Simulator(), Simulator()
        with pytest.raises(SimulationError):
            AnyOf(a, [a.timeout(1), b.timeout(1)])

    def test_process_yielding_foreign_event_fails(self):
        a, b = Simulator(), Simulator()

        def proc():
            yield b.timeout(1)

        a.process(proc())
        with pytest.raises(SimulationError):
            a.run()
