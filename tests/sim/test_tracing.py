"""RPC tracer tests."""

import pytest

from repro import rpc
from repro.tracing import RpcRecord, RpcTracer, current_tracer, nearest_rank
from repro.vfs.api import NoEntry, Payload

from tests.conftest import build_cluster, drive


def make_record(latency: float, **kw) -> RpcRecord:
    fields = dict(
        start=0.0,
        end=latency,
        client="c0",
        server="svc",
        proc="echo",
        req_bytes=0,
        reply_bytes=0,
        error=False,
    )
    fields.update(kw)
    return RpcRecord(**fields)


def make_server(cluster):
    server = rpc.RpcServer(
        cluster.sim, cluster.storage[0], "svc", rpc.RpcCosts(), threads=4
    )

    def echo(args, payload):
        return args, payload
        yield  # pragma: no cover

    def fail(args, payload):
        raise NoEntry("x")
        yield  # pragma: no cover

    server.register("echo", echo)
    server.register("fail", fail)
    return server


class TestTracer:
    def test_records_calls(self, cluster):
        server = make_server(cluster)

        def scenario():
            yield from rpc.call(
                cluster.clients[0], server, "echo", {"a": 1}, payload=Payload(b"xy")
            )
            yield from rpc.call(cluster.clients[0], server, "echo", {"a": 2})

        with RpcTracer() as tracer:
            drive(cluster.sim, scenario())
        assert len(tracer.records) == 2
        first = tracer.records[0]
        assert first.proc == "echo"
        assert first.client == "c0"
        assert first.server == "svc"
        assert first.req_bytes == 2
        assert first.reply_bytes == 2
        assert first.latency > 0
        assert not first.error

    def test_errors_flagged_and_raised(self, cluster):
        server = make_server(cluster)

        def scenario():
            try:
                yield from rpc.call(cluster.clients[0], server, "fail", {})
            except NoEntry:
                return "raised"

        with RpcTracer() as tracer:
            assert drive(cluster.sim, scenario()) == "raised"
        assert tracer.records[0].error

    def test_not_installed_means_no_overhead(self, cluster):
        server = make_server(cluster)

        def scenario():
            yield from rpc.call(cluster.clients[0], server, "echo", {})

        drive(cluster.sim, scenario())
        assert current_tracer() is None

    def test_nested_installation_rejected(self):
        with RpcTracer():
            with pytest.raises(RuntimeError):
                RpcTracer().__enter__()

    def test_aggregations_and_summary(self, cluster):
        server = make_server(cluster)

        def scenario():
            for i in range(5):
                yield from rpc.call(
                    cluster.clients[0], server, "echo", {}, payload=Payload(b"z" * 100)
                )

        with RpcTracer() as tracer:
            drive(cluster.sim, scenario())
        assert set(tracer.by_proc()) == {"echo"}
        assert set(tracer.by_server()) == {"svc"}
        assert tracer.total_payload_bytes() == 5 * 200
        text = tracer.summary()
        assert "echo" in text and "5" in text

    def test_p95_uses_nearest_rank(self):
        """Regression: p95 must be the nearest-rank quantile, not the
        clamped index ``int(0.95 * n)`` (which returns the max for any
        n <= 20)."""
        # n = 1: the only sample is every quantile.
        assert nearest_rank([7.0], 0.95) == 7.0
        # n = 20: ceil(0.95 * 20) = 19 -> the 19th value, NOT the max.
        lat20 = [float(i) for i in range(1, 21)]
        assert nearest_rank(lat20, 0.95) == 19.0
        # n = 100: ceil(95) = 95 -> the 95th value (index 94).
        lat100 = [float(i) for i in range(1, 101)]
        assert nearest_rank(lat100, 0.95) == 95.0
        with pytest.raises(ValueError):
            nearest_rank([], 0.95)
        with pytest.raises(ValueError):
            nearest_rank([1.0], 0.0)

    def test_summary_p95_column_nearest_rank(self):
        """The summary's p95 column for 20 x 1..20 ms must read 19.00,
        not 20.00 (the pre-fix clamp-to-max)."""
        tracer = RpcTracer()
        for i in range(1, 21):
            tracer.record(make_record(i / 1000.0))
        row = tracer.summary().splitlines()[1].split()
        # columns: proc calls mean p95 MB errors retries
        assert row[0] == "echo"
        assert row[3] == "19.00"

    def test_summary_errors_column_counts_timeouts(self):
        tracer = RpcTracer()
        tracer.record(make_record(0.001))
        tracer.record(make_record(0.002, error=True))
        tracer.record(make_record(0.003, error=True, timeout=True, retries=3))
        row = tracer.summary().splitlines()[1].split()
        assert row[1] == "3"  # calls
        assert row[5] == "2"  # errors: one error reply + one timeout
        assert row[6] == "3"  # retries

    def test_server_counters(self):
        tracer = RpcTracer()
        tracer.record(make_record(0.001, server="a"))
        tracer.record(make_record(0.002, server="a", error=True))
        tracer.record(make_record(0.003, server="a", error=True, timeout=True, retries=2))
        tracer.record(make_record(0.001, server="b", retries=1))
        counters = tracer.server_counters()
        assert counters["a"] == {"calls": 3, "errors": 1, "timeouts": 1, "retries": 2}
        assert counters["b"] == {"calls": 1, "errors": 0, "timeouts": 0, "retries": 1}

    def test_traces_full_stack_run(self, cluster):
        """Tracer sees the composed Direct-pNFS protocol mix."""
        from repro.core import DirectPnfsSystem
        from repro.nfs import NfsConfig
        from repro.pvfs2 import Pvfs2Config, Pvfs2System
        from repro.vfs import Payload as P

        pvfs = Pvfs2System(cluster.sim, cluster.storage, Pvfs2Config(stripe_size=64 * 1024))
        system = DirectPnfsSystem(cluster.sim, pvfs, NfsConfig(rsize=64 * 1024, wsize=64 * 1024))
        client = system.make_client(cluster.clients[0])

        def scenario():
            yield from client.mount()
            f = yield from client.create("/t")
            yield from client.write(f, 0, P.synthetic(256 * 1024))
            yield from client.close(f)

        with RpcTracer() as tracer:
            drive(cluster.sim, scenario())
        procs = set(tracer.by_proc())
        # control, layout, data, and storage protocols all visible
        assert {"mount", "getdevlist", "layoutget", "open", "write", "commit"} <= procs
        assert any(p in procs for p in ("flush", "create_bstream"))
