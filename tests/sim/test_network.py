"""Network model tests: bandwidth, sharing, latency, loopback."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Network, Simulator


def make_net(sim, n=4, bw=100e6, latency=0.0, per_message_bytes=0):
    net = Network(sim, latency=latency, per_message_bytes=per_message_bytes)
    for i in range(n):
        net.add_nic(f"n{i}", bw)
    return net


class TestSingleFlow:
    def test_uncontended_flow_gets_full_bandwidth(self):
        sim = Simulator()
        net = make_net(sim, bw=100e6)

        def xfer():
            yield from net.transfer("n0", "n1", 100_000_000)
            return sim.now

        p = sim.process(xfer())
        sim.run()
        assert p.value == pytest.approx(1.0, rel=0.01)

    def test_latency_charged_once(self):
        sim = Simulator()
        net = make_net(sim, bw=100e6, latency=0.5)

        def xfer():
            yield from net.transfer("n0", "n1", 1000)
            return sim.now

        p = sim.process(xfer())
        sim.run()
        assert 0.5 < p.value < 0.51

    def test_mismatched_bandwidths_use_minimum(self):
        sim = Simulator()
        net = Network(sim, latency=0, per_message_bytes=0)
        net.add_nic("fast", 100e6)
        net.add_nic("slow", 10e6)

        def xfer():
            yield from net.transfer("fast", "slow", 10_000_000)
            return sim.now

        p = sim.process(xfer())
        sim.run()
        assert p.value == pytest.approx(1.0, rel=0.01)

    def test_loopback_is_free_on_the_wire(self):
        sim = Simulator()
        net = make_net(sim)

        def xfer():
            yield from net.transfer("n0", "n0", 10**9)
            return sim.now

        p = sim.process(xfer())
        sim.run()
        assert p.value == 0.0

    def test_per_message_overhead_adds_bytes(self):
        sim = Simulator()
        net = make_net(sim, bw=1e6, per_message_bytes=1000)

        def xfer():
            yield from net.transfer("n0", "n1", 0)
            return sim.now

        p = sim.process(xfer())
        sim.run()
        # Store-and-forward: the 1000-byte frame crosses tx then rx.
        assert p.value == pytest.approx(0.002, rel=0.01)

    def test_negative_size_rejected(self):
        sim = Simulator()
        net = make_net(sim)
        with pytest.raises(ValueError):
            # generator raises on first advance
            list(net.transfer("n0", "n1", -1))

    def test_unknown_nic_rejected(self):
        sim = Simulator()
        net = make_net(sim, n=1)
        with pytest.raises(KeyError):
            net.nic("ghost")

    def test_duplicate_nic_rejected(self):
        sim = Simulator()
        net = make_net(sim, n=1)
        with pytest.raises(ValueError):
            net.add_nic("n0", 1e6)


class TestSharing:
    def test_two_flows_into_one_receiver_halve_throughput(self):
        sim = Simulator()
        net = make_net(sim, bw=100e6)
        done = []

        def xfer(src):
            yield from net.transfer(src, "n2", 100_000_000)
            done.append(sim.now)

        sim.process(xfer("n0"))
        sim.process(xfer("n1"))
        sim.run()
        # 200 MB through a 100 MB/s rx pipe: both finish ≈ 2 s.
        assert max(done) == pytest.approx(2.0, rel=0.02)

    def test_two_flows_out_of_one_sender_halve_throughput(self):
        sim = Simulator()
        net = make_net(sim, bw=100e6)
        done = []

        def xfer(dst):
            yield from net.transfer("n0", dst, 50_000_000)
            done.append(sim.now)

        sim.process(xfer("n1"))
        sim.process(xfer("n2"))
        sim.run()
        assert max(done) == pytest.approx(1.0, rel=0.02)

    def test_disjoint_flows_do_not_interfere(self):
        sim = Simulator()
        net = make_net(sim, bw=100e6)
        done = []

        def xfer(src, dst):
            yield from net.transfer(src, dst, 100_000_000)
            done.append(sim.now)

        sim.process(xfer("n0", "n1"))
        sim.process(xfer("n2", "n3"))
        sim.run()
        assert max(done) == pytest.approx(1.0, rel=0.02)

    def test_full_duplex_tx_and_rx_independent(self):
        sim = Simulator()
        net = make_net(sim, bw=100e6)
        done = []

        def xfer(src, dst):
            yield from net.transfer(src, dst, 100_000_000)
            done.append(sim.now)

        # n0 sends to n1 while receiving from n1: full duplex, no slowdown.
        sim.process(xfer("n0", "n1"))
        sim.process(xfer("n1", "n0"))
        sim.run()
        assert max(done) == pytest.approx(1.0, rel=0.02)

    def test_incast_n_to_one_scales_as_n(self):
        sim = Simulator()
        net = Network(sim, latency=0, per_message_bytes=0)
        for i in range(5):
            net.add_nic(f"n{i}", 100e6)
        done = []

        def xfer(src):
            yield from net.transfer(src, "n4", 25_000_000)
            done.append(sim.now)

        for i in range(4):
            sim.process(xfer(f"n{i}"))
        sim.run()
        assert max(done) == pytest.approx(1.0, rel=0.02)

    @given(
        sizes=st.lists(st.integers(10_000, 5_000_000), min_size=1, max_size=8),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_makespan_bounded_by_serial_and_ideal(self, sizes):
        """Shared-receiver makespan lies between ideal and fully serial."""
        bw = 100e6
        sim = Simulator()
        net = Network(sim, latency=0, per_message_bytes=0)
        net.add_nic("dst", bw)
        for i in range(len(sizes)):
            net.add_nic(f"s{i}", bw)

        def xfer(i, size):
            yield from net.transfer(f"s{i}", "dst", size)

        for i, size in enumerate(sizes):
            sim.process(xfer(i, size))
        sim.run()
        ideal = sum(sizes) / bw
        assert sim.now >= ideal * 0.999
        # Chunked interleaving should never be slower than serial + slack.
        assert sim.now <= ideal * 1.05 + len(sizes) * (net.chunk_bytes / bw)

    def test_accounting_tracks_bytes(self):
        sim = Simulator()
        net = make_net(sim, per_message_bytes=0)

        def xfer():
            yield from net.transfer("n0", "n1", 1234)

        sim.process(xfer())
        sim.run()
        assert net.nic("n0").tx_bytes == 1234
        assert net.nic("n1").rx_bytes == 1234
        assert net.flows_completed == 1


class TestByteAccounting:
    """Regression: counters must be uniform — payload bytes only, with
    loopback tallied separately (it never touches the wire)."""

    def test_wire_counters_exclude_framing(self):
        sim = Simulator()
        net = make_net(sim, bw=100e6, per_message_bytes=120)

        def xfer():
            yield from net.transfer("n0", "n1", 10_000)

        sim.process(xfer())
        sim.run()
        # Framing used to leak into the counters (10_120 here).
        assert net.nic("n0").tx_bytes == 10_000
        assert net.nic("n1").rx_bytes == 10_000
        assert net.flows_completed == 1

    def test_framing_still_costs_wire_time(self):
        sim = Simulator()
        bare = make_net(sim, bw=100e6, per_message_bytes=0)
        framed = Network(sim, latency=0.0, per_message_bytes=100_000)
        framed.add_nic("a", 100e6)
        framed.add_nic("b", 100e6)

        times = {}

        def xfer(net, key):
            t0 = sim.now
            yield from net.transfer(*(("n0", "n1") if key == "bare" else ("a", "b")), 1_000_000)
            times[key] = sim.now - t0

        sim.process(xfer(bare, "bare"))
        sim.process(xfer(framed, "framed"))
        sim.run()
        assert times["framed"] > times["bare"]

    def test_loopback_counted_separately(self):
        sim = Simulator()
        net = make_net(sim, per_message_bytes=120)

        def xfer():
            yield from net.transfer("n0", "n0", 5_000)

        sim.process(xfer())
        sim.run()
        nic = net.nic("n0")
        assert nic.loopback_bytes == 5_000
        assert nic.tx_bytes == 0 and nic.rx_bytes == 0
        assert net.flows_completed == 1
