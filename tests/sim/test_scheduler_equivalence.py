"""Differential test: two-lane scheduler vs the pure-heap reference.

The two-lane kernel (``Simulator()``, the default) claims to be
*order-identical by construction* to the single-heap kernel
(``Simulator(two_lane=False)``).  These tests make the claim empirical:
randomized event programs — timeouts, zero-delay storms, conditions,
interrupts, resource contention under both arbitration policies,
lightweight spawns — run on both kernels and must produce the same
firing log: identical (time, label, value) triples in identical order.

Because the log records *processing* order, not just outcomes, any
reordering of same-instant events (the thing the fast lane could
plausibly break) fails the comparison even when final state agrees.
"""

from __future__ import annotations

import random

import pytest

from repro.sim.engine import Interrupt, Simulator
from repro.sim.resources import Resource, Store


def _run_program(two_lane: bool, seed: int) -> list:
    """Build and run one randomized program; return its firing log."""
    sim = Simulator(seed=12345, two_lane=two_lane)
    rnd = random.Random(seed)
    log: list = []

    fifo = Resource(sim, capacity=rnd.randint(1, 3), name="fifo")
    rand = Resource(sim, capacity=rnd.randint(1, 3), name="rand", policy="random")
    store = Store(sim, capacity=4, name="store")
    procs: list = []

    def worker(wid: int, steps: int):
        try:
            yield from _worker_body(wid, steps)
        except Interrupt as intr:
            # A poke can land on any waiting step; where it lands is
            # part of the firing order under test.
            log.append((sim.now, "killed", wid, str(intr.cause)))
        return wid

    def _worker_body(wid: int, steps: int):
        for s in range(steps):
            action = rnd_actions[wid][s]
            if action == "timeout":
                delay = rnd_delays[wid][s]
                yield sim.timeout(delay)
                log.append((sim.now, "timeout", wid, s))
            elif action == "zero-storm":
                # Same-instant storm: several zero-delay timeouts racing.
                yield sim.all_of([sim.timeout(0.0) for _ in range(4)])
                log.append((sim.now, "storm", wid, s))
            elif action == "fifo-res":
                got = yield fifo.acquire()
                log.append((sim.now, "fifo-acq", wid, s, got))
                yield sim.timeout(rnd_delays[wid][s])
                fifo.release()
                log.append((sim.now, "fifo-rel", wid, s))
            elif action == "rand-res":
                got = yield rand.acquire()
                log.append((sim.now, "rand-acq", wid, s, got))
                yield sim.timeout(rnd_delays[wid][s])
                rand.release()
                log.append((sim.now, "rand-rel", wid, s))
            elif action == "store":
                yield store.put((wid, s))
                item = yield store.get()
                log.append((sim.now, "store", wid, s, item))
            elif action == "any-of":
                idx, val = yield sim.any_of(
                    [sim.timeout(rnd_delays[wid][s]), sim.timeout(0.5)]
                )
                log.append((sim.now, "any-of", wid, s, idx))
            elif action == "spawn":
                def leg(tag):
                    yield sim.timeout(rnd_delays[wid][s] / (tag + 1))
                    log.append((sim.now, "leg", wid, s, tag))
                yield sim.spawn(leg(0), leg(1))
                log.append((sim.now, "spawn-join", wid, s))
            elif action == "interruptible":
                try:
                    yield sim.timeout(5.0)
                    log.append((sim.now, "survived", wid, s))
                except Interrupt as intr:
                    log.append((sim.now, "interrupted", wid, s, str(intr.cause)))

    def interrupter():
        # Fire mid-run and interrupt every still-alive worker waiting on
        # something — exercises urgent events racing the fast lane.
        yield sim.timeout(1.5)
        for p in procs:
            if p.is_alive:
                p.interrupt(f"poke:{p.name}")
                log.append((sim.now, "poked", p.name))

    n_workers = rnd.randint(3, 6)
    actions = [
        "timeout", "zero-storm", "fifo-res", "rand-res",
        "store", "any-of", "spawn", "interruptible",
    ]
    rnd_actions = [
        [rnd.choice(actions) for _ in range(rnd.randint(3, 8))]
        for _ in range(n_workers)
    ]
    rnd_delays = [
        [rnd.choice([0.0, 0.0, 0.01, 0.1, 0.25, 1.0]) for _ in range(len(a))]
        for a in rnd_actions
    ]
    for wid in range(n_workers):
        procs.append(sim.process(worker(wid, len(rnd_actions[wid])), name=f"w{wid}"))
    sim.process(interrupter(), name="interrupter")

    def joiner():
        for p in list(procs):
            try:
                value = yield p
                log.append((sim.now, "joined", p.name, value))
            except Interrupt:  # pragma: no cover - joiner never interrupted
                pass
        return "done"

    sim.process(joiner(), name="joiner")
    sim.run()
    return [(round(t, 12),) + tuple(rest) for t, *rest in log]


@pytest.mark.parametrize("seed", range(20))
def test_two_lane_matches_pure_heap(seed):
    ref = _run_program(two_lane=False, seed=seed)
    fast = _run_program(two_lane=True, seed=seed)
    assert ref == fast
    assert len(ref) > 0  # the program actually did something


def test_pure_heap_mode_disables_fast_lane():
    sim = Simulator(two_lane=False)

    def p():
        yield sim.timeout(0.0)
        yield sim.timeout(1.0)

    sim.run(until=sim.process(p()))
    assert sim.stats.fast_lane_events == 0
    assert sim.stats.heap_events == sim.stats.events_scheduled


def test_two_lane_routes_zero_delay_to_fast_lane():
    sim = Simulator()

    def p():
        yield sim.timeout(0.0)
        yield sim.timeout(1.0)

    sim.run(until=sim.process(p()))
    # Process kick + zero-delay timeout + completion all ride the lane;
    # only the 1.0s timeout pays for the heap.
    assert sim.stats.fast_lane_events >= 3
    assert sim.stats.heap_events >= 1
    assert (
        sim.stats.fast_lane_events + sim.stats.heap_events
        == sim.stats.events_scheduled
    )


def test_urgent_interrupt_beats_same_instant_fast_lane():
    # An interrupt scheduled at the same instant as pending fast-lane
    # events must still fire first (urgent events keep heap priority 0).
    for two_lane in (False, True):
        sim = Simulator(two_lane=two_lane)
        order = []

        def sleeper():
            try:
                yield sim.timeout(10.0)
            except Interrupt:
                order.append("interrupted")

        def noisy():
            for _ in range(3):
                yield sim.timeout(0.0)
                order.append("tick")

        victim = sim.process(sleeper())

        def killer():
            yield sim.timeout(0.0)
            victim.interrupt("now")

        sim.process(noisy())
        sim.process(killer())
        sim.run()
        assert order.index("interrupted") <= 1, (two_lane, order)
