"""Store-and-forward and per-flow window semantics of the network."""

import pytest

from repro.sim import Network, Simulator
from repro.sim.network import FLOW_WINDOW


def make_net(sim, n=4, bw=100e6):
    net = Network(sim, latency=0, per_message_bytes=0)
    for i in range(n):
        net.add_nic(f"n{i}", bw)
    return net


class TestStoreAndForward:
    def test_small_message_crosses_two_pipes(self):
        sim = Simulator()
        net = make_net(sim, bw=1e6)

        def xfer():
            yield from net.transfer("n0", "n1", 1000)
            return sim.now

        p = sim.process(xfer())
        sim.run()
        assert p.value == pytest.approx(0.002, rel=0.01)

    def test_large_flow_pipelines_to_full_bandwidth(self):
        sim = Simulator()
        net = make_net(sim, bw=100e6)
        size = 50_000_000

        def xfer():
            yield from net.transfer("n0", "n1", size)
            return sim.now

        p = sim.process(xfer())
        sim.run()
        ideal = size / 100e6
        # pipelined: only ~one extra chunk-time of fill
        assert p.value <= ideal * 1.03

    def test_busy_receiver_does_not_block_sender_for_others(self):
        """Head-of-line freedom: while n2 is saturated by n1, a flow
        n0->n3 through the idle pair must proceed at full speed even
        if n0 also has a flow to the busy n2."""
        sim = Simulator()
        net = make_net(sim, bw=100e6)
        done = {}

        def xfer(tag, src, dst, size):
            yield from net.transfer(src, dst, size)
            done[tag] = sim.now

        sim.process(xfer("hog", "n1", "n2", 100_000_000))
        sim.process(xfer("contended", "n0", "n2", 100_000_000))
        sim.process(xfer("free", "n0", "n3", 50_000_000))
        sim.run()
        # The free flow shares only n0's tx with the contended flow:
        # ~1.0s for 50 MB at a half-shared 100 MB/s pipe, far less than
        # the ~2s the n2 receivers need.
        assert done["free"] < 1.4
        assert done["hog"] >= 1.9

    def test_window_bounds_outstanding_chunks(self):
        """A flow cannot run unboundedly ahead of a stalled receiver:
        its tx occupancy is limited to the window."""
        sim = Simulator()
        net = make_net(sim, bw=100e6)

        # Saturate n2's rx with a competing flow so our flow's rx legs
        # stall; the sender should then stop after ~FLOW_WINDOW chunks
        # rather than monopolising its tx pipe.
        def hog():
            yield from net.transfer("n1", "n2", 200_000_000)

        progress = {}

        def windowed():
            yield from net.transfer("n0", "n2", 50_000_000)
            progress["done"] = sim.now

        def prober():
            # n0's tx should be mostly idle while the windowed flow is
            # stalled on n2: a probe transfer through n0 finishes fast.
            yield sim.timeout(0.5)
            t0 = sim.now
            yield from net.transfer("n0", "n3", 10_000_000)
            progress["probe"] = sim.now - t0

        sim.process(hog())
        sim.process(windowed())
        sim.process(prober())
        sim.run()
        assert progress["probe"] < 0.25  # ~0.1s unimpeded
        assert FLOW_WINDOW >= 1


class TestRandomArbitrationFairness:
    def test_many_flows_complete_within_spread(self):
        """Randomised grants are fair enough: equal flows into one sink
        finish within a modest spread of each other."""
        sim = Simulator()
        net = Network(sim, latency=0, per_message_bytes=0)
        net.add_nic("sink", 100e6)
        n = 6
        for i in range(n):
            net.add_nic(f"s{i}", 100e6)
        ends = []

        def xfer(i):
            yield from net.transfer(f"s{i}", "sink", 20_000_000)
            ends.append(sim.now)

        for i in range(n):
            sim.process(xfer(i))
        sim.run()
        ideal = n * 20_000_000 / 100e6
        assert max(ends) == pytest.approx(ideal, rel=0.05)
        assert min(ends) > ideal * 0.5  # nobody starved or raced ahead 2x
