"""Unit and property tests for Resource, Store, and TokenBucket."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Resource, Simulator, Store, TokenBucket
from repro.sim.engine import Interrupt, SimulationError


@pytest.fixture
def sim():
    return Simulator()


class TestResource:
    def test_immediate_grant_when_free(self, sim):
        res = Resource(sim, 2)
        ev = res.acquire()
        assert ev.triggered
        assert res.in_use == 1
        assert res.available == 1

    def test_fifo_queueing(self, sim):
        res = Resource(sim, 1)
        order = []

        def user(tag, hold):
            yield res.acquire()
            order.append(("start", tag, sim.now))
            yield sim.timeout(hold)
            res.release()

        for i in range(3):
            sim.process(user(i, 10))
        sim.run()
        assert order == [("start", 0, 0), ("start", 1, 10), ("start", 2, 20)]

    def test_multi_unit_acquire_waits_for_all_units(self, sim):
        res = Resource(sim, 4)
        events = []

        def small(tag):
            yield res.acquire(1)
            yield sim.timeout(5)
            res.release(1)
            events.append((tag, sim.now))

        def big():
            yield res.acquire(4)
            events.append(("big", sim.now))
            res.release(4)

        sim.process(small("a"))
        sim.process(small("b"))
        sim.process(big())
        sim.run()
        # big must wait until both singles released at t=5
        assert ("big", 5) in events

    def test_big_request_not_starved_by_later_small_ones(self, sim):
        res = Resource(sim, 2)
        order = []

        def holder():
            yield res.acquire(2)
            yield sim.timeout(10)
            res.release(2)

        def big():
            yield sim.timeout(1)
            yield res.acquire(2)
            order.append(("big", sim.now))
            res.release(2)

        def small():
            yield sim.timeout(2)
            yield res.acquire(1)
            order.append(("small", sim.now))
            res.release(1)

        sim.process(holder())
        sim.process(big())
        sim.process(small())
        sim.run()
        assert order[0][0] == "big"  # FIFO: big asked first

    def test_over_release_rejected(self, sim):
        res = Resource(sim, 1)
        with pytest.raises(SimulationError):
            res.release()

    def test_acquire_more_than_capacity_rejected(self, sim):
        res = Resource(sim, 2)
        with pytest.raises(ValueError):
            res.acquire(3)

    def test_invalid_capacity_rejected(self, sim):
        with pytest.raises(ValueError):
            Resource(sim, 0)

    @given(
        capacity=st.integers(1, 5),
        holds=st.lists(st.floats(0.1, 5.0), min_size=1, max_size=20),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_never_exceeds_capacity(self, capacity, holds):
        sim = Simulator()
        res = Resource(sim, capacity)
        peak = []

        def user(hold):
            yield res.acquire()
            peak.append(res.in_use)
            yield sim.timeout(hold)
            res.release()

        for h in holds:
            sim.process(user(h))
        sim.run()
        assert max(peak) <= capacity
        assert res.in_use == 0

    def test_try_acquire_claims_only_when_free_and_unqueued(self, sim):
        res = Resource(sim, 2)
        assert res.try_acquire(2)
        assert res.in_use == 2
        assert not res.try_acquire()  # full
        waiter = res.acquire()
        assert not waiter.triggered
        res.release(2)
        sim.run()
        assert waiter.processed and res.in_use == 1
        # One unit free, but someone queued earlier would be jumped:
        res2 = Resource(sim, 1)
        res2.try_acquire()
        pending = res2.acquire()
        assert not pending.triggered
        assert not res2.try_acquire()  # would jump `pending`
        with pytest.raises(ValueError):
            res.try_acquire(3)


class TestLongWaiterQueues:
    """Regression tests for the O(n^2) release/abandon paths.

    The old random-policy release rebuilt the full eligible list (and
    indexed a deque, also O(n)) per grant; the old abandon path scanned
    the waiter deque linearly.  Both are now bounded — a single release
    granting N waiters and N abandons each run in (amortised) linear
    time.  The wall-clock bounds are generous for CI noise; the old
    code exceeds them by an order of magnitude at this queue length.
    """

    N = 20_000

    def _queue_up(self, sim, policy):
        res = Resource(sim, self.N, policy=policy)
        assert res.try_acquire(self.N)
        events = [res.acquire() for _ in range(self.N)]
        assert res.queue_len == self.N
        return res, events

    @pytest.mark.parametrize("policy", ["fifo", "random"])
    def test_bulk_release_grants_all_waiters_fast(self, policy):
        import time

        sim = Simulator()
        res, events = self._queue_up(sim, policy)
        t0 = time.perf_counter()
        res.release(self.N)
        elapsed = time.perf_counter() - t0
        sim.run()
        assert all(ev.processed for ev in events)
        assert res.in_use == self.N and res.queue_len == 0
        assert elapsed < 2.0, f"release of {self.N} waiters took {elapsed:.2f}s"

    def test_random_policy_grant_sequence_matches_rebuild_reference(self):
        # The incremental eligible list must draw and grant exactly as
        # the old rebuild-from-scratch loop did: replay the reference
        # algorithm with an identically-seeded rng and compare orders.
        import numpy as np

        for seed, capacity in [(1, 7), (2, 13), (3, 4)]:
            sim = Simulator(seed=seed)
            res = Resource(sim, capacity, policy="random")
            assert res.try_acquire(capacity)
            rnd = np.random.default_rng(seed + 99)
            wants = [int(rnd.integers(1, capacity + 1)) for _ in range(50)]
            order: list = []
            events = []
            for i, w in enumerate(wants):
                ev = res.acquire(w)
                ev.add_callback(lambda _e, i=i: order.append(i))
                events.append(ev)
            freed = capacity
            res.release(freed)
            sim.run()

            # Reference: the pre-change algorithm on the same queue.
            ref_rng = np.random.default_rng(seed)
            waiters = [(i, w) for i, w in enumerate(wants)]
            in_use = capacity - freed
            ref_order = []
            while waiters:
                eligible = [
                    k for k, (_i, w) in enumerate(waiters)
                    if in_use + w <= capacity
                ]
                if not eligible:
                    break
                idx = eligible[int(ref_rng.integers(0, len(eligible)))]
                i, w = waiters.pop(idx)
                in_use += w
                ref_order.append(i)
            assert order == ref_order

    def test_abandon_long_queue_is_fast_and_leak_free(self):
        import time

        sim = Simulator()
        res = Resource(sim, 1)
        assert res.try_acquire()
        holders = []

        def waiter():
            try:
                yield res.acquire()
            except Interrupt:
                return
            res.release()

        for _ in range(self.N):
            holders.append(sim.process(waiter()))
        sim.run(until=sim.now)  # let the kicks run so waiters are queued
        assert res.queue_len == self.N
        t0 = time.perf_counter()
        for p in holders:
            if p.is_alive:
                p.interrupt("cancel")
        elapsed = time.perf_counter() - t0
        sim.run()
        assert elapsed < 2.0, f"abandoning {self.N} waiters took {elapsed:.2f}s"
        assert res.queue_len == 0
        res.release()
        assert res.in_use == 0


class TestStore:
    def test_put_then_get(self, sim):
        store = Store(sim)
        store.put("x")
        got = []

        def getter():
            got.append((yield store.get()))

        sim.process(getter())
        sim.run()
        assert got == ["x"]

    def test_get_blocks_until_put(self, sim):
        store = Store(sim)
        got = []

        def getter():
            item = yield store.get()
            got.append((item, sim.now))

        def putter():
            yield sim.timeout(4)
            store.put("late")

        sim.process(getter())
        sim.process(putter())
        sim.run()
        assert got == [("late", 4)]

    def test_fifo_item_order(self, sim):
        store = Store(sim)
        for i in range(5):
            store.put(i)
        got = []

        def drain():
            for _ in range(5):
                got.append((yield store.get()))

        sim.process(drain())
        sim.run()
        assert got == [0, 1, 2, 3, 4]

    def test_capacity_blocks_putter(self, sim):
        store = Store(sim, capacity=1)
        timeline = []

        def producer():
            yield store.put("a")
            timeline.append(("a", sim.now))
            yield store.put("b")
            timeline.append(("b", sim.now))

        def consumer():
            yield sim.timeout(5)
            yield store.get()

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert timeline == [("a", 0), ("b", 5)]

    def test_len_and_items(self, sim):
        store = Store(sim)
        store.put(1)
        store.put(2)
        assert len(store) == 2
        assert store.items == (1, 2)


class TestTokenBucket:
    def test_paced_at_rate(self, sim):
        bucket = TokenBucket(sim, rate=100.0, burst=1.0)

        def taker():
            yield sim.process(bucket.take(500))
            return sim.now

        p = sim.process(taker())
        sim.run()
        # 500 units at 100/s with negligible burst ≈ 5 seconds.
        assert p.value == pytest.approx(5.0, rel=0.02)

    def test_burst_absorbs_initial_take(self, sim):
        bucket = TokenBucket(sim, rate=10.0, burst=100.0)

        def taker():
            yield sim.process(bucket.take(100))
            return sim.now

        p = sim.process(taker())
        sim.run()
        assert p.value == pytest.approx(0.0, abs=1e-9)

    def test_serialised_takers_share_rate(self, sim):
        bucket = TokenBucket(sim, rate=50.0, burst=1.0)
        finish = []

        def taker():
            yield sim.process(bucket.take(100))
            finish.append(sim.now)

        sim.process(taker())
        sim.process(taker())
        sim.run()
        assert finish[-1] == pytest.approx(4.0, rel=0.05)

    def test_invalid_rate_rejected(self, sim):
        with pytest.raises(ValueError):
            TokenBucket(sim, rate=0)
