"""Unit and property tests for Resource, Store, and TokenBucket."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Resource, Simulator, Store, TokenBucket
from repro.sim.engine import SimulationError


@pytest.fixture
def sim():
    return Simulator()


class TestResource:
    def test_immediate_grant_when_free(self, sim):
        res = Resource(sim, 2)
        ev = res.acquire()
        assert ev.triggered
        assert res.in_use == 1
        assert res.available == 1

    def test_fifo_queueing(self, sim):
        res = Resource(sim, 1)
        order = []

        def user(tag, hold):
            yield res.acquire()
            order.append(("start", tag, sim.now))
            yield sim.timeout(hold)
            res.release()

        for i in range(3):
            sim.process(user(i, 10))
        sim.run()
        assert order == [("start", 0, 0), ("start", 1, 10), ("start", 2, 20)]

    def test_multi_unit_acquire_waits_for_all_units(self, sim):
        res = Resource(sim, 4)
        events = []

        def small(tag):
            yield res.acquire(1)
            yield sim.timeout(5)
            res.release(1)
            events.append((tag, sim.now))

        def big():
            yield res.acquire(4)
            events.append(("big", sim.now))
            res.release(4)

        sim.process(small("a"))
        sim.process(small("b"))
        sim.process(big())
        sim.run()
        # big must wait until both singles released at t=5
        assert ("big", 5) in events

    def test_big_request_not_starved_by_later_small_ones(self, sim):
        res = Resource(sim, 2)
        order = []

        def holder():
            yield res.acquire(2)
            yield sim.timeout(10)
            res.release(2)

        def big():
            yield sim.timeout(1)
            yield res.acquire(2)
            order.append(("big", sim.now))
            res.release(2)

        def small():
            yield sim.timeout(2)
            yield res.acquire(1)
            order.append(("small", sim.now))
            res.release(1)

        sim.process(holder())
        sim.process(big())
        sim.process(small())
        sim.run()
        assert order[0][0] == "big"  # FIFO: big asked first

    def test_over_release_rejected(self, sim):
        res = Resource(sim, 1)
        with pytest.raises(SimulationError):
            res.release()

    def test_acquire_more_than_capacity_rejected(self, sim):
        res = Resource(sim, 2)
        with pytest.raises(ValueError):
            res.acquire(3)

    def test_invalid_capacity_rejected(self, sim):
        with pytest.raises(ValueError):
            Resource(sim, 0)

    @given(
        capacity=st.integers(1, 5),
        holds=st.lists(st.floats(0.1, 5.0), min_size=1, max_size=20),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_never_exceeds_capacity(self, capacity, holds):
        sim = Simulator()
        res = Resource(sim, capacity)
        peak = []

        def user(hold):
            yield res.acquire()
            peak.append(res.in_use)
            yield sim.timeout(hold)
            res.release()

        for h in holds:
            sim.process(user(h))
        sim.run()
        assert max(peak) <= capacity
        assert res.in_use == 0


class TestStore:
    def test_put_then_get(self, sim):
        store = Store(sim)
        store.put("x")
        got = []

        def getter():
            got.append((yield store.get()))

        sim.process(getter())
        sim.run()
        assert got == ["x"]

    def test_get_blocks_until_put(self, sim):
        store = Store(sim)
        got = []

        def getter():
            item = yield store.get()
            got.append((item, sim.now))

        def putter():
            yield sim.timeout(4)
            store.put("late")

        sim.process(getter())
        sim.process(putter())
        sim.run()
        assert got == [("late", 4)]

    def test_fifo_item_order(self, sim):
        store = Store(sim)
        for i in range(5):
            store.put(i)
        got = []

        def drain():
            for _ in range(5):
                got.append((yield store.get()))

        sim.process(drain())
        sim.run()
        assert got == [0, 1, 2, 3, 4]

    def test_capacity_blocks_putter(self, sim):
        store = Store(sim, capacity=1)
        timeline = []

        def producer():
            yield store.put("a")
            timeline.append(("a", sim.now))
            yield store.put("b")
            timeline.append(("b", sim.now))

        def consumer():
            yield sim.timeout(5)
            yield store.get()

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert timeline == [("a", 0), ("b", 5)]

    def test_len_and_items(self, sim):
        store = Store(sim)
        store.put(1)
        store.put(2)
        assert len(store) == 2
        assert store.items == (1, 2)


class TestTokenBucket:
    def test_paced_at_rate(self, sim):
        bucket = TokenBucket(sim, rate=100.0, burst=1.0)

        def taker():
            yield sim.process(bucket.take(500))
            return sim.now

        p = sim.process(taker())
        sim.run()
        # 500 units at 100/s with negligible burst ≈ 5 seconds.
        assert p.value == pytest.approx(5.0, rel=0.02)

    def test_burst_absorbs_initial_take(self, sim):
        bucket = TokenBucket(sim, rate=10.0, burst=100.0)

        def taker():
            yield sim.process(bucket.take(100))
            return sim.now

        p = sim.process(taker())
        sim.run()
        assert p.value == pytest.approx(0.0, abs=1e-9)

    def test_serialised_takers_share_rate(self, sim):
        bucket = TokenBucket(sim, rate=50.0, burst=1.0)
        finish = []

        def taker():
            yield sim.process(bucket.take(100))
            finish.append(sim.now)

        sim.process(taker())
        sim.process(taker())
        sim.run()
        assert finish[-1] == pytest.approx(4.0, rel=0.05)

    def test_invalid_rate_rejected(self, sim):
        with pytest.raises(ValueError):
            TokenBucket(sim, rate=0)
