"""Tests for the generic RPC layer."""

import pytest

from repro import rpc
from repro.vfs.api import FsError, NoEntry, Payload

from tests.conftest import build_cluster, drive


def make_server(cluster, threads=2, **cost_kw):
    costs = rpc.RpcCosts(**cost_kw)
    server = rpc.RpcServer(
        cluster.sim, cluster.storage[0], "svc", costs, threads=threads
    )
    return server


class TestBasics:
    def test_request_response_roundtrip(self, cluster):
        server = make_server(cluster)

        def echo(args, payload):
            return {"got": args["x"]}, payload
            yield  # pragma: no cover

        server.register("echo", echo)

        def scenario():
            result, reply = yield from rpc.call(
                cluster.clients[0], server, "echo", {"x": 5}, payload=Payload(b"abc")
            )
            return result, reply

        result, reply = drive(cluster.sim, scenario())
        assert result == {"got": 5}
        assert reply.data == b"abc"
        assert server.calls_served == 1

    def test_unknown_procedure_fails_fast(self, cluster):
        server = make_server(cluster)
        with pytest.raises(KeyError):
            # generator creation runs the handler lookup eagerly
            drive(cluster.sim, rpc.call(cluster.clients[0], server, "nope", {}))

    def test_duplicate_registration_rejected(self, cluster):
        server = make_server(cluster)
        server.register("p", lambda a, b: iter(()))
        with pytest.raises(ValueError):
            server.register("p", lambda a, b: iter(()))

    def test_fs_error_propagates_to_caller(self, cluster):
        server = make_server(cluster)

        def failing(args, payload):
            raise NoEntry("/missing")
            yield  # pragma: no cover

        server.register("fail", failing)

        def scenario():
            try:
                yield from rpc.call(cluster.clients[0], server, "fail", {})
            except NoEntry:
                return "caught"

        assert drive(cluster.sim, scenario()) == "caught"

    def test_error_reply_still_counts_and_frees_thread(self, cluster):
        server = make_server(cluster, threads=1)

        def failing(args, payload):
            raise FsError("nope")
            yield  # pragma: no cover

        def ok(args, payload):
            return "fine", None
            yield  # pragma: no cover

        server.register("fail", failing)
        server.register("ok", ok)

        def scenario():
            try:
                yield from rpc.call(cluster.clients[0], server, "fail", {})
            except FsError:
                pass
            result, _ = yield from rpc.call(cluster.clients[0], server, "ok", {})
            return result

        assert drive(cluster.sim, scenario()) == "fine"
        assert server.threads.in_use == 0


class TestTiming:
    def test_large_reply_paced_by_wire(self, cluster):
        """A 10 MB read reply takes at least the wire time."""
        server = make_server(cluster)

        def big(args, payload):
            return None, Payload.synthetic(10_000_000)
            yield  # pragma: no cover

        server.register("big", big)

        def scenario():
            t0 = cluster.sim.now
            yield from rpc.call(cluster.clients[0], server, "big", {})
            return cluster.sim.now - t0

        elapsed = drive(cluster.sim, scenario())
        assert elapsed >= 10_000_000 / 117e6

    def test_copy_costs_overlap_the_wire(self, cluster):
        """Per-byte CPU below wire pace must not add to transfer time."""
        cheap = make_server(cluster, server_per_byte=1e-9, client_per_byte=1e-9)

        def big(args, payload):
            return None, Payload.synthetic(10_000_000)
            yield  # pragma: no cover

        cheap.register("big", big)

        def scenario():
            t0 = cluster.sim.now
            yield from rpc.call(cluster.clients[0], cheap, "big", {})
            return cluster.sim.now - t0

        elapsed = drive(cluster.sim, scenario())
        wire = 10_000_000 / 117e6
        assert elapsed < wire * 1.4  # overlapped, not wire + copies

    def test_thread_pool_serialises_excess_calls(self, cluster):
        server = make_server(cluster, threads=1)

        def slow(args, payload):
            yield cluster.sim.timeout(1.0)
            return None, None

        server.register("slow", slow)
        ends = []

        def one():
            yield from rpc.call(cluster.clients[0], server, "slow", {})
            ends.append(cluster.sim.now)

        cluster.sim.process(one())
        cluster.sim.process(one())
        cluster.sim.run()
        assert ends[1] - ends[0] >= 1.0

    def test_asymmetric_per_byte_costs(self):
        costs = rpc.RpcCosts(
            server_per_byte=5e-9, server_per_byte_in=50e-9, server_per_byte_out=None
        )
        assert costs.per_byte_in == 50e-9
        assert costs.per_byte_out == 5e-9


class TestHandlerCrash:
    """Regression: a handler raising a non-FsError must not escape the
    reply path — the server converts it into a traced error reply, so
    ``calls_served`` and the tracer stay consistent."""

    def make_buggy_server(self, cluster):
        server = make_server(cluster)

        def boom(args, payload):
            raise ValueError("handler bug")
            yield  # pragma: no cover

        server.register("boom", boom)
        return server

    def test_converted_to_server_error_reply(self, cluster):
        server = self.make_buggy_server(cluster)

        def scenario():
            try:
                yield from rpc.call(cluster.clients[0], server, "boom", {})
            except rpc.RpcServerError as exc:
                return exc

        exc = drive(cluster.sim, scenario())
        assert isinstance(exc, rpc.RpcServerError)
        assert isinstance(exc, FsError)  # callers treat it like a status
        assert isinstance(exc.__cause__, ValueError)
        # The exchange completed: accounting did not drift.
        assert server.calls_served == 1
        assert server.errors == 1

    def test_crash_reply_is_traced(self, cluster):
        from repro.tracing import RpcTracer

        server = self.make_buggy_server(cluster)

        def scenario():
            try:
                yield from rpc.call(cluster.clients[0], server, "boom", {})
            except rpc.RpcServerError:
                pass

        with RpcTracer() as tracer:
            drive(cluster.sim, scenario())
        assert len(tracer.records) == 1
        assert tracer.records[0].error
