"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import AllOf, AnyOf, Event, Interrupt, Simulator, Timeout
from repro.sim.engine import SimulationError


@pytest.fixture
def sim():
    return Simulator()


class TestTimeoutsAndOrdering:
    def test_timeout_advances_clock(self, sim):
        log = []

        def proc():
            yield sim.timeout(2.5)
            log.append(sim.now)

        sim.process(proc())
        sim.run()
        assert log == [2.5]

    def test_zero_delay_allowed(self, sim):
        def proc():
            yield sim.timeout(0)
            return sim.now

        p = sim.process(proc())
        sim.run()
        assert p.value == 0.0

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            Timeout(sim, -1)

    def test_fifo_order_for_simultaneous_events(self, sim):
        order = []

        def proc(tag):
            yield sim.timeout(1.0)
            order.append(tag)

        for tag in ("a", "b", "c"):
            sim.process(proc(tag))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_nested_timeouts_accumulate(self, sim):
        times = []

        def proc():
            for _ in range(4):
                yield sim.timeout(0.5)
                times.append(sim.now)

        sim.process(proc())
        sim.run()
        assert times == [0.5, 1.0, 1.5, 2.0]

    def test_timeout_carries_value(self, sim):
        def proc():
            got = yield sim.timeout(1, value="payload")
            return got

        p = sim.process(proc())
        sim.run()
        assert p.value == "payload"


class TestRunSemantics:
    def test_run_until_deadline_stops_clock_at_deadline(self, sim):
        def proc():
            yield sim.timeout(100)

        sim.process(proc())
        sim.run(until=10)
        assert sim.now == 10

    def test_run_until_event_returns_value(self, sim):
        def proc():
            yield sim.timeout(3)
            return 42

        p = sim.process(proc())
        assert sim.run(until=p) == 42
        assert sim.now == 3

    def test_run_until_past_deadline_rejected(self, sim):
        sim.process(iter_timeout(sim, 5))
        sim.run()
        with pytest.raises(SimulationError):
            sim.run(until=1)

    def test_run_until_unreachable_event_raises(self, sim):
        ev = sim.event()  # never triggered
        with pytest.raises(SimulationError):
            sim.run(until=ev)

    def test_empty_run_is_noop(self, sim):
        sim.run()
        assert sim.now == 0.0

    def test_peek_reports_next_event_time(self, sim):
        sim.timeout(7)
        assert sim.peek() == 7
        sim.run()
        assert sim.peek() == float("inf")


class TestEvents:
    def test_manual_succeed_wakes_waiter(self, sim):
        ev = sim.event()
        got = []

        def waiter():
            got.append((yield ev))

        def trigger():
            yield sim.timeout(5)
            ev.succeed("done")

        sim.process(waiter())
        sim.process(trigger())
        sim.run()
        assert got == ["done"]

    def test_double_trigger_rejected(self, sim):
        ev = sim.event()
        ev.succeed(1)
        with pytest.raises(SimulationError):
            ev.succeed(2)

    def test_fail_propagates_into_waiting_process(self, sim):
        ev = sim.event()
        caught = []

        def waiter():
            try:
                yield ev
            except RuntimeError as exc:
                caught.append(str(exc))

        sim.process(waiter())
        ev.fail(RuntimeError("boom"))
        sim.run()
        assert caught == ["boom"]

    def test_unhandled_failure_surfaces_from_run(self, sim):
        ev = sim.event()
        ev.fail(RuntimeError("unhandled"))
        with pytest.raises(RuntimeError, match="unhandled"):
            sim.run()

    def test_fail_requires_exception_instance(self, sim):
        with pytest.raises(TypeError):
            sim.event().fail("not an exception")

    def test_value_unavailable_before_trigger(self, sim):
        with pytest.raises(SimulationError):
            _ = sim.event().value

    def test_callback_on_processed_event_runs_immediately(self, sim):
        ev = sim.event()
        ev.succeed(9)
        sim.run()
        seen = []
        ev.add_callback(lambda e: seen.append(e.value))
        assert seen == [9]


class TestProcesses:
    def test_process_return_value(self, sim):
        def proc():
            yield sim.timeout(1)
            return "result"

        p = sim.process(proc())
        sim.run()
        assert p.value == "result"

    def test_joining_another_process(self, sim):
        def child():
            yield sim.timeout(2)
            return 7

        def parent():
            value = yield sim.process(child())
            return value * 2

        p = sim.process(parent())
        sim.run()
        assert p.value == 14
        assert sim.now == 2

    def test_process_exception_fails_joiner(self, sim):
        def child():
            yield sim.timeout(1)
            raise ValueError("child died")

        def parent():
            try:
                yield sim.process(child())
            except ValueError:
                return "handled"

        p = sim.process(parent())
        sim.run()
        assert p.value == "handled"

    def test_unhandled_process_exception_surfaces(self, sim):
        def child():
            yield sim.timeout(1)
            raise ValueError("nobody catches this")

        sim.process(child())
        with pytest.raises(ValueError):
            sim.run()

    def test_yielding_non_event_is_an_error(self, sim):
        def proc():
            yield 42

        sim.process(proc())
        with pytest.raises(SimulationError):
            sim.run()

    def test_non_generator_rejected(self, sim):
        with pytest.raises(TypeError):
            sim.process(lambda: None)

    def test_is_alive_transitions(self, sim):
        def proc():
            yield sim.timeout(5)

        p = sim.process(proc())
        assert p.is_alive
        sim.run()
        assert not p.is_alive


class TestInterrupts:
    def test_interrupt_wakes_waiting_process(self, sim):
        log = []

        def sleeper():
            try:
                yield sim.timeout(100)
            except Interrupt as intr:
                log.append((sim.now, intr.cause))

        def interrupter(target):
            yield sim.timeout(3)
            target.interrupt("wake up")

        p = sim.process(sleeper())
        sim.process(interrupter(p))
        sim.run()
        assert log == [(3, "wake up")]

    def test_interrupted_process_can_continue(self, sim):
        def sleeper():
            try:
                yield sim.timeout(100)
            except Interrupt:
                pass
            yield sim.timeout(1)
            return sim.now

        p = sim.process(sleeper())

        def interrupter():
            yield sim.timeout(2)
            p.interrupt()

        sim.process(interrupter())
        sim.run()
        assert p.value == 3

    def test_interrupt_dead_process_rejected(self, sim):
        def quick():
            yield sim.timeout(1)

        p = sim.process(quick())
        sim.run()
        with pytest.raises(SimulationError):
            p.interrupt()


class TestConditions:
    def test_all_of_collects_values_in_order(self, sim):
        def make(delay, val):
            def proc():
                yield sim.timeout(delay)
                return val

            return sim.process(proc())

        a = make(3, "a")
        b = make(1, "b")

        def waiter():
            values = yield AllOf(sim, [a, b])
            return values

        p = sim.process(waiter())
        sim.run()
        assert p.value == ("a", "b")
        assert sim.now == 3

    def test_any_of_returns_first(self, sim):
        slow = sim.timeout(10, value="slow")
        fast = sim.timeout(2, value="fast")

        def waiter():
            idx, val = yield AnyOf(sim, [slow, fast])
            return idx, val

        p = sim.process(waiter())
        sim.run(until=p)
        assert p.value == (1, "fast")
        assert sim.now == 2

    def test_all_of_empty_fires_immediately(self, sim):
        def waiter():
            vals = yield AllOf(sim, [])
            return vals

        p = sim.process(waiter())
        sim.run()
        assert p.value == ()

    def test_all_of_fails_if_member_fails(self, sim):
        def bad():
            yield sim.timeout(1)
            raise RuntimeError("member failure")

        def waiter():
            try:
                yield AllOf(sim, [sim.process(bad()), sim.timeout(5)])
            except RuntimeError:
                return "caught"

        p = sim.process(waiter())
        sim.run(until=p)
        assert p.value == "caught"


def iter_timeout(sim, delay):
    yield sim.timeout(delay)


class TestDeterminism:
    def test_identical_runs_produce_identical_traces(self):
        def trace_run():
            sim = Simulator()
            trace = []

            def proc(tag, delays):
                for d in delays:
                    yield sim.timeout(d)
                    trace.append((tag, sim.now))

            sim.process(proc("x", [1, 2, 1]))
            sim.process(proc("y", [2, 1, 1]))
            sim.run()
            return trace

        assert trace_run() == trace_run()


class TestAnyOfDuplicateEvents:
    def test_duplicate_event_reports_first_index(self, sim):
        # Regression: the old self.events.index(event) lookup returned
        # the *first* position by scanning, which happened to be right,
        # but was O(n) per fire; the id->index map must preserve the
        # first-occurrence index for duplicates.
        t = Timeout(sim, 1.0, value="tick")

        def waiter():
            idx, value = yield AnyOf(sim, [t, t, sim.timeout(5)])
            return idx, value

        p = sim.process(waiter())
        sim.run(until=p)
        assert p.value == (0, "tick")

    def test_duplicate_already_fired_event(self, sim):
        fired = Event(sim)
        fired.succeed("v")

        def advance():
            yield sim.timeout(1)

        def waiter():
            yield sim.process(advance())  # let the event process
            idx, value = yield AnyOf(sim, [fired, fired])
            return idx, value

        p = sim.process(waiter())
        sim.run(until=p)
        assert p.value == (0, "v")

    def test_index_lookup_is_constant_time_structure(self, sim):
        events = [Timeout(sim, i + 1.0) for i in range(5)]
        cond = AnyOf(sim, events)
        assert cond._index[id(events[3])] == 3


class TestTimeoutReset:
    def test_reset_rearms_processed_timeout(self, sim):
        times = []

        def proc():
            t = sim.timeout(1.0)
            yield t
            times.append(sim.now)
            yield t.reset()  # same delay
            times.append(sim.now)
            yield t.reset(0.5, value="late")
            times.append(sim.now)
            return t._value

        p = sim.process(proc())
        sim.run(until=p)
        assert times == [1.0, 2.0, 2.5]
        assert p.value == "late"

    def test_reset_of_pending_timeout_rejected(self, sim):
        t = sim.timeout(1.0)
        with pytest.raises(SimulationError):
            t.reset()

    def test_reset_returns_self(self, sim):
        def proc():
            t = sim.timeout(0.1)
            yield t
            assert t.reset(0.2) is t
            yield t

        sim.run(until=sim.process(proc()))


class TestCallbackFastPath:
    def test_single_waiter_uses_fast_slot(self, sim):
        ev = Event(sim)
        calls = []
        ev.add_callback(calls.append)
        assert ev._cb1 is not None
        assert not ev._cbs
        ev.succeed("x")
        sim.run()
        assert calls == [ev]

    def test_overflow_to_list_preserves_order(self, sim):
        ev = Event(sim)
        order = []
        ev.add_callback(lambda e: order.append(1))
        ev.add_callback(lambda e: order.append(2))
        ev.add_callback(lambda e: order.append(3))
        ev.succeed()
        sim.run()
        assert order == [1, 2, 3]

    def test_discard_matches_equal_bound_methods(self, sim):
        # Bound methods are re-created per attribute access: discard
        # must compare by equality or interrupt() leaks stale resumes.
        class Holder:
            def cb(self, ev):
                pass

        h = Holder()
        ev = Event(sim)
        ev.add_callback(h.cb)
        ev._discard_callback(h.cb)  # a *different* bound-method object
        assert ev._cb1 is None and not ev._cbs

    def test_callback_after_processed_fires_immediately(self, sim):
        ev = Event(sim)
        ev.succeed("done")
        sim.run()
        seen = []
        ev.add_callback(seen.append)
        assert seen == [ev]


class TestEngineStats:
    def test_counts_scheduled_and_processed(self):
        sim = Simulator()

        def proc():
            for _ in range(10):
                yield sim.timeout(0.1)

        sim.run(until=sim.process(proc()))
        assert sim.stats.events_processed >= 10
        assert sim.stats.events_scheduled >= sim.stats.events_processed
        assert sim.stats.peak_heap >= 1
        assert sim.stats.wall_seconds > 0.0

    def test_as_dict_keys(self):
        sim = Simulator()
        d = sim.stats.as_dict()
        assert set(d) == {
            "events_scheduled",
            "events_processed",
            "peak_heap",
            "wall_seconds",
            "fast_lane_events",
            "heap_events",
        }

    def test_timeout_reuse_avoids_new_schedules(self):
        # A reset timeout re-enters the heap but allocates no event:
        # scheduled count still rises (it is enqueued), but the object
        # count doesn't - sanity-check via identity.
        sim = Simulator()
        ids = set()

        def proc():
            t = sim.timeout(0.1)
            for _ in range(5):
                yield t
                ids.add(id(t))
                t.reset()

        sim.run(until=sim.process(proc()))
        assert len(ids) == 1
