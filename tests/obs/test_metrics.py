"""Metrics registry and sampler semantics."""

import pytest

from repro.obs import Counter, MetricsRegistry, Sampler
from repro.sim import Simulator


class TestCounter:
    def test_increments(self):
        c = Counter("x")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_monotonic(self):
        c = Counter("x")
        with pytest.raises(ValueError):
            c.inc(-1)


class TestRegistry:
    def test_counter_is_get_or_create(self):
        reg = MetricsRegistry()
        a = reg.counter("n.hits")
        b = reg.counter("n.hits")
        assert a is b
        a.inc(3)
        assert reg.collect()["n.hits"] == 3

    def test_gauge_reads_live_value(self):
        reg = MetricsRegistry()
        box = {"v": 1}
        reg.gauge("n.depth", lambda: box["v"])
        assert reg.collect()["n.depth"] == 1
        box["v"] = 7
        assert reg.collect()["n.depth"] == 7

    def test_duplicate_gauge_rejected(self):
        reg = MetricsRegistry()
        reg.gauge("g", lambda: 0)
        with pytest.raises(ValueError):
            reg.gauge("g", lambda: 1)

    def test_cross_kind_name_rejected(self):
        reg = MetricsRegistry()
        reg.counter("m")
        with pytest.raises(ValueError):
            reg.gauge("m", lambda: 0)
        with pytest.raises(ValueError):
            reg.histogram("m")

    def test_histogram_summary(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat")
        assert h.summary() == {"count": 0}
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        s = h.summary()
        assert s["count"] == 4
        assert s["mean"] == pytest.approx(2.5)
        assert s["p50"] == 2.0
        assert s["max"] == 4.0

    def test_collect_sorted_and_names(self):
        reg = MetricsRegistry()
        reg.counter("b")
        reg.gauge("a", lambda: 0)
        reg.histogram("c")
        assert reg.names() == ["a", "b", "c"]
        assert list(reg.collect()) == ["a", "b", "c"]

    def test_sample_numeric_excludes_histograms(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.histogram("h").observe(1.0)
        assert reg.sample_numeric() == {"c": 1}


def _run_sampled(interval=0.5, horizon=2.0):
    """One deterministic run: a process bumps a counter every 0.3 s."""
    sim = Simulator()
    reg = MetricsRegistry()
    c = reg.counter("work")

    def worker():
        while sim.now < horizon:
            yield sim.timeout(0.3)
            c.inc()

    proc = sim.process(worker())
    with Sampler(sim, reg, interval=interval) as sampler:
        sim.run(until=proc)
    return sampler


class TestSampler:
    def test_samples_at_interval_with_t0_and_final(self):
        sampler = _run_sampled()
        times = [t for t, _ in sampler.samples]
        # t0, then every 0.5s, then the final stop() sample at 2.1.
        assert times[0] == 0.0
        assert times[:-1] == pytest.approx([0.0, 0.5, 1.0, 1.5, 2.0])
        assert times[-1] == pytest.approx(2.1)

    def test_series_is_monotonic_counter_trace(self):
        sampler = _run_sampled()
        vals = [v for _, v in sampler.series("work")]
        assert vals == sorted(vals)
        assert vals[-1] == 7  # 0.3s ticks until 2.0: 2.1/0.3

    def test_deterministic_across_runs(self):
        a, b = _run_sampled(), _run_sampled()
        assert a.samples == b.samples

    def test_as_dict_shape(self):
        d = _run_sampled().as_dict()
        assert d["interval"] == 0.5
        assert len(d["t"]) == len(d["series"]["work"])

    def test_single_use(self):
        sim = Simulator()
        sampler = Sampler(sim, MetricsRegistry(), interval=1.0)
        sampler.start()
        sampler.stop()
        with pytest.raises(RuntimeError):
            sampler.start()

    def test_stop_disarms_tick(self):
        """After stop(), pending ticks are no-ops and nothing accrues."""
        sim = Simulator()
        sampler = Sampler(sim, MetricsRegistry(), interval=0.5).start()
        proc = sim.process(iter(sim.timeout(0.7) for _ in range(1)))
        sim.run(until=proc)
        sampler.stop()
        n = len(sampler.samples)
        sim.run(until=sim.process(iter(sim.timeout(3.0) for _ in range(1))))
        assert len(sampler.samples) == n

    def test_bad_interval_rejected(self):
        with pytest.raises(ValueError):
            Sampler(Simulator(), MetricsRegistry(), interval=0.0)
