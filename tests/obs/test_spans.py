"""Span collector semantics and Chrome trace-event export."""

import json

import pytest

from repro.obs import SpanCollector, spans as obs_spans
from repro.sim import Simulator


class TestCollectorInstall:
    def test_install_and_uninstall(self):
        sim = Simulator()
        assert obs_spans.ACTIVE is None
        with SpanCollector(sim) as col:
            assert obs_spans.ACTIVE is col
            assert obs_spans.current_collector() is col
        assert obs_spans.ACTIVE is None

    def test_second_install_rejected(self):
        sim = Simulator()
        with SpanCollector(sim):
            with pytest.raises(RuntimeError):
                SpanCollector(sim).__enter__()
        assert obs_spans.ACTIVE is None

    def test_uninstalled_by_default(self):
        # The pay-for-what-you-use contract: no collector unless one is
        # explicitly installed.
        assert obs_spans.ACTIVE is None


class TestRecording:
    def test_begin_end_times_and_args(self):
        sim = Simulator()
        with SpanCollector(sim) as col:

            def work():
                span = col.begin("read", "client-op", "c0", nbytes=4096)
                yield sim.timeout(1.5)
                col.end(span, ok=True)

            sim.run(until=sim.process(work()))
        (span,) = col.spans
        assert (span.start, span.end) == (0.0, 1.5)
        assert span.duration == 1.5
        assert span.args == {"nbytes": 4096, "ok": True}

    def test_concurrent_spans_get_distinct_lanes(self):
        sim = Simulator()
        with SpanCollector(sim) as col:

            def work(d):
                span = col.begin("io", "disk", "s0")
                yield sim.timeout(d)
                col.end(span)

            procs = [sim.process(work(1.0)), sim.process(work(2.0))]
            sim.run(until=sim.all_of(procs))
        lanes = {s.lane for s in col.spans}
        assert len(lanes) == 2  # one lane per concurrent process

    def test_by_category(self):
        sim = Simulator()
        with SpanCollector(sim) as col:
            col.end(col.begin("a", "rpc", "n"))
            col.end(col.begin("b", "rpc", "n"))
            col.end(col.begin("c", "disk", "n"))
        cats = {c: len(s) for c, s in col.by_category().items()}
        assert cats == {"rpc": 2, "disk": 1}


class TestChromeTrace:
    def make(self):
        sim = Simulator()
        with SpanCollector(sim) as col:

            def work():
                span = col.begin("read", "client-op", "c0", path="/f")
                yield sim.timeout(0.002)
                col.end(span)
                col.begin("orphan", "rpc", "s0")  # never ended

            sim.run(until=sim.process(work()))
        return col

    def test_event_wellformedness(self, tmp_path):
        col = self.make()
        path = tmp_path / "run.trace.json"
        col.write_chrome_trace(path)
        doc = json.loads(path.read_text())
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        events = doc["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        complete = [e for e in events if e["ph"] == "X"]
        assert len(meta) + len(complete) == len(events)
        # One process_name record per track, pids match the X events.
        assert {m["args"]["name"] for m in meta} == {"c0", "s0"}
        assert {e["pid"] for e in complete} <= {m["pid"] for m in meta}
        for e in complete:
            assert set(e) >= {"name", "cat", "ph", "ts", "dur", "pid", "tid"}
            assert e["ts"] >= 0 and e["dur"] >= 0

    def test_microsecond_scaling(self):
        col = self.make()
        read = next(
            e for e in col.chrome_trace()["traceEvents"] if e.get("name") == "read"
        )
        assert read["dur"] == pytest.approx(2000.0)  # 0.002 s -> 2000 us

    def test_unfinished_span_marked_not_dropped(self):
        col = self.make()
        orphan = next(
            e for e in col.chrome_trace()["traceEvents"] if e.get("name") == "orphan"
        )
        assert orphan["dur"] == 0
        assert orphan["args"]["unfinished"] is True

    def test_nonserialisable_args_stringified(self, tmp_path):
        sim = Simulator()
        with SpanCollector(sim) as col:
            col.end(col.begin("x", "rpc", "n", obj=object()))
        path = tmp_path / "t.json"
        col.write_chrome_trace(path)
        json.loads(path.read_text())  # must not raise
