"""End-to-end functional tests of the PVFS2 stack on the simulator."""

import pytest

from repro.pvfs2 import Pvfs2Config, Pvfs2System, SimpleStripe
from repro.vfs import Exists, NoEntry, Payload
from repro.vfs.api import FsError

from tests.conftest import build_cluster, drive


def make_fs(cluster, **cfg_kw):
    cfg_kw.setdefault("stripe_size", 64)  # small stripes exercise striping
    cfg = Pvfs2Config(**cfg_kw)
    return Pvfs2System(cluster.sim, cluster.storage, cfg)


@pytest.fixture
def fs(cluster):
    return make_fs(cluster)


@pytest.fixture
def client(cluster, fs):
    c = fs.make_client(cluster.clients[0])
    drive(cluster.sim, c.mount())
    return c


class TestBasicIo:
    def test_create_write_read_roundtrip(self, cluster, client):
        def scenario():
            f = yield from client.create("/file")
            yield from client.write(f, 0, Payload(b"hello pvfs2"))
            data = yield from client.read(f, 0, 100)
            return data

        out = drive(cluster.sim, scenario())
        assert out.data == b"hello pvfs2"

    def test_data_is_striped_across_daemons(self, cluster, fs, client):
        def scenario():
            f = yield from client.create("/striped")
            # 200 bytes over 64-byte stripes on 3 servers
            yield from client.write(f, 0, Payload(bytes(range(200))))

        drive(cluster.sim, scenario())
        sizes = [sum(fd.size for fd in d.bstreams.values()) for d in fs.daemons]
        assert sizes == [64 + 8, 64, 64]  # stripes 0 and 3 land on server 0

    def test_stripe_content_matches_distribution(self, cluster, fs, client):
        data = bytes(range(200))

        def scenario():
            f = yield from client.create("/striped2")
            yield from client.write(f, 0, Payload(data))
            return f

        f = drive(cluster.sim, scenario())
        dist = SimpleStripe(3, 64)
        for run in dist.runs(0, 200):
            daemon = fs.daemons[run.server]
            dfile = f.state["dfiles"][run.server]
            stored = daemon.bstreams[dfile].read(run.local, run.length)
            assert stored.data == data[run.logical : run.logical + run.length]

    def test_read_at_offset_and_past_eof(self, cluster, client):
        def scenario():
            f = yield from client.create("/f")
            yield from client.write(f, 0, Payload(b"0123456789"))
            mid = yield from client.read(f, 4, 3)
            tail = yield from client.read(f, 8, 100)
            beyond = yield from client.read(f, 50, 10)
            return mid, tail, beyond

        mid, tail, beyond = drive(cluster.sim, scenario())
        assert mid.data == b"456"
        assert tail.data == b"89"
        assert beyond.nbytes == 0

    def test_sparse_write_reads_back_zero_filled(self, cluster, client):
        def scenario():
            f = yield from client.create("/sparse")
            yield from client.write(f, 150, Payload(b"XY"))
            return (yield from client.read(f, 0, 152))

        out = drive(cluster.sim, scenario())
        assert out.nbytes == 152
        assert out.data == b"\x00" * 150 + b"XY"

    def test_cross_client_visibility(self, cluster, fs):
        c0 = fs.make_client(cluster.clients[0])
        c1 = fs.make_client(cluster.clients[1])

        def scenario():
            yield from c0.mount()
            yield from c1.mount()
            f0 = yield from c0.create("/shared")
            yield from c0.write(f0, 0, Payload(b"written by c0"))
            f1 = yield from c1.open("/shared")
            return (yield from c1.read(f1, 0, 64))

        out = drive(cluster.sim, scenario())
        assert out.data == b"written by c0"

    def test_synthetic_payload_tracks_size_only(self, cluster, client):
        def scenario():
            f = yield from client.create("/big")
            yield from client.write(f, 0, Payload.synthetic(1_000_000))
            attrs = yield from client.getattr("/big")
            data = yield from client.read(f, 500_000, 1000)
            return attrs, data

        attrs, data = drive(cluster.sim, scenario())
        assert attrs.size == 1_000_000
        assert data.is_synthetic and data.nbytes == 1000

    def test_write_returns_bytes_accepted(self, cluster, client):
        def scenario():
            f = yield from client.create("/n")
            return (yield from client.write(f, 0, Payload(b"abc")))

        assert drive(cluster.sim, scenario()) == 3


class TestMetadata:
    def test_getattr_size_across_stripes(self, cluster, client):
        def scenario():
            f = yield from client.create("/f")
            yield from client.write(f, 0, Payload(bytes(137)))
            attrs = yield from client.getattr("/f")
            return attrs

        attrs = drive(cluster.sim, scenario())
        assert attrs.size == 137
        assert not attrs.is_dir

    def test_mkdir_readdir(self, cluster, client):
        def scenario():
            yield from client.mkdir("/d")
            yield from client.create("/d/b")
            yield from client.create("/d/a")
            return (yield from client.readdir("/d"))

        assert drive(cluster.sim, scenario()) == ["a", "b"]

    def test_create_existing_fails(self, cluster, client):
        def scenario():
            yield from client.create("/dup")
            try:
                yield from client.create("/dup")
            except Exists:
                return "exists"

        assert drive(cluster.sim, scenario()) == "exists"

    def test_open_missing_fails(self, cluster, client):
        def scenario():
            try:
                yield from client.open("/ghost")
            except NoEntry:
                return "noent"

        assert drive(cluster.sim, scenario()) == "noent"

    def test_remove_frees_bstreams(self, cluster, fs, client):
        def scenario():
            f = yield from client.create("/gone")
            yield from client.write(f, 0, Payload(b"x" * 300))
            yield from client.remove("/gone")

        drive(cluster.sim, scenario())
        assert all(not d.bstreams or all(fd.size == 0 for fd in d.bstreams.values())
                   for d in fs.daemons) or all(len(d.bstreams) == 0 for d in fs.daemons)

    def test_rename(self, cluster, client):
        def scenario():
            f = yield from client.create("/old")
            yield from client.write(f, 0, Payload(b"content"))
            yield from client.rename("/old", "/new")
            g = yield from client.open("/new")
            return (yield from client.read(g, 0, 10))

        assert drive(cluster.sim, scenario()).data == b"content"

    def test_truncate(self, cluster, client):
        def scenario():
            f = yield from client.create("/t")
            yield from client.write(f, 0, Payload(bytes(range(200))))
            yield from client.truncate("/t", 70)
            attrs = yield from client.getattr("/t")
            data = yield from client.read(f, 0, 200)
            return attrs, data

        attrs, data = drive(cluster.sim, scenario())
        assert attrs.size == 70
        assert data.data == bytes(range(70))

    def test_create_allocates_dfile_on_every_daemon(self, cluster, fs, client):
        def scenario():
            return (yield from client.create("/alloc"))

        f = drive(cluster.sim, scenario())
        assert len(f.state["dfiles"]) == len(fs.daemons)
        for daemon, dfile in zip(fs.daemons, f.state["dfiles"]):
            assert dfile in daemon.bstreams


class TestDurability:
    def test_fsync_drains_dirty_data_to_disk(self, cluster, fs, client):
        def scenario():
            f = yield from client.create("/durable")
            yield from client.write(f, 0, Payload.synthetic(4_000_000))
            yield from client.fsync(f)

        drive(cluster.sim, scenario())
        assert all(d.dirty_backlog <= fs.cfg.disk_cache_bytes for d in fs.daemons)
        cluster.sim.run()  # drain the flushers
        disk_bytes = sum(n.disk.write_bytes for n in cluster.storage)
        # payload plus a handful of 4 KB metadata journal writes
        assert 4_000_000 <= disk_bytes <= 4_000_000 + 16 * 4096

    def test_write_without_fsync_may_leave_backlog_until_flusher_runs(
        self, cluster, fs, client
    ):
        def scenario():
            f = yield from client.create("/lazy")
            yield from client.write(f, 0, Payload.synthetic(1_000_000))

        drive(cluster.sim, scenario())
        # run() drained all events, so the flusher finished too;
        # the invariant is that data eventually reaches disk unprompted.
        payload_bytes = sum(n.disk.write_bytes for n in cluster.storage)
        assert 1_000_000 <= payload_bytes <= 1_000_000 + 16 * 4096

    def test_fsync_time_reflects_disk_speed(self, cluster, fs, client):
        """A large write + fsync must wait for the platter drain (minus
        the per-daemon write-cache allowance)."""
        total = 120_000_000

        def scenario():
            f = yield from client.create("/timed")
            yield from client.write(f, 0, Payload.synthetic(total))
            yield from client.fsync(f)
            return cluster.sim.now

        t = drive(cluster.sim, scenario())
        must_drain = total - 3 * fs.cfg.disk_cache_bytes
        assert t >= must_drain / (3 * 24e6)


class TestLocalOnlyConduit:
    def test_conduit_rejects_remote_io(self, cluster, fs):
        conduit = fs.make_client(cluster.storage[1], local_only=True)

        def scenario():
            yield from conduit.mount()
            f = yield from conduit.create("/c")  # create is MDS-side, fine
            try:
                # stripe 0 lives on server 0, but conduit is on storage[1]
                yield from conduit.write(f, 0, Payload(b"x"))
            except FsError:
                return "refused"

        assert drive(cluster.sim, scenario()) == "refused"

    def test_conduit_allows_local_io(self, cluster, fs):
        conduit = fs.make_client(cluster.storage[1], local_only=True)

        def scenario():
            yield from conduit.mount()
            f = yield from conduit.create("/c2")
            # stripe 1 (offset 64..127) lives on server index 1
            yield from conduit.write(f, 64, Payload(b"local!"))
            return (yield from conduit.read(f, 64, 6))

        assert drive(cluster.sim, scenario()).data == b"local!"
