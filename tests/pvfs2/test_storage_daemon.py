"""Direct unit tests of the storage daemon's write-behind machinery."""

import pytest

from repro import rpc
from repro.pvfs2 import Pvfs2Config, StorageDaemon
from repro.vfs import Payload

from tests.conftest import build_cluster, drive


def make_daemon(cluster, **cfg_kw):
    cfg_kw.setdefault("stripe_size", 64 * 1024)
    cfg = Pvfs2Config(**cfg_kw)
    return StorageDaemon(cluster.sim, cluster.storage[0], cfg)


def call(cluster, daemon, proc, args, payload=None):
    def gen():
        return (yield from rpc.call(cluster.clients[0], daemon.rpc, proc, args, payload))

    return drive(cluster.sim, gen())


class TestWriteBehind:
    def test_write_lands_in_bstream_and_drains(self, cluster):
        daemon = make_daemon(cluster)
        call(cluster, daemon, "write", {"handle": 1, "offset": 0, "setup": True},
             Payload(b"abc"))
        assert daemon.bstreams[1].read(0, 3).data == b"abc"
        cluster.sim.run()  # drain
        assert daemon.dirty_backlog == 0
        assert daemon.persisted_bytes(1) == 3

    @staticmethod
    def _slow_disk_cluster():
        """Cluster whose disk is so slow the flusher cannot drain
        between RPCs — keeps writes dirty long enough to observe."""
        from repro.sim import DiskSpec
        from tests.conftest import build_cluster

        return build_cluster(disk=DiskSpec(read_bw=1e5, write_bw=1e5, positioning=0.5))

    def test_overwrite_of_queued_bytes_needs_no_new_tokens(self):
        """The flusher grabs the FIRST extent immediately; a later,
        still-queued extent can be overwritten for free."""
        cluster = self._slow_disk_cluster()
        daemon = make_daemon(cluster)
        # extent A: the flusher picks it up and sits on the slow disk
        call(cluster, daemon, "write", {"handle": 1, "offset": 0}, Payload(b"A" * 500))
        # extent B: queued behind A
        call(cluster, daemon, "write", {"handle": 1, "offset": 100_000}, Payload(b"x" * 1000))
        used = daemon.dirty_tokens.in_use
        # overwrite the queued extent: no new tokens, content updated
        call(cluster, daemon, "write", {"handle": 1, "offset": 100_000}, Payload(b"y" * 1000))
        assert daemon.dirty_tokens.in_use == used
        assert daemon.bstreams[1].read(100_000, 4).data == b"yyyy"

    def test_partial_overlap_accounts_only_new_bytes(self):
        cluster = self._slow_disk_cluster()
        daemon = make_daemon(cluster)
        call(cluster, daemon, "write", {"handle": 1, "offset": 0}, Payload(b"A" * 500))
        call(cluster, daemon, "write", {"handle": 1, "offset": 100_000}, Payload(b"a" * 1000))
        backlog = daemon.dirty_backlog
        # half-overlapping extent: only the new 500 bytes are accounted
        call(cluster, daemon, "write", {"handle": 1, "offset": 100_500}, Payload(b"b" * 1000))
        assert daemon.dirty_backlog == backlog + 500
        cluster.sim.run()
        assert daemon.persisted_bytes(1) == 500 + 1500

    def test_contiguous_writes_merge_into_one_disk_io(self, cluster):
        daemon = make_daemon(cluster)
        disk = cluster.storage[0].disk
        for i in range(8):
            call(
                cluster,
                daemon,
                "write",
                {"handle": 1, "offset": i * 1000},
                Payload.synthetic(1000),
            )
        cluster.sim.run()
        # interval merging: the flusher wrote few large extents, not 8
        assert disk.requests <= 3

    def test_flush_returns_fast_under_cache_allowance(self, cluster):
        daemon = make_daemon(cluster, disk_cache_bytes=1 << 20)
        call(cluster, daemon, "write", {"handle": 1, "offset": 0},
             Payload.synthetic(100_000))
        t0 = cluster.sim.now
        call(cluster, daemon, "flush", {"handle": 1})
        # no platter wait: only RPC + setup costs
        assert cluster.sim.now - t0 < 0.01

    def test_flush_waits_when_backlog_exceeds_allowance(self, cluster):
        daemon = make_daemon(cluster, disk_cache_bytes=64 * 1024)

        def scenario():
            yield from rpc.call(
                cluster.clients[0],
                daemon.rpc,
                "write",
                {"handle": 1, "offset": 0},
                Payload.synthetic(8 * 1024 * 1024 // 100),
            )
            # pile up more via many writes
            for i in range(1, 40):
                yield from rpc.call(
                    cluster.clients[0],
                    daemon.rpc,
                    "write",
                    {"handle": 1, "offset": i * 81920},
                    Payload.synthetic(81920),
                )
            t0 = cluster.sim.now
            yield from rpc.call(cluster.clients[0], daemon.rpc, "flush", {"handle": 1})
            return cluster.sim.now - t0

        waited = drive(cluster.sim, scenario())
        assert waited > 0.02  # actually sat at the barrier

    def test_reads_see_unflushed_writes(self, cluster):
        daemon = make_daemon(cluster)
        call(cluster, daemon, "write", {"handle": 7, "offset": 0}, Payload(b"fresh"))
        result, data = call(
            cluster, daemon, "read", {"handle": 7, "offset": 0, "nbytes": 5}
        )
        assert data.data == b"fresh"

    def test_read_of_missing_bstream_returns_empty(self, cluster):
        daemon = make_daemon(cluster)
        result, data = call(
            cluster, daemon, "read", {"handle": 99, "offset": 0, "nbytes": 10}
        )
        assert result == 0
        assert data.nbytes == 0


class TestElevator:
    def test_sweep_prefers_forward_order(self, cluster):
        """Out-of-order arrivals drain in ascending offset order."""
        daemon = make_daemon(cluster)
        disk = cluster.storage[0].disk
        offsets = [5_000_000, 1_000_000, 3_000_000]
        for off in offsets:
            call(
                cluster,
                daemon,
                "write",
                {"handle": 1, "offset": off},
                Payload.synthetic(4096),
            )
        t_before = disk.busy_time
        cluster.sim.run()
        # Three extents at 2 MB and 4 MB forward gaps: sweeps, not full
        # seeks, after the first positioning.
        spent = disk.busy_time - t_before
        full_seeks = 3 * disk.spec.positioning
        assert spent < full_seeks + 0.003

    def test_multiple_handles_spread_over_disks(self, cluster):
        """With two disks, bstreams stripe across them by handle."""
        from repro.sim import DiskSpec, Network, Node, NodeSpec, Simulator

        sim = Simulator()
        net = Network(sim)
        node = Node(
            sim,
            NodeSpec(name="dual", disks=(DiskSpec(), DiskSpec()), io_bus_bw=30e6),
            net,
        )
        client_node = Node(sim, NodeSpec(name="cl"), net)
        daemon = StorageDaemon(sim, node, Pvfs2Config())

        def scenario():
            for handle in (2, 3):
                yield from rpc.call(
                    client_node,
                    daemon.rpc,
                    "write",
                    {"handle": handle, "offset": 0},
                    Payload.synthetic(1_000_000),
                )

        proc = sim.process(scenario())
        sim.run(until=proc)
        sim.run()
        assert node.disks[0].write_bytes == 1_000_000
        assert node.disks[1].write_bytes == 1_000_000


class TestCrashAccounting:
    def test_crash_resets_tokens_and_pending(self, cluster):
        daemon = make_daemon(cluster)
        call(cluster, daemon, "write", {"handle": 1, "offset": 0},
             Payload.synthetic(500_000))
        assert daemon.dirty_backlog > 0 or daemon.dirty_tokens.in_use >= 0
        daemon.crash()
        assert daemon.dirty_backlog == 0
        assert daemon.dirty_tokens.in_use == 0
        # daemon continues to serve (content is size-only by now: the
        # earlier synthetic write degraded the bstream, as designed)
        call(cluster, daemon, "write", {"handle": 1, "offset": 0}, Payload(b"again"))
        assert daemon.bstreams[1].read(0, 5).nbytes == 5

    def test_crash_preserves_persisted_ranges(self, cluster):
        daemon = make_daemon(cluster)
        call(cluster, daemon, "write", {"handle": 1, "offset": 0}, Payload(b"K" * 4096))
        cluster.sim.run()  # fully drained
        call(cluster, daemon, "write", {"handle": 1, "offset": 4096}, Payload(b"L" * 4096))
        daemon.crash()  # second write unflushed
        kept = daemon.bstreams[1].read(0, 8192).data
        assert kept[:4096] == b"K" * 4096
        assert kept[4096:] == b"\x00" * 4096
