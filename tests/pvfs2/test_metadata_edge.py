"""Edge-case tests for the PVFS2 metadata server and journalling."""

import pytest

from repro import rpc
from repro.pvfs2 import Pvfs2Config, Pvfs2System, VarStrip
from repro.vfs import Exists, NoEntry, Payload

from tests.conftest import build_cluster, drive


@pytest.fixture
def fs(cluster):
    return Pvfs2System(cluster.sim, cluster.storage, Pvfs2Config(stripe_size=64))


def mds_call(cluster, fs, proc, args):
    def gen():
        return (yield from rpc.call(cluster.clients[0], fs.mds.rpc, proc, args))

    return drive(cluster.sim, gen())


class TestMetadataWire:
    def test_mount_reports_server_count(self, cluster, fs):
        result, _ = mds_call(cluster, fs, "mount", {})
        assert result["nservers"] == 3

    def test_create_with_explicit_varstrip(self, cluster, fs):
        pattern = [(0, 16), (2, 48)]
        result, _ = mds_call(
            cluster,
            fs,
            "create",
            {"path": "/vs", "dist": VarStrip(3, pattern).describe()},
        )
        assert result["dist"]["type"] == "varstrip"
        assert [tuple(p) for p in result["dist"]["pattern"]] == pattern

    def test_default_distribution_rotates(self, cluster, fs):
        starts = []
        for i in range(4):
            result, _ = mds_call(cluster, fs, "create", {"path": f"/r{i}"})
            starts.append(result["dist"]["start_server"])
        assert starts == [0, 1, 2, 0]

    def test_lookup_handle_matches_lookup(self, cluster, fs):
        created, _ = mds_call(cluster, fs, "create", {"path": "/h"})
        by_path, _ = mds_call(cluster, fs, "lookup", {"path": "/h"})
        by_handle, _ = mds_call(cluster, fs, "lookup_handle", {"handle": created["handle"]})
        assert by_path["dfiles"] == by_handle["dfiles"]

    def test_remove_then_lookup_fails(self, cluster, fs):
        mds_call(cluster, fs, "create", {"path": "/gone"})
        mds_call(cluster, fs, "remove", {"path": "/gone"})
        with pytest.raises(NoEntry):
            mds_call(cluster, fs, "lookup", {"path": "/gone"})

    def test_duplicate_create_raises(self, cluster, fs):
        mds_call(cluster, fs, "create", {"path": "/dup"})
        with pytest.raises(Exists):
            mds_call(cluster, fs, "create", {"path": "/dup"})


class TestJournalling:
    def test_creates_journal_to_disk(self, cluster, fs):
        disk_writes_before = cluster.storage[0].disk.write_bytes
        for i in range(5):
            mds_call(cluster, fs, "create", {"path": f"/j{i}"})
        extra = cluster.storage[0].disk.write_bytes - disk_writes_before
        # MDS journal (5 x 4 KB) plus daemon-0 bstream journals (5 x 4 KB)
        assert extra == 10 * fs.cfg.journal_io_bytes

    def test_metadata_sync_off_means_no_journal_io(self, cluster):
        fs = Pvfs2System(
            cluster.sim,
            cluster.storage,
            Pvfs2Config(stripe_size=64, metadata_sync=False),
        )
        mds_call(cluster, fs, "create", {"path": "/nosync"})
        assert all(n.disk.write_bytes == 0 for n in cluster.storage)

    def test_journal_writes_are_sequential_in_their_region(self, cluster, fs):
        """Consecutive journal commits do not pay full positioning."""
        mds_call(cluster, fs, "mkdir", {"path": "/a"})
        t0 = cluster.sim.now
        mds_call(cluster, fs, "mkdir", {"path": "/b"})
        t_second = cluster.sim.now - t0
        # second mkdir journals right after the first: no full seek
        spec = cluster.storage[0].disk.spec
        assert t_second < spec.positioning + 0.004


class TestTruncateWire:
    def test_truncate_trims_every_bstream(self, cluster, fs):
        client = fs.make_client(cluster.clients[0])

        def scenario():
            yield from client.mount()
            f = yield from client.create("/t")
            yield from client.write(f, 0, Payload(bytes(range(250))))
            yield from client.truncate("/t", 100)
            attrs = yield from client.getattr("/t")
            return attrs, f

        attrs, f = drive(cluster.sim, scenario())
        assert attrs.size == 100
        local_total = sum(
            d.bstreams[dfile].size
            for d, dfile in zip(fs.daemons, f.state["dfiles"])
        )
        assert local_total == 100

    def test_truncate_to_zero(self, cluster, fs):
        client = fs.make_client(cluster.clients[0])

        def scenario():
            yield from client.mount()
            f = yield from client.create("/z")
            yield from client.write(f, 0, Payload(b"x" * 200))
            yield from client.truncate("/z", 0)
            return (yield from client.getattr("/z"))

        assert drive(cluster.sim, scenario()).size == 0
