"""Distribution mapping tests: striping correctness and inverses."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pvfs2 import (
    SimpleStripe,
    VarStrip,
    distribution_from_description,
)


class TestSimpleStripe:
    def test_first_stripes_round_robin(self):
        d = SimpleStripe(nservers=3, stripe_size=10)
        assert d.locate(0) == (0, 0, 10)
        assert d.locate(10) == (1, 0, 10)
        assert d.locate(20) == (2, 0, 10)
        assert d.locate(30) == (0, 10, 10)

    def test_mid_stripe_offset(self):
        d = SimpleStripe(nservers=2, stripe_size=100)
        server, local, rem = d.locate(250)
        assert (server, local, rem) == (0, 150, 50)

    def test_runs_split_and_merge(self):
        d = SimpleStripe(nservers=2, stripe_size=10)
        runs = d.runs(5, 20)
        # [5,10) s0, [10,20) s1, [20,25) s0-local10
        assert [(r.server, r.local, r.length, r.logical) for r in runs] == [
            (0, 5, 5, 5),
            (1, 0, 10, 10),
            (0, 10, 5, 20),
        ]

    def test_runs_merge_contiguous_single_server(self):
        d = SimpleStripe(nservers=1, stripe_size=10)
        runs = d.runs(0, 100)
        assert len(runs) == 1
        assert runs[0].length == 100

    def test_logical_size_round_trip_exact_stripes(self):
        d = SimpleStripe(nservers=3, stripe_size=10)
        # file of 65 bytes: stripes 0..6, last is 5 bytes on server 0
        local = [0, 0, 0]
        for run in d.runs(0, 65):
            local[run.server] = max(local[run.server], run.local + run.length)
        assert d.logical_size(local) == 65

    def test_logical_size_empty(self):
        d = SimpleStripe(nservers=4, stripe_size=10)
        assert d.logical_size([0, 0, 0, 0]) == 0

    def test_logical_size_wrong_arity_rejected(self):
        d = SimpleStripe(nservers=2, stripe_size=10)
        with pytest.raises(ValueError):
            d.logical_size([1])

    def test_describe_round_trip(self):
        d = SimpleStripe(nservers=5, stripe_size=64 * 1024)
        d2 = distribution_from_description(d.describe())
        assert isinstance(d2, SimpleStripe)
        assert d2.nservers == 5 and d2.stripe_size == 64 * 1024

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            SimpleStripe(0, 10)
        with pytest.raises(ValueError):
            SimpleStripe(2, 0)

    @given(
        nservers=st.integers(1, 6),
        stripe=st.integers(1, 64),
        offset=st.integers(0, 10_000),
        nbytes=st.integers(0, 4_000),
    )
    @settings(max_examples=80, deadline=None)
    def test_property_runs_cover_range_exactly(self, nservers, stripe, offset, nbytes):
        d = SimpleStripe(nservers, stripe)
        runs = d.runs(offset, nbytes)
        assert sum(r.length for r in runs) == nbytes
        pos = offset
        for r in runs:
            assert r.logical == pos
            pos += r.length
        # Every byte maps where locate says it should.
        for r in runs:
            server, local, _rem = d.locate(r.logical)
            assert (server, local) == (r.server, r.local)

    @given(
        nservers=st.integers(1, 5),
        stripe=st.integers(1, 32),
        size=st.integers(0, 3_000),
    )
    @settings(max_examples=80, deadline=None)
    def test_property_logical_size_inverse(self, nservers, stripe, size):
        d = SimpleStripe(nservers, stripe)
        local = [0] * nservers
        for run in d.runs(0, size):
            local[run.server] = max(local[run.server], run.local + run.length)
        assert d.logical_size(local) == size


class TestVarStrip:
    def test_pattern_layout(self):
        d = VarStrip(nservers=3, pattern=[(0, 5), (1, 3), (2, 7)])
        assert d.locate(0) == (0, 0, 5)
        assert d.locate(5) == (1, 0, 3)
        assert d.locate(8) == (2, 0, 7)
        # Second cycle: server 0 again, local continues its own stream.
        assert d.locate(15) == (0, 5, 5)

    def test_same_server_twice_per_cycle(self):
        d = VarStrip(nservers=2, pattern=[(0, 4), (1, 4), (0, 2)])
        # Third strip also on server 0, local base = 4 in cycle 0.
        assert d.locate(8) == (0, 4, 2)
        # Cycle 1 first strip: server 0 local = per_cycle(6)*1 = 6.
        assert d.locate(10) == (0, 6, 4)

    def test_invalid_patterns(self):
        with pytest.raises(ValueError):
            VarStrip(2, [])
        with pytest.raises(ValueError):
            VarStrip(2, [(5, 4)])
        with pytest.raises(ValueError):
            VarStrip(2, [(0, 0)])

    def test_describe_round_trip(self):
        d = VarStrip(nservers=2, pattern=[(0, 3), (1, 9)])
        d2 = distribution_from_description(d.describe())
        assert isinstance(d2, VarStrip)
        assert d2.pattern == [(0, 3), (1, 9)]

    @given(
        pattern=st.lists(
            st.tuples(st.integers(0, 3), st.integers(1, 16)), min_size=1, max_size=5
        ),
        offset=st.integers(0, 2_000),
        nbytes=st.integers(0, 1_000),
    )
    @settings(max_examples=80, deadline=None)
    def test_property_runs_cover_range(self, pattern, offset, nbytes):
        d = VarStrip(4, pattern)
        runs = d.runs(offset, nbytes)
        assert sum(r.length for r in runs) == nbytes
        pos = offset
        for r in runs:
            assert r.logical == pos
            pos += r.length

    @given(
        pattern=st.lists(
            st.tuples(st.integers(0, 2), st.integers(1, 8)), min_size=1, max_size=4
        ),
        size=st.integers(0, 600),
    )
    @settings(max_examples=80, deadline=None)
    def test_property_logical_size_inverse(self, pattern, size):
        d = VarStrip(3, pattern)
        local = [0, 0, 0]
        for run in d.runs(0, size):
            local[run.server] = max(local[run.server], run.local + run.length)
        assert d.logical_size(local) == size

    @given(
        pattern=st.lists(
            st.tuples(st.integers(0, 2), st.integers(1, 8)), min_size=1, max_size=4
        ),
        offsets=st.lists(st.integers(0, 400), min_size=1, max_size=20),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_no_two_bytes_share_a_local_slot(self, pattern, offsets):
        """Distinct logical bytes never collide on (server, local)."""
        d = VarStrip(3, pattern)
        seen = {}
        for off in range(0, 300):
            server, local, _ = d.locate(off)
            key = (server, local)
            assert key not in seen or seen[key] == off
            seen[key] = off


def test_unknown_description_rejected():
    with pytest.raises(ValueError):
        distribution_from_description({"type": "mystery"})
