"""mdtest workload tests."""

import pytest

from repro.bench.runner import run_cell
from repro.workloads import MdtestWorkload


class TestMdtest:
    def test_phases_and_rates_reported(self):
        r = run_cell("direct-pnfs", MdtestWorkload(nfiles=60, scale=1.0), 2)
        for res in r.results:
            assert set(res.extra["phases"]) == {"create", "stat", "readdir", "remove"}
            assert res.extra["rates"]["create"] > 0
            assert res.transactions == 60

    def test_tree_cleaned_up(self):
        r = run_cell(
            "pvfs2", MdtestWorkload(nfiles=40, scale=1.0), 1, keep_deployment=True
        )
        mds = r.deployment.pvfs.mds
        # all files and dirs removed: only the /mdtest root and c0 left? no —
        # c0 and its subdirs were removed too; /mdtest remains.
        assert mds.namespace.listdir("/mdtest") == []

    def test_native_metadata_beats_recentralised_nfs(self):
        """§6.4.3: NFS recentralises the parallel FS metadata protocol —
        native PVFS2 clients do metadata ops with one fewer hop."""
        direct = run_cell("direct-pnfs", MdtestWorkload(nfiles=80, scale=1.0), 4)
        native = run_cell("pvfs2", MdtestWorkload(nfiles=80, scale=1.0), 4)
        # native is at least as fast on the pure-metadata sweep
        assert native.makespan <= direct.makespan * 1.05
