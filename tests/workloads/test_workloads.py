"""Functional tests of the workload generators.

Run each workload at tiny scale over a small Direct-pNFS deployment and
check its observable footprint (files created, bytes moved, trace
statistics) rather than performance.
"""

import numpy as np
import pytest

from repro.core import DirectPnfsSystem
from repro.nfs import NfsConfig
from repro.pvfs2 import Pvfs2Config, Pvfs2System
from repro.workloads import (
    AtlasWorkload,
    BtioWorkload,
    IorWorkload,
    OltpWorkload,
    PostmarkWorkload,
    SshBuildWorkload,
)
from repro.workloads.atlas import SMALL_LARGE_CUTOFF, generate_digitization_trace

from tests.conftest import build_cluster, drive


@pytest.fixture
def setup(cluster):
    pvfs = Pvfs2System(
        cluster.sim, cluster.storage, Pvfs2Config(stripe_size=256 * 1024)
    )
    system = DirectPnfsSystem(
        cluster.sim, pvfs, NfsConfig(rsize=256 * 1024, wsize=256 * 1024)
    )
    return cluster, system


def run_workload(setup, workload, n_clients=2):
    cluster, system = setup
    sim = cluster.sim
    admin = system.make_client(cluster.clients[0])

    def prep():
        yield from admin.mount()
        yield from workload.prepare(sim, admin, n_clients)

    drive(sim, prep())
    clients = [system.make_client(cluster.clients[i]) for i in range(n_clients)]

    def run_one(i):
        yield from clients[i].mount()
        return (yield from workload.client_proc(sim, clients[i], i, n_clients))

    procs = [sim.process(run_one(i)) for i in range(n_clients)]
    sim.run(until=sim.all_of(procs))
    return [p.value for p in procs], clients


class TestIor:
    def test_write_moves_expected_bytes(self, setup):
        w = IorWorkload(op="write", block_size=64 * 1024, file_size=1 << 20, scale=1.0)
        results, _ = run_workload(setup, w)
        assert all(r.bytes_moved == 1 << 20 for r in results)

    def test_read_requires_prepared_files(self, setup):
        w = IorWorkload(op="read", block_size=64 * 1024, file_size=1 << 20, scale=1.0)
        results, _ = run_workload(setup, w)
        assert all(r.bytes_moved == 1 << 20 for r in results)

    def test_shared_file_clients_write_disjoint_regions(self, setup):
        cluster, system = setup
        w = IorWorkload(
            op="write", block_size=64 * 1024, file_size=1 << 20, shared_file=True
        )
        run_workload(setup, w, n_clients=2)
        checker = system.make_client(cluster.clients[0])

        def check():
            yield from checker.mount()
            attrs = yield from checker.getattr("/ior/shared")
            return attrs

        attrs = drive(cluster.sim, check())
        assert attrs.size == 2 * (1 << 20)

    def test_file_size_rounded_to_blocks(self):
        w = IorWorkload(op="write", block_size=8192, file_size=100_000, scale=1.0)
        assert w.file_size % 8192 == 0
        assert w.file_size >= 100_000

    def test_invalid_op_rejected(self):
        with pytest.raises(ValueError):
            IorWorkload(op="append")


class TestAtlasTrace:
    def test_trace_size_mix_matches_paper(self):
        rng = np.random.default_rng(7)
        total = 64 * 1024 * 1024
        trace = generate_digitization_trace(rng, total, 1000)
        sizes = np.array([s for (_o, s) in trace])
        small = sizes < SMALL_LARGE_CUTOFF
        # 95% of requests are small...
        assert 0.90 <= small.mean() <= 0.99
        # ...but at least ~90% of the bytes are in large requests.
        assert sizes[~small].sum() / sizes.sum() >= 0.88
        # total volume close to requested
        assert abs(sizes.sum() - total) / total < 0.15

    def test_trace_offsets_within_file(self):
        rng = np.random.default_rng(9)
        total = 8 * 1024 * 1024
        for off, size in generate_digitization_trace(rng, total, 100):
            assert 0 <= off < total

    def test_trace_deterministic_per_seed(self):
        t1 = generate_digitization_trace(np.random.default_rng(1), 1 << 22, 100)
        t2 = generate_digitization_trace(np.random.default_rng(1), 1 << 22, 100)
        assert t1 == t2

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            generate_digitization_trace(np.random.default_rng(0), 100, 5)

    def test_workload_runs_and_creates_files(self, setup):
        w = AtlasWorkload(total_bytes=8 << 20, n_requests=60, scale=1.0)
        results, _ = run_workload(setup, w)
        assert all(r.transactions == 60 for r in results)
        assert all(r.bytes_moved > 6 << 20 for r in results)


class TestBtio:
    def test_checkpoints_build_full_file(self, setup):
        cluster, system = setup
        w = BtioWorkload(
            total_bytes=4 << 20,
            checkpoints=4,
            compute_seconds_per_checkpoint=0.0,
            scale=1.0,
        )
        results, _ = run_workload(setup, w, n_clients=2)
        checker = system.make_client(cluster.clients[0])

        def check():
            yield from checker.mount()
            return (yield from checker.getattr("/btio/out"))

        attrs = drive(cluster.sim, check())
        assert attrs.size == 4 << 20
        # write + verification read per client
        assert all(r.bytes_moved == 2 * (4 << 20) // 2 for r in results)

    def test_compute_scales_down_with_clients(self, setup):
        w = BtioWorkload(
            total_bytes=1 << 20, checkpoints=2, compute_seconds_per_checkpoint=10.0
        )
        assert w.compute_per_checkpoint == 10.0


class TestOltp:
    def test_transactions_counted(self, setup):
        w = OltpWorkload(transactions=20, region_bytes=1 << 20, scale=1.0)
        results, _ = run_workload(setup, w)
        assert all(r.transactions == 20 for r in results)
        assert all(r.bytes_moved == 20 * 8192 for r in results)

    def test_reads_always_hit_prepared_data(self, setup):
        w = OltpWorkload(transactions=10, region_bytes=1 << 20, scale=1.0)
        results, _ = run_workload(setup, w, n_clients=2)  # raises on shortfall
        assert len(results) == 2


class TestPostmark:
    def test_transaction_window_reported(self, setup):
        w = PostmarkWorkload(transactions=30, nfiles=10, fmax=8 * 1024, scale=1.0)
        results, _ = run_workload(setup, w)
        for r in results:
            assert r.transactions == 30
            assert r.extra["txn_end"] > r.extra["txn_start"]

    def test_cleanup_removes_files(self, setup):
        cluster, system = setup
        w = PostmarkWorkload(transactions=20, nfiles=10, fmax=4 * 1024, scale=1.0)
        run_workload(setup, w, n_clients=1)
        checker = system.make_client(cluster.clients[0])

        def check():
            yield from checker.mount()
            leftovers = []
            for d in range(w.ndirs):
                names = yield from checker.readdir(f"/postmark/c0/d{d}")
                leftovers.extend(names)
            return leftovers

        assert drive(cluster.sim, check()) == []


class TestSshBuild:
    def test_phases_reported_and_ordered(self, setup):
        w = SshBuildWorkload(nsources=25, scale=1.0)
        results, _ = run_workload(setup, w, n_clients=1)
        phases = results[0].extra["phases"]
        assert set(phases) == {"uncompress", "configure", "build"}
        assert all(v > 0 for v in phases.values())

    def test_build_tree_left_behind(self, setup):
        cluster, system = setup
        w = SshBuildWorkload(nsources=20, scale=1.0)
        run_workload(setup, w, n_clients=1)
        checker = system.make_client(cluster.clients[0])

        def check():
            yield from checker.mount()
            objs = yield from checker.readdir("/build/c0/obj")
            binattrs = yield from checker.getattr("/build/c0/sshd")
            return objs, binattrs

        objs, binattrs = drive(cluster.sim, check())
        assert len(objs) == 20
        assert binattrs.size > 0


class TestScaleParameter:
    def test_scale_shrinks_volumes(self):
        full = IorWorkload(op="write", scale=1.0)
        tenth = IorWorkload(op="write", scale=0.1)
        assert tenth.file_size < full.file_size

    def test_zero_scale_rejected(self):
        with pytest.raises(ValueError):
            IorWorkload(scale=0)

    def test_rng_deterministic_per_client(self):
        w = AtlasWorkload()
        a = w.rng(3).integers(0, 1 << 30, 5)
        b = w.rng(3).integers(0, 1 << 30, 5)
        c = w.rng(4).integers(0, 1 << 30, 5)
        assert list(a) == list(b)
        assert list(a) != list(c)
