"""Trace capture, persistence, and replay tests."""

import io

import pytest

from repro.sim import Simulator
from repro.vfs import Payload
from repro.vfs.localfs import LocalClient, LocalFileSystem
from repro.workloads.traces import (
    TraceOp,
    TraceRecorder,
    load_trace,
    replay,
    save_trace,
)

from tests.conftest import drive


@pytest.fixture
def local():
    sim = Simulator()
    fs = LocalFileSystem()
    return sim, fs, LocalClient(sim, fs)


class TestTraceOp:
    def test_valid(self):
        op = TraceOp("write", "/f", 10, 100)
        assert op.nbytes == 100

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            TraceOp("truncate-ish", "/f")

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            TraceOp("read", "/f", -1, 10)


class TestRecorder:
    def test_records_and_passes_through(self, local):
        sim, fs, client = local
        rec = TraceRecorder(client)

        def scenario():
            yield from rec.mount()
            yield from rec.mkdir("/d")
            f = yield from rec.create("/d/f")
            yield from rec.write(f, 0, Payload(b"hello"))
            yield from rec.read(f, 0, 5)
            yield from rec.fsync(f)
            yield from rec.close(f)
            yield from rec.rename("/d/f", "/d/g")
            yield from rec.remove("/d/g")

        drive(sim, scenario())
        ops = [op.op for op in rec.ops]
        assert ops == [
            "mkdir", "create", "write", "read", "fsync", "close", "rename", "remove",
        ]
        assert rec.ops[2].nbytes == 5
        assert rec.ops[6].dest == "/d/g"


class TestPersistence:
    def test_save_load_roundtrip(self):
        trace = [
            TraceOp("mkdir", "/d"),
            TraceOp("create", "/d/f"),
            TraceOp("write", "/d/f", 0, 4096),
            TraceOp("rename", "/d/f", dest="/d/g"),
        ]
        buf = io.StringIO()
        assert save_trace(buf, trace) == 4
        buf.seek(0)
        assert load_trace(buf) == trace

    def test_load_skips_blank_lines(self):
        buf = io.StringIO('{"op":"mkdir","path":"/x","offset":0,"nbytes":0,"dest":""}\n\n')
        assert load_trace(buf) == [TraceOp("mkdir", "/x")]


class TestReplay:
    def test_recorded_trace_replays_identically(self, local):
        sim, _fs, client = local
        rec = TraceRecorder(client)

        def record():
            yield from rec.mount()
            yield from rec.mkdir("/t")
            f = yield from rec.create("/t/a")
            yield from rec.write(f, 0, Payload.synthetic(1000))
            yield from rec.write(f, 1000, Payload.synthetic(500))
            yield from rec.close(f)

        drive(sim, record())

        # Replay on a fresh file system.
        sim2 = Simulator()
        fs2 = LocalFileSystem()
        target = LocalClient(sim2, fs2)

        def go():
            yield from target.mount()
            return (yield from replay(target, rec.ops))

        executed, moved = drive(sim2, go())
        assert executed == len(rec.ops)
        assert moved == 1500
        entry = fs2.namespace.resolve("/t/a")
        assert fs2.contents[entry.handle].size == 1500

    def test_implicit_open_on_bare_io(self, local):
        sim, fs, client = local
        trace = [
            TraceOp("create", "/x"),
            TraceOp("close", "/x"),
            TraceOp("write", "/x", 0, 64),  # no open: implicit
            TraceOp("read", "/x", 0, 64),
        ]

        def go():
            yield from client.mount()
            return (yield from replay(client, trace))

        executed, moved = drive(sim, go())
        assert executed == 4
        assert moved == 128

    def test_stragglers_closed(self, local):
        sim, _fs, client = local
        trace = [TraceOp("create", "/open-left"), TraceOp("write", "/open-left", 0, 10)]

        def go():
            yield from client.mount()
            yield from replay(client, trace)

        drive(sim, go())  # must not leak an open handle / unflushed state

    def test_replay_over_direct_pnfs(self):
        """A captured trace replays over a full Direct-pNFS stack."""
        from repro.core import DirectPnfsSystem
        from repro.nfs import NfsConfig
        from repro.pvfs2 import Pvfs2Config, Pvfs2System
        from tests.conftest import build_cluster

        cluster = build_cluster()
        pvfs = Pvfs2System(cluster.sim, cluster.storage, Pvfs2Config(stripe_size=32 * 1024))
        system = DirectPnfsSystem(cluster.sim, pvfs, NfsConfig(rsize=64 * 1024, wsize=64 * 1024))
        client = system.make_client(cluster.clients[0])
        trace = [
            TraceOp("mkdir", "/r"),
            TraceOp("create", "/r/data"),
            TraceOp("write", "/r/data", 0, 100_000),
            TraceOp("fsync", "/r/data"),
            TraceOp("read", "/r/data", 50_000, 10_000),
            TraceOp("close", "/r/data"),
        ]

        def go():
            yield from client.mount()
            return (yield from replay(client, trace))

        executed, moved = drive(cluster.sim, go())
        assert executed == 6
        assert moved == 110_000
