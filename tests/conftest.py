"""Shared test fixtures: small clusters and process-driving helpers."""

from dataclasses import dataclass, field

import pytest

from repro.sim import CpuSpec, DiskSpec, Network, Node, NodeSpec, Simulator


@dataclass
class MiniCluster:
    """A small testbed: storage nodes + client nodes on one switch."""

    sim: Simulator
    network: Network
    storage: list[Node] = field(default_factory=list)
    clients: list[Node] = field(default_factory=list)


def build_cluster(
    n_storage: int = 3,
    n_clients: int = 2,
    nic_bw: float = 117e6,
    latency: float = 60e-6,
    disk: DiskSpec | None = None,
    net_model: str = "chunked",
) -> MiniCluster:
    sim = Simulator()
    net = Network(sim, latency=latency, model=net_model)
    disk = disk or DiskSpec(read_bw=55e6, write_bw=24e6, positioning=0.004)
    storage = [
        Node(
            sim,
            NodeSpec(
                name=f"s{i}",
                cpu=CpuSpec(cores=2, speed=1.3),
                nic_bw=nic_bw,
                disks=(disk,),
                io_bus_bw=28e6,
            ),
            net,
        )
        for i in range(n_storage)
    ]
    clients = [
        Node(
            sim,
            NodeSpec(name=f"c{i}", cpu=CpuSpec(cores=2, speed=1.0), nic_bw=nic_bw),
            net,
        )
        for i in range(n_clients)
    ]
    return MiniCluster(sim=sim, network=net, storage=storage, clients=clients)


def drive(sim: Simulator, gen):
    """Run generator ``gen`` as a process to completion; return its value."""
    proc = sim.process(gen)
    return sim.run(until=proc)


@pytest.fixture
def cluster():
    return build_cluster()
