"""Torture program generation: determinism, ownership, serialisation."""

from repro.check.program import SHARED, Op, Program, generate, private_path


class TestGeneration:
    def test_same_seed_same_program(self):
        assert generate(42).to_json() == generate(42).to_json()

    def test_different_seeds_differ(self):
        assert generate(1).to_json() != generate(2).to_json()

    def test_writes_respect_byte_ownership(self):
        for seed in range(30):
            p = generate(seed)
            for c, track in enumerate(p.ops):
                for op in track:
                    if op.kind != "write":
                        continue
                    for x in (op.offset, op.offset + op.length - 1):
                        assert p.owner_of(op.file, x) == c, (seed, c, op)

    def test_write_tags_nonzero(self):
        for seed in range(30):
            for track in generate(seed).ops:
                for op in track:
                    if op.kind == "write":
                        assert 1 <= op.tag <= 255

    def test_every_client_ends_with_fsyncs(self):
        p = generate(7)
        for c, track in enumerate(p.ops):
            assert track[-2:] == [
                Op("fsync", SHARED),
                Op("fsync", private_path(c)),
            ]

    def test_locks_are_balanced(self):
        # Every generated lock has a matching unlock in the epilogue or
        # earlier — no program leaves advisory locks held by design.
        for seed in range(30):
            for track in generate(seed).ops:
                held = 0
                for op in track:
                    if op.kind == "lock":
                        held += 1
                    elif op.kind == "unlock":
                        held -= 1
                assert held == 0


class TestSerialisation:
    def test_json_roundtrip(self):
        p = generate(13)
        q = Program.from_json(p.to_json())
        assert q == p

    def test_without_drops_ops_and_faults(self):
        p = generate(13)
        q = p.without(drop_ops={(0, 0)}, drop_faults=set(range(len(p.faults))))
        assert len(q.ops[0]) == len(p.ops[0]) - 1
        assert q.faults == []
        assert len(q.ops[1]) == len(p.ops[1])
