"""The reference model's oracles, exercised directly."""

import numpy as np

from repro.check.model import Model
from repro.check.program import SHARED, generate, private_path


def _model(seed=3):
    return Model(generate(seed, n_clients=2))


def _bytes(size, fills):
    buf = np.zeros(size, dtype=np.uint8)
    for start, end, tag in fills:
        buf[start:end] = tag
    return buf.tobytes()


class TestReadOracle:
    def test_accepts_any_historical_value(self):
        m = _model()
        path = private_path(0)
        size = m.files[path].size
        i0 = m.on_write_start(0, path, 0, 100, tag=5)
        m.on_write_ack(path, i0)
        i1 = m.on_write_start(0, path, 0, 100, tag=6)
        m.on_write_ack(path, i1)
        # A *different* client may see the old value, the new one, or a
        # hole — close-to-open consistency allows staleness.
        for fills in ([(0, 100, 5)], [(0, 100, 6)], [], [(0, 50, 5), (50, 100, 6)]):
            data = _bytes(size, fills)[:100]
            assert m.check_read(1, path, 0, data, 100) == []

    def test_rejects_invented_values(self):
        m = _model()
        path = private_path(0)
        data = _bytes(100, [(10, 20, 99)])
        out = m.check_read(1, path, 0, data, 100)
        assert len(out) == 1 and "never written" in out[0]

    def test_read_your_writes_enforced(self):
        m = _model()
        path = private_path(0)
        i0 = m.on_write_start(0, path, 0, 100, tag=5)
        m.on_write_ack(path, i0)
        stale = _bytes(100, [])  # zeros where own write put tag 5
        out = m.check_read(0, path, 0, stale, 100)
        assert any("read-your-writes" in v for v in out)
        # ... but not after an I/O error was surfaced to that client.
        m.on_error(0, path, "fsync")
        assert m.check_read(0, path, 0, stale, 100) == []

    def test_synthetic_payload_skips_content_checks(self):
        m = _model()
        assert m.check_read(0, SHARED, 0, None, 4096) == []
        assert m.synthetic_reads == 1


class TestDurabilityOracle:
    def test_fsynced_write_must_survive(self):
        m = _model()
        path = private_path(0)
        size = m.files[path].size
        i0 = m.on_write_start(0, path, 0, 200, tag=7)
        m.on_write_ack(path, i0)
        m.on_durable(0, path)
        assert m.check_final(path, _bytes(size, [(0, 200, 7)]), size) == []
        lost = m.check_final(path, _bytes(size, []), size)
        assert len(lost) == 1 and "silent-loss" in lost[0]

    def test_unfsynced_write_may_be_lost(self):
        m = _model()
        path = private_path(0)
        size = m.files[path].size
        i0 = m.on_write_start(0, path, 0, 200, tag=7)
        m.on_write_ack(path, i0)
        # No fsync: both the new value and a hole are acceptable.
        assert m.check_final(path, _bytes(size, [(0, 200, 7)]), size) == []
        assert m.check_final(path, _bytes(size, []), size) == []

    def test_later_unfsynced_overwrite_is_acceptable(self):
        m = _model()
        path = private_path(0)
        size = m.files[path].size
        i0 = m.on_write_start(0, path, 0, 200, tag=7)
        m.on_write_ack(path, i0)
        m.on_durable(0, path)
        i1 = m.on_write_start(0, path, 50, 150, tag=8)
        m.on_write_ack(path, i1)
        # tag 8 flushed (or not) — but tag 7 may never resurface below 8.
        assert (
            m.check_final(path, _bytes(size, [(0, 200, 7), (50, 150, 8)]), size)
            == []
        )
        assert m.check_final(path, _bytes(size, [(0, 200, 7)]), size) == []

    def test_reverting_below_floor_is_a_violation(self):
        m = _model()
        path = private_path(0)
        size = m.files[path].size
        i0 = m.on_write_start(0, path, 0, 200, tag=7)
        m.on_write_ack(path, i0)
        i1 = m.on_write_start(0, path, 0, 200, tag=8)
        m.on_write_ack(path, i1)
        m.on_durable(0, path)  # floor now at tag 8
        out = m.check_final(path, _bytes(size, [(0, 200, 7)]), size)
        assert len(out) == 1 and "durability" in out[0]

    def test_attempted_unacked_write_is_allowed(self):
        m = _model()
        path = private_path(0)
        size = m.files[path].size
        m.on_write_start(0, path, 0, 100, tag=9)  # never acked
        assert m.check_final(path, _bytes(size, [(0, 100, 9)]), size) == []
