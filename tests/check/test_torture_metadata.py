"""Metadata/namespace torture coverage: generation, episodes, oracles.

Pinned regressions for the metadata bug swarm:

* **seed 0 + nfsv4 + buggy truncate** — checker-power gate: with the
  truncate fix reverted to its attr-cache-only form, the durability
  oracle reports *truncate-resurrection* (cached pages past the cut
  written back / served again) within the CI seed budget.
* **seed 32 + pnfs-3tier** — exactly-once under truncate: the MDS
  used to block its truncate handler on backchannel layout recalls;
  under a NIC fault the handler outlived the client's RPC patience
  and the retransmission re-executed it.  Recalls now run detached.
"""

import pytest

from repro.check.program import Program, generate, ns_path, scratch_path
from repro.check.runner import (
    buggy_truncate_factory,
    run_episode,
    sweep,
)

ALL_ARCHES = ["direct-pnfs", "pvfs2", "pnfs-2tier", "pnfs-3tier", "nfsv4"]

_META_KINDS = {"truncate", "recreate", "rename", "mkdir", "readdir", "getattr"}


class TestGeneration:
    def test_metadata_ops_appear(self):
        kinds = set()
        for seed in range(12):
            prog = generate(seed, metadata_ops=True)
            assert prog.metadata
            kinds |= {op.kind for t in prog.ops for op in t}
        assert _META_KINDS <= kinds

    def test_default_stream_is_untouched(self):
        """``metadata_ops`` must not perturb the default rng stream:
        the pinned data-path seeds depend on byte-identical programs."""
        a, b = generate(146), generate(146)
        assert a.to_json() == b.to_json()
        assert not a.metadata
        assert not any(
            op.kind in _META_KINDS for t in a.ops for op in t
        )

    def test_json_roundtrip_with_dest(self):
        prog = generate(5, metadata_ops=True)
        back = Program.from_json(prog.to_json())
        assert back.to_json() == prog.to_json()
        assert back.metadata
        renames = [op for t in back.ops for op in t if op.kind == "rename"]
        for op in renames:
            assert op.dest  # dest survives the round trip

    def test_old_json_without_metadata_field_loads(self):
        import json

        raw = json.loads(generate(5).to_json())
        del raw["metadata"]
        for track in raw["ops"]:
            for op in track:
                del op["dest"]
        prog = Program.from_json(json.dumps(raw))
        assert prog.metadata is False

    def test_namespace_slots_single_owner(self):
        for seed in (0, 9, 23):
            prog = generate(seed, metadata_ops=True)
            slots = [prog.ns_slot_of(c) for c in range(prog.n_clients)]
            assert sorted(slots) == list(range(prog.n_clients))
            for c in range(prog.n_clients):
                assert prog.owner_of(scratch_path(c), 0) == c
                assert prog.owner_of(ns_path(prog.ns_slot_of(c)), 0) == c


class TestEpisodes:
    def test_metadata_smoke_all_arches(self):
        program = generate(0, metadata_ops=True)
        for arch in ALL_ARCHES:
            res = run_episode(program, arch)
            assert res.ok, (arch, res.violations)
            assert not res.wedged

    def test_metadata_replay_is_byte_identical(self):
        program = generate(7, metadata_ops=True)
        a = run_episode(program, "direct-pnfs")
        b = run_episode(program, "direct-pnfs")
        assert a.trace_hash == b.trace_hash
        assert a.violations == b.violations

    def test_metadata_sweep_clean(self):
        results = sweep(["nfsv4"], seeds=3, metadata=True)
        assert len(results) == 3
        assert all(r.ok for r in results), [
            (r.seed, r.violations) for r in results if not r.ok
        ]


class TestPinnedRegressions:
    def test_seed_0_buggy_truncate_is_caught(self):
        # Checker power: revert the truncate fix to its pre-fix
        # attr-cache-only form and the durability oracle must label the
        # failure as truncate-resurrection.
        res = run_episode(
            generate(0, metadata_ops=True),
            "nfsv4",
            client_factory=buggy_truncate_factory,
        )
        assert not res.ok
        assert any("truncate-resurrection" in v for v in res.violations)
        # ... and the fixed client sails through the same episode.
        assert run_episode(generate(0, metadata_ops=True), "nfsv4").ok

    def test_seed_32_truncate_recall_exactly_once(self):
        # The MDS truncate handler must not block on layout recalls:
        # blocked past the client's RPC patience, its retransmission
        # re-executed the handler (reply cache can only suppress
        # *completed* executions).
        res = run_episode(generate(32, metadata_ops=True), "pnfs-3tier")
        assert res.ok, res.violations


class TestShrinker:
    def test_shrink_handles_metadata_kinds(self):
        from repro.check.shrink import shrink_program

        program = generate(0, metadata_ops=True)
        small, runs = shrink_program(
            program, "nfsv4", buggy_truncate_factory
        )
        assert runs > 1
        assert small.op_count < program.op_count
        res = run_episode(
            small, "nfsv4", client_factory=buggy_truncate_factory
        )
        assert not res.ok
        # The minimised program still carries the essential metadata op.
        kinds = {op.kind for t in small.ops for op in t}
        assert "truncate" in kinds
