"""End-to-end torture episodes: smoke, determinism, pinned regressions.

The pinned seeds are bugs the harness flushed out; each one stays here
so the failure mode can never quietly return:

* **seed 146** — concurrent same-range write-backs: a block re-dirtied
  while under write-back was flushed again immediately, and the server
  could apply the two WRITEs in either order, resurrecting stale data.
  Fixed by deferring bytes that overlap ``flushing`` (Linux
  PageWriteback semantics).
* **seed 65** — dirty pages died with the fd: a close during an outage
  failed its flush, re-dirtied the ranges (errseq), then dropped them
  with the abandoned OpenFile; the post-reopen fsync reported clean.
  Fixed by retaining dirty ranges in the inode cache across close.
* **seed 28 + nfsv4 + buggy write-back** — checker-power demo: with the
  errseq re-dirty/latch fix reverted, the durability oracle reports the
  silent loss within the CI seed budget.
"""

import pytest

from repro.check.program import generate
from repro.check.runner import buggy_writeback_factory, run_episode, sweep
from repro.check.shrink import shrink_list

ALL_ARCHES = ["direct-pnfs", "pvfs2", "pnfs-2tier", "pnfs-3tier", "nfsv4"]


class TestEpisodes:
    def test_smoke_all_arches(self):
        program = generate(3)
        for arch in ALL_ARCHES:
            res = run_episode(program, arch)
            assert res.ok, (arch, res.violations)
            assert not res.wedged
            assert res.stats["reads_checked"] > 0

    def test_replay_is_byte_identical(self):
        program = generate(11)
        a = run_episode(program, "direct-pnfs")
        b = run_episode(program, "direct-pnfs")
        assert a.trace_hash == b.trace_hash
        assert a.violations == b.violations

    def test_different_arches_diverge(self):
        program = generate(11)
        a = run_episode(program, "direct-pnfs")
        b = run_episode(program, "nfsv4")
        assert a.trace_hash != b.trace_hash

    def test_sweep_reports_clean_seeds(self):
        results = sweep(["direct-pnfs"], seeds=2, start_seed=3)
        assert len(results) == 2
        assert all(r.ok for r in results)


class TestPinnedRegressions:
    @pytest.mark.parametrize("arch", ["direct-pnfs", "pnfs-2tier", "nfsv4"])
    def test_seed_146_writeback_reorder(self, arch):
        # Overlapping writes to one private file; the re-dirtied block
        # must not race its own in-flight write-back.
        res = run_episode(generate(146), arch)
        assert res.ok, res.violations

    @pytest.mark.parametrize("arch", ["direct-pnfs", "nfsv4"])
    def test_seed_65_dirty_survives_close(self, arch):
        # write → reopen during a long outage (close's flush fails) →
        # post-heal fsync must re-flush the re-dirtied ranges.
        res = run_episode(generate(65), arch)
        assert res.ok, res.violations

    def test_seed_161_dirty_survives_close_shared(self):
        res = run_episode(generate(161), "nfsv4")
        assert res.ok, res.violations

    def test_seed_28_buggy_writeback_is_caught(self):
        # Checker power: revert the errseq re-dirty/latch behaviour and
        # the durability oracle must report the silent loss.  nfsv4 has
        # no DS failover, so a long blackout really does kill the
        # write-backs.
        res = run_episode(
            generate(28), "nfsv4", client_factory=buggy_writeback_factory
        )
        assert not res.ok
        assert any("silent-loss" in v for v in res.violations)
        # ... and the fixed client sails through the same episode.
        assert run_episode(generate(28), "nfsv4").ok


class TestShrinker:
    def test_shrink_list_minimises(self):
        # Failure needs both 3 and 7 present: ddmin must find exactly
        # that pair.
        out = shrink_list(list(range(10)), lambda ks: {3, 7} <= set(ks))
        assert sorted(out) == [3, 7]

    def test_shrink_list_rejects_passing_input(self):
        with pytest.raises(ValueError):
            shrink_list([1, 2], lambda ks: False)

    def test_shrink_seed_65_drops_most_ops(self):
        from repro.check.shrink import shrink_program

        program = generate(65)
        small, runs = shrink_program(program, "nfsv4", buggy_writeback_factory)
        assert runs > 1
        # Not asserting an exact program — just that ddmin made real
        # progress and the result still fails for the same reason.
        assert small.op_count < program.op_count
        res = run_episode(small, "nfsv4", client_factory=buggy_writeback_factory)
        assert not res.ok
