"""Tests for the testbed model and the five architecture builders."""

import pytest

from repro.cluster.configs import ARCHITECTURES, make_deployment
from repro.cluster.testbed import FAST_ETHERNET, GIGE, Testbed
from repro.vfs import Payload

from tests.conftest import drive


class TestTestbed:
    def test_standard_layout(self):
        tb = Testbed(n_clients=8)
        assert len(tb.server_nodes) == 6
        assert len(tb.storage_nodes) == 6
        assert all(len(n.disks) == 1 for n in tb.storage_nodes)
        assert len(tb.client_nodes) == 8

    def test_three_tier_layout(self):
        tb = Testbed(server_disks=(0, 0, 0, 2, 2, 2))
        assert len(tb.storage_nodes) == 3
        assert len(tb.diskless_server_nodes) == 3
        assert all(len(n.disks) == 2 for n in tb.storage_nodes)
        # nodes + disks constant: 6 nodes, 6 disks (paper §6.1)
        assert sum(len(n.disks) for n in tb.server_nodes) == 6

    def test_client_cpu_classes(self):
        tb = Testbed(n_clients=9)
        assert tb.client_nodes[0].cpu.spec.speed == pytest.approx(1.3)
        assert tb.client_nodes[8].cpu.spec.speed == pytest.approx(1.7)

    def test_client_count_bounds(self):
        with pytest.raises(ValueError):
            Testbed(n_clients=0)
        with pytest.raises(ValueError):
            Testbed(n_clients=10)

    def test_network_speed_applies(self):
        tb = Testbed(net_bw=FAST_ETHERNET)
        assert tb.server_nodes[0].nic.bandwidth == FAST_ETHERNET


@pytest.mark.parametrize("arch", sorted(ARCHITECTURES))
class TestArchitectures:
    def test_end_to_end_roundtrip(self, arch):
        """Every architecture runs the same application correctly."""
        dep = make_deployment(arch, n_clients=2)
        tb = dep.testbed
        c0 = dep.make_client(tb.client_nodes[0])
        c1 = dep.make_client(tb.client_nodes[1])
        blob = bytes(range(256)) * 64  # 16 KB

        def scenario():
            yield from c0.mount()
            yield from c1.mount()
            yield from c0.mkdir("/x")
            f = yield from c0.create("/x/file")
            yield from c0.write(f, 0, Payload(blob))
            yield from c0.fsync(f)
            yield from c0.close(f)
            g = yield from c1.open("/x/file")
            data = yield from c1.read(g, 0, len(blob))
            attrs = yield from c1.getattr("/x/file")
            return data, attrs

        data, attrs = drive(tb.sim, scenario())
        assert data.data == blob
        assert attrs.size == len(blob)
        assert dep.label == arch

    def test_data_lands_in_the_shared_backend(self, arch):
        """All five architectures export the same PVFS2 deployment."""
        dep = make_deployment(arch, n_clients=1)
        tb = dep.testbed
        client = dep.make_client(tb.client_nodes[0])

        def scenario():
            yield from client.mount()
            f = yield from client.create("/data")
            yield from client.write(f, 0, Payload.synthetic(512 * 1024))
            yield from client.fsync(f)
            yield from client.close(f)

        drive(tb.sim, scenario())
        stored = sum(
            fd.size for d in dep.pvfs.daemons for fd in d.bstreams.values()
        )
        assert stored == 512 * 1024


class TestDeploymentShapes:
    def test_direct_pnfs_has_ds_per_storage_node(self):
        dep = make_deployment("direct-pnfs")
        assert len(dep.servers) == 7  # 6 data servers + MDS

    def test_3tier_builds_its_own_testbed(self):
        dep = make_deployment("pnfs-3tier")
        assert len(dep.testbed.storage_nodes) == 3
        assert len(dep.servers) == 4  # 3 DS + MDS

    def test_nfsv4_single_server_on_extra_node(self):
        dep = make_deployment("nfsv4")
        (server,) = dep.servers
        assert server.node is dep.testbed.extra_node

    def test_unknown_architecture_rejected(self):
        with pytest.raises(ValueError):
            make_deployment("afs")

    def test_2tier_layout_is_blind_to_placement(self):
        """The 2-tier MDS issues 1 MB-stripe layouts regardless of the
        2 MB PVFS2 distribution — the §3.4.1 block-size mismatch."""
        dep = make_deployment("pnfs-2tier", n_clients=1)
        tb = dep.testbed
        client = dep.make_client(tb.client_nodes[0])

        def scenario():
            yield from client.mount()
            f = yield from client.create("/m")
            return f

        f = drive(tb.sim, scenario())
        layout = f.state["layout"]
        assert layout.aggregation["stripe_unit"] == 1024 * 1024
        assert dep.pvfs.cfg.stripe_size == 2 * 1024 * 1024
