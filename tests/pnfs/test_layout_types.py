"""Validation tests for layout types and config objects."""

import pytest

from repro.nfs import NfsConfig, Session
from repro.pnfs import FileLayout, SyntheticFileLayoutProvider
from repro.pvfs2 import Pvfs2Config
from repro.sim import Simulator


class TestFileLayout:
    def test_valid_layout(self):
        lo = FileLayout(
            device_slots=[0, 1, 2],
            fhs=[7, 7, 7],
            aggregation={"type": "round_robin", "nslots": 3, "stripe_unit": 1024},
        )
        assert lo.ndevices == 3
        # Stateids come from the issuing MDS, not construction: a bare
        # layout is "not yet issued".
        assert lo.stateid == 0

    def test_stateids_unique_once_issued(self):
        sim = Simulator(seed=7)
        mk = lambda: FileLayout(
            device_slots=[0], fhs=[1], aggregation={"type": "round_robin"}
        )
        issued = []
        for _ in range(3):
            lo = mk()
            lo.stateid = sim.next_id("layout-stateid")
            issued.append(lo.stateid)
        assert len(set(issued)) == 3
        assert all(s > 0 for s in issued)

    def test_stateids_replay_identically(self):
        # Two same-seed simulators hand out the same stateid stream —
        # the property the process-global counter could not provide.
        streams = []
        for _ in range(2):
            sim = Simulator(seed=7)
            streams.append([sim.next_id("layout-stateid") for _ in range(4)])
        assert streams[0] == streams[1] == [1, 2, 3, 4]

    def test_mismatched_fhs_rejected(self):
        with pytest.raises(ValueError):
            FileLayout(device_slots=[0, 1], fhs=[1], aggregation={"type": "x"})

    def test_empty_devices_rejected(self):
        with pytest.raises(ValueError):
            FileLayout(device_slots=[], fhs=[], aggregation={"type": "x"})

    def test_untyped_aggregation_rejected(self):
        with pytest.raises(ValueError):
            FileLayout(device_slots=[0], fhs=[1], aggregation={})


class TestSyntheticProvider:
    def test_rotates_first_slot_per_file(self):
        provider = SyntheticFileLayoutProvider(3, 1024)

        def get(fh):
            gen = provider.get_layout(fh, "/x")
            try:
                next(gen)
            except StopIteration as stop:
                return stop.value
            raise AssertionError("provider should not yield")

        slots = [get(fh).aggregation["first_slot"] for fh in (10, 11, 12, 13)]
        assert slots == [0, 1, 2, 0]

    def test_stable_per_fh(self):
        provider = SyntheticFileLayoutProvider(4, 512)

        def get(fh):
            gen = provider.get_layout(fh, "/y")
            try:
                next(gen)
            except StopIteration as stop:
                return stop.value

        assert get(42).aggregation["first_slot"] == get(42).aggregation["first_slot"]

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            SyntheticFileLayoutProvider(0, 1024)
        with pytest.raises(ValueError):
            SyntheticFileLayoutProvider(3, 0)


class TestConfigValidation:
    def test_nfs_config_bounds(self):
        with pytest.raises(ValueError):
            NfsConfig(rsize=0)
        with pytest.raises(ValueError):
            NfsConfig(server_threads=0)
        with pytest.raises(ValueError):
            NfsConfig(readahead=-1)

    def test_pvfs2_config_bounds(self):
        with pytest.raises(ValueError):
            Pvfs2Config(stripe_size=0)
        with pytest.raises(ValueError):
            Pvfs2Config(flow_buffers=0)
        with pytest.raises(ValueError):
            Pvfs2Config(dirty_watermark=1)


class TestSession:
    def test_slot_accounting(self):
        sim = Simulator()
        session = Session(sim, slots=2)

        def user():
            yield session.slot()
            yield sim.timeout(1)
            session.done()

        sim.process(user())
        sim.process(user())
        sim.process(user())
        sim.run()
        assert session.highest_used == 2
        assert session.slots.in_use == 0

    def test_session_ids_unique(self):
        sim = Simulator()
        assert Session(sim, 1).sessionid != Session(sim, 1).sessionid
