"""pNFS protocol tests over LocalFs-backed data servers.

Builds a small pNFS file-layout deployment where the MDS and three data
servers all export views of one shared in-memory file system (sparse
data-server addressing), using the synthetic layout provider — the
structure of the 2-/3-tier architectures without PVFS2 underneath.
"""

import pytest

from repro.nfs import Nfs4Server, NfsConfig
from repro.pnfs import PnfsClient, PnfsMetadataServer, SyntheticFileLayoutProvider
from repro.vfs import Payload
from repro.vfs.localfs import LocalClient, LocalFileSystem

from tests.conftest import build_cluster, drive


def make_pnfs(cluster, n_ds=3, stripe_unit=64 * 1024, **cfg_kw):
    cfg = NfsConfig(**cfg_kw)
    sim = cluster.sim
    backing = LocalFileSystem()
    data_servers = [
        Nfs4Server(sim, node, LocalClient(sim, backing), cfg, name=f"{node.name}.ds")
        for node in cluster.storage[:n_ds]
    ]
    provider = SyntheticFileLayoutProvider(n_ds, stripe_unit)
    mds = PnfsMetadataServer(
        sim,
        cluster.storage[0],
        LocalClient(sim, backing),
        cfg,
        data_servers,
        provider,
    )
    return mds, data_servers, backing, cfg


@pytest.fixture
def pnfs(cluster):
    mds, data_servers, backing, cfg = make_pnfs(cluster)
    client = PnfsClient(cluster.sim, cluster.clients[0], mds, cfg)
    drive(cluster.sim, client.mount())
    return client, mds, data_servers, backing


class TestMountAndLayout:
    def test_getdevlist_at_mount(self, cluster, pnfs):
        client, _mds, data_servers, _backing = pnfs
        assert client.devices == data_servers

    def test_layoutget_on_open(self, cluster, pnfs):
        client, mds, _ds, _backing = pnfs

        def scenario():
            f = yield from client.create("/f")
            return f

        f = drive(cluster.sim, scenario())
        layout = f.state["layout"]
        assert layout is not None
        assert layout.ndevices == 3
        assert layout.aggregation["type"] == "round_robin"
        assert mds.layouts_granted >= 1
        assert mds.issued_for(f.state["fh"]) == 1

    def test_layout_return(self, cluster, pnfs):
        client, mds, _ds, _backing = pnfs

        def scenario():
            f = yield from client.create("/r")
            yield from client.layout_return(f)
            return f

        f = drive(cluster.sim, scenario())
        assert f.state["layout"] is None
        assert mds.issued_for(f.state["fh"]) == 0


class TestDataPath:
    def test_write_read_roundtrip_through_data_servers(self, cluster, pnfs):
        client, _mds, _ds, _backing = pnfs
        blob = bytes(range(256)) * 1024  # 256 KB > stripe unit

        def scenario():
            f = yield from client.create("/data")
            yield from client.write(f, 0, Payload(blob))
            yield from client.close(f)
            g = yield from client.open("/data")
            return (yield from client.read(g, 0, len(blob)))

        assert drive(cluster.sim, scenario()).data == blob

    def test_io_goes_to_data_servers_not_mds(self, cluster):
        mds, data_servers, _backing, cfg = make_pnfs(cluster)
        client = PnfsClient(cluster.sim, cluster.clients[0], mds, cfg)

        def scenario():
            yield from client.mount()
            f = yield from client.create("/big")
            yield from client.write(f, 0, Payload.synthetic(8 * 1024 * 1024))
            yield from client.fsync(f)

        mds_before = mds.rpc.calls_served
        ds_before = [ds.rpc.calls_served for ds in data_servers]
        drive(cluster.sim, scenario())
        ds_calls = sum(ds.rpc.calls_served - b for ds, b in zip(data_servers, ds_before))
        mds_calls = mds.rpc.calls_served - mds_before
        # 8 MB at wsize 2 MB = 4 WRITEs + 3 COMMITs on the data path...
        assert ds_calls >= 4
        # ... while the MDS saw only control traffic (mount/open/commit).
        assert mds_calls <= 6

    def test_stripes_spread_over_all_data_servers(self, cluster):
        mds, data_servers, _backing, cfg = make_pnfs(
            cluster, stripe_unit=64 * 1024, wsize=64 * 1024, rsize=64 * 1024
        )
        client = PnfsClient(cluster.sim, cluster.clients[0], mds, cfg)

        def scenario():
            yield from client.mount()
            f = yield from client.create("/spread")
            yield from client.write(f, 0, Payload.synthetic(6 * 64 * 1024))
            yield from client.fsync(f)

        before = [ds.rpc.calls_served for ds in data_servers]
        drive(cluster.sim, scenario())
        per_ds = [ds.rpc.calls_served - b for ds, b in zip(data_servers, before)]
        assert all(calls >= 2 for calls in per_ds)  # 2 WRITEs + commits each

    def test_commit_goes_to_touched_data_servers(self, cluster, pnfs):
        client, _mds, data_servers, backing = pnfs

        def scenario():
            f = yield from client.create("/c")
            # one byte: touches only the slot-0 data server
            yield from client.write(f, 0, Payload(b"z"))
            before = [ds.rpc.calls_served for ds in data_servers]
            yield from client.fsync(f)
            return before

        before = drive(cluster.sim, scenario())
        after = [ds.rpc.calls_served for ds in data_servers]
        deltas = [a - b for a, b in zip(after, before)]
        # WRITE went out before fsync? No: 1 byte < wsize stays dirty until
        # fsync, so slot 0 sees WRITE+COMMIT and others see nothing.
        assert deltas[0] == 2
        assert deltas[1] == deltas[2] == 0

    def test_eof_handling_across_stripes(self, cluster, pnfs):
        client, _mds, _ds, _backing = pnfs

        def scenario():
            f = yield from client.create("/eof")
            yield from client.write(f, 0, Payload(b"a" * 100_000))  # crosses stripes
            yield from client.close(f)
            g = yield from client.open("/eof")
            full = yield from client.read(g, 0, 1 << 20)
            return full

        out = drive(cluster.sim, scenario())
        assert out.nbytes == 100_000


class TestLayoutCommitAndRecall:
    def test_layoutcommit_updates_mds_size(self, cluster, pnfs):
        client, _mds, _ds, backing = pnfs

        def scenario():
            f = yield from client.create("/sz")
            yield from client.write(f, 0, Payload.synthetic(150_000))
            yield from client.fsync(f)

        drive(cluster.sim, scenario())
        entry = backing.namespace.resolve("/sz")
        assert entry.attrs.size == 150_000

    def test_recall_invalidates_client_layout(self, cluster, pnfs):
        client, mds, _ds, _backing = pnfs

        def scenario():
            f = yield from client.create("/rec")
            yield from client.write(f, 0, Payload(b"x" * 1000))
            yield from client.fsync(f)
            fh = f.state["fh"]
            yield from mds.recall_layouts(fh)
            assert f.state["layout"] is None
            # Cached data still readable without a layout...
            data = yield from client.read(f, 0, 1000)
            assert f.state["layout"] is None
            # ...but the next wire I/O transparently re-fetches one.
            yield from client.write(f, 5000, Payload(b"y" * 100))
            yield from client.fsync(f)
            return f, data

        f, data = drive(cluster.sim, scenario())
        assert data.nbytes == 1000
        assert f.state["layout"] is not None
        assert mds.layouts_recalled == 1

    def test_two_clients_each_get_layouts(self, cluster):
        mds, _ds, _backing, cfg = make_pnfs(cluster)
        c0 = PnfsClient(cluster.sim, cluster.clients[0], mds, cfg)
        c1 = PnfsClient(cluster.sim, cluster.clients[1], mds, cfg)

        def scenario():
            yield from c0.mount()
            yield from c1.mount()
            f0 = yield from c0.create("/both")
            yield from c0.write(f0, 0, Payload(b"from c0!"))
            yield from c0.close(f0)
            f1 = yield from c1.open("/both")
            data = yield from c1.read(f1, 0, 8)
            return data, f0, f1

        data, f0, f1 = drive(cluster.sim, scenario())
        assert data.data == b"from c0!"
        assert mds.issued_for(f1.state["fh"]) == 2
