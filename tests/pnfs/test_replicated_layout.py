"""Replicated and hierarchical aggregation through the full pNFS stack.

The optional aggregation drivers (§4.3) are exercised end-to-end here:
a custom layout provider issues replicated / hierarchical layouts over
LocalFs-backed data servers, and the stock pNFS client fans writes out
to every replica and spreads reads across them.
"""

import pytest

from repro.nfs import Nfs4Server, NfsConfig
from repro.pnfs import FileLayout, PnfsClient, PnfsMetadataServer
from repro.pnfs.providers import LayoutProvider
from repro.vfs import Payload
from repro.vfs.localfs import LocalClient, LocalFileSystem

from tests.conftest import build_cluster, drive

KB = 1024


class FixedLayoutProvider(LayoutProvider):
    """Issues the same aggregation description for every file."""

    def __init__(self, ndevices: int, aggregation: dict):
        self.ndevices = ndevices
        self.aggregation = aggregation

    def get_layout(self, fh, path):
        return FileLayout(
            device_slots=list(range(self.ndevices)),
            fhs=[fh] * self.ndevices,
            aggregation=dict(self.aggregation),
        )
        yield  # pragma: no cover


def build(cluster, aggregation, n_ds=4):
    """MDS + n data servers, each over its OWN LocalFs (so replica
    placement is observable per server)."""
    sim = cluster.sim
    cfg = NfsConfig(rsize=32 * KB, wsize=32 * KB)
    stores = [LocalFileSystem() for _ in range(n_ds)]
    # Share one namespace via the MDS's store for metadata; data
    # servers write into their own stores keyed by the same handles.
    mds_store = LocalFileSystem()
    data_servers = [
        Nfs4Server(sim, cluster.storage[i % len(cluster.storage)],
                   _MirrorClient(sim, mds_store, stores[i]), cfg,
                   name=f"ds{i}")
        for i in range(n_ds)
    ]
    mds = PnfsMetadataServer(
        sim,
        cluster.storage[0],
        _MetaOnlyClient(sim, mds_store),
        cfg,
        data_servers,
        FixedLayoutProvider(n_ds, aggregation),
    )
    client = PnfsClient(sim, cluster.clients[0], mds, cfg)
    drive(sim, client.mount())
    return client, stores, mds


class _MetaOnlyClient(LocalClient):
    """MDS backend whose sizes come from LAYOUTCOMMIT hints (data lives
    on the data servers, not in the MDS's own store)."""

    def getattr(self, path):
        yield from self._tick()
        return self.fs.namespace.resolve(path).attrs.copy()

    def getattr_handle(self, handle):
        yield from self._tick()
        return self.fs.namespace.by_handle(handle).attrs.copy()


class _MirrorClient(LocalClient):
    """LocalFs client that resolves handles via the MDS namespace but
    stores data in a per-server store (sparse data-server addressing)."""

    def __init__(self, sim, mds_store, data_store):
        super().__init__(sim, mds_store)
        self.data = data_store

    def read(self, f, offset, nbytes):
        yield from self._tick()
        return self.data.data_for(f.handle).read(offset, nbytes)

    def write(self, f, offset, payload):
        yield from self._tick()
        self.data.data_for(f.handle).write(offset, payload)
        return payload.nbytes


class TestReplicated:
    AGG = {
        "type": "replicated",
        "inner": {"type": "round_robin", "nslots": 2, "stripe_unit": 16 * KB},
        "replicas": [0, 2],
    }

    def test_writes_fan_out_to_both_replica_sets(self, cluster):
        client, stores, _mds = build(cluster, self.AGG)
        blob = bytes(range(256)) * 128  # 32 KB = 2 stripes

        def scenario():
            f = yield from client.create("/mirrored")
            yield from client.write(f, 0, Payload(blob))
            yield from client.fsync(f)
            return f

        f = drive(cluster.sim, scenario())
        fh = f.state["fh"]
        # stripe 0 -> slots 0 and 2; stripe 1 -> slots 1 and 3
        assert stores[0].data_for(fh).read(0, 16 * KB).data == blob[: 16 * KB]
        assert stores[2].data_for(fh).read(0, 16 * KB).data == blob[: 16 * KB]
        assert stores[1].data_for(fh).read(16 * KB, 16 * KB).data == blob[16 * KB :]
        assert stores[3].data_for(fh).read(16 * KB, 16 * KB).data == blob[16 * KB :]

    def test_reads_alternate_replicas_and_verify(self, cluster):
        client, _stores, _mds = build(cluster, self.AGG)
        blob = b"R" * (64 * KB)

        def scenario():
            f = yield from client.create("/r2")
            yield from client.write(f, 0, Payload(blob))
            yield from client.close(f)
            g = yield from client.open("/r2", write=False)
            return (yield from client.read(g, 0, len(blob)))

        assert drive(cluster.sim, scenario()).data == blob


class TestHierarchical:
    AGG = {
        "type": "hierarchical",
        "ngroups": 2,
        "group_size": 2,
        "outer_unit": 32 * KB,
        "inner_unit": 16 * KB,
    }

    def test_two_level_placement(self, cluster):
        client, stores, _mds = build(cluster, self.AGG)
        blob = bytes(range(64)) * KB  # 64 KB = 4 inner units

        def scenario():
            f = yield from client.create("/h")
            yield from client.write(f, 0, Payload(blob))
            yield from client.fsync(f)
            return f

        f = drive(cluster.sim, scenario())
        fh = f.state["fh"]
        # outer 0 -> group 0 (slots 0,1); outer 1 -> group 1 (slots 2,3)
        assert stores[0].data_for(fh).size > 0
        assert stores[1].data_for(fh).size > 0
        assert stores[2].data_for(fh).size > 0
        assert stores[3].data_for(fh).size > 0

    def test_roundtrip(self, cluster):
        client, _stores, _mds = build(cluster, self.AGG)
        blob = bytes(range(256)) * 300

        def scenario():
            f = yield from client.create("/h2")
            yield from client.write(f, 0, Payload(blob))
            yield from client.close(f)
            g = yield from client.open("/h2", write=False)
            return (yield from client.read(g, 0, len(blob)))

        assert drive(cluster.sim, scenario()).data == blob
