"""Wire-level tests of the pNFS metadata server's layout operations."""

import pytest

from repro import rpc
from repro.nfs import Nfs4Server, NfsConfig
from repro.pnfs import PnfsMetadataServer, SyntheticFileLayoutProvider
from repro.rpc import RpcServer
from repro.vfs import Payload
from repro.vfs.localfs import LocalClient, LocalFileSystem

from tests.conftest import build_cluster, drive


@pytest.fixture
def mds(cluster):
    cfg = NfsConfig()
    backing = LocalFileSystem()
    data_servers = [
        Nfs4Server(cluster.sim, node, LocalClient(cluster.sim, backing), cfg)
        for node in cluster.storage
    ]
    server = PnfsMetadataServer(
        cluster.sim,
        cluster.storage[0],
        LocalClient(cluster.sim, backing),
        cfg,
        data_servers,
        SyntheticFileLayoutProvider(3, 64 * 1024),
    )
    return server, data_servers, backing


def call(cluster, server, proc, args):
    def gen():
        return (yield from rpc.call(cluster.clients[0], server.rpc, proc, args))

    return drive(cluster.sim, gen())


class TestLayoutOps:
    def test_getdevlist_returns_endpoints(self, cluster, mds):
        server, data_servers, _ = mds
        result, _ = call(cluster, server, "getdevlist", {})
        assert result["devices"] == data_servers

    def test_layoutget_registers_grant(self, cluster, mds):
        server, _, _ = mds
        opened, _ = call(cluster, server, "open", {"path": "/f", "create": True})
        result, _ = call(
            cluster, server, "layoutget", {"fh": opened["fh"], "path": "/f"}
        )
        layout = result["layout"]
        assert layout.ndevices == 3
        assert server.layouts_granted == 1
        assert server.issued_for(opened["fh"]) == 1

    def test_layoutreturn_by_stateid(self, cluster, mds):
        server, _, _ = mds
        opened, _ = call(cluster, server, "open", {"path": "/g", "create": True})
        r1, _ = call(cluster, server, "layoutget", {"fh": opened["fh"], "path": "/g"})
        r2, _ = call(cluster, server, "layoutget", {"fh": opened["fh"], "path": "/g"})
        assert server.issued_for(opened["fh"]) == 2
        call(
            cluster,
            server,
            "layoutreturn",
            {"fh": opened["fh"], "stateid": r1["layout"].stateid},
        )
        assert server.issued_for(opened["fh"]) == 1
        remaining = [
            lo.stateid for lo, _cb in server._issued[opened["fh"]]
        ]
        assert remaining == [r2["layout"].stateid]

    def test_layoutcommit_records_size(self, cluster, mds):
        server, _, backing = mds
        opened, _ = call(cluster, server, "open", {"path": "/h", "create": True})
        call(
            cluster,
            server,
            "layoutcommit",
            {"fh": opened["fh"], "size": 123_456},
        )
        entry = backing.namespace.by_handle(opened["fh"])
        assert entry.attrs.size == 123_456

    def test_recall_without_callbacks_is_noop(self, cluster, mds):
        server, _, _ = mds
        opened, _ = call(cluster, server, "open", {"path": "/i", "create": True})
        call(cluster, server, "layoutget", {"fh": opened["fh"], "path": "/i"})

        def gen():
            yield from server.recall_layouts(opened["fh"])

        drive(cluster.sim, gen())
        assert server.issued_for(opened["fh"]) == 0
        assert server.layouts_recalled == 0  # no callback endpoint given

    def test_recall_with_callback_round_trips(self, cluster, mds):
        server, _, _ = mds
        recalls = []
        cb = RpcServer(
            cluster.sim, cluster.clients[1], "cb", NfsConfig().costs, threads=1
        )

        def on_recall(args, payload):
            recalls.append(args["fh"])
            return None, None
            yield  # pragma: no cover

        cb.register("cb_layoutrecall", on_recall)
        opened, _ = call(cluster, server, "open", {"path": "/j", "create": True})
        call(
            cluster,
            server,
            "layoutget",
            {"fh": opened["fh"], "path": "/j", "callback": cb},
        )

        def gen():
            yield from server.recall_layouts(opened["fh"])

        drive(cluster.sim, gen())
        assert recalls == [opened["fh"]]
        assert server.layouts_recalled == 1
