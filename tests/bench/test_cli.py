"""CLI smoke tests."""

import pytest

from repro.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "direct-pnfs" in out
        assert "fig6a" in out
        assert "postmark" in out

    def test_cell(self, capsys):
        rc = main(
            ["cell", "direct-pnfs", "ior-write", "--clients", "2", "--scale", "0.02"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "aggregate" in out

    def test_run_small_panel(self, capsys):
        rc = main(["run", "fig8a", "--scale", "0.02", "--clients", "1,2"])
        out = capsys.readouterr().out
        assert "fig8a" in out
        assert rc in (0, 1)  # shape checks may not hold at tiny scale

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["cell", "direct-pnfs", "nope"])
