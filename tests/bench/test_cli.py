"""CLI smoke tests."""

import pytest

from repro.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "direct-pnfs" in out
        assert "fig6a" in out
        assert "postmark" in out

    def test_cell(self, capsys):
        rc = main(
            ["cell", "direct-pnfs", "ior-write", "--clients", "2", "--scale", "0.02"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "aggregate" in out

    def test_run_small_panel(self, capsys):
        rc = main(["run", "fig8a", "--scale", "0.02", "--clients", "1,2"])
        out = capsys.readouterr().out
        assert "fig8a" in out
        assert rc in (0, 1)  # shape checks may not hold at tiny scale

    def test_metrics(self, capsys, tmp_path):
        import json

        out_json = tmp_path / "m.json"
        rc = main(
            [
                "metrics", "nfsv4", "ior-write",
                "--clients", "2", "--scale", "0.02", "--json", str(out_json),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "utilisation" in out
        assert "bottleneck" in out
        report = json.loads(out_json.read_text())
        assert set(report["metrics"]) == {
            "bottleneck", "counters", "series", "utilisation",
        }
        counters = report["metrics"]["counters"]
        assert any(name.endswith("writeback_errors") for name in counters)

    def test_trace(self, capsys, tmp_path):
        import json

        out_trace = tmp_path / "run.trace.json"
        rc = main(
            [
                "trace", "nfsv4", "ior-write",
                "--clients", "2", "--scale", "0.02", "--out", str(out_trace),
            ]
        )
        assert rc == 0
        assert "spans" in capsys.readouterr().out
        doc = json.loads(out_trace.read_text())
        cats = {e.get("cat") for e in doc["traceEvents"]}
        assert {"client-op", "rpc", "server", "disk"} <= cats

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["cell", "direct-pnfs", "nope"])
