"""Tests for the benchmark harness itself (small scales)."""

import pytest

from repro.bench.experiments import EXPERIMENTS, run_experiment
from repro.bench.paper_data import PAPER, paper_series
from repro.bench.report import format_table, shape_checks
from repro.bench.runner import run_cell
from repro.workloads import IorWorkload

MB = 1024 * 1024


class TestRunner:
    def test_run_cell_reports_aggregate_throughput(self):
        w = IorWorkload(op="write", block_size=256 * 1024, scale=0.01)
        result = run_cell("direct-pnfs", w, n_clients=2)
        assert result.n_clients == 2
        assert result.total_bytes == 2 * w.file_size
        assert result.aggregate_mbps > 0
        assert len(result.results) == 2

    def test_deterministic_given_same_seed(self):
        def once():
            w = IorWorkload(op="write", block_size=256 * 1024, scale=0.01)
            return run_cell("pvfs2", w, n_clients=2).makespan

        assert once() == once()

    def test_tps_uses_transaction_window_when_present(self):
        from repro.bench.runner import RunResult
        from repro.workloads.base import WorkloadResult

        r = RunResult(
            arch="x",
            workload="postmark",
            n_clients=2,
            makespan=100.0,
            total_bytes=0,
            results=[
                WorkloadResult(transactions=50, extra={"txn_start": 10, "txn_end": 20}),
                WorkloadResult(transactions=50, extra={"txn_start": 12, "txn_end": 22}),
            ],
        )
        assert r.transactions_per_second == pytest.approx(100 / 12)

    def test_keep_deployment_exposes_internals(self):
        w = IorWorkload(op="write", block_size=256 * 1024, scale=0.01)
        result = run_cell("pvfs2", w, n_clients=1, keep_deployment=True)
        assert result.deployment is not None
        assert result.deployment.pvfs.daemons


class TestExperimentDefinitions:
    def test_all_figures_defined(self):
        expected = {
            "fig6a", "fig6b", "fig6c", "fig6d", "fig6e",
            "fig7a", "fig7b", "fig7c", "fig7d",
            "fig8a", "fig8b", "fig8c", "fig8d", "sshbuild",
        }
        assert expected <= set(EXPERIMENTS)

    def test_paper_data_covers_experiment_systems(self):
        for exp_id, exp in EXPERIMENTS.items():
            if exp_id == "sshbuild":
                continue  # in-text result, no figure series
            assert exp_id in PAPER
            for system in exp.systems:
                assert system in PAPER[exp_id], (exp_id, system)
                for n in exp.client_counts:
                    assert n in PAPER[exp_id][system], (exp_id, system, n)

    def test_paper_series_helper(self):
        series = paper_series("fig6a", "direct-pnfs", [1, 4, 8])
        assert len(series) == 3
        assert series[1] == 119.2

    def test_run_experiment_small(self):
        res = run_experiment("fig8a", scale=0.02, client_counts=[1])
        assert set(res.values) == {"direct-pnfs", "pvfs2"}
        assert res.values["direct-pnfs"][1] > 0
        table = format_table(res)
        assert "fig8a" in table and "direct-pnfs" in table

    def test_shape_checks_produce_verdicts(self):
        res = run_experiment("fig8a", scale=0.02, client_counts=[1])
        checks = shape_checks(res)
        assert checks
        assert all(isinstance(c.ok, bool) for c in checks)
