"""Report formatting and shape-check logic on synthetic results (no sims)."""

import pytest

from repro.bench.experiments import EXPERIMENTS
from repro.bench.paper_data import PAPER
from repro.bench.report import format_table, shape_checks
from repro.bench.experiments import ExperimentResult


def synthetic(exp_id: str, values: dict) -> ExperimentResult:
    return ExperimentResult(
        experiment=EXPERIMENTS[exp_id], scale=0.1, values=values, raw={}
    )


def paperlike(exp_id: str, counts=None) -> dict:
    """Values copied straight from the paper's digitised data."""
    exp = EXPERIMENTS[exp_id]
    counts = counts or exp.client_counts
    return {
        system: {n: PAPER[exp_id][system][n] for n in counts}
        for system in exp.systems
    }


class TestFormatTable:
    def test_table_contains_measured_and_paper(self):
        res = synthetic("fig6a", paperlike("fig6a", [1, 4]))
        table = format_table(res)
        assert "fig6a" in table
        assert "119.2" in table  # paper reference rendered (4-client anchor)
        assert "direct-pnfs" in table and "nfsv4" in table

    def test_table_handles_missing_paper_gracefully(self):
        res = synthetic("fig6a", {"direct-pnfs": {3: 42.0}})
        table = format_table(res)
        assert "42.0" in table


class TestShapeChecksOnPaperValues:
    """The paper's own numbers must pass every check (sanity of the
    criteria themselves)."""

    @pytest.mark.parametrize(
        "exp_id",
        ["fig6a", "fig6b", "fig6c", "fig6d", "fig6e", "fig7a", "fig7c", "fig7d",
         "fig8a", "fig8b", "fig8c", "fig8d"],
    )
    def test_paper_data_satisfies_criteria(self, exp_id):
        res = synthetic(exp_id, paperlike(exp_id))
        failures = [c for c in shape_checks(res) if not c.ok]
        assert not failures, failures

    def test_fig7b_paper_values_pass(self):
        res = synthetic("fig7b", paperlike("fig7b"))
        failures = [c for c in shape_checks(res) if not c.ok]
        assert not failures, failures


class TestShapeChecksCatchViolations:
    def test_flat_direct_curve_fails_6a(self):
        values = paperlike("fig6a")
        # sabotage: direct collapses to nfsv4 levels
        values["direct-pnfs"] = {n: 45 for n in values["direct-pnfs"]}
        res = synthetic("fig6a", values)
        assert any(not c.ok for c in shape_checks(res))

    def test_pvfs2_not_collapsing_fails_6d(self):
        values = paperlike("fig6d")
        values["pvfs2"] = dict(values["direct-pnfs"])  # no collapse
        res = synthetic("fig6d", values)
        assert any(not c.ok for c in shape_checks(res))

    def test_slow_direct_fails_8c(self):
        values = paperlike("fig8c")
        values["direct-pnfs"] = {n: v for n, v in values["pvfs2"].items()}
        res = synthetic("fig8c", values)
        assert any(not c.ok for c in shape_checks(res))

    def test_checks_have_detail_strings(self):
        res = synthetic("fig6a", paperlike("fig6a"))
        for check in shape_checks(res):
            assert check.name and check.detail
            assert str(check).startswith("[")
