"""Bottleneck attribution tests — the paper's §6.2.1 discussion as code.

"In the write experiments, Direct-pNFS and PVFS2 fully utilize the
available disk bandwidth.  In the read experiments, data are read
directly from the server cache, so the disks are not a bottleneck.
Instead, client and server CPU performance becomes the limiting
factor."
"""

import pytest

from repro.bench.bottleneck import UtilisationReport
from repro.bench.runner import run_cell
from repro.workloads import IorWorkload

MB = 1024 * 1024


def storage_reports(result):
    return [u for u in result.utilisation if u.disk > 0 or "server" in u.node]


class TestWriteRegime:
    @pytest.mark.parametrize("arch", ["direct-pnfs", "pvfs2"])
    def test_large_writes_are_disk_bound(self, arch):
        result = run_cell(
            arch,
            IorWorkload(op="write", block_size=4 * MB, scale=0.1),
            8,
            measure_utilisation=True,
        )
        storage = [u for u in result.utilisation if u.node.startswith("server")]
        assert storage
        # disks saturated...
        assert sum(u.disk for u in storage) / len(storage) > 0.7
        # ...and clearly the dominant resource on most storage nodes
        dominants = [u.dominant for u in storage]
        assert dominants.count("disk") >= len(storage) - 1


class TestReadRegime:
    def test_warm_reads_leave_disks_idle(self):
        result = run_cell(
            "direct-pnfs",
            IorWorkload(op="read", block_size=4 * MB, scale=0.1),
            8,
            measure_utilisation=True,
        )
        storage = [u for u in result.utilisation if u.node.startswith("server")]
        assert all(u.disk < 0.05 for u in storage)
        # servers loaded on CPU/NIC instead
        assert all(u.dominant in ("cpu", "nic") for u in storage)
        assert max(max(u.cpu, u.nic_tx) for u in storage) > 0.5

    def test_nfsv4_single_server_is_the_hotspot(self):
        result = run_cell(
            "nfsv4",
            IorWorkload(op="read", block_size=4 * MB, scale=0.1),
            4,
            measure_utilisation=True,
        )
        by_node = {u.node: u for u in result.utilisation}
        gateway = by_node["extra0"]
        backends = [u for n, u in by_node.items() if n.startswith("server")]
        # the single NFS server's NIC runs hot while backends coast
        assert max(gateway.nic_tx, gateway.nic_rx) > 0.7
        assert all(max(u.nic_tx, u.nic_rx) < 0.5 for u in backends)


class TestReportMechanics:
    def test_dominant_resource_selection(self):
        r = UtilisationReport(
            node="x", cpu=0.3, nic_tx=0.9, nic_rx=0.2, disk=0.5, window=1.0
        )
        assert r.dominant == "nic"

    def test_zero_window_rejected(self):
        from repro.bench.bottleneck import NodeSnapshot, utilisation
        from repro.sim import Network, Node, NodeSpec, Simulator

        sim = Simulator()
        node = Node(sim, NodeSpec(name="n"), Network(sim))
        snap = NodeSnapshot(t=0.0, cpu_busy=0, tx_bytes=0, rx_bytes=0, disk_busy=())
        with pytest.raises(ValueError):
            utilisation(node, snap, snap)
