"""ASCII chart rendering tests."""

import pytest

from repro.bench.charts import bar, render_series
from repro.bench.experiments import EXPERIMENTS, ExperimentResult


class TestBar:
    def test_full_and_empty(self):
        assert bar(10, 10, width=10) == "#" * 10
        assert bar(0, 10, width=10) == " " * 10

    def test_half(self):
        assert bar(5, 10, width=10).count("#") == 5

    def test_marker_rendered(self):
        out = bar(2, 10, width=10, marker=8)
        assert out[8] == "|"

    def test_marker_inside_fill_overrides(self):
        out = bar(10, 10, width=10, marker=5)
        assert out[5] == "|"
        assert out.count("#") == 9

    def test_overflow_clamped(self):
        assert bar(20, 10, width=10) == "#" * 10

    def test_invalid_max(self):
        with pytest.raises(ValueError):
            bar(1, 0)


class TestRenderSeries:
    def test_renders_measured_and_reference(self):
        res = ExperimentResult(
            experiment=EXPERIMENTS["fig8a"],
            scale=0.1,
            values={
                "direct-pnfs": {1: 45.0, 4: 93.0, 8: 102.0},
                "pvfs2": {1: 33.0, 4: 48.0, 8: 49.0},
            },
            raw={},
        )
        out = render_series(res)
        assert "fig8a" in out
        assert "direct-pnfs" in out and "pvfs2" in out
        assert "#" in out and "|" in out
        assert "102.0" in out

    def test_cli_chart_flag(self, capsys):
        from repro.cli import main

        rc = main(["run", "fig8a", "--scale", "0.02", "--clients", "1", "--chart"])
        out = capsys.readouterr().out
        assert "#" in out
        assert rc in (0, 1)
