"""Regression: a failed asynchronous write-back must not lose pages.

The bug: ``_spawn_writeback`` moves a range from ``dirty`` to
``flushing`` before the WRITE goes out; when the WRITE failed, the
error path removed the range from ``flushing`` too, so the pages were
in neither set — fsync had nothing left to retry and the data silently
evaporated.  The fix re-marks the range dirty, latches the error on the
open file (Linux errseq-style), and surfaces it at the next
fsync/close; after the server recovers, a retried fsync flushes the
pages for real.
"""

from repro.nfs import Nfs4Client, Nfs4Server, NfsConfig
from repro.rpc import RpcTimeout
from repro.vfs import Payload
from repro.vfs.localfs import LocalClient, LocalFileSystem

from tests.conftest import drive

KB = 1024
WSIZE = 64 * KB
BLOB = bytes(range(256)) * 1024  # 256 KB -> 4 wsize blocks


def make_faulty(cluster):
    """Client/server pair with the fault layer on (short timeouts)."""
    cfg = NfsConfig(
        rsize=WSIZE,
        wsize=WSIZE,
        rpc_timeout=0.2,
        rpc_max_retries=1,
    )
    backing = LocalFileSystem()
    server = Nfs4Server(
        cluster.sim, cluster.storage[0], LocalClient(cluster.sim, backing), cfg
    )
    client = Nfs4Client(cluster.sim, cluster.clients[0], server, cfg)
    drive(cluster.sim, client.mount())
    return client, server, backing


class TestWritebackFailure:
    def test_fsync_surfaces_failure_and_retry_is_durable(self, cluster):
        """Kill the server mid-writeback: fsync must raise, the pages
        must return to ``dirty``, and a post-recovery fsync must make
        every byte durable.  (Pre-fix: the ranges left both ``dirty``
        and ``flushing`` and the data was gone for good.)"""
        client, server, _backing = make_faulty(cluster)
        sim = cluster.sim

        def fill():
            f = yield from client.create("/data")
            # 4 aligned wsize blocks: write() kicks all of them as
            # asynchronous write-backs immediately.
            yield from client.write(f, 0, Payload(BLOB))
            return f

        f = drive(sim, fill())
        assert f.state["flushing"] or f.state["dirty"]

        # The WRITE RPCs are now in flight; the service dies under them.
        server.rpc.fail()

        def failing_fsync():
            try:
                yield from client.fsync(f)
            except RpcTimeout as exc:
                return exc
            return None

        exc = drive(sim, failing_fsync())
        assert isinstance(exc, RpcTimeout), "fsync must surface the failure"
        assert client.writeback_errors > 0
        # Every lost range is dirty again — nothing fell into the gap
        # between ``dirty`` and ``flushing``.
        assert f.state["dirty"].total == len(BLOB)
        assert not f.state["flushing"]
        # The latch is one-shot: it reported, and is clear again.
        assert f.state["wb_error"] is None

        # Recovery: the service comes back; the retried fsync pushes the
        # re-marked pages and the file is durable on the server.
        server.rpc.restore()

        def retry_and_verify():
            yield from client.fsync(f)
            yield from client.close(f)

        drive(sim, retry_and_verify())
        assert not f.state["dirty"] and not f.state["flushing"]

        # Read back through a cold client: every byte must have reached
        # the server (the writer's own cache cannot mask loss).
        reader = Nfs4Client(sim, cluster.clients[1], server, server.cfg)

        def readback():
            yield from reader.mount()
            g = yield from reader.open("/data", write=False)
            data = yield from reader.read(g, 0, len(BLOB))
            yield from reader.close(g)
            return data

        assert drive(sim, readback()).data == BLOB

    def test_close_surfaces_latched_writeback_error(self, cluster):
        client, server, _backing = make_faulty(cluster)
        sim = cluster.sim

        def fill():
            f = yield from client.create("/doomed")
            yield from client.write(f, 0, Payload(BLOB))
            return f

        f = drive(sim, fill())
        server.rpc.fail()

        def closing():
            try:
                yield from client.close(f)
            except RpcTimeout as exc:
                return exc
            return None

        assert isinstance(drive(sim, closing()), RpcTimeout)
        assert client.writeback_errors > 0
        assert f.state["dirty"].total == len(BLOB)

    def test_healthy_path_unchanged(self, cluster):
        """With no failure, the fix is invisible: fsync commits, no
        errors latched, no ranges left behind."""
        client, server, backing = make_faulty(cluster)
        sim = cluster.sim

        def scenario():
            f = yield from client.create("/ok")
            yield from client.write(f, 0, Payload(BLOB))
            yield from client.fsync(f)
            yield from client.close(f)
            return f

        f = drive(sim, scenario())
        assert client.writeback_errors == 0
        assert f.state["wb_error"] is None
        assert not f.state["dirty"] and not f.state["flushing"]
        entry = backing.namespace.resolve("/ok")
        assert backing.contents[entry.handle].size == len(BLOB)
