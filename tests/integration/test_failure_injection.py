"""Failure injection: storage-daemon crashes and durability semantics.

The paper's §5 durability stance — commit to stable storage only at
fsync/close, because "many scientific applications can re-create lost
data" — has an observable flip side: data that was never fsync'd does
not survive a storage-node crash, while fsync'd data does.
"""

import pytest

from repro.core import DirectPnfsSystem
from repro.nfs import NfsConfig
from repro.pvfs2 import Pvfs2Config, Pvfs2System
from repro.vfs import Payload
from repro.vfs.api import FsError

from tests.conftest import build_cluster, drive


@pytest.fixture
def stack(cluster):
    pvfs = Pvfs2System(
        cluster.sim, cluster.storage, Pvfs2Config(stripe_size=16 * 1024)
    )
    direct = DirectPnfsSystem(
        cluster.sim, pvfs, NfsConfig(rsize=32 * 1024, wsize=32 * 1024)
    )
    return cluster, pvfs, direct


class TestCrashDurability:
    def test_fsynced_data_survives_crash(self, stack):
        cluster, pvfs, direct = stack
        client = direct.make_client(cluster.clients[0])
        blob = bytes(range(256)) * 32  # 8 KB: one stripe

        def scenario():
            yield from client.mount()
            f = yield from client.create("/durable")
            yield from client.write(f, 0, Payload(blob))
            yield from client.fsync(f)
            # Let the flushers drain fully, then crash every daemon.
            yield cluster.sim.timeout(5.0)
            for daemon in pvfs.daemons:
                daemon.crash()
            g = yield from client.open("/durable", write=False)
            # bypass the client cache: fresh client reads from storage
            fresh = direct.make_client(cluster.clients[1])
            yield from fresh.mount()
            h = yield from fresh.open("/durable", write=False)
            return (yield from fresh.read(h, 0, len(blob)))

        out = drive(cluster.sim, scenario())
        assert out.data == blob

    def test_unflushed_data_lost_on_crash(self, stack):
        cluster, pvfs, _direct = stack
        native = pvfs.make_client(cluster.clients[0])
        blob = b"\xff" * 4096

        def scenario():
            yield from native.mount()
            f = yield from native.create("/volatile")
            yield from native.write(f, 0, Payload(blob))
            # No fsync: the daemon buffers it.  Crash before the
            # write-behind flusher has a chance to run.
            for daemon in pvfs.daemons:
                daemon.crash()
            return (yield from native.read(f, 0, len(blob)))

        out = drive(cluster.sim, scenario())
        # Size survives (metadata), content reads back as zeros.
        assert out.nbytes == len(blob)
        assert out.data == b"\x00" * len(blob)

    def test_crash_fails_inflight_fsync(self, stack):
        cluster, pvfs, _direct = stack
        native = pvfs.make_client(cluster.clients[0])

        def crasher():
            # Crash the daemons the moment a flush barrier is waiting.
            while not any(d._drain_waiters for d in pvfs.daemons):
                yield cluster.sim.timeout(0.01)
            for daemon in pvfs.daemons:
                daemon.crash()

        def scenario():
            yield from native.mount()
            f = yield from native.create("/failing")
            # enough data that the flush barrier must actually wait
            # (well beyond the per-daemon write-cache allowance)
            yield from native.write(f, 0, Payload.synthetic(180_000_000))
            cluster.sim.process(crasher())
            try:
                yield from native.fsync(f)
            except FsError:
                return "eio"
            return "no-error"

        assert drive(cluster.sim, scenario()) == "eio"

    def test_system_serves_after_crash(self, stack):
        cluster, pvfs, direct = stack
        client = direct.make_client(cluster.clients[0])

        def scenario():
            yield from client.mount()
            f = yield from client.create("/before")
            yield from client.write(f, 0, Payload(b"pre-crash"))
            yield from client.close(f)
            pvfs.daemons[0].crash()
            # New work proceeds against the restarted daemon.
            g = yield from client.create("/after")
            yield from client.write(g, 0, Payload(b"post-crash"))
            yield from client.fsync(g)
            yield from client.close(g)
            h = yield from client.open("/after", write=False)
            return (yield from client.read(h, 0, 10))

        assert drive(cluster.sim, scenario()).data == b"post-crash"

    def test_persisted_accounting(self, stack):
        cluster, pvfs, direct = stack
        client = direct.make_client(cluster.clients[0])

        def scenario():
            yield from client.mount()
            f = yield from client.create("/acct")
            yield from client.write(f, 0, Payload.synthetic(300_000))
            yield from client.fsync(f)
            yield cluster.sim.timeout(5.0)  # drain write-behind fully

        drive(cluster.sim, scenario())
        persisted = sum(
            d.persisted_bytes(h) for d in pvfs.daemons for h in d.bstreams
        )
        assert persisted == 300_000
