"""Property-based end-to-end consistency.

A random sequence of writes/reads/fsyncs/reopens through a full
Direct-pNFS stack must agree byte-for-byte with a plain bytearray
reference model — the page cache, write-back, readahead, striping,
layout translation, and storage daemons all sit between the two.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DirectPnfsSystem
from repro.nfs import NfsConfig
from repro.pvfs2 import Pvfs2Config, Pvfs2System
from repro.vfs import Payload

from tests.conftest import build_cluster


ops_strategy = st.lists(
    st.one_of(
        st.tuples(
            st.just("write"),
            st.integers(0, 200_000),
            st.binary(min_size=1, max_size=3000),
        ),
        st.tuples(st.just("read"), st.integers(0, 200_000), st.integers(1, 4000)),
        st.tuples(st.just("fsync"), st.just(0), st.just(b"")),
        st.tuples(st.just("reopen"), st.just(0), st.just(b"")),
    ),
    min_size=1,
    max_size=25,
)


class TestEndToEndConsistency:
    @given(ops=ops_strategy)
    @settings(max_examples=15, deadline=None)
    def test_property_direct_pnfs_matches_reference(self, ops):
        cluster = build_cluster(n_storage=3, n_clients=1)
        pvfs = Pvfs2System(
            cluster.sim, cluster.storage, Pvfs2Config(stripe_size=16 * 1024)
        )
        system = DirectPnfsSystem(
            cluster.sim, pvfs, NfsConfig(rsize=32 * 1024, wsize=32 * 1024)
        )
        client = system.make_client(cluster.clients[0])
        ref = bytearray()

        def apply_ref_write(offset, data):
            end = offset + len(data)
            if len(ref) < end:
                ref.extend(b"\x00" * (end - len(ref)))
            ref[offset:end] = data

        failures = []

        def scenario():
            yield from client.mount()
            f = yield from client.create("/prop")
            for op, a, b in ops:
                if op == "write":
                    yield from client.write(f, a, Payload(b))
                    apply_ref_write(a, b)
                elif op == "read":
                    got = yield from client.read(f, a, b)
                    want = bytes(ref[a : a + b])
                    if got.data != want:
                        failures.append((a, b, got.data, want))
                elif op == "fsync":
                    yield from client.fsync(f)
                else:  # reopen
                    yield from client.close(f)
                    f = yield from client.open("/prop")
            yield from client.close(f)
            g = yield from client.open("/prop")
            final = yield from client.read(g, 0, max(len(ref), 1))
            if final.data != bytes(ref):
                failures.append(("final", len(ref), final.data, bytes(ref)))

        proc = cluster.sim.process(scenario())
        cluster.sim.run(until=proc)
        assert not failures, failures[0][:2]

    @given(
        writes=st.lists(
            st.tuples(st.integers(0, 100_000), st.binary(min_size=1, max_size=2000)),
            min_size=1,
            max_size=15,
        )
    )
    @settings(max_examples=12, deadline=None)
    def test_property_cross_client_read_back(self, writes):
        """Everything one client writes (and closes), another reads."""
        cluster = build_cluster(n_storage=3, n_clients=2)
        pvfs = Pvfs2System(
            cluster.sim, cluster.storage, Pvfs2Config(stripe_size=16 * 1024)
        )
        system = DirectPnfsSystem(
            cluster.sim, pvfs, NfsConfig(rsize=32 * 1024, wsize=32 * 1024)
        )
        writer = system.make_client(cluster.clients[0])
        reader = system.make_client(cluster.clients[1])
        ref = bytearray()

        def scenario():
            yield from writer.mount()
            yield from reader.mount()
            f = yield from writer.create("/x")
            for offset, data in writes:
                yield from writer.write(f, offset, Payload(data))
                end = offset + len(data)
                if len(ref) < end:
                    ref.extend(b"\x00" * (end - len(ref)))
                ref[offset:end] = data
            yield from writer.close(f)
            g = yield from reader.open("/x")
            got = yield from reader.read(g, 0, len(ref))
            return got

        proc = cluster.sim.process(scenario())
        got = cluster.sim.run(until=proc)
        assert got.data == bytes(ref)
