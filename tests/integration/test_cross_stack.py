"""Cross-stack integration tests.

Exercise combinations the unit suites do not: NFS exporting PVFS2
directly, multiple architectures sharing one backend deployment, cache
coherence across open/close, and concurrent mixed workloads.
"""

import pytest

from repro.core import DirectPnfsSystem
from repro.nfs import Nfs4Client, Nfs4Server, NfsConfig
from repro.pvfs2 import Pvfs2Config, Pvfs2System
from repro.vfs import Payload

from tests.conftest import build_cluster, drive


class TestNfsOverPvfs2:
    """A standalone NFSv4 server exporting a PVFS2 client backend."""

    @pytest.fixture
    def stack(self, cluster):
        pvfs = Pvfs2System(
            cluster.sim, cluster.storage, Pvfs2Config(stripe_size=64 * 1024)
        )
        cfg = NfsConfig(rsize=128 * 1024, wsize=128 * 1024)
        server = Nfs4Server(
            cluster.sim, cluster.storage[0], pvfs.make_client(cluster.storage[0]), cfg
        )
        client = Nfs4Client(cluster.sim, cluster.clients[0], server, cfg)
        drive(cluster.sim, client.mount())
        return client, server, pvfs

    def test_roundtrip_lands_striped(self, cluster, stack):
        client, _server, pvfs = stack
        blob = bytes(range(256)) * 1200  # ~300 KB across stripes

        def scenario():
            f = yield from client.create("/via-nfs")
            yield from client.write(f, 0, Payload(blob))
            yield from client.close(f)
            g = yield from client.open("/via-nfs")
            return (yield from client.read(g, 0, len(blob)))

        assert drive(cluster.sim, scenario()).data == blob
        # striped across all three daemons
        assert sum(1 for d in pvfs.daemons if d.bstreams) == 3

    def test_getattr_size_ripples_through_daemons(self, cluster, stack):
        client, _server, pvfs = stack

        def scenario():
            f = yield from client.create("/sz")
            yield from client.write(f, 0, Payload.synthetic(200_000))
            yield from client.close(f)
            before = [d.rpc.calls_served for d in pvfs.daemons]
            self_attrs = yield from client.getattr("/sz")
            after = [d.rpc.calls_served for d in pvfs.daemons]
            return self_attrs, before, after

        attrs, before, after = drive(cluster.sim, scenario())
        assert attrs.size == 200_000
        # the §3.4.1 ripple: one NFS GETATTR queried every storage server
        assert all(a > b for a, b in zip(after, before))


class TestNativeAndDirectShareBackend:
    def test_native_pvfs2_sees_direct_pnfs_writes(self, cluster):
        pvfs = Pvfs2System(
            cluster.sim, cluster.storage, Pvfs2Config(stripe_size=64 * 1024)
        )
        direct = DirectPnfsSystem(
            cluster.sim, pvfs, NfsConfig(rsize=64 * 1024, wsize=64 * 1024)
        )
        nfs_client = direct.make_client(cluster.clients[0])
        native = pvfs.make_client(cluster.clients[1])
        blob = b"interop" * 1000

        def scenario():
            yield from nfs_client.mount()
            yield from native.mount()
            f = yield from nfs_client.create("/interop")
            yield from nfs_client.write(f, 0, Payload(blob))
            yield from nfs_client.close(f)
            g = yield from native.open("/interop")
            via_native = yield from native.read(g, 0, len(blob))
            # and back: native writes, direct reads
            yield from native.write(g, len(blob), Payload(b"!native!"))
            yield from native.fsync(g)
            h = yield from nfs_client.open("/interop")
            tail = yield from nfs_client.read(h, len(blob), 8)
            return via_native, tail

        via_native, tail = drive(cluster.sim, scenario())
        assert via_native.data == blob
        assert tail.data == b"!native!"


class TestCloseToOpenCache:
    @pytest.fixture
    def direct(self, cluster):
        pvfs = Pvfs2System(
            cluster.sim, cluster.storage, Pvfs2Config(stripe_size=64 * 1024)
        )
        system = DirectPnfsSystem(
            cluster.sim, pvfs, NfsConfig(rsize=64 * 1024, wsize=64 * 1024)
        )
        return system

    def test_reopen_serves_reads_from_cache(self, cluster, direct):
        client = direct.make_client(cluster.clients[0])
        ds_calls = lambda: sum(ds.rpc.calls_served for ds in direct.data_servers)

        def scenario():
            yield from client.mount()
            f = yield from client.create("/hdr")
            yield from client.write(f, 0, Payload(b"h" * 30_000))
            yield from client.close(f)
            g = yield from client.open("/hdr")
            yield from client.read(g, 0, 30_000)  # warm the inode cache
            yield from client.close(g)
            before = ds_calls()
            for _ in range(5):  # compiler re-reading a header
                h = yield from client.open("/hdr")
                data = yield from client.read(h, 0, 30_000)
                assert data.nbytes == 30_000
                yield from client.close(h)
            return ds_calls() - before

        extra_data_rpcs = drive(cluster.sim, scenario())
        assert extra_data_rpcs == 0  # all five re-reads hit the page cache

    def test_reopen_after_remote_change_invalidates(self, cluster, direct):
        c0 = direct.make_client(cluster.clients[0])
        c1 = direct.make_client(cluster.clients[1])

        def scenario():
            yield from c0.mount()
            yield from c1.mount()
            f = yield from c0.create("/coh")
            yield from c0.write(f, 0, Payload(b"AAAA"))
            yield from c0.close(f)
            g0 = yield from c0.open("/coh")
            yield from c0.read(g0, 0, 4)
            yield from c0.close(g0)
            # c1 extends the file: size changes, c0 must revalidate
            g1 = yield from c1.open("/coh")
            yield from c1.write(g1, 4, Payload(b"BBBB"))
            yield from c1.close(g1)
            g0b = yield from c0.open("/coh")
            data = yield from c0.read(g0b, 0, 8)
            return data

        assert drive(cluster.sim, scenario()).data == b"AAAABBBB"

    def test_layout_cached_across_opens(self, cluster, direct):
        client = direct.make_client(cluster.clients[0])

        def scenario():
            yield from client.mount()
            f = yield from client.create("/lay")
            yield from client.write(f, 0, Payload(b"x"))
            yield from client.close(f)
            granted_after_create = direct.mds.layouts_granted
            for _ in range(3):
                g = yield from client.open("/lay")
                yield from client.close(g)
            return direct.mds.layouts_granted - granted_after_create

        assert drive(cluster.sim, scenario()) == 0  # layouts live with the inode


class TestConcurrentMixedLoad:
    def test_streaming_and_small_io_coexist(self, cluster):
        """A bulk writer and a small-file workload run concurrently
        without corrupting each other."""
        pvfs = Pvfs2System(
            cluster.sim, cluster.storage, Pvfs2Config(stripe_size=64 * 1024)
        )
        system = DirectPnfsSystem(
            cluster.sim, pvfs, NfsConfig(rsize=64 * 1024, wsize=64 * 1024)
        )
        bulk = system.make_client(cluster.clients[0])
        small = system.make_client(cluster.clients[1])

        def bulk_proc():
            yield from bulk.mount()
            f = yield from bulk.create("/bulk")
            yield from bulk.write(f, 0, Payload.synthetic(4 * 1024 * 1024))
            yield from bulk.close(f)

        def small_proc():
            yield from small.mount()
            yield from small.mkdir("/small")
            for i in range(10):
                f = yield from small.create(f"/small/f{i}")
                yield from small.write(f, 0, Payload(bytes([i]) * 100))
                yield from small.close(f)
            out = []
            for i in range(10):
                f = yield from small.open(f"/small/f{i}")
                data = yield from small.read(f, 0, 100)
                out.append(data.data)
                yield from small.close(f)
            return out

        sim = cluster.sim
        p1 = sim.process(bulk_proc())
        p2 = sim.process(small_proc())
        sim.run(until=sim.all_of([p1, p2]))
        assert p2.value == [bytes([i]) * 100 for i in range(10)]
        assert sum(fd.size for d in pvfs.daemons for fd in d.bstreams.values()) >= 4 * 1024 * 1024
