"""Identical-seed runs must replay identically.

The torture harness (``repro.check``) replays failing seeds and shrinks
programs by re-running them; both depend on two guarantees this module
pins down:

* **id determinism** — session ids and layout stateids come from the
  simulation's own id streams (``Simulator.next_id``), never from
  process-global counters, so a run's ids do not depend on how many
  other simulations executed earlier in the process;
* **trace determinism** — two same-seed runs of the same concurrent
  workload produce byte-identical event traces (operation completion
  times, byte counts, RNG draws).
"""

import pytest

from repro.cluster.configs import make_deployment
from repro.vfs import Payload

KB = 1024


def _run_episode(arch: str, seed: int):
    """One small concurrent episode; returns (trace, ids) for comparison."""
    dep = make_deployment(
        arch,
        n_clients=3,
        seed=seed,
        nfs_overrides={"rsize": 64 * KB, "wsize": 64 * KB},
    )
    sim = dep.testbed.sim
    clients = [dep.make_client(node) for node in dep.testbed.client_nodes[:3]]
    trace: list[tuple] = []

    def worker(idx, client):
        if hasattr(client, "mount"):
            yield from client.mount()
        f = yield from client.create(f"/d{idx}")
        for round_no in range(3):
            size = int(sim.rng.integers(1, 5)) * 8 * KB
            yield from client.write(f, round_no * 64 * KB, Payload.synthetic(size))
            trace.append((round(sim.now, 9), idx, "write", size))
        if hasattr(client, "fsync"):
            yield from client.fsync(f)
        got = yield from client.read(f, 0, 8 * KB)
        trace.append((round(sim.now, 9), idx, "read", got.nbytes))
        yield from client.close(f)

    procs = [sim.process(worker(i, c)) for i, c in enumerate(clients)]
    sim.run(until=sim.all_of(procs))
    ids = dict(sim._ids)
    return trace, ids


class TestSameSeedSameTrace:
    @pytest.mark.parametrize("arch", ["direct-pnfs", "pvfs2"])
    def test_two_runs_identical(self, arch):
        first = _run_episode(arch, seed=1234)
        second = _run_episode(arch, seed=1234)
        assert first == second

    def test_different_seeds_diverge(self):
        # The workload draws sizes from the sim RNG, so distinct seeds
        # should produce distinct traces (guards against a stub RNG).
        t1, _ = _run_episode("direct-pnfs", seed=1)
        t2, _ = _run_episode("direct-pnfs", seed=2)
        assert t1 != t2

    def test_ids_do_not_leak_across_runs(self):
        # A fresh same-seed deployment starts every id stream at 1 even
        # though another simulation just ran in this process.
        _, ids_a = _run_episode("direct-pnfs", seed=77)
        _, ids_b = _run_episode("direct-pnfs", seed=77)
        assert ids_a == ids_b
        assert ids_a.get("session", 0) >= 1
