"""Smoke matrix: every workload runs on every architecture.

Tiny scales — the goal is interface conformance (the same workload code
must run unmodified over all five systems), not performance.
"""

import pytest

from repro.bench.runner import run_cell
from repro.cluster.configs import ARCHITECTURES
from repro.workloads import (
    AtlasWorkload,
    BtioWorkload,
    IorWorkload,
    MdtestWorkload,
    OltpWorkload,
    PostmarkWorkload,
    SshBuildWorkload,
)

WORKLOADS = {
    "ior-write": lambda: IorWorkload(op="write", block_size=256 * 1024, scale=0.01),
    "ior-read": lambda: IorWorkload(op="read", block_size=256 * 1024, scale=0.01),
    "atlas": lambda: AtlasWorkload(total_bytes=6 << 20, n_requests=60, scale=1.0),
    "btio": lambda: BtioWorkload(
        total_bytes=4 << 20, checkpoints=4, compute_seconds_per_checkpoint=0, scale=1.0
    ),
    "oltp": lambda: OltpWorkload(transactions=15, region_bytes=1 << 20, scale=1.0),
    "postmark": lambda: PostmarkWorkload(
        transactions=12, nfiles=10, fmax=8 * 1024, scale=1.0
    ),
    "sshbuild": lambda: SshBuildWorkload(nsources=8, scale=1.0),
    "mdtest": lambda: MdtestWorkload(nfiles=20, ndirs=2, scale=1.0),
}


@pytest.mark.parametrize("arch", sorted(ARCHITECTURES))
@pytest.mark.parametrize("workload_name", sorted(WORKLOADS))
def test_matrix_cell(arch, workload_name):
    result = run_cell(arch, WORKLOADS[workload_name](), n_clients=2)
    assert result.makespan > 0
    assert len(result.results) == 2
    for r in result.results:
        assert r.transactions >= 0
