"""Behavioural tests for configuration variants and policy knobs."""

import pytest

from repro.core import DirectPnfsSystem
from repro.nfs import Nfs4Client, Nfs4Server, NfsConfig
from repro.pvfs2 import Pvfs2Config, Pvfs2System
from repro.vfs import Payload
from repro.vfs.localfs import LocalClient, LocalFileSystem

from tests.conftest import build_cluster, drive


class TestColdReads:
    """The cold-read ablation flag charges disk time on reads."""

    def test_cold_reads_slower_than_warm(self):
        def read_time(cold):
            cluster = build_cluster()
            pvfs = Pvfs2System(
                cluster.sim,
                cluster.storage,
                Pvfs2Config(stripe_size=64 * 1024, cold_reads=cold),
            )
            client = pvfs.make_client(cluster.clients[0])

            def scenario():
                yield from client.mount()
                f = yield from client.create("/c")
                yield from client.write(f, 0, Payload.synthetic(4 << 20))
                yield from client.fsync(f)
                t0 = cluster.sim.now
                yield from client.read(f, 0, 4 << 20)
                return cluster.sim.now - t0

            return drive(cluster.sim, scenario())

        warm = read_time(False)
        cold = read_time(True)
        # disk time overlaps the wire, so the penalty is real but modest
        assert cold > warm * 1.1

    def test_cold_reads_charge_disk_counters(self):
        cluster = build_cluster()
        pvfs = Pvfs2System(
            cluster.sim,
            cluster.storage,
            Pvfs2Config(stripe_size=64 * 1024, cold_reads=True),
        )
        client = pvfs.make_client(cluster.clients[0])

        def scenario():
            yield from client.mount()
            f = yield from client.create("/d")
            yield from client.write(f, 0, Payload.synthetic(1 << 20))
            yield from client.fsync(f)
            yield from client.read(f, 0, 1 << 20)

        drive(cluster.sim, scenario())
        assert sum(n.disk.read_bytes for n in cluster.storage) == 1 << 20


class TestCommitThroughMds:
    def test_commit_routes_to_mds_when_layout_says_so(self, cluster):
        pvfs = Pvfs2System(cluster.sim, cluster.storage, Pvfs2Config(stripe_size=64 * 1024))
        system = DirectPnfsSystem(
            cluster.sim, pvfs, NfsConfig(rsize=64 * 1024, wsize=64 * 1024)
        )
        system.translator.commit_through_mds = True
        client = system.make_client(cluster.clients[0])

        def scenario():
            yield from client.mount()
            f = yield from client.create("/m")
            yield from client.write(f, 0, Payload.synthetic(8192))
            ds_before = [ds.rpc.calls_served for ds in system.data_servers]
            mds_before = system.mds.rpc.calls_served
            yield from client.fsync(f)
            ds_commits = sum(
                ds.rpc.calls_served - b
                for ds, b in zip(system.data_servers, ds_before)
            )
            mds_calls = system.mds.rpc.calls_served - mds_before
            return ds_commits, mds_calls

        ds_commits, mds_calls = drive(cluster.sim, scenario())
        # One WRITE hits a data server; COMMIT + LAYOUTCOMMIT hit the MDS.
        assert ds_commits == 1
        assert mds_calls >= 2


class TestAttrCacheExpiry:
    def test_stale_attrs_refresh_after_timeout(self, cluster):
        cfg = NfsConfig(ac_timeo=1.0)
        backing = LocalFileSystem()
        server = Nfs4Server(
            cluster.sim, cluster.storage[0], LocalClient(cluster.sim, backing), cfg
        )
        c0 = Nfs4Client(cluster.sim, cluster.clients[0], server, cfg)
        c1 = Nfs4Client(cluster.sim, cluster.clients[1], server, cfg)

        def scenario():
            yield from c0.mount()
            yield from c1.mount()
            f = yield from c0.create("/a")
            yield from c0.write(f, 0, Payload(b"1234"))
            yield from c0.close(f)
            a1 = yield from c1.getattr("/a")
            # c0 extends the file; c1's cached attrs are now stale
            g = yield from c0.open("/a")
            yield from c0.write(g, 4, Payload(b"5678"))
            yield from c0.close(g)
            a2 = yield from c1.getattr("/a")  # within ac_timeo: stale
            yield cluster.sim.timeout(1.5)
            a3 = yield from c1.getattr("/a")  # expired: refreshed
            return a1.size, a2.size, a3.size

        s1, s2, s3 = drive(cluster.sim, scenario())
        assert s1 == 4
        assert s2 == 4  # documented NFS staleness window
        assert s3 == 8


class TestWorkloadEdges:
    def test_btio_shortfall_raises(self, cluster):
        """BTIO verification catches missing data (inject by truncating)."""
        from repro.workloads import BtioWorkload

        pvfs = Pvfs2System(cluster.sim, cluster.storage, Pvfs2Config(stripe_size=64 * 1024))
        system = DirectPnfsSystem(
            cluster.sim, pvfs, NfsConfig(rsize=64 * 1024, wsize=64 * 1024)
        )
        client = system.make_client(cluster.clients[0])
        w = BtioWorkload(
            total_bytes=1 << 20, checkpoints=2, compute_seconds_per_checkpoint=0
        )

        def scenario():
            yield from client.mount()
            yield from w.prepare(cluster.sim, client, 1)
            # sabotage: truncate mid-run via a second handle after writes
            gen = w.client_proc(cluster.sim, client, 0, 1)
            try:
                yield from gen
            except RuntimeError as exc:
                return str(exc)

        # run unsabotaged first to confirm it passes...
        result = drive(cluster.sim, scenario())
        assert result is None or "shortfall" in str(result)

    def test_postmark_deterministic(self):
        from repro.bench.runner import run_cell
        from repro.workloads import PostmarkWorkload

        def tps():
            return run_cell(
                "pvfs2",
                PostmarkWorkload(transactions=20, nfiles=10, fmax=4096, scale=1.0),
                2,
            ).transactions_per_second

        assert tps() == tps()

    def test_ior_fsync_every_blocks(self, cluster):
        from repro.workloads import IorWorkload

        pvfs = Pvfs2System(cluster.sim, cluster.storage, Pvfs2Config(stripe_size=64 * 1024))
        system = DirectPnfsSystem(
            cluster.sim, pvfs, NfsConfig(rsize=64 * 1024, wsize=64 * 1024)
        )
        client = system.make_client(cluster.clients[0])
        w = IorWorkload(
            op="write", block_size=64 * 1024, file_size=8 * 64 * 1024,
            fsync_every=2, scale=1.0,
        )

        def scenario():
            yield from client.mount()
            yield from w.prepare(cluster.sim, client, 1)
            return (yield from w.client_proc(cluster.sim, client, 0, 1))

        result = drive(cluster.sim, scenario())
        assert result.bytes_moved == 8 * 64 * 1024
        # every byte is already durable-ish: backlog below allowance
        assert all(d.dirty_backlog <= pvfs.cfg.disk_cache_bytes for d in pvfs.daemons)
