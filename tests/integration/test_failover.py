"""Fault-path integration tests: retry, exactly-once, MDS failover.

These exercise the recovery claims of the paper's "versatile" story
(§5): RPC timeouts with exponential backoff, NFSv4.1 session reply-cache
retransmission (exactly-once WRITE), and the Direct-pNFS client falling
back to proxied I/O through the MDS when a data server dies — then
recovering direct access when it returns.
"""

import pytest

from repro import rpc
from repro.core import DirectPnfsSystem
from repro.nfs import NfsConfig
from repro.nfs.sessions import Session
from repro.pvfs2 import Pvfs2Config, Pvfs2System
from repro.sim import FaultInjector, SimulationError
from repro.tracing import RpcTracer
from repro.vfs import Payload

from tests.conftest import build_cluster, drive


def make_echo_server(cluster, handler_delay=0.0):
    server = rpc.RpcServer(
        cluster.sim, cluster.storage[0], "svc", rpc.RpcCosts(), threads=4
    )

    calls = []

    def echo(args, payload):
        calls.append(cluster.sim.now)
        if handler_delay:
            yield cluster.sim.timeout(handler_delay)
        return {"ok": True}, payload

    server.register("echo", echo)
    return server, calls


class TestRetry:
    def test_retry_until_success(self, cluster):
        """Attempts at t=0 and t=0.4 are swallowed by the dead server;
        the t=1.2 attempt (after the 1.0s restore) succeeds."""
        server, calls = make_echo_server(cluster)
        inj = FaultInjector(cluster.sim)
        inj.fail_server(server)
        inj.at(1.0, lambda: inj.restore_server(server))
        policy = rpc.RpcPolicy(timeout=0.4, max_retries=5, backoff=2.0)

        def scenario():
            result, _ = yield from rpc.call(
                cluster.clients[0], server, "echo", {"x": 1}, policy=policy
            )
            return result, cluster.sim.now

        with RpcTracer() as tracer:
            result, done_at = drive(cluster.sim, scenario())
        assert result == {"ok": True}
        assert 1.2 < done_at < 1.3
        assert len(calls) == 1  # only the surviving attempt executed
        assert tracer.records[-1].retries == 2
        assert not tracer.records[-1].timeout
        assert server.calls_served == 1

    def test_retry_budget_exhaustion_raises_rpctimeout(self, cluster):
        server, calls = make_echo_server(cluster)
        server.fail()
        policy = rpc.RpcPolicy(timeout=0.2, max_retries=2, backoff=2.0)

        def scenario():
            try:
                yield from rpc.call(
                    cluster.clients[0], server, "echo", {}, policy=policy
                )
            except rpc.RpcTimeout as exc:
                return exc, cluster.sim.now

        with RpcTracer() as tracer:
            exc, gave_up_at = drive(cluster.sim, scenario())
        assert isinstance(exc, rpc.RpcTimeout)
        assert not isinstance(exc, rpc.FsError)  # a timeout is not a reply
        assert exc.attempts == 3
        assert exc.server == "svc" and exc.proc == "echo"
        # 0.2 + 0.4 + 0.8 of backoff before giving up.
        assert gave_up_at == pytest.approx(1.4, abs=0.05)
        assert calls == []
        record = tracer.records[-1]
        assert record.timeout and record.error and record.retries == 2
        assert tracer.server_counters()["svc"]["timeouts"] == 1

    def test_timeouts_release_server_threads(self, cluster):
        """Interrupted attempts must not leak worker threads: after a
        timeout storm the pool is fully free again."""
        server, _calls = make_echo_server(cluster, handler_delay=5.0)
        policy = rpc.RpcPolicy(timeout=0.1, max_retries=1, backoff=1.0)

        def one():
            try:
                yield from rpc.call(
                    cluster.clients[0], server, "echo", {}, policy=policy
                )
            except rpc.RpcTimeout:
                pass

        procs = [cluster.sim.process(one()) for _ in range(6)]
        cluster.sim.run(until=cluster.sim.all_of(procs))
        assert server.threads.in_use == 0
        assert server.threads.queue_len == 0


class TestExactlyOnce:
    def test_write_executes_once_under_retransmission(self, cluster):
        """The server executes the WRITE, dies before the reply leaves,
        and comes back: the retransmission must be answered from the
        session reply cache, not re-executed."""
        sim = cluster.sim
        server, calls = make_echo_server(cluster, handler_delay=0.1)
        session = Session(sim, slots=8)
        inj = FaultInjector(sim)
        inj.at(0.05, lambda: inj.fail_server(server))  # mid-handler
        inj.at(0.30, lambda: inj.restore_server(server))
        policy = rpc.RpcPolicy(timeout=0.5, max_retries=3, backoff=2.0)

        def scenario():
            seq = session.next_seq()
            result, _ = yield from rpc.call(
                cluster.clients[0],
                server,
                "echo",
                {"op": "write"},
                payload=Payload(b"D" * 1000),
                policy=policy,
                session=session,
                seq=seq,
            )
            return result, seq

        result, seq = drive(sim, scenario())
        assert result == {"ok": True}
        assert len(calls) == 1  # executed exactly once
        assert server.calls_replayed == 1  # retransmission hit the cache
        assert session.replays == 1
        # The client got its reply, so the cache entry was retired.
        assert session.cached_reply(seq) is None


def _build_direct(cluster, **nfs_overrides):
    pvfs = Pvfs2System(
        cluster.sim, cluster.storage, Pvfs2Config(stripe_size=64 * 1024)
    )
    cfg = NfsConfig(rsize=64 * 1024, wsize=64 * 1024, **nfs_overrides)
    return DirectPnfsSystem(cluster.sim, pvfs, cfg)


BLOB = bytes(range(256)) * 1024  # 256 KB -> 4 stripes over 3 servers


class TestMdsFailover:
    def test_fallback_then_recovery(self):
        cluster = build_cluster(n_storage=3, n_clients=2)
        sim = cluster.sim
        system = _build_direct(
            cluster, rpc_timeout=0.25, rpc_max_retries=1, ds_retry_interval=1.0
        )
        writer = system.make_client(cluster.clients[0])
        reader = system.make_client(cluster.clients[1])

        def setup():
            yield from writer.mount()
            yield from reader.mount()
            f = yield from writer.create("/data")
            yield from writer.write(f, 0, Payload(BLOB))
            yield from writer.close(f)

        drive(sim, setup())

        # Kill the NFS data-server service on s1; the parallel-FS
        # daemon below it keeps running, so the MDS can still reach
        # every byte (the paper's fallback scenario).
        system.kill_data_server("s1")
        victim = system.data_server_for("s1")

        def failover_read():
            g = yield from reader.open("/data", write=False)
            data = yield from reader.read(g, 0, len(BLOB))
            yield from reader.close(g)
            return data

        data = drive(sim, failover_read())
        assert data.data == BLOB  # bytes intact through the proxy path
        assert reader.failovers >= 1
        assert reader.proxied_bytes > 0
        assert reader._ds_blacklist  # victim blacklisted

        # Restart the service and let the blacklist lapse: the next
        # direct probe succeeds and direct access resumes.
        system.restart_data_server("s1")
        served_before = victim.rpc.calls_served

        def recovery_write():
            yield sim.timeout(1.5)  # past ds_retry_interval
            f2 = yield from reader.create("/data2")
            yield from reader.write(f2, 0, Payload(BLOB))
            yield from reader.close(f2)

        drive(sim, recovery_write())
        assert reader.recoveries >= 1
        assert not reader._ds_blacklist
        assert victim.rpc.calls_served > served_before  # direct again

        def verify():
            g = yield from writer.open("/data2", write=False)
            data = yield from writer.read(g, 0, len(BLOB))
            yield from writer.close(g)
            return data

        assert drive(sim, verify()).data == BLOB

    def test_proxied_write_is_durable_via_mds_commit(self):
        cluster = build_cluster(n_storage=3, n_clients=2)
        sim = cluster.sim
        system = _build_direct(
            cluster, rpc_timeout=0.25, rpc_max_retries=1, ds_retry_interval=5.0
        )
        writer = system.make_client(cluster.clients[0])
        reader = system.make_client(cluster.clients[1])

        def setup():
            yield from writer.mount()
            yield from reader.mount()

        drive(sim, setup())
        system.kill_data_server("s2")

        def faulty_write():
            f = yield from writer.create("/w")
            yield from writer.write(f, 0, Payload(BLOB))
            yield from writer.close(f)  # fsync: commits via MDS for proxied data

        drive(sim, faulty_write())
        assert writer.failovers >= 1 and writer.proxied_bytes > 0

        def readback():
            g = yield from reader.open("/w", write=False)
            data = yield from reader.read(g, 0, len(BLOB))
            yield from reader.close(g)
            return data

        # s2 is still dead: the reader fails over too, and every byte —
        # including stripes written through the MDS proxy — reads back.
        assert drive(sim, readback()).data == BLOB

    def test_without_fault_layer_the_same_scenario_hangs(self):
        """The control experiment: with timeouts disabled (the
        pre-fault-layer default) a dead data server wedges the read
        forever — the simulation runs out of events with the reader
        still blocked."""
        cluster = build_cluster(n_storage=3, n_clients=2)
        sim = cluster.sim
        system = _build_direct(cluster)  # rpc_timeout=0: no fault layer
        writer = system.make_client(cluster.clients[0])
        reader = system.make_client(cluster.clients[1])

        def setup():
            yield from writer.mount()
            yield from reader.mount()
            f = yield from writer.create("/data")
            yield from writer.write(f, 0, Payload(BLOB))
            yield from writer.close(f)

        drive(sim, setup())
        system.kill_data_server("s1")

        def stuck_read():
            g = yield from reader.open("/data", write=False)
            return (yield from reader.read(g, 0, len(BLOB)))

        with pytest.raises(SimulationError, match="ran out of events"):
            drive(sim, stuck_read())
        assert reader.failovers == 0  # nothing ever failed over
