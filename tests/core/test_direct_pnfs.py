"""End-to-end Direct-pNFS tests: translator, locality, durability."""

import pytest

from repro.core import DirectPnfsSystem
from repro.core.layout_translator import register_translation, translate_aggregation
from repro.nfs import NfsConfig
from repro.pvfs2 import Pvfs2Config, Pvfs2System, VarStrip
from repro.vfs import Payload

from tests.conftest import build_cluster, drive


def make_direct(cluster, stripe_size=64 * 1024, **nfs_kw):
    pvfs = Pvfs2System(
        cluster.sim, cluster.storage, Pvfs2Config(stripe_size=stripe_size)
    )
    nfs_kw.setdefault("rsize", 64 * 1024)
    nfs_kw.setdefault("wsize", 64 * 1024)
    system = DirectPnfsSystem(cluster.sim, pvfs, NfsConfig(**nfs_kw))
    return system, pvfs


@pytest.fixture
def direct(cluster):
    system, pvfs = make_direct(cluster)
    client = system.make_client(cluster.clients[0])
    drive(cluster.sim, client.mount())
    return client, system, pvfs


class TestLayoutTranslator:
    def test_layout_mirrors_pvfs2_distribution(self, cluster, direct):
        client, system, pvfs = direct

        def scenario():
            return (yield from client.create("/f"))

        f = drive(cluster.sim, scenario())
        layout = f.state["layout"]
        dist_desc = pvfs.mds.files[f.state["fh"]].dist_desc
        assert layout.aggregation == {
            "type": "round_robin",
            "nslots": len(pvfs.daemons),
            "stripe_unit": pvfs.cfg.stripe_size,
            "first_slot": dist_desc["start_server"],
        }
        assert layout.device_slots == list(range(len(pvfs.daemons)))
        assert layout.policy["source"] == "layout-translator"
        assert system.translator.translated >= 1

    def test_varstrip_distribution_translates_to_varstrip_driver(self, cluster):
        pvfs = Pvfs2System(cluster.sim, cluster.storage, Pvfs2Config())
        system = DirectPnfsSystem(cluster.sim, pvfs, NfsConfig())
        client = system.make_client(cluster.clients[0])
        pattern = [(0, 4096), (1, 8192), (2, 4096)]

        def scenario():
            yield from client.mount()
            # create with an explicit varstrip distribution via the MDS
            dist = VarStrip(3, pattern).describe()
            info, _ = yield from system.mds_backend._mds_call(
                "create", {"path": "/vs", "dist": dist}
            )
            return (yield from client.open("/vs"))

        f = drive(cluster.sim, scenario())
        layout = f.state["layout"]
        assert layout.aggregation["type"] == "varstrip"
        assert [tuple(p) for p in layout.aggregation["pattern"]] == pattern

    def test_unknown_aggregation_type_rejected(self):
        with pytest.raises(ValueError):
            translate_aggregation({"type": "proprietary-blob"})

    def test_translation_registry_extensible(self):
        register_translation("blockiness", lambda d: {"type": "round_robin", "nslots": 1, "stripe_unit": 1})
        try:
            agg = translate_aggregation({"type": "blockiness"})
            assert agg["type"] == "round_robin"
        finally:
            from repro.core import layout_translator

            del layout_translator._TRANSLATIONS["blockiness"]


class TestEndToEnd:
    def test_write_read_roundtrip(self, cluster, direct):
        client, _system, _pvfs = direct
        blob = bytes(range(256)) * 800  # ~200 KB across stripes

        def scenario():
            f = yield from client.create("/data")
            yield from client.write(f, 0, Payload(blob))
            yield from client.close(f)
            g = yield from client.open("/data")
            return (yield from client.read(g, 0, len(blob)))

        assert drive(cluster.sim, scenario()).data == blob

    def test_bytes_land_on_correct_storage_nodes(self, cluster, direct):
        """The defining property: every byte is written exactly where the
        PVFS2 distribution says, via the colocated data server only —
        the local-only conduits would raise otherwise."""
        client, _system, pvfs = direct
        data = bytes(range(200)) * 1000  # 200 KB

        def scenario():
            f = yield from client.create("/placed")
            yield from client.write(f, 0, Payload(data))
            yield from client.fsync(f)
            return f

        f = drive(cluster.sim, scenario())
        dist = pvfs.mds.files[f.state["fh"]]
        from repro.pvfs2.distribution import distribution_from_description

        d = distribution_from_description(dist.dist_desc)
        for run in d.runs(0, len(data))[:20]:
            daemon = pvfs.daemons[run.server]
            dfile = dist.dfiles[run.server]
            stored = daemon.bstreams[dfile].read(run.local, run.length)
            assert stored.data == data[run.logical : run.logical + run.length]

    def test_no_interserver_data_traffic(self, cluster, direct):
        """Data servers never exchange data (Figure 5: 'Data servers do
        not communicate')."""
        client, _system, pvfs = direct

        def scenario():
            f = yield from client.create("/local")
            yield from client.write(f, 0, Payload.synthetic(2 * 1024 * 1024))
            yield from client.fsync(f)

        # Track NIC traffic among storage nodes before/after (MDS node
        # excluded: control traffic legitimately flows to it).
        non_mds = [n for n in cluster.storage if n is not pvfs.mds_node]
        before = [(n.nic.tx_bytes, n.nic.rx_bytes) for n in non_mds]
        drive(cluster.sim, scenario())
        for node, (tx0, rx0) in zip(non_mds, before):
            # Each non-MDS storage node's traffic is only client I/O and
            # MDS control; verify volume ~= what the client sent it
            # (no 5/6 amplification as in 2-tier).
            wire_in = node.nic.rx_bytes - rx0
            assert wire_in < 1.5 * (2 * 1024 * 1024 / 2)  # ≤ its share + slack

    def test_fsync_commits_to_disk(self, cluster, direct):
        client, _system, pvfs = direct

        def scenario():
            f = yield from client.create("/durable")
            yield from client.write(f, 0, Payload.synthetic(3_000_000))
            yield from client.fsync(f)

        drive(cluster.sim, scenario())
        # fsync may leave up to the disk write-cache allowance pending…
        assert all(
            d.dirty_backlog <= pvfs.cfg.disk_cache_bytes for d in pvfs.daemons
        )
        # …but once the flusher drains, every byte is on a platter
        # (plus a few 4 KB metadata-journal writes from the create).
        cluster.sim.run()
        disk_bytes = sum(n.disk.write_bytes for n in cluster.storage)
        assert 3_000_000 <= disk_bytes <= 3_000_000 + 16 * 4096

    def test_size_visible_after_layoutcommit(self, cluster, direct):
        client, _system, _pvfs = direct

        def scenario():
            f = yield from client.create("/sz")
            yield from client.write(f, 0, Payload.synthetic(123_456))
            yield from client.close(f)
            return (yield from client.getattr("/sz"))

        assert drive(cluster.sim, scenario()).size == 123_456

    def test_two_clients_share_a_file(self, cluster, direct):
        client, system, _pvfs = direct
        other = system.make_client(cluster.clients[1])

        def scenario():
            yield from other.mount()
            f = yield from client.create("/shared")
            yield from client.write(f, 0, Payload(b"c0 wrote this"))
            yield from client.close(f)
            g = yield from other.open("/shared")
            return (yield from other.read(g, 0, 32))

        assert drive(cluster.sim, scenario()).data == b"c0 wrote this"

    def test_metadata_ops_work(self, cluster, direct):
        client, _system, _pvfs = direct

        def scenario():
            yield from client.mkdir("/dir")
            yield from client.create("/dir/a")
            yield from client.create("/dir/b")
            names = yield from client.readdir("/dir")
            yield from client.remove("/dir/a")
            names2 = yield from client.readdir("/dir")
            return names, names2

        names, names2 = drive(cluster.sim, scenario())
        assert names == ["a", "b"]
        assert names2 == ["b"]
