"""Tests for the decentralised-metadata extension."""

import pytest

from repro.core.multi_mds import (
    ShardedDirectPnfs,
    ShardedPvfs2System,
    shard_of,
)
from repro.nfs import NfsConfig
from repro.pvfs2 import Pvfs2Config
from repro.vfs import Payload
from repro.vfs.api import FsError

from tests.conftest import build_cluster, drive


def make_sharded(cluster, n_meta=2):
    pvfs = ShardedPvfs2System(
        cluster.sim,
        cluster.storage,
        Pvfs2Config(stripe_size=64 * 1024),
        n_meta=n_meta,
    )
    system = ShardedDirectPnfs(
        cluster.sim, pvfs, NfsConfig(rsize=64 * 1024, wsize=64 * 1024)
    )
    return pvfs, system


class TestSharding:
    def test_shard_function_stable_and_bounded(self):
        for path in ("/a", "/a/b/c", "/zeta/x"):
            s = shard_of(path, 3)
            assert 0 <= s < 3
            assert s == shard_of(path, 3)

    def test_same_two_components_same_shard(self):
        assert shard_of("/proj/a", 4) == shard_of("/proj/a/deep/er", 4)

    def test_subtrees_of_one_parent_spread(self):
        shards = {shard_of(f"/proj/sub{i}", 4) for i in range(16)}
        assert len(shards) >= 3  # distributed, not pinned to the parent

    def test_root_is_shard_zero(self):
        assert shard_of("/", 5) == 0

    def test_invalid_shard_count(self, cluster):
        with pytest.raises(ValueError):
            ShardedPvfs2System(cluster.sim, cluster.storage, n_meta=0)
        with pytest.raises(ValueError):
            ShardedPvfs2System(cluster.sim, cluster.storage, n_meta=99)


class TestShardedPvfs2:
    def test_subtrees_routed_and_top_dirs_broadcast(self, cluster):
        pvfs, _system = make_sharded(cluster, n_meta=3)
        client = pvfs.make_client(cluster.clients[0])

        def scenario():
            yield from client.mount()
            yield from client.mkdir("/proj")
            for i in range(9):
                yield from client.mkdir(f"/proj/s{i}")
                f = yield from client.create(f"/proj/s{i}/file")
                yield from client.write(f, 0, Payload(b"data"))
                yield from client.close(f)
            top = yield from client.readdir("/")
            children = yield from client.readdir("/proj")
            return top, children

        top, children = drive(cluster.sim, scenario())
        assert top == ["proj"]
        assert children == [f"s{i}" for i in range(9)]
        # the top-level dir exists on every shard (broadcast)...
        assert all(
            "proj" in mds.namespace.root.children for mds in pvfs.metadata_servers
        )
        # ...while its subtrees are spread across shards
        per_shard_files = [len(mds.files) for mds in pvfs.metadata_servers]
        assert sum(per_shard_files) == 9
        assert sum(1 for n in per_shard_files if n) >= 2

    def test_handles_globally_unique(self, cluster):
        pvfs, _system = make_sharded(cluster, n_meta=3)
        client = pvfs.make_client(cluster.clients[0])

        def scenario():
            yield from client.mount()
            yield from client.mkdir("/h")
            handles = []
            for name in ("a", "b", "c", "d", "e"):
                f = yield from client.create(f"/h/{name}")
                handles.append(f.handle)
            return handles

        handles = drive(cluster.sim, scenario())
        assert len(set(handles)) == len(handles)

    def test_cross_shard_rename_rejected(self, cluster):
        pvfs, _system = make_sharded(cluster, n_meta=3)
        client = pvfs.make_client(cluster.clients[0])
        # find two second-level names on different shards
        a, b = None, None
        for cand in "abcdefghij":
            if a is None:
                a = cand
            elif shard_of(f"/top/{cand}", 3) != shard_of(f"/top/{a}", 3):
                b = cand
                break
        assert b is not None

        def scenario():
            yield from client.mount()
            yield from client.mkdir("/top")
            yield from client.create(f"/top/{a}")
            try:
                yield from client.rename(f"/top/{a}", f"/top/{b}")
            except FsError:
                return "rejected"

        assert drive(cluster.sim, scenario()) == "rejected"

    def test_broadcast_dir_lifecycle(self, cluster):
        pvfs, _system = make_sharded(cluster, n_meta=3)
        client = pvfs.make_client(cluster.clients[0])

        def scenario():
            yield from client.mount()
            yield from client.mkdir("/ephemeral")
            yield from client.remove("/ephemeral")
            return (yield from client.readdir("/"))

        assert drive(cluster.sim, scenario()) == []
        assert all(
            not mds.namespace.root.children for mds in pvfs.metadata_servers
        )


class TestShardedDirectPnfs:
    def test_roundtrip_through_sharded_stack(self, cluster):
        _pvfs, system = make_sharded(cluster, n_meta=2)
        client = system.make_client(cluster.clients[0])
        blob = bytes(range(256)) * 500  # 128 KB

        def scenario():
            yield from client.mount()
            yield from client.mkdir("/science")
            f = yield from client.create("/science/data")
            yield from client.write(f, 0, Payload(blob))
            yield from client.fsync(f)
            yield from client.close(f)
            g = yield from client.open("/science/data", write=False)
            return (yield from client.read(g, 0, len(blob)))

        assert drive(cluster.sim, scenario()).data == blob

    def test_data_placement_unchanged_by_sharding(self, cluster):
        """Sharding the namespace must not move data: bytes still stripe
        over all daemons per the distribution."""
        pvfs, system = make_sharded(cluster, n_meta=2)
        client = system.make_client(cluster.clients[0])

        def scenario():
            yield from client.mount()
            f = yield from client.create("/big")
            yield from client.write(f, 0, Payload.synthetic(384 * 1024))
            yield from client.fsync(f)

        drive(cluster.sim, scenario())
        with_data = [d for d in pvfs.daemons if any(fd.size for fd in d.bstreams.values())]
        assert len(with_data) == len(pvfs.daemons)

    def test_metadata_throughput_scales_with_shards(self, cluster):
        """The extension's point: create throughput grows with n_meta."""
        import copy

        def create_storm(n_meta):
            cl = build_cluster(n_storage=3, n_clients=4)
            pvfs = ShardedPvfs2System(
                cl.sim, cl.storage, Pvfs2Config(stripe_size=64 * 1024), n_meta=n_meta
            )
            system = ShardedDirectPnfs(
                cl.sim, pvfs, NfsConfig(rsize=64 * 1024, wsize=64 * 1024)
            )
            clients = [system.make_client(cl.clients[i]) for i in range(4)]

            def one(i):
                yield from clients[i].mount()
                yield from clients[i].mkdir(f"/c{i}")
                for j in range(30):
                    f = yield from clients[i].create(f"/c{i}/f{j}")
                    yield from clients[i].close(f)

            t0 = cl.sim.now
            procs = [cl.sim.process(one(i)) for i in range(4)]
            cl.sim.run(until=cl.sim.all_of(procs))
            return cl.sim.now - t0

        t1 = create_storm(1)
        t3 = create_storm(3)
        assert t3 < t1 * 0.75  # meaningful scaling, not noise
