"""Aggregation driver mapping tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregation import (
    DeviceCycleDriver,
    HierarchicalDriver,
    IoSegment,
    ReplicatedDriver,
    RoundRobinDriver,
    VarStripDriver,
    driver_for,
    register_driver,
)


def covered(segments, offset, nbytes):
    """Segments must tile [offset, offset+nbytes) in logical order."""
    pos = offset
    for seg in segments:
        assert seg.offset == pos
        assert seg.length > 0
        pos += seg.length
    return pos == offset + nbytes


class TestRoundRobin:
    def test_basic_striping(self):
        d = RoundRobinDriver(nslots=3, stripe_unit=10)
        segs = d.map(0, 35)
        assert [(s.device_slot, s.offset, s.length) for s in segs] == [
            (0, 0, 10),
            (1, 10, 10),
            (2, 20, 10),
            (0, 30, 5),
        ]

    def test_mid_stripe_start(self):
        d = RoundRobinDriver(nslots=2, stripe_unit=10)
        segs = d.map(15, 10)
        assert [(s.device_slot, s.offset, s.length) for s in segs] == [
            (1, 15, 5),
            (0, 20, 5),
        ]

    def test_adjacent_same_slot_merges(self):
        d = RoundRobinDriver(nslots=1, stripe_unit=10)
        segs = d.map(0, 100)
        assert len(segs) == 1
        assert segs[0].length == 100

    def test_empty_map(self):
        assert RoundRobinDriver(2, 10).map(5, 0) == []

    def test_invalid(self):
        with pytest.raises(ValueError):
            RoundRobinDriver(0, 10)
        with pytest.raises(ValueError):
            RoundRobinDriver(2, 10).map(-1, 5)

    @given(
        nslots=st.integers(1, 6),
        unit=st.integers(1, 64),
        offset=st.integers(0, 5000),
        nbytes=st.integers(0, 2000),
    )
    @settings(max_examples=80, deadline=None)
    def test_property_tiles_range(self, nslots, unit, offset, nbytes):
        segs = RoundRobinDriver(nslots, unit).map(offset, nbytes)
        assert covered(segs, offset, nbytes)
        for seg in segs:
            assert seg.device_slot == (seg.offset // unit) % nslots


class TestDeviceCycle:
    def test_weighted_cycle(self):
        d = DeviceCycleDriver(cycle=[0, 1, 0, 2], stripe_unit=5)
        segs = d.map(0, 20)
        assert [s.device_slot for s in segs] == [0, 1, 0, 2]

    def test_cycle_merges_repeats(self):
        d = DeviceCycleDriver(cycle=[0, 0, 1], stripe_unit=5)
        segs = d.map(0, 15)
        assert [(s.device_slot, s.length) for s in segs] == [(0, 10), (1, 5)]

    def test_invalid(self):
        with pytest.raises(ValueError):
            DeviceCycleDriver([], 5)
        with pytest.raises(ValueError):
            DeviceCycleDriver([-1], 5)


class TestVarStrip:
    def test_pattern(self):
        d = VarStripDriver(pattern=[(0, 7), (1, 3)])
        segs = d.map(0, 20)
        assert [(s.device_slot, s.offset, s.length) for s in segs] == [
            (0, 0, 7),
            (1, 7, 3),
            (0, 10, 7),
            (1, 17, 3),
        ]

    @given(
        pattern=st.lists(
            st.tuples(st.integers(0, 3), st.integers(1, 16)), min_size=1, max_size=4
        ),
        offset=st.integers(0, 1000),
        nbytes=st.integers(0, 500),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_tiles_range(self, pattern, offset, nbytes):
        segs = VarStripDriver(pattern).map(offset, nbytes)
        assert covered(segs, offset, nbytes)


class TestReplicated:
    def test_write_fans_out_to_all_replicas(self):
        inner = RoundRobinDriver(nslots=2, stripe_unit=10)
        d = ReplicatedDriver(inner, replicas=[0, 2])
        segs = d.map(0, 20, for_write=True)
        # Each inner segment appears on slot and slot+2.
        slots = sorted((s.device_slot, s.offset) for s in segs)
        assert slots == [(0, 0), (1, 10), (2, 0), (3, 10)]

    def test_read_uses_one_replica_per_segment(self):
        inner = RoundRobinDriver(nslots=2, stripe_unit=10)
        d = ReplicatedDriver(inner, replicas=[0, 2])
        segs = d.map(0, 40, for_write=False)
        assert covered(segs, 0, 40)
        # Alternating replica offsets spread the read load.
        offsets_used = {s.device_slot - inner.map(s.offset, 1)[0].device_slot for s in segs}
        assert offsets_used == {0, 2}

    def test_invalid(self):
        with pytest.raises(ValueError):
            ReplicatedDriver(RoundRobinDriver(1, 1), [])


class TestHierarchical:
    def test_two_level_layout(self):
        # 2 groups of 2 slots; outer unit 20, inner unit 10.
        d = HierarchicalDriver(ngroups=2, group_size=2, outer_unit=20, inner_unit=10)
        segs = d.map(0, 80)
        assert covered(segs, 0, 80)
        assert [s.device_slot for s in segs] == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_inner_wraps_within_group(self):
        d = HierarchicalDriver(ngroups=1, group_size=2, outer_unit=40, inner_unit=10)
        segs = d.map(0, 40)
        assert [s.device_slot for s in segs] == [0, 1, 0, 1]

    def test_invalid_units(self):
        with pytest.raises(ValueError):
            HierarchicalDriver(2, 2, 10, 20)  # outer < inner
        with pytest.raises(ValueError):
            HierarchicalDriver(2, 2, 25, 10)  # not a multiple


class TestRegistry:
    def test_round_trip_via_describe(self):
        for drv in [
            RoundRobinDriver(4, 1024),
            DeviceCycleDriver([0, 1, 1], 64),
            VarStripDriver([(0, 5), (2, 9)]),
            ReplicatedDriver(RoundRobinDriver(2, 8), [0, 2]),
            HierarchicalDriver(2, 3, 60, 20),
        ]:
            clone = driver_for(drv.describe())
            assert type(clone) is type(drv)
            assert clone.map(13, 200) == drv.map(13, 200)
            assert clone.map(13, 200, for_write=True) == drv.map(13, 200, for_write=True)

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError):
            driver_for({"type": "exotic"})

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_driver("round_robin", lambda d: None)

    def test_custom_driver_plugs_in(self):
        class EverythingOnSlotZero(RoundRobinDriver):
            name = "slot_zero"

            def __init__(self):
                super().__init__(1, 1 << 30)

            def describe(self):
                return {"type": self.name}

        register_driver("slot_zero", lambda d: EverythingOnSlotZero())
        try:
            drv = driver_for({"type": "slot_zero"})
            segs = drv.map(0, 100)
            assert segs == [IoSegment(0, 0, 100)]
        finally:
            from repro.core import aggregation

            del aggregation._REGISTRY["slot_zero"]
