"""Close-to-open inode cache behaviour of the NFSv4 client."""

import pytest

from repro.nfs import Nfs4Client, Nfs4Server, NfsConfig
from repro.vfs import Payload
from repro.vfs.localfs import LocalClient, LocalFileSystem

from tests.conftest import build_cluster, drive


@pytest.fixture
def nfs(cluster):
    cfg = NfsConfig(rsize=64 * 1024, wsize=64 * 1024)
    backing = LocalFileSystem()
    server = Nfs4Server(
        cluster.sim, cluster.storage[0], LocalClient(cluster.sim, backing), cfg
    )
    c0 = Nfs4Client(cluster.sim, cluster.clients[0], server, cfg)
    c1 = Nfs4Client(cluster.sim, cluster.clients[1], server, cfg)
    drive(cluster.sim, c0.mount())
    drive(cluster.sim, c1.mount())
    return c0, c1, server


class TestCloseToOpen:
    def test_reopen_reuses_pages_when_unchanged(self, cluster, nfs):
        c0, _c1, server = nfs

        def scenario():
            f = yield from c0.create("/f")
            yield from c0.write(f, 0, Payload(b"D" * 10_000))
            yield from c0.close(f)
            g = yield from c0.open("/f")
            yield from c0.read(g, 0, 10_000)
            yield from c0.close(g)
            before = server.rpc.calls_served
            h = yield from c0.open("/f")
            data = yield from c0.read(h, 0, 10_000)
            yield from c0.close(h)
            # open + close RPCs only, no READ
            return data, server.rpc.calls_served - before

        data, rpcs = drive(cluster.sim, scenario())
        assert data.data == b"D" * 10_000
        assert rpcs == 2

    def test_size_change_by_other_client_invalidates(self, cluster, nfs):
        c0, c1, _server = nfs

        def scenario():
            f = yield from c0.create("/g")
            yield from c0.write(f, 0, Payload(b"old!"))
            yield from c0.close(f)
            g = yield from c0.open("/g")
            yield from c0.read(g, 0, 4)
            yield from c0.close(g)
            h = yield from c1.open("/g")
            yield from c1.write(h, 0, Payload(b"newer"))  # size 4 -> 5
            yield from c1.close(h)
            k = yield from c0.open("/g")
            return (yield from c0.read(k, 0, 5))

        assert drive(cluster.sim, scenario()).data == b"newer"

    def test_mtime_change_same_size_invalidates_for_non_writer(self, cluster, nfs):
        c0, c1, _server = nfs

        def scenario():
            f = yield from c0.create("/m")
            yield from c0.write(f, 0, Payload(b"AAAA"))
            yield from c0.close(f)
            # c1 reads (cache primed, no local writes)
            g = yield from c1.open("/m")
            yield from c1.read(g, 0, 4)
            yield from c1.close(g)
            # c0 rewrites same size; mtime on the server moves
            h = yield from c0.open("/m")
            yield from c0.write(h, 0, Payload(b"BBBB"))
            yield from c0.close(h)
            # c1 reopens: mtime mismatch -> refetch
            k = yield from c1.open("/m")
            return (yield from c1.read(k, 0, 4))

        assert drive(cluster.sim, scenario()).data == b"BBBB"

    def test_dirty_data_never_leaks_across_handles(self, cluster, nfs):
        c0, _c1, _server = nfs

        def scenario():
            f = yield from c0.create("/h")
            yield from c0.write(f, 0, Payload(b"1111"))
            yield from c0.close(f)
            g = yield from c0.open("/h")
            yield from c0.write(g, 0, Payload(b"2222"))
            # not yet closed: a second open of the same path sees the
            # last *committed* state through its own handle
            yield from c0.fsync(g)
            h = yield from c0.open("/h")
            data = yield from c0.read(h, 0, 4)
            yield from c0.close(g)
            yield from c0.close(h)
            return data

        assert drive(cluster.sim, scenario()).data == b"2222"
