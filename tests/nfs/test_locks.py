"""Byte-range lock tests: manager semantics and wire protocol."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nfs import Nfs4Client, Nfs4Server, NfsConfig
from repro.nfs.locks import READ_LT, WRITE_LT, LockConflict, LockManager
from repro.vfs import Payload
from repro.vfs.localfs import LocalClient, LocalFileSystem

from tests.conftest import build_cluster, drive


class TestLockManager:
    def test_exclusive_conflicts_with_overlap(self):
        lm = LockManager()
        lm.lock("fh", "a", 0, 100, WRITE_LT)
        with pytest.raises(LockConflict):
            lm.lock("fh", "b", 50, 150, WRITE_LT)

    def test_shared_locks_coexist(self):
        lm = LockManager()
        lm.lock("fh", "a", 0, 100, READ_LT)
        lm.lock("fh", "b", 0, 100, READ_LT)
        assert len(list(lm.held("fh"))) == 2

    def test_read_blocks_write_and_vice_versa(self):
        lm = LockManager()
        lm.lock("fh", "a", 0, 10, READ_LT)
        with pytest.raises(LockConflict):
            lm.lock("fh", "b", 5, 15, WRITE_LT)
        lm.lock("fh", "c", 20, 30, WRITE_LT)
        with pytest.raises(LockConflict):
            lm.lock("fh", "d", 25, 35, READ_LT)

    def test_disjoint_ranges_fine(self):
        lm = LockManager()
        lm.lock("fh", "a", 0, 10, WRITE_LT)
        lm.lock("fh", "b", 10, 20, WRITE_LT)  # half-open: no overlap

    def test_different_files_independent(self):
        lm = LockManager()
        lm.lock("f1", "a", 0, 10, WRITE_LT)
        lm.lock("f2", "b", 0, 10, WRITE_LT)

    def test_owner_upgrade_and_merge(self):
        lm = LockManager()
        lm.lock("fh", "a", 0, 100, READ_LT)
        lm.lock("fh", "a", 25, 75, WRITE_LT)  # own range upgrade
        kinds = sorted((l.start, l.end, l.kind) for l in lm.held("fh"))
        assert kinds == [(0, 25, READ_LT), (25, 75, WRITE_LT), (75, 100, READ_LT)]

    def test_unlock_splits_range(self):
        lm = LockManager()
        lm.lock("fh", "a", 0, 100, WRITE_LT)
        freed = lm.unlock("fh", "a", 40, 60)
        assert freed == 20
        spans = sorted((l.start, l.end) for l in lm.held("fh"))
        assert spans == [(0, 40), (60, 100)]
        # a stranger can now lock the hole
        lm.lock("fh", "b", 40, 60, WRITE_LT)

    def test_unlock_only_own_locks(self):
        lm = LockManager()
        lm.lock("fh", "a", 0, 10, WRITE_LT)
        assert lm.unlock("fh", "b", 0, 10) == 0
        assert len(list(lm.held("fh"))) == 1

    def test_release_owner(self):
        lm = LockManager()
        lm.lock("f1", "a", 0, 10, WRITE_LT)
        lm.lock("f2", "a", 0, 10, READ_LT)
        lm.lock("f1", "b", 20, 30, WRITE_LT)
        assert lm.release_owner("a") == 2
        assert len(list(lm.held("f1"))) == 1

    def test_test_reports_conflict_without_granting(self):
        lm = LockManager()
        lm.lock("fh", "a", 0, 10, WRITE_LT)
        conflict = lm.test("fh", "b", 5, 6, READ_LT)
        assert conflict is not None and conflict.owner == "a"
        assert lm.test("fh", "b", 50, 60, WRITE_LT) is None

    def test_invalid_ranges_rejected(self):
        lm = LockManager()
        with pytest.raises(ValueError):
            lm.lock("fh", "a", 10, 10, WRITE_LT)
        with pytest.raises(ValueError):
            lm.lock("fh", "a", -1, 5, WRITE_LT)
        with pytest.raises(ValueError):
            lm.lock("fh", "a", 0, 5, "exclusive-ish")

    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["lock", "unlock"]),
                st.sampled_from(["a", "b"]),
                st.integers(0, 50),
                st.integers(1, 20),
                st.sampled_from([READ_LT, WRITE_LT]),
            ),
            max_size=30,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_property_no_illegal_coexistence(self, ops):
        """After any op sequence, no two different owners hold
        overlapping locks where either is exclusive."""
        lm = LockManager()
        for op, owner, start, length, kind in ops:
            try:
                if op == "lock":
                    lm.lock("fh", owner, start, start + length, kind)
                else:
                    lm.unlock("fh", owner, start, start + length)
            except LockConflict:
                pass
        held = list(lm.held("fh"))
        for i, x in enumerate(held):
            for y in held[i + 1 :]:
                if x.owner != y.owner and x.overlaps(y.start, y.end):
                    assert x.kind == READ_LT and y.kind == READ_LT


class TestWireProtocol:
    @pytest.fixture
    def nfs(self, cluster):
        cfg = NfsConfig()
        backing = LocalFileSystem()
        server = Nfs4Server(
            cluster.sim, cluster.storage[0], LocalClient(cluster.sim, backing), cfg
        )
        c0 = Nfs4Client(cluster.sim, cluster.clients[0], server, cfg)
        c1 = Nfs4Client(cluster.sim, cluster.clients[1], server, cfg)
        drive(cluster.sim, c0.mount())
        drive(cluster.sim, c1.mount())
        return c0, c1, server

    def test_lock_excludes_other_client(self, cluster, nfs):
        c0, c1, _server = nfs

        def scenario():
            f = yield from c0.create("/db")
            yield from c0.write(f, 0, Payload(b"x" * 100))
            yield from c0.fsync(f)
            yield from c0.lock(f, 0, 50, "write")
            g = yield from c1.open("/db")
            try:
                yield from c1.lock(g, 25, 75, "write")
            except LockConflict:
                # disjoint range still fine
                yield from c1.lock(g, 50, 100, "write")
                return "conflicted-then-disjoint"

        assert drive(cluster.sim, scenario()) == "conflicted-then-disjoint"

    def test_unlock_allows_waiting_peer(self, cluster, nfs):
        c0, c1, _server = nfs

        def scenario():
            f = yield from c0.create("/u")
            yield from c0.lock(f, 0, 10, "write")
            g = yield from c1.open("/u")
            conflict = yield from c1.test_lock(g, 0, 10, "write")
            assert conflict is not None
            yield from c0.unlock(f, 0, 10)
            conflict2 = yield from c1.test_lock(g, 0, 10, "write")
            assert conflict2 is None
            yield from c1.lock(g, 0, 10, "write")
            return "ok"

        assert drive(cluster.sim, scenario()) == "ok"

    def test_lease_expiry_frees_locks(self, cluster, nfs):
        c0, c1, server = nfs

        def scenario():
            f = yield from c0.create("/lease")
            yield from c0.lock(f, 0, 10, "write")
            server.expire_client(c0._cb)
            g = yield from c1.open("/lease")
            yield from c1.lock(g, 0, 10, "write")  # no longer conflicts
            return "freed"

        assert drive(cluster.sim, scenario()) == "freed"


class TestLockTableBounded:
    """Regression: read paths must not materialise per-fh tables.

    ``test``/``unlock``/``held`` used ``setdefault`` and so inserted an
    empty table for every filehandle ever *queried*; ``release_owner``
    left empty per-fh lists behind.  Over open/lock/close churn the
    table count must stay bounded by the number of filehandles with
    live locks.
    """

    def test_read_paths_do_not_materialise_tables(self):
        lm = LockManager()
        for i in range(100):
            assert lm.test(f"fh{i}", "o", 0, 10, WRITE_LT) is None
            assert lm.held(f"fh{i}") == ()
            assert lm.unlock(f"fh{i}", "o", 0, 10) == 0
        assert lm.table_count == 0

    def test_unlock_prunes_emptied_table(self):
        lm = LockManager()
        lm.lock("fh", "o", 0, 10, WRITE_LT)
        assert lm.table_count == 1
        lm.unlock("fh", "o", 0, 10)
        assert lm.table_count == 0

    def test_release_owner_prunes_emptied_tables(self):
        lm = LockManager()
        for i in range(8):
            lm.lock(f"fh{i}", "o", 0, 10, WRITE_LT)
        lm.lock("shared", "o", 0, 10, READ_LT)
        lm.lock("shared", "p", 20, 30, READ_LT)
        assert lm.release_owner("o") == 9
        assert lm.table_count == 1  # only "shared" (p's lock) survives

    def test_open_lock_close_churn_stays_bounded(self):
        lm = LockManager()
        for round_ in range(50):
            fh = f"fh{round_}"
            lm.test(fh, "o", 0, 10, WRITE_LT)
            lm.lock(fh, "o", 0, 10, WRITE_LT)
            lm.held(fh)
            lm.release_owner("o")
            assert lm.table_count <= 1
        assert lm.table_count == 0
