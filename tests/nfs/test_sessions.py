"""Session slot-table and reply-cache tests."""

from repro.nfs.sessions import Session
from repro.sim import Interrupt, Simulator


class TestHighWaterMark:
    def test_counts_concurrent_holders(self):
        sim = Simulator()
        session = Session(sim, slots=2)

        def holder(hold_for):
            yield session.slot()
            try:
                yield sim.timeout(hold_for)
            finally:
                session.done()

        sim.process(holder(0.2))
        sim.process(holder(0.1))
        sim.run()
        assert session.highest_used == 2
        assert session.slots.in_use == 0

    def test_queued_acquire_counted_when_granted(self):
        """With one slot, a queued second caller must still register an
        occupancy of 1 when *it* finally holds the slot."""
        sim = Simulator()
        session = Session(sim, slots=1)

        def holder(hold_for):
            yield session.slot()
            try:
                yield sim.timeout(hold_for)
            finally:
                session.done()

        sim.process(holder(0.1))
        sim.process(holder(0.1))
        sim.run()
        assert session.highest_used == 1

    def test_abandoned_grant_not_counted(self):
        """Regression: ``highest_used`` used to be sampled when the
        acquire event was *created*, so a grant abandoned before being
        consumed (the waiter was interrupted — e.g. by an RPC timeout)
        inflated the high-water mark.  The mark must be sampled at
        grant time, after urgent interrupts have returned the slot."""
        sim = Simulator()
        session = Session(sim, slots=2)

        def phantom():
            try:
                yield session.slot()
            except Interrupt:
                # The abandon hook already returned the slot; the
                # phantom never actually held it.
                return

        def holder():
            yield session.slot()
            try:
                yield sim.timeout(0.1)
            finally:
                session.done()

        p = sim.process(phantom())
        sim.process(holder())

        def killer():
            # Runs at t=0 after both acquires were granted but before
            # either grant event's callbacks fire (urgent interrupt
            # events process first): the phantom's slot is returned
            # before any occupancy sample is taken.
            p.interrupt("rpc timeout")
            return
            yield  # pragma: no cover

        sim.process(killer())
        sim.run()
        assert session.highest_used == 1
        assert session.slots.in_use == 0


class TestReplyCache:
    def test_roundtrip_and_retire(self):
        sim = Simulator()
        session = Session(sim, slots=4)
        s1, s2 = session.next_seq(), session.next_seq()
        assert s1 != s2
        assert session.cached_reply(s1) is None
        session.cache_reply(s1, {"count": 3}, None, None)
        assert session.cached_reply(s1) == ({"count": 3}, None, None)
        assert session.replays == 1
        session.retire(s1)
        assert session.cached_reply(s1) is None
        session.retire(s1)  # idempotent

    def test_error_replies_cached_too(self):
        sim = Simulator()
        session = Session(sim, slots=4)
        seq = session.next_seq()
        err = ValueError("status")
        session.cache_reply(seq, None, None, err)
        assert session.cached_reply(seq) == (None, None, err)
