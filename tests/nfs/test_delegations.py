"""NFSv4 read delegations: grant, local opens, recall, leases."""

import pytest

from repro.nfs import Nfs4Client, Nfs4Server, NfsConfig
from repro.vfs import Payload
from repro.vfs.localfs import LocalClient, LocalFileSystem

from tests.conftest import build_cluster, drive


@pytest.fixture
def nfs(cluster):
    cfg = NfsConfig(rsize=64 * 1024, wsize=64 * 1024)
    backing = LocalFileSystem()
    server = Nfs4Server(
        cluster.sim, cluster.storage[0], LocalClient(cluster.sim, backing), cfg
    )
    c0 = Nfs4Client(cluster.sim, cluster.clients[0], server, cfg)
    c1 = Nfs4Client(cluster.sim, cluster.clients[1], server, cfg)
    drive(cluster.sim, c0.mount())
    drive(cluster.sim, c1.mount())
    return c0, c1, server


def make_file(sim, client, path, payload=b"data!"):
    def scenario():
        f = yield from client.create(path)
        yield from client.write(f, 0, Payload(payload))
        yield from client.close(f)

    drive(sim, scenario())


class TestGrant:
    def test_read_only_open_gets_delegation(self, cluster, nfs):
        c0, _c1, server = nfs
        make_file(cluster.sim, c0, "/f")

        def scenario():
            f = yield from c0.open("/f", write=False)
            yield from c0.close(f)

        drive(cluster.sim, scenario())
        assert server.delegations_granted == 1
        assert "/f" in c0._delegations

    def test_write_open_gets_none(self, cluster, nfs):
        c0, _c1, server = nfs
        make_file(cluster.sim, c0, "/g")

        def scenario():
            f = yield from c0.open("/g", write=True)
            yield from c0.close(f)

        drive(cluster.sim, scenario())
        assert server.delegations_granted == 0

    def test_no_grant_while_writer_active(self, cluster, nfs):
        c0, c1, server = nfs
        make_file(cluster.sim, c0, "/h")

        def scenario():
            w = yield from c0.open("/h", write=True)  # writer holds it open
            r = yield from c1.open("/h", write=False)
            yield from c1.close(r)
            yield from c0.close(w)

        drive(cluster.sim, scenario())
        assert "/h" not in c1._delegations

    def test_disabled_by_config(self, cluster):
        cfg = NfsConfig(delegations=False)
        backing = LocalFileSystem()
        server = Nfs4Server(
            cluster.sim, cluster.storage[0], LocalClient(cluster.sim, backing), cfg
        )
        client = Nfs4Client(cluster.sim, cluster.clients[0], server, cfg)
        drive(cluster.sim, client.mount())
        make_file(cluster.sim, client, "/x")

        def scenario():
            f = yield from client.open("/x", write=False)
            yield from client.close(f)

        drive(cluster.sim, scenario())
        assert server.delegations_granted == 0


class TestLocalOpens:
    def test_reopen_under_delegation_is_rpc_free(self, cluster, nfs):
        c0, _c1, server = nfs
        make_file(cluster.sim, c0, "/f")

        def scenario():
            f = yield from c0.open("/f", write=False)
            yield from c0.read(f, 0, 5)
            yield from c0.close(f)
            before = server.rpc.calls_served
            for _ in range(10):
                g = yield from c0.open("/f", write=False)
                data = yield from c0.read(g, 0, 5)
                assert data.data == b"data!"
                yield from c0.close(g)
            return server.rpc.calls_served - before

        assert drive(cluster.sim, scenario()) == 0

    def test_own_write_open_drops_delegation(self, cluster, nfs):
        c0, _c1, _server = nfs
        make_file(cluster.sim, c0, "/f")

        def scenario():
            f = yield from c0.open("/f", write=False)
            yield from c0.close(f)
            assert "/f" in c0._delegations
            g = yield from c0.open("/f", write=True)
            yield from c0.write(g, 0, Payload(b"NEW!!"))
            yield from c0.close(g)
            return "/f" in c0._delegations

        assert drive(cluster.sim, scenario()) is False


class TestRecall:
    def test_writer_recalls_other_clients_delegation(self, cluster, nfs):
        c0, c1, server = nfs
        make_file(cluster.sim, c0, "/f")

        def scenario():
            r = yield from c1.open("/f", write=False)
            yield from c1.close(r)
            assert "/f" in c1._delegations
            w = yield from c0.open("/f", write=True)
            yield from c0.write(w, 0, Payload(b"newer"))
            yield from c0.close(w)
            # delegation was recalled over the backchannel
            assert "/f" not in c1._delegations
            # and a fresh read sees the new data
            g = yield from c1.open("/f", write=False)
            return (yield from c1.read(g, 0, 5))

        assert drive(cluster.sim, scenario()).data == b"newer"
        assert server.delegations_recalled == 1

    def test_remove_drops_local_delegation(self, cluster, nfs):
        c0, _c1, _server = nfs
        make_file(cluster.sim, c0, "/gone")

        def scenario():
            f = yield from c0.open("/gone", write=False)
            yield from c0.close(f)
            yield from c0.remove("/gone")
            return "/gone" in c0._delegations

        assert drive(cluster.sim, scenario()) is False


class TestLeases:
    def test_expiry_discards_client_state(self, cluster, nfs):
        c0, _c1, server = nfs
        make_file(cluster.sim, c0, "/l")

        def scenario():
            f = yield from c0.open("/l", write=False)
            yield from c0.close(f)
            # Silence beyond the lease time…
            yield cluster.sim.timeout(server.cfg.lease_time + 1)
            assert server.lease_expired(c0._cb)
            dropped = server.expire_client(c0._cb)
            return dropped

        assert drive(cluster.sim, scenario()) == 1

    def test_renew_keeps_lease_alive(self, cluster, nfs):
        c0, _c1, server = nfs
        make_file(cluster.sim, c0, "/r")

        def scenario():
            f = yield from c0.open("/r", write=False)
            yield from c0.close(f)
            yield cluster.sim.timeout(server.cfg.lease_time / 2)
            from repro import rpc

            yield from rpc.call(
                c0.node, server.rpc, "renew", {"callback": c0._cb}
            )
            yield cluster.sim.timeout(server.cfg.lease_time / 2 + 1)
            return server.lease_expired(c0._cb)

        assert drive(cluster.sim, scenario()) is False
