"""Functional tests of the NFSv4 client/server over a LocalFs backend."""

import pytest

from repro.nfs import Nfs4Client, Nfs4Server, NfsConfig
from repro.vfs import NoEntry, Payload
from repro.vfs.localfs import LocalClient, LocalFileSystem

from tests.conftest import build_cluster, drive


def make_nfs(cluster, **cfg_kw):
    """One NFS server on storage[0] exporting an in-memory local FS."""
    cfg = NfsConfig(**cfg_kw)
    backing = LocalFileSystem()
    server_node = cluster.storage[0]
    backend = LocalClient(cluster.sim, backing)
    server = Nfs4Server(cluster.sim, server_node, backend, cfg)
    return server, backing, cfg


@pytest.fixture
def nfs(cluster):
    server, backing, cfg = make_nfs(cluster)
    client = Nfs4Client(cluster.sim, cluster.clients[0], server, cfg)
    drive(cluster.sim, client.mount())
    return client, server, backing


class TestBasicIo:
    def test_create_write_read_roundtrip(self, cluster, nfs):
        client, _server, _backing = nfs

        def scenario():
            f = yield from client.create("/f")
            yield from client.write(f, 0, Payload(b"nfs data"))
            out = yield from client.read(f, 0, 64)
            return out

        assert drive(cluster.sim, scenario()).data == b"nfs data"

    def test_data_reaches_backend_only_after_flush(self, cluster, nfs):
        client, _server, backing = nfs

        def scenario():
            f = yield from client.create("/f")
            yield from client.write(f, 0, Payload(b"cached"))  # < wsize: stays dirty
            fd = backing.contents.get(f.state["fh"])
            size_before = fd.size if fd is not None else 0
            yield from client.fsync(f)
            return size_before

        before = drive(cluster.sim, scenario())
        # before fsync nothing had been written through
        assert before == 0
        entry = backing.namespace.resolve("/f")
        assert backing.contents[entry.handle].read(0, 6).data == b"cached"

    def test_close_flushes(self, cluster, nfs):
        client, _server, backing = nfs

        def scenario():
            f = yield from client.create("/g")
            yield from client.write(f, 0, Payload(b"x" * 100))
            yield from client.close(f)

        drive(cluster.sim, scenario())
        entry = backing.namespace.resolve("/g")
        assert backing.contents[entry.handle].size == 100

    def test_read_through_cache_after_reopen(self, cluster, nfs):
        client, _server, _backing = nfs

        def scenario():
            f = yield from client.create("/h")
            yield from client.write(f, 0, Payload(b"0123456789"))
            yield from client.close(f)
            g = yield from client.open("/h")
            first = yield from client.read(g, 0, 4)
            second = yield from client.read(g, 4, 6)  # sequential: cache/ra
            return first, second

        first, second = drive(cluster.sim, scenario())
        assert first.data == b"0123"
        assert second.data == b"456789"

    def test_read_past_eof_truncated(self, cluster, nfs):
        client, _server, _backing = nfs

        def scenario():
            f = yield from client.create("/i")
            yield from client.write(f, 0, Payload(b"abc"))
            out = yield from client.read(f, 2, 50)
            beyond = yield from client.read(f, 10, 5)
            return out, beyond

        out, beyond = drive(cluster.sim, scenario())
        assert out.data == b"c"
        assert beyond.nbytes == 0

    def test_overwrite_in_cache(self, cluster, nfs):
        client, _server, _backing = nfs

        def scenario():
            f = yield from client.create("/j")
            yield from client.write(f, 0, Payload(b"aaaa"))
            yield from client.write(f, 1, Payload(b"bb"))
            out = yield from client.read(f, 0, 4)
            yield from client.close(f)
            return out

        assert drive(cluster.sim, scenario()).data == b"abba"

    def test_cross_client_read_after_close(self, cluster, nfs):
        client, server, _backing = nfs
        other = Nfs4Client(cluster.sim, cluster.clients[1], server, client.cfg)

        def scenario():
            yield from other.mount()
            f = yield from client.create("/shared")
            yield from client.write(f, 0, Payload(b"visible"))
            yield from client.close(f)
            g = yield from other.open("/shared")
            return (yield from other.read(g, 0, 16))

        assert drive(cluster.sim, scenario()).data == b"visible"


class TestWriteCoalescing:
    def test_small_writes_coalesce_to_wsize_rpcs(self, cluster):
        server, _backing, cfg = make_nfs(cluster, wsize=64 * 1024, rsize=64 * 1024)
        client = Nfs4Client(cluster.sim, cluster.clients[0], server, cfg)

        def scenario():
            yield from client.mount()
            f = yield from client.create("/big")
            for i in range(64):  # 64 x 8 KB = 512 KB sequential
                yield from client.write(f, i * 8192, Payload.synthetic(8192))
            yield from client.fsync(f)

        calls_before = server.rpc.calls_served
        drive(cluster.sim, scenario())
        # mount + open + writes + commit; writes must be 512K/64K = 8 RPCs.
        write_calls = server.rpc.calls_served - calls_before - 3
        assert write_calls == 8

    def test_unaligned_tail_flushed_on_fsync(self, cluster, nfs):
        client, _server, backing = nfs

        def scenario():
            f = yield from client.create("/tail")
            yield from client.write(f, 0, Payload(b"z" * 1000))
            yield from client.fsync(f)

        drive(cluster.sim, scenario())
        entry = backing.namespace.resolve("/tail")
        assert backing.contents[entry.handle].size == 1000

    def test_fsync_without_writes_is_cheap(self, cluster, nfs):
        client, server, _backing = nfs

        def scenario():
            f = yield from client.create("/nop")
            before = server.rpc.calls_served
            yield from client.fsync(f)
            return server.rpc.calls_served - before

        assert drive(cluster.sim, scenario()) == 0  # no COMMIT needed


class TestReadahead:
    def test_sequential_small_reads_batch_into_rsize_fetches(self, cluster):
        server, _backing, cfg = make_nfs(
            cluster, rsize=128 * 1024, wsize=128 * 1024, readahead=256 * 1024
        )
        client = Nfs4Client(cluster.sim, cluster.clients[0], server, cfg)
        total = 512 * 1024

        def scenario():
            yield from client.mount()
            f = yield from client.create("/stream")
            yield from client.write(f, 0, Payload.synthetic(total))
            yield from client.close(f)
            g = yield from client.open("/stream")
            before = server.rpc.calls_served
            pos = 0
            while pos < total:
                out = yield from client.read(g, pos, 8192)
                assert out.nbytes == 8192
                pos += 8192
            return server.rpc.calls_served - before

        read_rpcs = drive(cluster.sim, scenario())
        # 512 KB at rsize 128 KB: a handful of window fetches serve all
        # 64 application reads — not one RPC per read.
        assert read_rpcs <= 12

    def test_random_reads_do_not_trigger_runaway_prefetch(self, cluster):
        server, _backing, cfg = make_nfs(
            cluster, rsize=64 * 1024, wsize=64 * 1024, readahead=128 * 1024
        )
        client = Nfs4Client(cluster.sim, cluster.clients[0], server, cfg)
        total = 1024 * 1024

        def scenario():
            yield from client.mount()
            f = yield from client.create("/rand")
            yield from client.write(f, 0, Payload.synthetic(total))
            yield from client.close(f)
            g = yield from client.open("/rand")
            before = server.rpc.calls_served
            # Strided backwards: never sequential.
            for i in reversed(range(0, 16)):
                yield from client.read(g, i * 65536, 4096)
            return server.rpc.calls_served - before

        read_rpcs = drive(cluster.sim, scenario())
        # One fetch per miss plus at most the single open-time window.
        assert read_rpcs <= 16 + 3

    def test_readahead_data_is_correct(self, cluster, nfs):
        client, _server, _backing = nfs
        blob = bytes(range(256)) * 64  # 16 KB patterned

        def scenario():
            f = yield from client.create("/pat")
            yield from client.write(f, 0, Payload(blob))
            yield from client.close(f)
            g = yield from client.open("/pat")
            chunks = []
            pos = 0
            while pos < len(blob):
                out = yield from client.read(g, pos, 1000)
                chunks.append(out.data)
                pos += 1000
            return b"".join(chunks)

        assert drive(cluster.sim, scenario()) == blob


class TestMetadata:
    def test_mkdir_readdir_remove(self, cluster, nfs):
        client, _server, _backing = nfs

        def scenario():
            yield from client.mkdir("/d")
            yield from client.create("/d/x")
            yield from client.create("/d/y")
            names = yield from client.readdir("/d")
            yield from client.remove("/d/x")
            names2 = yield from client.readdir("/d")
            return names, names2

        names, names2 = drive(cluster.sim, scenario())
        assert names == ["x", "y"]
        assert names2 == ["y"]

    def test_getattr_and_attr_cache(self, cluster, nfs):
        client, server, _backing = nfs

        def scenario():
            f = yield from client.create("/a")
            yield from client.write(f, 0, Payload(b"12345"))
            yield from client.close(f)
            a1 = yield from client.getattr("/a")
            before = server.rpc.calls_served
            a2 = yield from client.getattr("/a")  # served from attr cache
            return a1, a2, server.rpc.calls_served - before

        a1, a2, extra_calls = drive(cluster.sim, scenario())
        assert a1.size == 5
        assert a2.size == 5
        assert extra_calls == 0

    def test_open_missing_raises(self, cluster, nfs):
        client, _server, _backing = nfs

        def scenario():
            try:
                yield from client.open("/ghost")
            except NoEntry:
                return "noent"

        assert drive(cluster.sim, scenario()) == "noent"

    def test_rename_and_truncate(self, cluster, nfs):
        client, _server, _backing = nfs

        def scenario():
            f = yield from client.create("/r1")
            yield from client.write(f, 0, Payload(b"123456"))
            yield from client.close(f)
            yield from client.rename("/r1", "/r2")
            yield from client.truncate("/r2", 3)
            attrs = yield from client.getattr("/r2")
            return attrs

        assert drive(cluster.sim, scenario()).size == 3

    def test_setattr_mode(self, cluster, nfs):
        client, _server, _backing = nfs

        def scenario():
            yield from client.create("/m")
            attrs = yield from client.setattr("/m", mode=0o600)
            return attrs

        assert drive(cluster.sim, scenario()).mode == 0o600


class TestSessions:
    def test_slot_table_bounds_concurrency(self, cluster):
        server, _backing, cfg = make_nfs(cluster, session_slots=2)
        client = Nfs4Client(cluster.sim, cluster.clients[0], server, cfg)

        def scenario():
            yield from client.mount()
            f = yield from client.create("/c")
            yield from client.write(f, 0, Payload.synthetic(16 * 2 * 1024 * 1024))
            yield from client.fsync(f)

        drive(cluster.sim, scenario())
        session = client._sessions[server]
        assert session.highest_used <= 2
