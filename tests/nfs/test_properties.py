"""Property tests: IntervalSet and LockManager vs naive reference models.

Seeded random op sequences (numpy ``default_rng`` — same generator the
torture harness uses) run against both the real structure and a
brute-force per-byte model; any divergence is minimised with the
harness's :func:`repro.check.shrink.shrink_list` before being reported,
so a failure prints the smallest op sequence that still disagrees.
"""

import pytest
from numpy.random import default_rng

from repro.check.shrink import shrink_list
from repro.nfs.intervals import IntervalSet
from repro.nfs.locks import LockConflict, LockManager

LIMIT = 64  # byte universe for interval ops
SEEDS = 150


# --------------------------------------------------------------------------
# IntervalSet vs set-of-bytes
# --------------------------------------------------------------------------

def gen_interval_ops(rng, count=30):
    ops = []
    for _ in range(count):
        kind = "add" if rng.random() < 0.6 else "remove"
        s = int(rng.integers(0, LIMIT))
        e = int(rng.integers(s, LIMIT + 1))  # empty ranges allowed on purpose
        ops.append((kind, s, e))
    return ops


def interval_violation(ops):
    """First invariant broken by replaying ``ops``, or None."""
    ivs = IntervalSet()
    model = set()
    for step, (kind, s, e) in enumerate(ops):
        if kind == "add":
            ivs.add(s, e)
            model |= set(range(s, e))
        else:
            ivs.remove(s, e)
            model -= set(range(s, e))
        got = {b for rs, re_ in ivs for b in range(rs, re_)}
        if got != model:
            return f"step {step}: coverage {sorted(got ^ model)} diverges"
        if ivs.total != len(model):
            return f"step {step}: total {ivs.total} != {len(model)}"
        runs = list(ivs)
        for (a_s, a_e), (b_s, b_e) in zip(runs, runs[1:]):
            if a_e >= b_s:
                return f"step {step}: runs not coalesced/sorted: {runs}"
        if any(rs >= re_ for rs, re_ in runs):
            return f"step {step}: empty run in {runs}"
        # Probe covers/gaps/runs_in on a sliding window.
        ps, pe = (step * 7) % LIMIT, (step * 7) % LIMIT + 9
        want_cover = all(b in model for b in range(ps, pe))
        if ivs.covers(ps, pe) != want_cover:
            return f"step {step}: covers({ps},{pe}) wrong"
        gap_bytes = {b for gs, ge in ivs.gaps(ps, pe) for b in range(gs, ge)}
        if gap_bytes != {b for b in range(ps, pe) if b not in model}:
            return f"step {step}: gaps({ps},{pe}) wrong"
        run_bytes = {b for rs, re_ in ivs.runs_in(ps, pe) for b in range(rs, re_)}
        if run_bytes != {b for b in range(ps, pe) if b in model}:
            return f"step {step}: runs_in({ps},{pe}) wrong"
    return None


def test_interval_set_matches_byte_model():
    for seed in range(SEEDS):
        ops = gen_interval_ops(default_rng(seed))
        if interval_violation(ops) is None:
            continue
        minimal = shrink_list(ops, lambda c: interval_violation(c) is not None)
        pytest.fail(
            f"seed {seed}: {interval_violation(minimal)}\n"
            f"minimal ops: {minimal}"
        )


def test_interval_set_remove_heavy_sequences():
    """Remove-biased sequences: the splice path with many splits."""
    for seed in range(SEEDS):
        rng = default_rng(10_000 + seed)
        ops = []
        for _ in range(40):
            kind = "remove" if rng.random() < 0.6 else "add"
            s = int(rng.integers(0, LIMIT))
            e = int(rng.integers(s, LIMIT + 1))
            ops.append((kind, s, e))
        if interval_violation(ops) is None:
            continue
        minimal = shrink_list(ops, lambda c: interval_violation(c) is not None)
        pytest.fail(
            f"seed {10_000 + seed}: {interval_violation(minimal)}\n"
            f"minimal ops: {minimal}"
        )


def test_interval_set_probe_windows_cover_bisect_boundaries():
    """gaps/runs_in/covers probed at every window over a fragmented set.

    A comb of single-byte runs makes the bisect landing index matter at
    every boundary: windows starting inside a run, exactly at a run
    start, exactly at a run end, and before/after the whole set.
    """
    ivs = IntervalSet()
    model = set()
    for s in range(0, LIMIT, 3):  # runs [s, s+2)
        ivs.add(s, s + 2)
        model |= {s, s + 1}
    for ws in range(-2, LIMIT + 2):
        for length in (0, 1, 2, 3, 7):
            we = ws + length
            win = set(range(max(ws, 0), max(we, 0)))
            gap_bytes = {b for gs, ge in ivs.gaps(ws, we) for b in range(gs, ge)}
            run_bytes = {b for rs, re_ in ivs.runs_in(ws, we) for b in range(rs, re_)}
            if ws >= 0:
                assert gap_bytes == {b for b in win if b not in model}, (ws, we)
                assert run_bytes == win & model, (ws, we)
                assert ivs.covers(ws, we) == (win <= model or ws >= we), (ws, we)
            # gaps/runs_in must tile the window exactly, in order.
            pieces = sorted(ivs.gaps(ws, we) + ivs.runs_in(ws, we))
            pos = ws
            for ps, pe in pieces:
                assert ps == pos and pe > ps, (ws, we, pieces)
                pos = pe
            if ws < we:
                assert pos == we, (ws, we, pieces)


def test_interval_set_sparse_large_universe():
    """Sparse intervals over a big coordinate space (page-cache shaped).

    The old implementations scanned from index 0; these sequences keep
    hundreds of distant runs alive so a scan bug or off-by-one in the
    bisect landing shows up as a model divergence.
    """
    for seed in range(25):
        rng = default_rng(20_000 + seed)
        ivs = IntervalSet()
        naive: list[tuple[int, int]] = []

        def naive_apply(kind, s, e):
            out = []
            for ns, ne in naive:
                if kind == "add" or ne <= s or ns >= e:
                    out.append((ns, ne))
                    continue
                if ns < s:
                    out.append((ns, s))
                if ne > e:
                    out.append((e, ne))
            if kind == "add":
                out.append((s, e))
            out.sort()
            merged: list[tuple[int, int]] = []
            for ns, ne in out:
                if merged and ns <= merged[-1][1]:
                    merged[-1] = (merged[-1][0], max(merged[-1][1], ne))
                else:
                    merged.append((ns, ne))
            return merged

        for _ in range(300):
            kind = "add" if rng.random() < 0.65 else "remove"
            s = int(rng.integers(0, 1 << 20)) * 4096
            e = s + int(rng.integers(1, 16)) * 4096
            if kind == "add":
                ivs.add(s, e)
            else:
                ivs.remove(s, e)
            naive = naive_apply(kind, s, e)
        assert list(ivs) == naive, f"seed {20_000 + seed}"
        ws = naive[len(naive) // 2][0] - 4096 if naive else 0
        we = ws + 64 * 4096
        want_runs = [
            (max(ns, ws), min(ne, we))
            for ns, ne in naive
            if max(ns, ws) < min(ne, we)
        ]
        assert ivs.runs_in(ws, we) == want_runs
        pos, want_gaps = ws, []
        for rs, re_ in want_runs:
            if rs > pos:
                want_gaps.append((pos, rs))
            pos = re_
        if pos < we:
            want_gaps.append((pos, we))
        assert ivs.gaps(ws, we) == want_gaps


# --------------------------------------------------------------------------
# LockManager vs brute-force per-byte model
# --------------------------------------------------------------------------

class NaiveLocks:
    """Per-byte lock table: dict[(fh, byte) -> dict[owner -> kind]]."""

    def __init__(self):
        self.bytes = {}

    def can_lock(self, fh, owner, start, end, kind):
        for b in range(start, end):
            for o, k in self.bytes.get((fh, b), {}).items():
                if o != owner and (kind == "write" or k == "write"):
                    return False
        return True

    def lock(self, fh, owner, start, end, kind):
        for b in range(start, end):
            self.bytes.setdefault((fh, b), {})[owner] = kind

    def unlock(self, fh, owner, start, end):
        for b in range(start, end):
            held = self.bytes.get((fh, b))
            if held is not None:
                held.pop(owner, None)
                if not held:
                    del self.bytes[(fh, b)]

    def release_owner(self, owner):
        for key in list(self.bytes):
            self.bytes[key].pop(owner, None)
            if not self.bytes[key]:
                del self.bytes[key]

    def held(self, fh, owner):
        return {
            (b, held[owner])
            for (f, b), held in self.bytes.items()
            if f == fh and owner in held
        }

    def active_fhs(self):
        return {f for (f, _b) in self.bytes}


def gen_lock_ops(rng, count=25):
    ops = []
    for _ in range(count):
        roll = rng.random()
        fh = int(rng.integers(0, 2))
        owner = f"o{int(rng.integers(0, 3))}"
        s = int(rng.integers(0, 32))
        e = int(rng.integers(s + 1, 33))
        if roll < 0.55:
            kind = "write" if rng.random() < 0.5 else "read"
            ops.append(("lock", fh, owner, s, e, kind))
        elif roll < 0.9:
            ops.append(("unlock", fh, owner, s, e, ""))
        else:
            ops.append(("release", fh, owner, 0, 0, ""))
    return ops


def lock_violation(ops):
    mgr = LockManager()
    model = NaiveLocks()
    for step, (op, fh, owner, s, e, kind) in enumerate(ops):
        if op == "lock":
            want = model.can_lock(fh, owner, s, e, kind)
            try:
                mgr.lock(fh, owner, s, e, kind)
                granted = True
            except LockConflict:
                granted = False
            if granted != want:
                return f"step {step}: lock granted={granted}, model says {want}"
            if granted:
                model.lock(fh, owner, s, e, kind)
        elif op == "unlock":
            mgr.unlock(fh, owner, s, e)
            model.unlock(fh, owner, s, e)
        else:
            mgr.release_owner(owner)
            model.release_owner(owner)
        # Per-owner byte coverage (with kinds) must match exactly.
        for f in (0, 1):
            for o in ("o0", "o1", "o2"):
                got = {
                    (b, lk.kind)
                    for lk in mgr.held(f)
                    if lk.owner == o
                    for b in range(lk.start, lk.end)
                }
                if got != model.held(f, o):
                    return (
                        f"step {step}: held({f}, {o}) diverges: "
                        f"{sorted(got ^ model.held(f, o))}"
                    )
        # test() must agree with the model on every owner's next move.
        probe_s = (step * 5) % 32
        for o in ("o0", "o1"):
            conflict = mgr.test(0, o, probe_s, probe_s + 4, "write")
            if (conflict is None) != model.can_lock(0, o, probe_s, probe_s + 4, "write"):
                return f"step {step}: test(0, {o}) disagrees with model"
        # Bounded tables: one per fh with live locks, none for empty fhs.
        if mgr.table_count != len(model.active_fhs()):
            return (
                f"step {step}: {mgr.table_count} tables for "
                f"{len(model.active_fhs())} active fhs"
            )
    return None


def test_lock_manager_matches_byte_model():
    for seed in range(SEEDS):
        ops = gen_lock_ops(default_rng(seed))
        if lock_violation(ops) is None:
            continue
        minimal = shrink_list(ops, lambda c: lock_violation(c) is not None)
        pytest.fail(
            f"seed {seed}: {lock_violation(minimal)}\n"
            f"minimal ops: {minimal}"
        )
