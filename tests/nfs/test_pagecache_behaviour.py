"""Fine-grained write-back / readahead behaviour tests."""

import pytest

from repro import rpc as rpc_mod
from repro.nfs import Nfs4Client, Nfs4Server, NfsConfig
from repro.sim import FaultInjector
from repro.vfs import FsError, Payload
from repro.vfs.localfs import LocalClient, LocalFileSystem

from tests.conftest import build_cluster, drive

KB = 1024


def make(cluster, **cfg_kw):
    cfg_kw.setdefault("rsize", 64 * KB)
    cfg_kw.setdefault("wsize", 64 * KB)
    cfg = NfsConfig(**cfg_kw)
    backing = LocalFileSystem()
    server = Nfs4Server(
        cluster.sim, cluster.storage[0], LocalClient(cluster.sim, backing), cfg
    )
    client = Nfs4Client(cluster.sim, cluster.clients[0], server, cfg)
    drive(cluster.sim, client.mount())
    return client, server, backing


def fresh_reader(cluster, server):
    """A second client with a cold cache (the writer's inode cache
    would otherwise serve everything locally)."""
    reader = Nfs4Client(cluster.sim, cluster.clients[1], server, server.cfg)
    drive(cluster.sim, reader.mount())
    return reader


def write_calls(server, tracer_window):
    pass


class TestWriteBackAlignment:
    def test_unaligned_stream_flushes_interior_blocks(self, cluster):
        client, server, _ = make(cluster)

        def scenario():
            f = yield from client.create("/u")
            # [1000, 1000 + 3*wsize): interior aligned blocks flush async
            yield from client.write(f, 1000, Payload.synthetic(3 * 64 * KB))
            return f

        f = drive(cluster.sim, scenario())
        # blocks [64K,128K) and [128K,192K) are full and were kicked;
        # the unaligned head and tail remain dirty
        dirty = list(f.state["dirty"])
        assert (1000, 64 * KB) in dirty
        assert dirty[-1][1] == 1000 + 3 * 64 * KB

    def test_fsync_sends_each_dirty_byte_exactly_once(self, cluster):
        client, server, backing = make(cluster)

        def scenario():
            f = yield from client.create("/once")
            yield from client.write(f, 0, Payload.synthetic(200 * KB))
            yield from client.fsync(f)
            return f

        f = drive(cluster.sim, scenario())
        entry = backing.namespace.resolve("/once")
        assert backing.contents[entry.handle].size == 200 * KB
        assert not f.state["dirty"]
        assert not f.state["flushing"]
        assert client.bytes_written == 200 * KB  # no double-send

    def test_overwrite_of_inflight_block_is_rewritten(self, cluster):
        """A block overwritten after its writeback started must be sent
        again so the server ends with the latest data."""
        client, _server, backing = make(cluster)

        def scenario():
            f = yield from client.create("/rw")
            yield from client.write(f, 0, Payload(b"A" * 64 * KB))  # kicks flush
            yield from client.write(f, 0, Payload(b"B" * 64 * KB))  # re-dirty
            yield from client.fsync(f)

        drive(cluster.sim, scenario())
        entry = backing.namespace.resolve("/rw")
        assert backing.contents[entry.handle].read(0, 64 * KB).data == b"B" * 64 * KB


class TestCloseErrorSemantics:
    def test_dirty_pages_survive_failed_close(self, cluster):
        """A close whose flush fails must report the error *and* keep
        the re-dirtied pages in the inode cache, so a later open of the
        same file re-flushes them once the server recovers (torture
        seed 65: write → reopen during an outage → post-heal fsync
        reported clean while the data was gone)."""
        client, server, backing = make(
            cluster, rpc_timeout=0.2, rpc_max_retries=1, rpc_backoff=1.0
        )
        inj = FaultInjector(cluster.sim)

        def scenario():
            f = yield from client.create("/c2o")
            yield from client.write(f, 0, Payload(b"X" * 10 * KB))
            inj.outage(server.rpc, start=cluster.sim.now, duration=2.0)
            try:
                yield from client.close(f)
            except (FsError, rpc_mod.RpcTimeout):
                closed_with_error = True
            else:
                closed_with_error = False
            yield cluster.sim.timeout(3.0)  # outage heals
            f2 = yield from client.open("/c2o")
            yield from client.fsync(f2)
            yield from client.close(f2)
            return closed_with_error

        assert drive(cluster.sim, scenario())
        entry = backing.namespace.resolve("/c2o")
        assert backing.contents[entry.handle].read(0, 10 * KB).data == b"X" * 10 * KB

    def test_clean_close_does_not_adopt_stale_dirty_state(self, cluster):
        """The dirty set retained by a clean close is empty: a reopen
        must start with nothing to flush."""
        client, _server, _backing = make(cluster)

        def scenario():
            f = yield from client.create("/clean")
            yield from client.write(f, 0, Payload(b"Y" * 4 * KB))
            yield from client.close(f)
            f2 = yield from client.open("/clean")
            return f2

        f2 = drive(cluster.sim, scenario())
        assert not f2.state["dirty"]
        assert not f2.state["commit_needed"]


class TestReadaheadBehaviour:
    def test_no_duplicate_block_fetches_in_stream(self, cluster):
        client, server, _ = make(cluster, readahead=256 * KB)
        reader = fresh_reader(cluster, server)
        total = 1024 * KB

        def scenario():
            f = yield from client.create("/s")
            yield from client.write(f, 0, Payload.synthetic(total))
            yield from client.close(f)
            g = yield from reader.open("/s", write=False)
            before = server.rpc.calls_served
            pos = 0
            while pos < total:
                yield from reader.read(g, pos, 16 * KB)
                pos += 16 * KB
            return server.rpc.calls_served - before

        fetches = drive(cluster.sim, scenario())
        # near-perfect pipelining: total/rsize READ RPCs, plus one for
        # the unaligned demand fetch that starts the stream
        assert fetches <= total // (64 * KB) + 1

    def test_random_reads_fetch_only_what_they_touch(self, cluster):
        client, server, _ = make(cluster, readahead=256 * KB)
        reader = fresh_reader(cluster, server)

        def scenario():
            f = yield from client.create("/r")
            yield from client.write(f, 0, Payload.synthetic(1024 * KB))
            yield from client.close(f)
            g = yield from reader.open("/r", write=False)
            before = server.rpc.calls_served
            for block in (9, 3, 12, 6, 1):  # strictly non-sequential
                yield from reader.read(g, block * 64 * KB, 4 * KB)
            return server.rpc.calls_served - before

        fetches = drive(cluster.sim, scenario())
        # 5 misses + at most the single open-window prefetch burst
        assert fetches <= 5 + 4

    def test_interleaved_read_write_consistency(self, cluster):
        client, _server, _ = make(cluster, readahead=128 * KB)

        def scenario():
            f = yield from client.create("/mix")
            yield from client.write(f, 0, Payload(b"x" * 256 * KB))
            yield from client.close(f)
            g = yield from client.open("/mix")
            out = []
            pos = 0
            while pos < 256 * KB:
                data = yield from client.read(g, pos, 32 * KB)
                out.append(data.data)
                # overwrite just behind the read cursor
                yield from client.write(g, pos, Payload(b"y" * 32 * KB))
                pos += 32 * KB
            yield from client.close(g)
            h = yield from client.open("/mix", write=False)
            final = yield from client.read(h, 0, 256 * KB)
            return b"".join(out), final.data

        reads, final = drive(cluster.sim, scenario())
        assert reads == b"x" * 256 * KB  # reads saw pre-overwrite data
        assert final == b"y" * 256 * KB  # writes all landed

    def test_eof_mid_block_stream(self, cluster):
        client, _server, _ = make(cluster)
        total = 200 * KB + 123  # not block aligned

        def scenario():
            f = yield from client.create("/odd")
            yield from client.write(f, 0, Payload.synthetic(total))
            yield from client.close(f)
            g = yield from client.open("/odd", write=False)
            moved = 0
            pos = 0
            while True:
                data = yield from client.read(g, pos, 16 * KB)
                if data.nbytes == 0:
                    break
                moved += data.nbytes
                pos += data.nbytes
            return moved

        assert drive(cluster.sim, scenario()) == total
