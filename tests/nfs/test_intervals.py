"""IntervalSet unit and property tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nfs.intervals import IntervalSet


class TestBasics:
    def test_empty(self):
        s = IntervalSet()
        assert not s
        assert s.total == 0
        assert s.span == (0, 0)
        assert s.gaps(0, 10) == [(0, 10)]
        assert s.covers(5, 5)  # empty range trivially covered

    def test_add_and_cover(self):
        s = IntervalSet()
        s.add(10, 20)
        assert s.covers(10, 20)
        assert s.covers(12, 15)
        assert not s.covers(5, 15)
        assert not s.covers(15, 25)

    def test_adjacent_merge(self):
        s = IntervalSet()
        s.add(0, 10)
        s.add(10, 20)
        assert list(s) == [(0, 20)]

    def test_overlapping_merge(self):
        s = IntervalSet()
        s.add(0, 10)
        s.add(5, 15)
        s.add(30, 40)
        assert list(s) == [(0, 15), (30, 40)]

    def test_bridge_merge(self):
        s = IntervalSet()
        s.add(0, 10)
        s.add(20, 30)
        s.add(8, 22)
        assert list(s) == [(0, 30)]

    def test_empty_add_ignored(self):
        s = IntervalSet()
        s.add(5, 5)
        s.add(7, 3)
        assert not s

    def test_remove_middle_splits(self):
        s = IntervalSet()
        s.add(0, 30)
        s.remove(10, 20)
        assert list(s) == [(0, 10), (20, 30)]

    def test_remove_edges(self):
        s = IntervalSet()
        s.add(0, 30)
        s.remove(0, 10)
        s.remove(25, 40)
        assert list(s) == [(10, 25)]

    def test_gaps(self):
        s = IntervalSet()
        s.add(10, 20)
        s.add(30, 40)
        assert s.gaps(0, 50) == [(0, 10), (20, 30), (40, 50)]
        assert s.gaps(12, 18) == []
        assert s.gaps(15, 35) == [(20, 30)]

    def test_runs_in(self):
        s = IntervalSet()
        s.add(10, 20)
        s.add(30, 40)
        assert s.runs_in(15, 35) == [(15, 20), (30, 35)]
        assert s.runs_in(0, 5) == []

    def test_copy_is_independent(self):
        s = IntervalSet()
        s.add(0, 10)
        c = s.copy()
        c.add(20, 30)
        assert list(s) == [(0, 10)]
        assert list(c) == [(0, 10), (20, 30)]


ops = st.lists(
    st.tuples(
        st.sampled_from(["add", "remove"]),
        st.integers(0, 100),
        st.integers(0, 100),
    ),
    max_size=40,
)


class ReferenceSet:
    """Boolean-array reference model."""

    def __init__(self, n=220):
        self.bits = [False] * n

    def add(self, s, e):
        for i in range(s, min(e, len(self.bits))):
            self.bits[i] = True

    def remove(self, s, e):
        for i in range(s, min(e, len(self.bits))):
            self.bits[i] = False

    def covers(self, s, e):
        return all(self.bits[i] for i in range(s, e))

    def total(self):
        return sum(self.bits)


class TestProperties:
    @given(operations=ops)
    @settings(max_examples=120, deadline=None)
    def test_property_matches_reference_model(self, operations):
        ivs = IntervalSet()
        ref = ReferenceSet()
        for op, a, b in operations:
            s, e = min(a, b), max(a, b)
            getattr(ivs, op)(s, e)
            getattr(ref, op)(s, e)
        assert ivs.total == ref.total()
        for s, e in [(0, 100), (10, 50), (99, 100)]:
            assert ivs.covers(s, e) == ref.covers(s, e)
        # intervals sorted, disjoint, non-adjacent
        prev_end = -1
        for s, e in ivs:
            assert s < e
            assert s > prev_end  # strictly after previous end => coalesced
            prev_end = e

    @given(operations=ops, window=st.tuples(st.integers(0, 100), st.integers(0, 100)))
    @settings(max_examples=80, deadline=None)
    def test_property_gaps_and_runs_partition_window(self, operations, window):
        ivs = IntervalSet()
        for op, a, b in operations:
            getattr(ivs, op)(min(a, b), max(a, b))
        lo, hi = min(window), max(window)
        pieces = sorted(ivs.gaps(lo, hi) + ivs.runs_in(lo, hi))
        pos = lo
        for s, e in pieces:
            assert s == pos
            pos = e
        assert pos == hi or (lo == hi and not pieces)
