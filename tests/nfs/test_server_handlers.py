"""Direct wire-level tests of NFSv4 server handlers (no client cache)."""

import pytest

from repro import rpc
from repro.nfs import Nfs4Server, NfsConfig
from repro.vfs import NoEntry, Payload
from repro.vfs.localfs import LocalClient, LocalFileSystem

from tests.conftest import build_cluster, drive


@pytest.fixture
def server(cluster):
    backing = LocalFileSystem()
    srv = Nfs4Server(
        cluster.sim, cluster.storage[0], LocalClient(cluster.sim, backing), NfsConfig()
    )
    return srv, backing


def call(cluster, srv, proc, args, payload=None):
    def gen():
        return (yield from rpc.call(cluster.clients[0], srv.rpc, proc, args, payload))

    return drive(cluster.sim, gen())


class TestHandlers:
    def test_mount_returns_root(self, cluster, server):
        srv, _backing = server
        result, _ = call(cluster, srv, "mount", {})
        assert result["root"] == 1

    def test_open_create_then_stable_write(self, cluster, server):
        srv, backing = server
        result, _ = call(cluster, srv, "open", {"path": "/s", "create": True})
        fh = result["fh"]
        wr, _ = call(
            cluster,
            srv,
            "write",
            {"fh": fh, "offset": 0, "stable": True},
            payload=Payload(b"stable!"),
        )
        assert wr["count"] == 7
        assert wr["committed"] is True
        entry = backing.namespace.resolve("/s")
        assert backing.contents[entry.handle].read(0, 7).data == b"stable!"

    def test_read_reports_eof(self, cluster, server):
        srv, _backing = server
        result, _ = call(cluster, srv, "open", {"path": "/r", "create": True})
        fh = result["fh"]
        call(cluster, srv, "write", {"fh": fh, "offset": 0}, payload=Payload(b"abc"))
        rd, data = call(cluster, srv, "read", {"fh": fh, "offset": 0, "nbytes": 10})
        assert rd["eof"] is True
        assert data.data == b"abc"
        rd2, _ = call(cluster, srv, "read", {"fh": fh, "offset": 0, "nbytes": 3})
        assert rd2["eof"] is False

    def test_lookup_directory_has_no_fh(self, cluster, server):
        srv, _backing = server
        call(cluster, srv, "mkdir", {"path": "/dir"})
        result, _ = call(cluster, srv, "lookup", {"path": "/dir"})
        assert result["fh"] is None
        assert result["attrs"].is_dir

    def test_lookup_file_binds_handle(self, cluster, server):
        srv, _backing = server
        call(cluster, srv, "open", {"path": "/f", "create": True})
        result, _ = call(cluster, srv, "lookup", {"path": "/f"})
        assert result["fh"] is not None

    def test_getattr_by_fh(self, cluster, server):
        srv, _backing = server
        opened, _ = call(cluster, srv, "open", {"path": "/g", "create": True})
        call(
            cluster,
            srv,
            "write",
            {"fh": opened["fh"], "offset": 0},
            payload=Payload(b"12345678"),
        )
        result, _ = call(cluster, srv, "getattr", {"fh": opened["fh"]})
        assert result["attrs"].size == 8

    def test_missing_path_propagates_noent(self, cluster, server):
        srv, _backing = server
        with pytest.raises(NoEntry):
            call(cluster, srv, "open", {"path": "/ghost"})

    def test_rename_and_readdir(self, cluster, server):
        srv, _backing = server
        call(cluster, srv, "mkdir", {"path": "/d"})
        call(cluster, srv, "open", {"path": "/d/a", "create": True})
        call(cluster, srv, "rename", {"old": "/d/a", "new": "/d/b"})
        result, _ = call(cluster, srv, "readdir", {"path": "/d"})
        assert result["names"] == ["b"]

    def test_commit_flushes_backend(self, cluster, server):
        srv, _backing = server
        opened, _ = call(cluster, srv, "open", {"path": "/c", "create": True})
        call(cluster, srv, "commit", {"fh": opened["fh"]})  # no error = pass

    def test_stateids_increment(self, cluster, server):
        srv, _backing = server
        r1, _ = call(cluster, srv, "open", {"path": "/x1", "create": True})
        r2, _ = call(cluster, srv, "open", {"path": "/x2", "create": True})
        assert r2["stateid"] > r1["stateid"]

    def test_lazy_fh_binding_via_open_by_handle(self, cluster, server):
        """A READ for a never-opened fh binds through the backend."""
        srv, backing = server
        entry = backing.namespace.create("/lazy")
        backing.data_for(entry.handle).write(0, Payload(b"bound"))
        rd, data = call(
            cluster, srv, "read", {"fh": entry.handle, "offset": 0, "nbytes": 5}
        )
        assert data.data == b"bound"
