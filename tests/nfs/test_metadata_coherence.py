"""Metadata/namespace cache coherence of the NFSv4 client.

Regressions for the bug swarm the metadata torture harness flushed
out: truncate must invalidate page-cache state (not just attributes),
remove/rename must evict retained close-to-open caches, getattr must
reflect the client's own cached extends, and a truncate must recall
conflicting read delegations and reply with fresh attributes.
"""

import pytest

from repro.nfs import Nfs4Client, Nfs4Server, NfsConfig
from repro.vfs import Payload
from repro.vfs.localfs import LocalClient, LocalFileSystem

from tests.conftest import drive


def build_nfs(cluster, **overrides):
    cfg = NfsConfig(rsize=64 * 1024, wsize=64 * 1024, **overrides)
    backing = LocalFileSystem()
    server = Nfs4Server(
        cluster.sim, cluster.storage[0], LocalClient(cluster.sim, backing), cfg
    )
    c0 = Nfs4Client(cluster.sim, cluster.clients[0], server, cfg)
    c1 = Nfs4Client(cluster.sim, cluster.clients[1], server, cfg)
    drive(cluster.sim, c0.mount())
    drive(cluster.sim, c1.mount())
    return c0, c1, server


@pytest.fixture
def nfs(cluster):
    return build_nfs(cluster)


class TestTruncateCoherence:
    def test_truncate_clips_open_file_cache(self, cluster, nfs):
        """Cross-client truncate-while-open: after this client's own
        truncate, reads through a still-open handle must not serve the
        pre-truncate bytes from cache."""
        c0, _c1, _server = nfs

        def scenario():
            f = yield from c0.create("/t")
            yield from c0.write(f, 0, Payload(b"X" * 8192))
            yield from c0.fsync(f)
            yield from c0.read(f, 0, 8192)  # populate the page cache
            yield from c0.truncate("/t", 100)
            got = yield from c0.read(f, 0, 8192)
            size = f.state["size"]
            yield from c0.close(f)
            return got, size

        got, size = drive(cluster.sim, scenario())
        assert size == 100
        assert got.nbytes == 100  # EOF clipped at the new size
        assert got.data == b"X" * 100

    def test_cross_client_truncate_then_reader_sees_cut(self, cluster, nfs):
        c0, c1, _server = nfs

        def scenario():
            f = yield from c0.create("/u")
            yield from c0.write(f, 0, Payload(b"Y" * 4096))
            yield from c0.close(f)
            g = yield from c1.open("/u", write=False)
            yield from c1.read(g, 0, 4096)  # c1 caches all 4096 bytes
            yield from c0.truncate("/u", 10)
            # c1's open predates the truncate; its *next open* must
            # revalidate.  Close, let attrs expire, reopen, read.
            yield from c1.close(g)
            yield cluster.sim.timeout(NfsConfig().ac_timeo + 1.0)
            h = yield from c1.open("/u", write=False)
            got = yield from c1.read(h, 0, 4096)
            yield from c1.close(h)
            return got

        got = drive(cluster.sim, scenario())
        assert got.nbytes == 10
        assert got.data == b"Y" * 10

    def test_truncate_discards_dirty_beyond_cut(self, cluster, nfs):
        """Dirty pages past the cut must never be written back: that
        would resurrect the truncated range server-side."""
        c0, c1, _server = nfs

        def scenario():
            f = yield from c0.create("/v")
            yield from c0.write(f, 0, Payload(b"A" * 16384))  # dirty, cached
            yield from c0.truncate("/v", 1000)
            yield from c0.fsync(f)
            yield from c0.close(f)
            g = yield from c1.open("/v", write=False)
            got = yield from c1.read(g, 0, 16384)
            yield from c1.close(g)
            return got

        got = drive(cluster.sim, scenario())
        assert got.nbytes == 1000
        assert got.data == b"A" * 1000

    def test_truncate_bumps_mtime_in_reply(self, cluster, nfs):
        c0, _c1, _server = nfs

        def scenario():
            f = yield from c0.create("/w")
            yield from c0.write(f, 0, Payload(b"B" * 100))
            yield from c0.close(f)
            before = yield from c0.getattr("/w")
            yield cluster.sim.timeout(1.0)
            yield from c0.truncate("/w", 10)
            after = yield from c0.getattr("/w")
            return before, after

        before, after = drive(cluster.sim, scenario())
        assert after.size == 10
        assert after.mtime > before.mtime

    def test_truncate_recalls_read_delegations(self, cluster):
        c0, c1, server = build_nfs(cluster, delegations=True)

        def scenario():
            f = yield from c0.create("/d")
            yield from c0.write(f, 0, Payload(b"C" * 2048))
            yield from c0.close(f)
            g = yield from c1.open("/d", write=False)  # c1 gets a delegation
            yield from c1.close(g)
            assert "/d" in c1._delegations
            yield from c0.truncate("/d", 7)
            # The recall runs detached from the truncate reply: settle.
            yield cluster.sim.timeout(1.0)

        drive(cluster.sim, scenario())
        assert server.delegations_recalled == 1
        assert "/d" not in c1._delegations


class TestNamespaceEviction:
    def test_remove_then_recreate_does_not_adopt_dead_pages(self, cluster, nfs):
        """A recreated same-size file must not pass close-to-open
        revalidation against the dead file's retained cache."""
        c0, c1, _server = nfs

        def scenario():
            f = yield from c0.create("/r")
            yield from c0.write(f, 0, Payload(b"OLD!" * 256))
            yield from c0.close(f)
            g = yield from c0.open("/r", write=False)
            yield from c0.read(g, 0, 1024)  # retained pages on close
            yield from c0.close(g)
            yield from c0.remove("/r")
            h = yield from c0.create("/r")
            yield from c0.write(h, 0, Payload(b"NEW?" * 256))
            yield from c0.close(h)
            k = yield from c0.open("/r", write=False)
            got = yield from c0.read(k, 0, 1024)
            yield from c0.close(k)
            # And a second client must agree.
            m = yield from c1.open("/r", write=False)
            other = yield from c1.read(m, 0, 1024)
            yield from c1.close(m)
            return got, other

        got, other = drive(cluster.sim, scenario())
        assert got.data == b"NEW?" * 256
        assert other.data == b"NEW?" * 256

    def test_rename_over_evicts_target_cache(self, cluster, nfs):
        """The rename target's inode dies: its retained pages must not
        be served for the file now living at that name."""
        c0, _c1, _server = nfs

        def scenario():
            v = yield from c0.create("/victim")
            yield from c0.write(v, 0, Payload(b"DEAD" * 256))
            yield from c0.close(v)
            g = yield from c0.open("/victim", write=False)
            yield from c0.read(g, 0, 1024)
            yield from c0.close(g)
            s = yield from c0.create("/src")
            yield from c0.write(s, 0, Payload(b"LIVE" * 256))
            yield from c0.close(s)
            yield from c0.rename("/src", "/victim")
            h = yield from c0.open("/victim", write=False)
            got = yield from c0.read(h, 0, 1024)
            yield from c0.close(h)
            return got

        got = drive(cluster.sim, scenario())
        assert got.data == b"LIVE" * 256

    def test_renamed_file_keeps_cache_under_new_name(self, cluster, nfs):
        c0, _c1, server = nfs

        def scenario():
            f = yield from c0.create("/a")
            yield from c0.write(f, 0, Payload(b"K" * 4096))
            yield from c0.close(f)
            g = yield from c0.open("/a", write=False)
            yield from c0.read(g, 0, 4096)
            yield from c0.close(g)
            yield from c0.rename("/a", "/b")
            before = server.rpc.calls_served
            h = yield from c0.open("/b", write=False)
            got = yield from c0.read(h, 0, 4096)
            yield from c0.close(h)
            return got, server.rpc.calls_served - before

        got, rpcs = drive(cluster.sim, scenario())
        assert got.data == b"K" * 4096
        assert rpcs == 2  # open + close: the cache followed the rename


class TestOwnWriteAttrs:
    def test_getattr_sees_own_cached_extend(self, cluster, nfs):
        """Linux semantics: local i_size is authoritative while dirty
        extends sit in the page cache — getattr must not report the
        smaller server size from a stale attribute cache entry."""
        c0, _c1, _server = nfs

        def scenario():
            f = yield from c0.create("/own")
            yield from c0.write(f, 0, Payload(b"s" * 100))
            yield from c0.fsync(f)
            yield from c0.getattr("/own")  # attr cache now holds size 100
            yield from c0.write(f, 0, Payload(b"L" * 5000))  # cached extend
            attrs = yield from c0.getattr("/own")
            yield from c0.close(f)
            return attrs

        attrs = drive(cluster.sim, scenario())
        assert attrs.size == 5000

    def test_getattr_after_close_reports_flushed_size(self, cluster, nfs):
        c0, c1, _server = nfs

        def scenario():
            f = yield from c0.create("/flushed")
            yield from c0.write(f, 0, Payload(b"z" * 3000))
            yield from c0.close(f)
            attrs = yield from c1.getattr("/flushed")
            return attrs

        attrs = drive(cluster.sim, scenario())
        assert attrs.size == 3000
