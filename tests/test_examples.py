"""Smoke tests: every shipped example runs end to end."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[1] / "examples"


def run_example(name: str, *argv: str, capsys=None):
    old_argv = sys.argv
    sys.argv = [name, *argv]
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


class TestExamples:
    def test_quickstart(self, capsys):
        run_example("quickstart.py")
        out = capsys.readouterr().out
        assert "layout from the layout translator" in out
        assert "read back" in out

    def test_custom_aggregation(self, capsys):
        run_example("custom_aggregation.py")
        out = capsys.readouterr().out
        assert "varstrip" in out
        assert "even_odd" in out

    def test_atlas_campaign_small(self, capsys):
        run_example("atlas_campaign.py", "0.02")
        out = capsys.readouterr().out
        assert "direct-pnfs" in out and "speedup" in out

    def test_architecture_shootout_small(self, capsys):
        run_example("architecture_shootout.py", "0.02")
        out = capsys.readouterr().out
        assert "fig6a" in out and "fig7a" in out

    def test_wan_grid_access_small(self, capsys):
        run_example("wan_grid_access.py", "0.02")
        out = capsys.readouterr().out
        assert "cross-country" in out

    def test_failover_demo_small(self, capsys):
        run_example("failover_demo.py", "0.05")
        out = capsys.readouterr().out
        assert "throughput degraded" in out
        assert "failovers=1" in out and "recoveries=1" in out
        assert "fail server" in out and "restore server" in out

    def test_bottleneck_analysis_small(self, capsys):
        run_example("bottleneck_analysis.py", "direct-pnfs", "write", "0.05")
        out = capsys.readouterr().out
        assert "Dominant server resource" in out
        assert "RPC mix" in out
