"""Package-level API surface tests."""

import repro


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_architectures_registered(self):
        assert sorted(repro.ARCHITECTURES) == [
            "direct-pnfs",
            "direct-pnfs-sharded",  # extension (§6.4.3 future work)
            "nfsv4",
            "pnfs-2tier",
            "pnfs-3tier",
            "pvfs2",
        ]

    def test_quickstart_snippet_from_docstring(self):
        """The module docstring's quick start must actually run."""
        tb = repro.Testbed(n_clients=1)
        deployment = repro.build_direct_pnfs(tb)
        client = deployment.make_client(tb.client_nodes[0])

        def app():
            yield from client.mount()
            f = yield from client.create("/hello")
            yield from client.write(f, 0, repro.Payload(b"world"))
            yield from client.close(f)

        tb.sim.run(until=tb.sim.process(app()))
        stored = sum(
            fd.size for d in deployment.pvfs.daemons for fd in d.bstreams.values()
        )
        assert stored == 5
