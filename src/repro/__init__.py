"""Direct-pNFS (HPDC 2007) — a full reproduction.

Top-level convenience imports for the most common entry points; the
subpackages hold the substance:

* :mod:`repro.core` — Direct-pNFS itself (layout translator,
  aggregation drivers, data servers, deployment builder);
* :mod:`repro.nfs`, :mod:`repro.pnfs`, :mod:`repro.pvfs2` — the
  protocol substrates;
* :mod:`repro.sim` — the discrete-event cluster simulator;
* :mod:`repro.vfs` — the generic file-system interface and data types;
* :mod:`repro.workloads` — the paper's benchmarks;
* :mod:`repro.cluster` — the testbed and the five architectures;
* :mod:`repro.bench` — experiment runner and figure harness.

Quick start::

    from repro import Testbed, build_direct_pnfs, Payload

    tb = Testbed(n_clients=1)
    deployment = build_direct_pnfs(tb)
    client = deployment.make_client(tb.client_nodes[0])

    def app():
        yield from client.mount()
        f = yield from client.create("/hello")
        yield from client.write(f, 0, Payload(b"world"))
        yield from client.close(f)

    tb.sim.run(until=tb.sim.process(app()))
"""

from repro.cluster.configs import (
    ARCHITECTURES,
    build_direct_pnfs,
    build_nfsv4,
    build_pnfs_2tier,
    build_pnfs_3tier,
    build_pvfs2,
    make_deployment,
)
from repro.cluster.testbed import Testbed
from repro.core.system import DirectPnfsSystem
from repro.pvfs2.system import Pvfs2System
from repro.sim.engine import Simulator
from repro.vfs.api import FileSystemClient, Payload

__version__ = "1.0.0"

__all__ = [
    "ARCHITECTURES",
    "DirectPnfsSystem",
    "FileSystemClient",
    "Payload",
    "Pvfs2System",
    "Simulator",
    "Testbed",
    "build_direct_pnfs",
    "build_nfsv4",
    "build_pnfs_2tier",
    "build_pnfs_3tier",
    "build_pvfs2",
    "make_deployment",
    "__version__",
]
