"""Generic request/response RPC over the simulated network.

Both protocol families in the reproduction — the PVFS2 storage protocol
(BMI-style) and NFSv4.1 (ONC RPC) — are built on this layer.  A call
charges, in order:

1. client CPU: per-call marshalling + per-byte copy of the request
   payload,
2. the wire: request bytes from client node to server node,
3. a server worker thread (FIFO; the paper's servers run 8), holding it
   while charging server CPU (per-call + per-byte in), running the
   handler (which may perform disk I/O or nested RPCs), and charging
   per-byte CPU for the reply,
4. the wire: reply bytes back to the client,
5. client CPU: per-byte copy of the reply payload.

Handlers are simulation generators ``handler(args, payload)`` returning
``(result, reply_payload)`` where ``reply_payload`` is a
:class:`~repro.vfs.api.Payload` or ``None``.  Raising an
:class:`~repro.vfs.api.FsError` inside a handler propagates the error
to the caller of :func:`call` (transported in the reply, charged at
header size), mirroring NFS status codes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.sim.engine import Simulator
from repro.sim.node import Node
from repro.sim.resources import Resource
from repro.vfs.api import FsError, Payload

__all__ = ["RpcCosts", "RpcServer", "call"]

#: Bytes of header/marshalling attributed to every request and reply.
HEADER_BYTES = 160


@dataclass(frozen=True)
class RpcCosts:
    """CPU cost model for one protocol stack (reference-speed seconds).

    ``*_per_call`` covers marshalling, context switches and interrupt
    handling; ``*_per_byte`` covers data copies (user↔kernel↔NIC).
    ``server_per_byte_in``/``_out`` override the symmetric
    ``server_per_byte`` for asymmetric paths (gateway data servers whose
    write and read pipelines differ).  The calibrated values live in
    :mod:`repro.cluster.testbed`.
    """

    client_per_call: float = 20e-6
    client_per_byte: float = 4e-9
    server_per_call: float = 25e-6
    server_per_byte: float = 4e-9
    server_per_byte_in: Optional[float] = None
    server_per_byte_out: Optional[float] = None

    @property
    def per_byte_in(self) -> float:
        """Server CPU per request-payload byte (write path)."""
        return self.server_per_byte_in if self.server_per_byte_in is not None else self.server_per_byte

    @property
    def per_byte_out(self) -> float:
        """Server CPU per reply-payload byte (read path)."""
        return self.server_per_byte_out if self.server_per_byte_out is not None else self.server_per_byte


class RpcServer:
    """A named service with a FIFO worker-thread pool on a node."""

    def __init__(
        self,
        sim: Simulator,
        node: Node,
        name: str,
        costs: RpcCosts,
        threads: int = 8,
    ):
        self.sim = sim
        self.node = node
        self.name = name
        self.costs = costs
        self.threads = Resource(sim, threads, name=f"{name}.threads")
        self._handlers: dict[str, Callable] = {}
        self.calls_served = 0

    def register(self, proc: str, handler: Callable) -> None:
        """Register generator ``handler(args, payload)`` for ``proc``."""
        if proc in self._handlers:
            raise ValueError(f"{self.name}: duplicate handler for {proc!r}")
        self._handlers[proc] = handler

    def handler(self, proc: str) -> Callable:
        try:
            return self._handlers[proc]
        except KeyError:
            raise KeyError(f"{self.name}: no handler for procedure {proc!r}") from None


def call(
    client_node: Node,
    server: RpcServer,
    proc: str,
    args: object = None,
    payload: Optional[Payload] = None,
    args_bytes: int = 64,
):
    """Process generator performing one RPC; returns the handler result.

    ``payload`` rides in the request (writes); the handler's reply
    payload rides in the response (reads).  The returned value is
    ``(result, reply_payload)`` exactly as produced by the handler.
    """
    sim = client_node.sim
    handler = server.handler(proc)  # fail fast on bad procedure
    costs = server.costs
    req_payload_bytes = payload.nbytes if payload is not None else 0
    req_bytes = HEADER_BYTES + args_bytes + req_payload_bytes
    from repro.tracing import current_tracer

    tracer = current_tracer()
    t_start = sim.now

    # 1. Client-side marshalling, then copy-out OVERLAPPED with the
    #    request transfer: real stacks stream while copying, so wall
    #    time is max(copy, wire), with the CPU held for the copy part.
    yield from client_node.compute(costs.client_per_call)
    request_legs = [
        sim.process(
            client_node.network.transfer(client_node.name, server.node.name, req_bytes)
        )
    ]
    if req_payload_bytes:
        request_legs.append(
            sim.process(
                client_node.compute(costs.client_per_byte * req_payload_bytes)
            )
        )
    yield sim.all_of(request_legs)

    # 2. Server processing under a worker thread.
    yield server.threads.acquire()
    error: Optional[FsError] = None
    result = None
    reply_payload: Optional[Payload] = None
    try:
        yield from server.node.compute(
            costs.server_per_call + costs.per_byte_in * req_payload_bytes
        )
        try:
            result, reply_payload = yield from handler(args, payload)
        except FsError as exc:
            error = exc
        # 3. Reply: server copy-out, wire, and client copy-in all
        #    overlap (chunk-pipelined), while the thread stays busy.
        reply_payload_bytes = reply_payload.nbytes if reply_payload is not None else 0
        reply_bytes = HEADER_BYTES + reply_payload_bytes
        reply_legs = [
            sim.process(
                client_node.network.transfer(
                    server.node.name, client_node.name, reply_bytes
                )
            )
        ]
        if reply_payload_bytes:
            reply_legs.append(
                sim.process(
                    server.node.compute(costs.per_byte_out * reply_payload_bytes)
                )
            )
            reply_legs.append(
                sim.process(
                    client_node.compute(costs.client_per_byte * reply_payload_bytes)
                )
            )
        yield sim.all_of(reply_legs)
        server.calls_served += 1
    finally:
        server.threads.release()

    if tracer is not None:
        from repro.tracing import RpcRecord

        tracer.record(
            RpcRecord(
                start=t_start,
                end=sim.now,
                client=client_node.name,
                server=server.name,
                proc=proc,
                req_bytes=req_payload_bytes,
                reply_bytes=reply_payload.nbytes if reply_payload is not None else 0,
                error=error is not None,
            )
        )
    if error is not None:
        raise error
    return result, reply_payload
