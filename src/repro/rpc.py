"""Generic request/response RPC over the simulated network.

Both protocol families in the reproduction — the PVFS2 storage protocol
(BMI-style) and NFSv4.1 (ONC RPC) — are built on this layer.  A call
charges, in order:

1. client CPU: per-call marshalling + per-byte copy of the request
   payload,
2. the wire: request bytes from client node to server node,
3. a server worker thread (FIFO; the paper's servers run 8), holding it
   while charging server CPU (per-call + per-byte in), running the
   handler (which may perform disk I/O or nested RPCs), and charging
   per-byte CPU for the reply,
4. the wire: reply bytes back to the client,
5. client CPU: per-byte copy of the reply payload.

Handlers are simulation generators ``handler(args, payload)`` returning
``(result, reply_payload)`` where ``reply_payload`` is a
:class:`~repro.vfs.api.Payload` or ``None``.  Raising an
:class:`~repro.vfs.api.FsError` inside a handler propagates the error
to the caller of :func:`call` (transported in the reply, charged at
header size), mirroring NFS status codes.  A handler raising anything
*else* is a server bug: the server converts it into a traced
:class:`RpcServerError` reply so accounting (``calls_served``, trace
records, thread release) stays consistent.

Failure handling
----------------
Without a :class:`RpcPolicy`, a call behaves exactly as described above
and blocks forever if the server is down or the network eats a message
— the pre-fault-layer behaviour, preserved so calibrated benchmarks are
bit-identical.  With a policy, each attempt runs under a client-side
timer: on expiry the attempt is interrupted (resources are released via
the normal unwind path), the timer backs off exponentially, and the
request is retransmitted up to ``max_retries`` times before the call
raises :class:`RpcTimeout` — deliberately *not* an ``FsError``, since
no reply (not even an error reply) was ever received.

Retransmission is made exactly-once for non-idempotent operations by
the NFSv4.1 session reply cache: pass ``session``/``seq`` (see
:class:`repro.nfs.sessions.Session`) and a retried request whose
original execution already completed server-side replays the cached
reply instead of re-running the handler.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.obs import spans as obs_spans
from repro.sim.engine import Event, Interrupt, SimulationError, Simulator
from repro.sim.node import Node
from repro.sim.resources import Resource
from repro.vfs.api import FsError, Payload

__all__ = [
    "RpcCosts",
    "RpcPolicy",
    "RpcServer",
    "RpcServerError",
    "RpcTimeout",
    "call",
]

#: Bytes of header/marshalling attributed to every request and reply.
HEADER_BYTES = 160


class RpcTimeout(Exception):
    """A call exhausted its retry budget without receiving a reply.

    Distinct from :class:`~repro.vfs.api.FsError` on purpose: an
    ``FsError`` is a *reply* (the server answered with a status code);
    a timeout means the server may or may not have executed the request
    — the caller must treat the outcome as unknown.
    """

    def __init__(self, message: str, server: str = "", proc: str = "", attempts: int = 0):
        super().__init__(message)
        self.server = server
        self.proc = proc
        self.attempts = attempts


class RpcServerError(FsError):
    """Reply carrying an unexpected (non-``FsError``) handler failure.

    The server-side equivalent of NFS4ERR_SERVERFAULT: the handler
    crashed, the server logged it and sent an error reply instead of
    silently dropping the exchange.
    """


@dataclass(frozen=True)
class RpcPolicy:
    """Client-side timeout/retry behaviour for one call (or one stack).

    ``timeout`` is the first attempt's patience; each retransmission
    multiplies it by ``backoff`` up to ``max_timeout`` (classic RPC RTO
    doubling).  ``max_retries`` bounds retransmissions *after* the
    first attempt, so a call makes at most ``1 + max_retries`` attempts
    before raising :class:`RpcTimeout`.
    """

    timeout: float = 1.0
    max_retries: int = 5
    backoff: float = 2.0
    max_timeout: float = 30.0

    def __post_init__(self):
        if self.timeout <= 0:
            raise ValueError("timeout must be positive")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff < 1.0:
            raise ValueError("backoff must be >= 1")
        if self.max_timeout < self.timeout:
            raise ValueError("max_timeout must be >= timeout")

    def timeout_for(self, attempt: int) -> float:
        """Timer for attempt number ``attempt`` (0-based)."""
        return min(self.timeout * self.backoff**attempt, self.max_timeout)


@dataclass(frozen=True)
class RpcCosts:
    """CPU cost model for one protocol stack (reference-speed seconds).

    ``*_per_call`` covers marshalling, context switches and interrupt
    handling; ``*_per_byte`` covers data copies (user↔kernel↔NIC).
    ``server_per_byte_in``/``_out`` override the symmetric
    ``server_per_byte`` for asymmetric paths (gateway data servers whose
    write and read pipelines differ).  The calibrated values live in
    :mod:`repro.cluster.testbed`.
    """

    client_per_call: float = 20e-6
    client_per_byte: float = 4e-9
    server_per_call: float = 25e-6
    server_per_byte: float = 4e-9
    server_per_byte_in: Optional[float] = None
    server_per_byte_out: Optional[float] = None

    @property
    def per_byte_in(self) -> float:
        """Server CPU per request-payload byte (write path)."""
        return self.server_per_byte_in if self.server_per_byte_in is not None else self.server_per_byte

    @property
    def per_byte_out(self) -> float:
        """Server CPU per reply-payload byte (read path)."""
        return self.server_per_byte_out if self.server_per_byte_out is not None else self.server_per_byte


class RpcServer:
    """A named service with a FIFO worker-thread pool on a node."""

    def __init__(
        self,
        sim: Simulator,
        node: Node,
        name: str,
        costs: RpcCosts,
        threads: int = 8,
    ):
        self.sim = sim
        self.node = node
        self.name = name
        self.costs = costs
        self.threads = Resource(sim, threads, name=f"{name}.threads")
        self._handlers: dict[str, Callable] = {}
        self.calls_served = 0
        #: Error replies sent (FsError statuses + converted handler bugs).
        self.errors = 0
        #: Replies served from a session reply cache without re-running
        #: the handler (exactly-once retransmission hits).
        self.calls_replayed = 0
        #: Retransmissions aimed at this service (counted client-side
        #: when a retry timer fires, so lost requests are included).
        self.retransmissions = 0
        #: Calls that exhausted their retry budget against this service
        #: and raised :class:`RpcTimeout` at the client.
        self.client_timeouts = 0
        #: Service liveness.  A down server silently swallows requests
        #: and replies — the fail-stop model; messages in flight to it
        #: are lost, and only a client-side timer notices.
        self.up = True
        self.fail_count = 0

    def fail(self) -> None:
        """Take the service down (fail-stop).  In-flight exchanges are
        lost at their next checkpoint; new requests disappear."""
        self.up = False
        self.fail_count += 1

    def restore(self) -> None:
        """Bring the service back.  Requests lost while down stay lost
        (clients must retransmit); session reply caches survive."""
        self.up = True

    def register(self, proc: str, handler: Callable) -> None:
        """Register generator ``handler(args, payload)`` for ``proc``."""
        if proc in self._handlers:
            raise ValueError(f"{self.name}: duplicate handler for {proc!r}")
        self._handlers[proc] = handler

    def handler(self, proc: str) -> Callable:
        try:
            return self._handlers[proc]
        except KeyError:
            raise KeyError(f"{self.name}: no handler for procedure {proc!r}") from None


def _lost(sim: Simulator):
    """An event that never fires: a message swallowed by a dead server.

    A process parked on it waits forever — unless a retry timer
    interrupts it (the fault layer) or the simulation simply runs out
    of events (the documented hang without one).
    """
    return Event(sim)


def _attempt(
    client_node: Node,
    server: RpcServer,
    proc: str,
    handler: Callable,
    args: object,
    payload: Optional[Payload],
    args_bytes: int,
    session,
    seq: Optional[int],
    retries: int,
):
    """One request/reply exchange, span-traced when a collector is on.

    The span covers the whole attempt — marshalling, wire, queueing,
    handler, reply — and is closed by the ``finally`` even when a retry
    timer interrupts the attempt mid-flight, so abandoned attempts show
    up in the trace as truncated bars rather than vanishing.
    """
    col = obs_spans.ACTIVE
    if col is None:
        return (
            yield from _attempt_body(
                client_node, server, proc, handler, args, payload,
                args_bytes, session, seq, retries,
            )
        )
    span = col.begin(
        f"rpc:{proc}", "rpc", client_node.name,
        server=server.name, attempt=retries,
    )
    ok = False
    try:
        result = yield from _attempt_body(
            client_node, server, proc, handler, args, payload,
            args_bytes, session, seq, retries,
        )
        ok = True
        return result
    finally:
        col.end(span, ok=ok)


def _attempt_body(
    client_node: Node,
    server: RpcServer,
    proc: str,
    handler: Callable,
    args: object,
    payload: Optional[Payload],
    args_bytes: int,
    session,
    seq: Optional[int],
    retries: int,
):
    """One request/reply exchange (the pre-fault-layer ``call`` body)."""
    sim = client_node.sim
    costs = server.costs
    req_payload_bytes = payload.nbytes if payload is not None else 0
    req_bytes = HEADER_BYTES + args_bytes + req_payload_bytes
    from repro.tracing import current_tracer

    tracer = current_tracer()
    t_start = sim.now

    # 1. Client-side marshalling, then copy-out OVERLAPPED with the
    #    request transfer: real stacks stream while copying, so wall
    #    time is max(copy, wire), with the CPU held for the copy part.
    #    Legs run as lightweight spawned tasks rather than full
    #    joinable processes: nothing ever joins or interrupts a leg
    #    individually (a retry timer interrupts the *attempt*, and an
    #    in-flight transfer keeps the wire busy regardless), so the
    #    per-leg Process + completion-event + AllOf machinery was pure
    #    overhead.
    yield from client_node.compute(costs.client_per_call)
    if req_payload_bytes:
        yield sim.spawn(
            client_node.network.transfer(client_node.name, server.node.name, req_bytes),
            client_node.compute(costs.client_per_byte * req_payload_bytes),
        )
    else:
        yield sim.spawn(
            client_node.network.transfer(client_node.name, server.node.name, req_bytes)
        )
    if not server.up:
        yield _lost(sim)  # request arrived at a dead server

    # 2. Server processing under a worker thread.
    yield server.threads.acquire()
    error: Optional[FsError] = None
    result = None
    reply_payload: Optional[Payload] = None
    try:
        if not server.up:
            yield _lost(sim)  # server died while the request queued
        yield from server.node.compute(
            costs.server_per_call + costs.per_byte_in * req_payload_bytes
        )
        cached = session.cached_reply(seq) if session is not None and seq is not None else None
        if cached is not None:
            # NFSv4.1 slot-table retransmission hit: replay the reply
            # recorded by the original execution — exactly-once.
            result, reply_payload, error = cached
            server.calls_replayed += 1
        else:
            if session is not None and seq is not None:
                session.note_execution(seq)
            col = obs_spans.ACTIVE
            hspan = (
                col.begin(f"handle:{proc}", "server", server.node.name)
                if col is not None
                else None
            )
            try:
                result, reply_payload = yield from handler(args, payload)
            except FsError as exc:
                error = exc
            except (Interrupt, SimulationError):
                raise
            except Exception as exc:
                # Server bug: do not let it escape the reply path — the
                # exchange completes as a traced server-error reply.
                error = RpcServerError(
                    f"{server.name}.{proc}: unhandled handler exception: {exc!r}"
                )
                error.__cause__ = exc
            finally:
                if hspan is not None:
                    col.end(hspan, ok=error is None)
            if session is not None and seq is not None:
                session.cache_reply(seq, result, reply_payload, error)
        # 3. Reply: server copy-out, wire, and client copy-in all
        #    overlap (chunk-pipelined), while the thread stays busy.
        if not server.up:
            yield _lost(sim)  # server died before the reply left
        reply_payload_bytes = reply_payload.nbytes if reply_payload is not None else 0
        reply_bytes = HEADER_BYTES + reply_payload_bytes
        if reply_payload_bytes:
            yield sim.spawn(
                client_node.network.transfer(
                    server.node.name, client_node.name, reply_bytes
                ),
                server.node.compute(costs.per_byte_out * reply_payload_bytes),
                client_node.compute(costs.client_per_byte * reply_payload_bytes),
            )
        else:
            yield sim.spawn(
                client_node.network.transfer(
                    server.node.name, client_node.name, reply_bytes
                )
            )
        server.calls_served += 1
        if error is not None:
            server.errors += 1
    finally:
        server.threads.release()

    if tracer is not None:
        from repro.tracing import RpcRecord

        tracer.record(
            RpcRecord(
                start=t_start,
                end=sim.now,
                client=client_node.name,
                server=server.name,
                proc=proc,
                req_bytes=req_payload_bytes,
                reply_bytes=reply_payload.nbytes if reply_payload is not None else 0,
                error=error is not None,
                retries=retries,
            )
        )
    if error is not None:
        raise error
    return result, reply_payload


def call(
    client_node: Node,
    server: RpcServer,
    proc: str,
    args: object = None,
    payload: Optional[Payload] = None,
    args_bytes: int = 64,
    policy: Optional[RpcPolicy] = None,
    session=None,
    seq: Optional[int] = None,
):
    """Process generator performing one RPC; returns the handler result.

    ``payload`` rides in the request (writes); the handler's reply
    payload rides in the response (reads).  The returned value is
    ``(result, reply_payload)`` exactly as produced by the handler.

    ``policy`` enables client-side timeouts with exponential backoff
    and retransmission (see :class:`RpcPolicy`); without it the call
    waits forever, exactly as before the fault layer existed.
    ``session``/``seq`` engage the NFSv4.1 reply cache so retransmitted
    non-idempotent operations execute exactly once.
    """
    sim = client_node.sim
    handler = server.handler(proc)  # fail fast on bad procedure

    if policy is None:
        # Fast path: identical behaviour (and event schedule) to the
        # pre-fault-layer RPC — calibrated benchmarks depend on it.
        try:
            result = yield from _attempt(
                client_node, server, proc, handler, args, payload,
                args_bytes, session, seq, retries=0,
            )
        finally:
            if session is not None and seq is not None:
                session.retire(seq)
        return result

    from repro.tracing import current_tracer

    t_first = sim.now
    attempt_no = 0
    timer = None
    try:
        while True:
            attempt = sim.process(
                _attempt(
                    client_node, server, proc, handler, args, payload,
                    args_bytes, session, seq, retries=attempt_no,
                ),
                name=f"rpc:{proc}@{server.name}",
            )
            # Reuse one Timeout across retries: we only loop back here
            # after the timer fired, so it is processed and re-armable.
            # Saves an allocation per retransmission on lossy paths.
            if timer is None:
                timer = sim.timeout(policy.timeout_for(attempt_no))
            else:
                timer = timer.reset(policy.timeout_for(attempt_no))
            try:
                idx, value = yield sim.any_of([attempt, timer])
            except FsError:
                raise  # an error *reply* — the exchange completed
            if idx == 0:
                return value
            # Timer fired first.  A photo finish (attempt completed in
            # the same instant) still counts as delivered.
            if not attempt.is_alive:
                attempt.defuse()
                if attempt.ok:
                    return attempt.value
                raise attempt.value
            # The attempt is genuinely stuck: abandon it.  The interrupt
            # unwinds its generator stack, releasing worker threads,
            # resource grants, and network pipes via their finallys.
            attempt.defuse()
            attempt.interrupt("rpc timeout")
            attempt_no += 1
            if attempt_no > policy.max_retries:
                server.client_timeouts += 1
                tracer = current_tracer()
                if tracer is not None:
                    from repro.tracing import RpcRecord

                    tracer.record(
                        RpcRecord(
                            start=t_first,
                            end=sim.now,
                            client=client_node.name,
                            server=server.name,
                            proc=proc,
                            req_bytes=payload.nbytes if payload is not None else 0,
                            reply_bytes=0,
                            error=True,
                            retries=attempt_no - 1,
                            timeout=True,
                        )
                    )
                raise RpcTimeout(
                    f"{proc} to {server.name}: no reply after {attempt_no} attempts",
                    server=server.name,
                    proc=proc,
                    attempts=attempt_no,
                )
            server.retransmissions += 1
    finally:
        if session is not None and seq is not None:
            session.retire(seq)
