"""NFS tunables and cost model.

Defaults follow the paper's experimental setup (§6.1): 2 MB rsize and
wsize, eight server threads.  Cost numbers are the calibrated Linux
NFSv4 path costs (lighter per call than the PVFS2 storage protocol —
the asynchronous, multi-threaded kernel implementation the paper
credits for its small-I/O advantage).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.rpc import RpcCosts

__all__ = ["NfsConfig"]


@dataclass(frozen=True)
class NfsConfig:
    """All NFS knobs in one place."""

    rsize: int = 2 * 1024 * 1024
    wsize: int = 2 * 1024 * 1024
    server_threads: int = 8
    session_slots: int = 32
    #: Readahead window fetched beyond a sequential read stream.
    readahead: int = 4 * 1024 * 1024
    #: Attribute-cache timeout (seconds).
    ac_timeo: float = 3.0
    #: Grant NFSv4 read delegations to read-only opens with no
    #: conflicting writers (served locally on reopen until recalled).
    delegations: bool = True
    #: Client lease duration (state is discarded when it lapses).
    lease_time: float = 90.0
    #: App↔page-cache memcpy cost charged on the client (s/byte).
    client_copy_per_byte: float = 1.0e-9
    costs: RpcCosts = field(
        default_factory=lambda: RpcCosts(
            client_per_call=30e-6,
            client_per_byte=3.0e-9,
            server_per_call=45e-6,
            server_per_byte=4.0e-9,
        )
    )

    def __post_init__(self):
        if self.rsize < 1 or self.wsize < 1:
            raise ValueError("rsize/wsize must be >= 1")
        if self.server_threads < 1 or self.session_slots < 1:
            raise ValueError("thread/slot counts must be >= 1")
        if self.readahead < 0:
            raise ValueError("readahead must be >= 0")
