"""NFS tunables and cost model.

Defaults follow the paper's experimental setup (§6.1): 2 MB rsize and
wsize, eight server threads.  Cost numbers are the calibrated Linux
NFSv4 path costs (lighter per call than the PVFS2 storage protocol —
the asynchronous, multi-threaded kernel implementation the paper
credits for its small-I/O advantage).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.rpc import RpcCosts, RpcPolicy

__all__ = ["NfsConfig"]


@dataclass(frozen=True)
class NfsConfig:
    """All NFS knobs in one place."""

    rsize: int = 2 * 1024 * 1024
    wsize: int = 2 * 1024 * 1024
    server_threads: int = 8
    session_slots: int = 32
    #: Readahead window fetched beyond a sequential read stream.
    readahead: int = 4 * 1024 * 1024
    #: Attribute-cache timeout (seconds).
    ac_timeo: float = 3.0
    #: Grant NFSv4 read delegations to read-only opens with no
    #: conflicting writers (served locally on reopen until recalled).
    delegations: bool = True
    #: Client lease duration (state is discarded when it lapses).
    lease_time: float = 90.0
    #: App↔page-cache memcpy cost charged on the client (s/byte).
    client_copy_per_byte: float = 1.0e-9
    #: RPC fault-layer knobs.  ``rpc_timeout`` is the first attempt's
    #: client-side timer; 0 (the default) disables timeouts entirely —
    #: calls wait forever, the pre-fault-layer behaviour, so calibrated
    #: experiments are bit-identical unless a config opts in.  With a
    #: timeout, retransmissions back off by ``rpc_backoff`` up to
    #: ``rpc_max_timeout``, and after ``rpc_max_retries`` retries the
    #: call raises :class:`repro.rpc.RpcTimeout`.  Retransmission is
    #: exactly-once via the session reply cache (repro.nfs.sessions).
    rpc_timeout: float = 0.0
    rpc_max_retries: int = 5
    rpc_backoff: float = 2.0
    rpc_max_timeout: float = 30.0
    #: Direct-pNFS failover: how long (seconds) a failed data server is
    #: blacklisted before the client re-probes the direct path.  While
    #: blacklisted, its stripes are proxied through the MDS.
    ds_retry_interval: float = 2.0
    costs: RpcCosts = field(
        default_factory=lambda: RpcCosts(
            client_per_call=30e-6,
            client_per_byte=3.0e-9,
            server_per_call=45e-6,
            server_per_byte=4.0e-9,
        )
    )

    def __post_init__(self):
        if self.rsize < 1 or self.wsize < 1:
            raise ValueError("rsize/wsize must be >= 1")
        if self.server_threads < 1 or self.session_slots < 1:
            raise ValueError("thread/slot counts must be >= 1")
        if self.readahead < 0:
            raise ValueError("readahead must be >= 0")
        if self.rpc_timeout < 0:
            raise ValueError("rpc_timeout must be >= 0 (0 disables)")
        if self.ds_retry_interval <= 0:
            raise ValueError("ds_retry_interval must be positive")
        if self.rpc_timeout > 0:
            # Constructing the policy validates the remaining knobs.
            RpcPolicy(
                timeout=self.rpc_timeout,
                max_retries=self.rpc_max_retries,
                backoff=self.rpc_backoff,
                max_timeout=self.rpc_max_timeout,
            )

    @property
    def rpc_policy(self) -> Optional[RpcPolicy]:
        """The retry policy, or ``None`` when timeouts are disabled."""
        if self.rpc_timeout <= 0:
            return None
        return RpcPolicy(
            timeout=self.rpc_timeout,
            max_retries=self.rpc_max_retries,
            backoff=self.rpc_backoff,
            max_timeout=self.rpc_max_timeout,
        )
