"""NFSv4 / NFSv4.1 substrate.

The control-and-data protocol underlying every NFS-based architecture
in the paper: a server exporting any
:class:`~repro.vfs.api.FileSystemClient` backend
(:mod:`repro.nfs.server` — with delegations, leases, and byte-range
locks in :mod:`repro.nfs.locks`), and a client with the Linux-style
write-back page cache, pipelined readahead, and close-to-open inode
cache (:mod:`repro.nfs.client`, intervals in
:mod:`repro.nfs.intervals`) whose behaviour produces the paper's
small-I/O results.  NFSv4.1 sessions (:mod:`repro.nfs.sessions`) bound
per-client RPC concurrency.
"""

from repro.nfs.config import NfsConfig
from repro.nfs.intervals import IntervalSet
from repro.nfs.locks import LockConflict, LockManager
from repro.nfs.sessions import Session
from repro.nfs.server import Nfs4Server
from repro.nfs.client import Nfs4Client

__all__ = [
    "IntervalSet",
    "LockConflict",
    "LockManager",
    "Nfs4Client",
    "Nfs4Server",
    "NfsConfig",
    "Session",
]
