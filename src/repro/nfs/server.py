"""NFSv4(.1) server exporting any FileSystemClient backend.

The server is the building block of four of the five architectures:

* **NFSv4**: one server whose backend is a full PVFS2 client;
* **pNFS-3tier** data servers: backends are full PVFS2 clients on
  dedicated nodes;
* **pNFS-2tier** data servers: backends are full PVFS2 clients
  colocated with storage nodes;
* **Direct-pNFS** data servers: backends are *local-only* PVFS2
  conduits (loopback), plus a per-byte loopback copy tax.

Filehandles are the backend's stable object handles; a data server that
receives I/O for a filehandle it has never opened binds it lazily via
the backend's ``open_by_handle`` (how our Direct-pNFS data servers
serve layouts issued by the metadata server, §5).

WRITE honours the prototype's departure from NFSv4 durability (§5):
UNSTABLE writes land in the exported file system's storage-node memory
and reach the platter on COMMIT (client fsync/close) — matching PVFS2
semantics.
"""

from __future__ import annotations

from repro import rpc
from repro.nfs.config import NfsConfig
from repro.rpc import RpcServer
from repro.sim.engine import Simulator
from repro.sim.node import Node
from repro.vfs.api import FileSystemClient, FsError, OpenFile

__all__ = ["Nfs4Server"]


class Nfs4Server:
    """One NFSv4.1 server endpoint on a node."""

    def __init__(
        self,
        sim: Simulator,
        node: Node,
        backend: FileSystemClient,
        cfg: NfsConfig,
        name: str = "",
        loopback_copy_per_byte: float = 0.0,
        extra_read_per_byte: float = 0.0,
        extra_write_per_byte: float = 0.0,
    ):
        self.sim = sim
        self.node = node
        self.backend = backend
        self.cfg = cfg
        self.name = name or f"{node.name}.nfsd"
        #: Extra per-byte CPU charged on data ops — the Direct-pNFS
        #: loopback conduit copy (kernel nfsd ↔ user PVFS2 daemon).
        self.loopback_copy_per_byte = loopback_copy_per_byte
        #: Calibrated gateway surcharges for servers whose backend is a
        #: *full* parallel-FS client (store-and-forward data servers /
        #: standalone NFSv4): extra effective CPU per byte on the read
        #: and write paths beyond what the copy model captures —
        #: request re-buffering, kernel/user crossings, unaligned
        #: stripe handling (see repro.cluster.testbed).
        self.extra_read_per_byte = extra_read_per_byte
        self.extra_write_per_byte = extra_write_per_byte
        # Per-byte path costs are part of the server's streaming
        # pipeline: fold them into the RPC cost model so they overlap
        # the wire (and still consume this node's CPU).
        from dataclasses import replace

        costs = replace(
            cfg.costs,
            server_per_byte_in=cfg.costs.per_byte_in
            + loopback_copy_per_byte
            + extra_write_per_byte,
            server_per_byte_out=cfg.costs.per_byte_out
            + loopback_copy_per_byte
            + extra_read_per_byte,
        )
        self.rpc = RpcServer(sim, node, self.name, costs, threads=cfg.server_threads)
        self._open_files: dict[object, OpenFile] = {}
        self._next_stateid = 1
        # NFSv4 open/delegation state: read delegations are granted to
        # read-only opens with no conflicting writer, held per client
        # callback endpoint, and recalled (CB_RECALL) when a writer
        # appears.  Lease bookkeeping tracks per-client liveness.
        self._read_delegations: dict[object, dict[object, int]] = {}  # fh -> {cb: stateid}
        self._write_opens: dict[object, int] = {}
        self._lease_seen: dict[object, float] = {}  # cb -> last renewal
        self.delegations_granted = 0
        self.delegations_recalled = 0
        from repro.nfs.locks import LockManager

        self.locks = LockManager()
        for proc, handler in [
            ("mount", self._h_mount),
            ("lookup", self._h_lookup),
            ("open", self._h_open),
            ("close", self._h_close),
            ("read", self._h_read),
            ("write", self._h_write),
            ("commit", self._h_commit),
            ("getattr", self._h_getattr),
            ("setattr", self._h_setattr),
            ("mkdir", self._h_mkdir),
            ("readdir", self._h_readdir),
            ("remove", self._h_remove),
            ("rename", self._h_rename),
            ("truncate", self._h_truncate),
            ("delegreturn", self._h_delegreturn),
            ("renew", self._h_renew),
            ("lock", self._h_lock),
            ("unlock", self._h_unlock),
            ("lockt", self._h_lockt),
        ]:
            self.rpc.register(proc, handler)

    # -- backend plumbing ---------------------------------------------------
    def _file(self, fh):
        """Bind a filehandle to a backend open file, lazily."""
        f = self._open_files.get(fh)
        if f is None:
            f = yield from self.backend.open_by_handle(fh)
            self._open_files[fh] = f
        return f


    # -- handlers -------------------------------------------------------------
    def _h_mount(self, args, payload):
        info = yield from self.backend.mount()
        return {"root": info.get("root", 1)}, None

    def _h_lookup(self, args, payload):
        attrs = yield from self.backend.getattr(args["path"])
        fh = None
        if not attrs.is_dir:
            f = yield from self.backend.open(args["path"])
            self._open_files[f.handle] = f
            fh = f.handle
        return {"fh": fh, "attrs": attrs}, None

    def _h_open(self, args, payload):
        path, create = args["path"], args.get("create", False)
        write = bool(args.get("write", True)) or create
        callback = args.get("callback")
        if callback is not None:
            self._lease_seen[callback] = self.sim.now
        if create:
            f = yield from self.backend.create(path)
            attrs = None
        else:
            f = yield from self.backend.open(path, write=write)
            attrs = None
        self._open_files[f.handle] = f
        stateid = self._next_stateid
        self._next_stateid += 1
        if args.get("want_attrs", True):
            attrs = yield from self.backend.getattr(path)
        # Authorization on the control path (NFSv4 ACLs / mode bits,
        # §3.1): the data path inherits this decision via the stateid.
        cred = args.get("cred")
        if cred is not None and attrs is not None and not create:
            from repro.vfs.security import READ, WRITE, check_access

            check_access(attrs, cred, args.get("access", READ | WRITE))

        delegation = None
        if write:
            # A writer conflicts with outstanding read delegations.
            yield from self.recall_read_delegations(f.handle, exclude=callback)
            self._write_opens[f.handle] = self._write_opens.get(f.handle, 0) + 1
        elif (
            self.cfg.delegations
            and callback is not None
            and not self._write_opens.get(f.handle)
        ):
            holders = self._read_delegations.setdefault(f.handle, {})
            if callback not in holders:
                holders[callback] = stateid
                self.delegations_granted += 1
            delegation = {"type": "read", "stateid": holders[callback]}
        return {
            "fh": f.handle,
            "stateid": stateid,
            "attrs": attrs,
            "write": write,
            "delegation": delegation,
        }, None

    def _h_close(self, args, payload):
        f = self._open_files.get(args["fh"])
        if args.get("write"):
            count = self._write_opens.get(args["fh"], 0) - 1
            if count > 0:
                self._write_opens[args["fh"]] = count
            else:
                self._write_opens.pop(args["fh"], None)
        if f is not None:
            yield from self.backend.close(f)
        return None, None

    def _h_delegreturn(self, args, payload):
        holders = self._read_delegations.get(args["fh"], {})
        holders.pop(args.get("callback"), None)
        return None, None
        yield  # pragma: no cover

    def _h_renew(self, args, payload):
        self._lease_seen[args["callback"]] = self.sim.now
        return {"lease_time": self.cfg.lease_time}, None
        yield  # pragma: no cover

    # -- byte-range locks (NFSv4 LOCK / LOCKU / LOCKT) ----------------------
    def _h_lock(self, args, payload):
        granted = self.locks.lock(
            args["fh"], args["owner"], args["start"], args["end"], args["kind"]
        )
        return {"granted": (granted.start, granted.end, granted.kind)}, None
        yield  # pragma: no cover

    def _h_unlock(self, args, payload):
        freed = self.locks.unlock(args["fh"], args["owner"], args["start"], args["end"])
        return {"freed": freed}, None
        yield  # pragma: no cover

    def _h_lockt(self, args, payload):
        conflict = self.locks.test(
            args["fh"], args["owner"], args["start"], args["end"], args["kind"]
        )
        info = None
        if conflict is not None:
            info = {
                "start": conflict.start,
                "end": conflict.end,
                "kind": conflict.kind,
            }
        return {"conflict": info}, None
        yield  # pragma: no cover

    # -- delegation / lease state machinery ---------------------------------
    def _cb_call(self, callback, proc, args):
        """Backchannel RPC with the server's bounded retry budget.

        A client that cannot be reached must not park server-side work
        forever: the state being recalled is already revoked in the
        server's tables, so when the callback exhausts its retries the
        revocation simply stands.
        """
        try:
            yield from rpc.call(
                self.node, callback, proc, args, policy=self.cfg.rpc_policy
            )
        except (rpc.RpcTimeout, FsError):
            pass

    def recall_read_delegations(self, fh, exclude=None):
        """Generator: CB_RECALL outstanding read delegations on ``fh``.

        The holder drops its delegation while answering the callback
        (recall-on-reply — the DELEGRETURN exchange folded into one
        round trip for simplicity).  ``exclude`` skips the requester's
        own callback endpoint: its delegation is simply discarded.
        """
        holders = self._read_delegations.get(fh)
        if not holders:
            return
        procs = []
        for cb, stateid in list(holders.items()):
            if cb is exclude:
                del holders[cb]
                continue
            procs.append(
                self.sim.process(
                    self._cb_call(
                        cb, "cb_recall_delegation", {"fh": fh, "stateid": stateid}
                    )
                )
            )
            del holders[cb]
            self.delegations_recalled += 1
        if procs:
            yield self.sim.all_of(procs)

    def expire_client(self, callback) -> int:
        """Drop all state of a client whose lease lapsed; returns the
        number of delegations discarded (no callbacks — it is gone)."""
        dropped = 0
        for holders in self._read_delegations.values():
            if holders.pop(callback, None) is not None:
                dropped += 1
        # Lock owners are (callback, tag) pairs: drop the client's locks.
        for fh in list(self.locks._locks):
            for lock in list(self.locks.held(fh)):
                if isinstance(lock.owner, tuple) and lock.owner[0] is callback:
                    dropped += self.locks.release_owner(lock.owner)
        self._lease_seen.pop(callback, None)
        return dropped

    def lease_expired(self, callback) -> bool:
        """True if the client has not renewed within the lease time."""
        last = self._lease_seen.get(callback)
        return last is not None and self.sim.now - last > self.cfg.lease_time

    def _h_read(self, args, payload):
        fh, offset, nbytes = args["fh"], args["offset"], args["nbytes"]
        f = yield from self._file(fh)
        data = yield from self.backend.read(f, offset, nbytes)
        return {"count": data.nbytes, "eof": data.nbytes < nbytes}, data

    def _h_write(self, args, payload):
        fh, offset = args["fh"], args["offset"]
        assert payload is not None
        f = yield from self._file(fh)
        count = yield from self.backend.write(f, offset, payload)
        stable = args.get("stable", False)
        if stable:
            yield from self.backend.fsync(f)
        return {"count": count, "committed": stable}, None

    def _h_commit(self, args, payload):
        f = yield from self._file(args["fh"])
        yield from self.backend.fsync(f)
        return None, None

    def _h_getattr(self, args, payload):
        if "fh" in args and args["fh"] is not None:
            attrs = yield from self.backend.getattr_handle(args["fh"])
        else:
            attrs = yield from self.backend.getattr(args["path"])
        return {"attrs": attrs}, None

    def _h_setattr(self, args, payload):
        attrs = yield from self.backend.setattr(args["path"], mode=args.get("mode"))
        return {"attrs": attrs}, None

    def _h_mkdir(self, args, payload):
        yield from self.backend.mkdir(args["path"])
        return None, None

    def _h_readdir(self, args, payload):
        names = yield from self.backend.readdir(args["path"])
        return {"names": names}, None

    def _h_remove(self, args, payload):
        yield from self.backend.remove(args["path"])
        return None, None

    def _h_rename(self, args, payload):
        yield from self.backend.rename(args["old"], args["new"])
        return None, None

    def _h_truncate(self, args, payload):
        path = args["path"]
        # A truncate conflicts with outstanding read delegations exactly
        # as a writer OPEN does: holders could otherwise keep serving
        # stale size and pre-truncate pages locally.  Filehandles are
        # resolved through the open-file table (a delegation can only
        # exist for a file this server has opened).
        # Recalls are fired *without blocking the truncate*: a recall is
        # a backchannel round trip that can outlive this client's RPC
        # patience, and a handler parked on it would be abandoned and
        # re-executed on retransmission — an exactly-once violation the
        # torture harness caught.  Real servers answer the conflicting
        # op with NFS4ERR_DELAY rather than blocking; firing the recall
        # asynchronously models the same non-blocking property.
        for fh, f in list(self._open_files.items()):
            if f.path == path and self._read_delegations.get(fh):
                self.sim.process(
                    self.recall_read_delegations(
                        fh, exclude=args.get("callback")
                    ),
                    name=f"{self.name}.truncate-recall",
                )
        yield from self.backend.truncate(path, args["size"])
        # Reply with post-truncate attributes so the client can refresh
        # its attribute cache deterministically (size and bumped mtime)
        # instead of waiting out ac_timeo on a stale entry.
        attrs = yield from self.backend.getattr(path)
        return {"attrs": attrs}, None
