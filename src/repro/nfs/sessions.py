"""NFSv4.1 sessions, slot tables, and the reply cache.

A session's slot table bounds the number of outstanding requests a
client may have at a server — the NFSv4.1 flow-control mechanism that
replaces NFSv4's unbounded async RPC.  Every client RPC (including
write-back and readahead traffic) holds a slot for its duration.

The slot table's second job (RFC 5661 §2.10.6) is **exactly-once
semantics**: each request carries a per-session sequence id, and the
server caches the reply it sent for each sequence id until the client
retires it.  A retransmitted request whose original execution already
completed is answered from the cache instead of re-running the
operation — the mechanism that makes retrying non-idempotent ops
(WRITE, LAYOUTCOMMIT) safe.  This object models both halves: the
client-side slot table and the server-side reply cache for this
client↔server pairing (:func:`repro.rpc.call` consults it via the
``session``/``seq`` arguments).
"""

from __future__ import annotations

import itertools
from typing import Any, Optional

from repro.sim.engine import Simulator
from repro.sim.resources import Resource

__all__ = ["Session"]


class Session:
    """One client↔server NFSv4.1 session."""

    #: Process-wide instrumentation switch (torture harness): when True,
    #: sessions record how many times each sequence id actually executed
    #: server-side, so an invariant checker can prove exactly-once.  Off
    #: by default — benchmarks pay nothing.
    TRACK_EXECUTIONS = False

    def __init__(self, sim: Simulator, slots: int, name: str = ""):
        # Session ids come from the simulation's own id stream, so a
        # replayed run hands out identical ids no matter how many other
        # simulations ran earlier in this process.
        self.sessionid = sim.next_id("session")
        self.slots = Resource(sim, slots, name=name or f"session{self.sessionid}")
        self.highest_used = 0
        self._seq = itertools.count(1)
        #: Server-side reply cache: seq -> (result, reply_payload, error).
        self._replay: dict[int, tuple] = {}
        #: Reply-cache hits observed on this session.
        self.replays = 0
        #: Executions per seq (only populated when ``TRACK_EXECUTIONS``).
        self.executed: dict[int, int] = {}
        #: Sequence ids the server ran more than once — an exactly-once
        #: violation (the reply cache failed to suppress a retransmitted
        #: non-idempotent op).
        self.duplicate_executions = 0

    # -- slot table --------------------------------------------------------
    def slot(self):
        """Acquire event for one slot; caller must release via ``done``."""
        ev = self.slots.acquire()
        # Sample occupancy when the slot is *granted*, not when the
        # acquire is merely requested: a queued request has not raised
        # occupancy yet, and a grant abandoned by an interrupted waiter
        # is returned (urgent interrupts process before the grant's own
        # callbacks) before this callback samples — so highest_used
        # reports slots that were actually held.
        ev.add_callback(self._note_grant)
        return ev

    def _note_grant(self, _ev) -> None:
        self.highest_used = max(self.highest_used, self.slots.in_use)

    def done(self) -> None:
        """Return a slot."""
        self.slots.release()

    # -- reply cache -------------------------------------------------------
    def next_seq(self) -> int:
        """Allocate a sequence id for one logical request (all of its
        retransmissions carry the same id)."""
        return next(self._seq)

    def note_execution(self, seq: int) -> None:
        """The server is about to *execute* (not replay) ``seq``."""
        if not Session.TRACK_EXECUTIONS:
            return
        n = self.executed.get(seq, 0) + 1
        self.executed[seq] = n
        if n > 1:
            self.duplicate_executions += 1

    def cache_reply(
        self, seq: int, result: Any, payload: Any, error: Optional[Exception]
    ) -> None:
        """Record the reply sent for ``seq`` (error replies included —
        RFC 5661 caches those too)."""
        self._replay[seq] = (result, payload, error)

    def cached_reply(self, seq: int) -> Optional[tuple]:
        """The cached reply for ``seq``, or ``None`` if this is the
        first execution the server sees.  A hit means the request is a
        retransmission of an already-executed operation."""
        hit = self._replay.get(seq)
        if hit is not None:
            self.replays += 1
        return hit

    def retire(self, seq: int) -> None:
        """The client received the reply for ``seq``: the server may
        drop its cache entry (slot-reuse advances the cache window)."""
        self._replay.pop(seq, None)
