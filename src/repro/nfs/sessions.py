"""NFSv4.1 sessions and slot tables.

A session's slot table bounds the number of outstanding requests a
client may have at a server — the NFSv4.1 flow-control mechanism that
replaces NFSv4's unbounded async RPC.  Every client RPC (including
write-back and readahead traffic) holds a slot for its duration.
"""

from __future__ import annotations

import itertools

from repro.sim.engine import Simulator
from repro.sim.resources import Resource

__all__ = ["Session"]

_session_ids = itertools.count(1)


class Session:
    """One client↔server NFSv4.1 session."""

    def __init__(self, sim: Simulator, slots: int, name: str = ""):
        self.sessionid = next(_session_ids)
        self.slots = Resource(sim, slots, name=name or f"session{self.sessionid}")
        self.highest_used = 0

    def slot(self):
        """Acquire event for one slot; caller must release via ``done``."""
        ev = self.slots.acquire()
        self.highest_used = max(self.highest_used, self.slots.in_use)
        return ev

    def done(self) -> None:
        """Return a slot."""
        self.slots.release()
