"""Half-open interval sets over byte ranges.

The NFSv4 client's page cache tracks which byte ranges of a file are
*valid* (cached) and which are *dirty* (written but not yet on the
server) as interval sets.  Intervals are ``[start, end)`` pairs kept
sorted and coalesced.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right

__all__ = ["IntervalSet"]


class IntervalSet:
    """Sorted, coalesced set of half-open integer intervals."""

    __slots__ = ("_ivs",)

    def __init__(self):
        self._ivs: list[tuple[int, int]] = []

    def __bool__(self) -> bool:
        return bool(self._ivs)

    def __len__(self) -> int:
        return len(self._ivs)

    def __iter__(self):
        return iter(self._ivs)

    @property
    def total(self) -> int:
        """Total bytes covered."""
        return sum(e - s for s, e in self._ivs)

    @property
    def span(self) -> tuple[int, int]:
        """(min start, max end) or (0, 0) when empty."""
        if not self._ivs:
            return (0, 0)
        return (self._ivs[0][0], self._ivs[-1][1])

    def add(self, start: int, end: int) -> None:
        """Insert ``[start, end)``, merging overlapping/adjacent intervals."""
        if start >= end:
            return
        ivs = self._ivs
        # Find all intervals touching [start, end] (adjacency merges too).
        lo = bisect_left(ivs, (start,)) if ivs else 0
        # Step back if the previous interval reaches start.
        if lo > 0 and ivs[lo - 1][1] >= start:
            lo -= 1
        hi = lo
        while hi < len(ivs) and ivs[hi][0] <= end:
            start = min(start, ivs[hi][0])
            end = max(end, ivs[hi][1])
            hi += 1
        ivs[lo:hi] = [(start, end)]

    def remove(self, start: int, end: int) -> None:
        """Delete coverage of ``[start, end)``; splits as needed."""
        if start >= end or not self._ivs:
            return
        out: list[tuple[int, int]] = []
        for s, e in self._ivs:
            if e <= start or s >= end:
                out.append((s, e))
                continue
            if s < start:
                out.append((s, start))
            if e > end:
                out.append((end, e))
        self._ivs = out

    def covers(self, start: int, end: int) -> bool:
        """True if ``[start, end)`` is fully covered."""
        if start >= end:
            return True
        idx = bisect_right(self._ivs, (start, float("inf"))) - 1
        if idx < 0:
            return False
        s, e = self._ivs[idx]
        return s <= start and e >= end

    def gaps(self, start: int, end: int) -> list[tuple[int, int]]:
        """Sub-ranges of ``[start, end)`` *not* covered."""
        out: list[tuple[int, int]] = []
        pos = start
        for s, e in self._ivs:
            if e <= start:
                continue
            if s >= end:
                break
            if s > pos:
                out.append((pos, min(s, end)))
            pos = max(pos, e)
            if pos >= end:
                break
        if pos < end:
            out.append((pos, end))
        return out

    def runs_in(self, start: int, end: int) -> list[tuple[int, int]]:
        """Covered sub-ranges of ``[start, end)``."""
        out = []
        for s, e in self._ivs:
            lo, hi = max(s, start), min(e, end)
            if lo < hi:
                out.append((lo, hi))
        return out

    def copy(self) -> "IntervalSet":
        dup = IntervalSet()
        dup._ivs = list(self._ivs)
        return dup
