"""Half-open interval sets over byte ranges.

The NFSv4 client's page cache tracks which byte ranges of a file are
*valid* (cached) and which are *dirty* (written but not yet on the
server) as interval sets.  Intervals are ``[start, end)`` pairs kept
sorted and coalesced.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right

__all__ = ["IntervalSet"]


class IntervalSet:
    """Sorted, coalesced set of half-open integer intervals."""

    __slots__ = ("_ivs",)

    def __init__(self):
        self._ivs: list[tuple[int, int]] = []

    def __bool__(self) -> bool:
        return bool(self._ivs)

    def __len__(self) -> int:
        return len(self._ivs)

    def __iter__(self):
        return iter(self._ivs)

    @property
    def total(self) -> int:
        """Total bytes covered."""
        return sum(e - s for s, e in self._ivs)

    @property
    def span(self) -> tuple[int, int]:
        """(min start, max end) or (0, 0) when empty."""
        if not self._ivs:
            return (0, 0)
        return (self._ivs[0][0], self._ivs[-1][1])

    def add(self, start: int, end: int) -> None:
        """Insert ``[start, end)``, merging overlapping/adjacent intervals."""
        if start >= end:
            return
        ivs = self._ivs
        # Find all intervals touching [start, end] (adjacency merges too).
        lo = bisect_left(ivs, (start,)) if ivs else 0
        # Step back if the previous interval reaches start.
        if lo > 0 and ivs[lo - 1][1] >= start:
            lo -= 1
        hi = lo
        while hi < len(ivs) and ivs[hi][0] <= end:
            start = min(start, ivs[hi][0])
            end = max(end, ivs[hi][1])
            hi += 1
        ivs[lo:hi] = [(start, end)]

    def remove(self, start: int, end: int) -> None:
        """Delete coverage of ``[start, end)``; splits as needed.

        Like :meth:`add`, the touched run is located with ``bisect`` and
        replaced with one slice splice — O(log n + k) for k affected
        intervals, instead of rebuilding the whole list.
        """
        if start >= end or not self._ivs:
            return
        ivs = self._ivs
        lo = bisect_left(ivs, (start,))
        # The preceding interval may reach into [start, end).
        if lo > 0 and ivs[lo - 1][1] > start:
            lo -= 1
        hi = lo
        n = len(ivs)
        repl: list[tuple[int, int]] = []
        while hi < n and ivs[hi][0] < end:
            s, e = ivs[hi]
            if s < start:
                repl.append((s, start))
            if e > end:
                repl.append((end, e))
            hi += 1
        if hi > lo:
            ivs[lo:hi] = repl

    def _first_overlapping(self, start: int) -> int:
        """Index of the first interval with ``end > start``."""
        ivs = self._ivs
        i = bisect_right(ivs, (start, float("inf"))) - 1
        if i < 0 or ivs[i][1] <= start:
            i += 1
        return i

    def covers(self, start: int, end: int) -> bool:
        """True if ``[start, end)`` is fully covered."""
        if start >= end:
            return True
        idx = bisect_right(self._ivs, (start, float("inf"))) - 1
        if idx < 0:
            return False
        s, e = self._ivs[idx]
        return s <= start and e >= end

    def gaps(self, start: int, end: int) -> list[tuple[int, int]]:
        """Sub-ranges of ``[start, end)`` *not* covered.

        Starts at the first overlapping interval (bisect) rather than
        scanning from index 0 — this is on the per-read/per-write hot
        path of the NFS client's page cache.
        """
        out: list[tuple[int, int]] = []
        if start >= end:
            return out
        ivs = self._ivs
        pos = start
        n = len(ivs)
        i = self._first_overlapping(start)
        while i < n:
            s, e = ivs[i]
            if s >= end:
                break
            if s > pos:
                out.append((pos, s))
            pos = e
            if pos >= end:
                break
            i += 1
        if pos < end:
            out.append((pos, end))
        return out

    def runs_in(self, start: int, end: int) -> list[tuple[int, int]]:
        """Covered sub-ranges of ``[start, end)`` (bisect-located)."""
        out: list[tuple[int, int]] = []
        if start >= end:
            return out
        ivs = self._ivs
        n = len(ivs)
        i = self._first_overlapping(start)
        while i < n:
            s, e = ivs[i]
            if s >= end:
                break
            lo = s if s > start else start
            hi = e if e < end else end
            if lo < hi:
                out.append((lo, hi))
            i += 1
        return out

    def copy(self) -> "IntervalSet":
        dup = IntervalSet()
        dup._ivs = list(self._ivs)
        return dup
