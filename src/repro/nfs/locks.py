"""NFSv4 byte-range locks.

Part of the NFSv4 access-transparency story (§3.2): applications get
*one* advisory byte-range locking model across every exported parallel
file system, instead of each parallel FS's own (or missing) lock
manager.  The server arbitrates; lock state lives with the client's
lease like all other NFSv4 state.

The manager implements POSIX-style advisory semantics: shared (read)
locks coexist; exclusive (write) locks conflict with everything
overlapping; locks are per (owner, fh) and unlock may split ranges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.vfs.api import FsError

__all__ = ["LockConflict", "LockManager", "LockRange", "READ_LT", "WRITE_LT"]

READ_LT = "read"
WRITE_LT = "write"


class LockConflict(FsError):
    """Requested range conflicts with a lock held by another owner."""


@dataclass(frozen=True)
class LockRange:
    """One granted lock: [start, end) held by ``owner``."""

    owner: object
    start: int
    end: int
    kind: str

    def overlaps(self, start: int, end: int) -> bool:
        return self.start < end and start < self.end


#: Shared empty table returned to read-only paths: querying a never-
#: locked filehandle must not materialise per-fh state.
_NO_LOCKS: tuple = ()


class LockManager:
    """Per-filehandle byte-range lock tables.

    Tables exist only while at least one lock is held on the
    filehandle: read paths (``test``/``held``) never create one, and
    ``unlock``/``release_owner`` prune tables they empty — otherwise
    open/lock/close churn over a server's lifetime grows ``_locks``
    without bound.
    """

    def __init__(self):
        self._locks: dict[object, list[LockRange]] = {}
        self.granted = 0
        self.conflicts = 0

    def _table(self, fh):
        """Read-only view of the locks on ``fh`` (never mutates)."""
        return self._locks.get(fh, _NO_LOCKS)

    def _store(self, fh, table: list[LockRange]) -> None:
        """Replace ``fh``'s table, dropping it when it emptied."""
        if table:
            self._locks[fh] = table
        else:
            self._locks.pop(fh, None)

    @staticmethod
    def _validate(start: int, end: int, kind: str) -> None:
        if start < 0 or end <= start:
            raise ValueError(f"bad lock range [{start}, {end})")
        if kind not in (READ_LT, WRITE_LT):
            raise ValueError(f"unknown lock type {kind!r}")

    def test(self, fh, owner, start: int, end: int, kind: str):
        """Return the first conflicting lock, or None (NFSv4 LOCKT)."""
        self._validate(start, end, kind)
        for lock in self._table(fh):
            if lock.owner == owner or not lock.overlaps(start, end):
                continue
            if kind == WRITE_LT or lock.kind == WRITE_LT:
                return lock
        return None

    def lock(self, fh, owner, start: int, end: int, kind: str) -> LockRange:
        """Grant [start, end) to ``owner`` or raise :class:`LockConflict`.

        An owner's own overlapping locks are upgraded/merged: the new
        range replaces the overlapped parts of its previous locks.
        """
        conflict = self.test(fh, owner, start, end, kind)
        if conflict is not None:
            self.conflicts += 1
            raise LockConflict(
                f"[{start},{end}) {kind} conflicts with {conflict.kind} "
                f"[{conflict.start},{conflict.end}) held by {conflict.owner!r}"
            )
        # Carve the owner's own overlapping locks out of the new range.
        remaining: list[LockRange] = []
        for lock in self._table(fh):
            if lock.owner != owner or not lock.overlaps(start, end):
                remaining.append(lock)
                continue
            if lock.start < start:
                remaining.append(LockRange(owner, lock.start, start, lock.kind))
            if lock.end > end:
                remaining.append(LockRange(owner, end, lock.end, lock.kind))
        granted = LockRange(owner, start, end, kind)
        remaining.append(granted)
        self._locks[fh] = remaining
        self.granted += 1
        return granted

    def unlock(self, fh, owner, start: int, end: int) -> int:
        """Release the owner's coverage of [start, end); returns bytes freed."""
        if start < 0 or end <= start:
            raise ValueError(f"bad unlock range [{start}, {end})")
        freed = 0
        remaining: list[LockRange] = []
        for lock in self._table(fh):
            if lock.owner != owner or not lock.overlaps(start, end):
                remaining.append(lock)
                continue
            freed += min(lock.end, end) - max(lock.start, start)
            if lock.start < start:
                remaining.append(LockRange(owner, lock.start, start, lock.kind))
            if lock.end > end:
                remaining.append(LockRange(owner, end, lock.end, lock.kind))
        self._store(fh, remaining)
        return freed

    def release_owner(self, owner) -> int:
        """Drop every lock of ``owner`` (close / lease expiry); returns count."""
        dropped = 0
        for fh, table in list(self._locks.items()):
            kept = [lock for lock in table if lock.owner != owner]
            dropped += len(table) - len(kept)
            self._store(fh, kept)
        return dropped

    def held(self, fh) -> Iterable[LockRange]:
        """Snapshot of the locks on ``fh``."""
        return tuple(self._table(fh))

    @property
    def table_count(self) -> int:
        """Number of per-filehandle tables currently materialised."""
        return len(self._locks)

    def snapshot(self) -> dict:
        """Immutable snapshot of every table (invariant checkers)."""
        return {fh: tuple(table) for fh, table in self._locks.items()}
