"""NFSv4.1 client with Linux-style page cache behaviour.

Two mechanisms here produce the paper's headline small-I/O results:

* the **write-back cache**: application writes land in the client page
  cache and are pushed asynchronously in wsize-sized WRITE RPCs, so an
  8 KB-block workload generates the same wire traffic as a 2 MB-block
  workload (Figures 6d/6e);
* **readahead**: sequential read streams trigger asynchronous window
  prefetches, so small sequential reads are served from cache
  (Figures 7c/7d).

Durability follows the prototype (§5): dirty data is committed with
COMMIT only on ``fsync``/``close``.

The I/O path is factored through ``_io_read`` / ``_io_write`` /
``_io_commit`` so the pNFS client can reroute it through a layout to
the data servers while reusing the entire cache machinery — pNFS
"leverages the strengths of NFSv4.1 to improve I/O performance over
the entire range of I/O workloads" (§1.1).
"""

from __future__ import annotations

from typing import Optional

from repro import rpc
from repro.nfs.config import NfsConfig
from repro.nfs.intervals import IntervalSet
from repro.nfs.server import Nfs4Server
from repro.nfs.sessions import Session
from repro.obs import spans as obs_spans
from repro.sim.engine import Simulator
from repro.sim.node import Node
from repro.vfs.api import FileSystemClient, FsError, OpenFile, Payload
from repro.vfs.filedata import FileData

__all__ = ["Nfs4Client"]


class Nfs4Client(FileSystemClient):
    """Application-facing NFSv4.1 client bound to one node."""

    label = "nfsv4"

    def __init__(
        self,
        sim: Simulator,
        node: Node,
        server: Nfs4Server,
        cfg: NfsConfig,
        cred=None,
    ):
        self.sim = sim
        self.node = node
        self.server = server
        self.cfg = cfg
        #: RPCSEC_GSS principal presented on opens (None = trusted root).
        self.cred = cred
        self._sessions: dict[object, Session] = {}
        self._attr_cache: dict[str, tuple[object, float]] = {}
        #: Per-inode page cache retained across open/close, revalidated
        #: close-to-open style on the next open (Linux NFS behaviour —
        #: the reason repeated header reads during a build are free).
        self._inode_cache: dict[object, dict] = {}
        #: Live open files by path: the set truncate/remove/rename must
        #: reach to invalidate per-open page-cache state (Linux: those
        #: ops act on the inode, which every open fd shares).
        self._open_paths: dict[str, list[OpenFile]] = {}
        #: NFSv4 backchannel: delegation recalls (and, in the pNFS
        #: subclass, layout recalls) arrive here.
        from repro.rpc import RpcServer

        self._cb = RpcServer(sim, node, f"{node.name}.nfs4-cb", cfg.costs, threads=2)
        self._cb.register("cb_recall_delegation", self._h_cb_recall_delegation)
        #: Read delegations held: path -> {"fh", "attrs"} — a reopen for
        #: read is served locally, no OPEN round trip.
        self._delegations: dict[str, dict] = {}
        self.bytes_read = 0
        self.bytes_written = 0
        # -- page-cache observability (plain ints: free when unobserved) --
        #: Bytes served from already-valid pages vs fetched on demand.
        self.cache_hit_bytes = 0
        self.cache_miss_bytes = 0
        #: Bytes prefetched vs later consumed by a read; the difference
        #: is readahead waste (fetched but never read).
        self.readahead_issued_bytes = 0
        self.readahead_used_bytes = 0
        #: Asynchronous write-backs that failed (the error is latched on
        #: the open file and surfaced at the next fsync/close).
        self.writeback_errors = 0

    @property
    def readahead_wasted_bytes(self) -> int:
        """Prefetched bytes no read has (yet) consumed."""
        return self.readahead_issued_bytes - self.readahead_used_bytes

    # -- RPC plumbing ------------------------------------------------------
    def _session_for(self, server: Nfs4Server) -> Session:
        sess = self._sessions.get(server)
        if sess is None:
            sess = Session(
                self.sim,
                self.cfg.session_slots,
                name=f"{self.node.name}->{server.name}",
            )
            self._sessions[server] = sess
        return sess

    def _call(self, proc: str, args: dict, payload=None, server: Optional[Nfs4Server] = None):
        server = server or self.server
        session = self._session_for(server)
        policy = self.cfg.rpc_policy
        # With the fault layer on, each logical call gets a session
        # sequence id so retransmissions of non-idempotent ops replay
        # the cached reply instead of re-executing (exactly-once).
        seq = session.next_seq() if policy is not None else None
        yield session.slot()
        try:
            result = yield from rpc.call(
                self.node,
                server.rpc,
                proc,
                args,
                payload=payload,
                policy=policy,
                session=session if policy is not None else None,
                seq=seq,
            )
        finally:
            session.done()
        return result

    # -- I/O hooks (overridden by the pNFS client) ---------------------------
    def _io_read(self, f: OpenFile, offset: int, nbytes: int):
        """One wire READ ≤ rsize; returns (result dict, payload)."""
        return (
            yield from self._call(
                "read", {"fh": f.state["fh"], "offset": offset, "nbytes": nbytes}
            )
        )

    def _io_write(self, f: OpenFile, offset: int, payload: Payload):
        """One wire WRITE ≤ wsize; returns (result dict, payload)."""
        return (
            yield from self._call(
                "write", {"fh": f.state["fh"], "offset": offset}, payload=payload
            )
        )

    def _io_commit(self, f: OpenFile):
        """COMMIT cached writes to stable storage."""
        yield from self._call("commit", {"fh": f.state["fh"]})

    def _post_open(self, f: OpenFile):
        """pNFS hook: fetch a layout after OPEN.  No-op for plain NFSv4."""
        return None
        yield  # pragma: no cover

    # -- open-file state ---------------------------------------------------
    def _register_open(self, f: OpenFile) -> None:
        self._open_paths.setdefault(f.path, []).append(f)

    def _unregister_open(self, f: OpenFile) -> None:
        siblings = self._open_paths.get(f.path)
        if siblings and f in siblings:
            siblings.remove(f)
            if not siblings:
                del self._open_paths[f.path]

    def _live_opens(self, path: str) -> list[OpenFile]:
        return [f for f in self._open_paths.get(path, []) if not f.closed]

    def _evict_inode_cache(self, path: str) -> None:
        """Drop retained pages for ``path`` — its inode is gone (remove)
        or was replaced (rename-over): a recreated file must never adopt
        the dead file's cache on a close-to-open size/mtime match."""
        for fh in [
            fh for fh, e in self._inode_cache.items() if e.get("path") == path
        ]:
            del self._inode_cache[fh]

    def _init_state(self, f: OpenFile, fh, size: int, attrs=None) -> None:
        cache, valid = FileData(), IntervalSet()
        dirty, commit_needed = IntervalSet(), False
        entry = self._inode_cache.get(fh)
        if entry is not None and entry.get("dirty"):
            # Unflushed dirty pages (a previous close's flush failed and
            # re-dirtied them) pin the whole page cache: revalidation
            # must not discard data the client still owes the server.
            cache, valid = entry["cache"], entry["valid"]
            dirty = entry.pop("dirty")
            commit_needed = entry.pop("commit_needed", False)
            # An unflushed extending write makes the server size stale.
            size = max(size, entry["size"])
        elif entry is not None and attrs is not None:
            # Close-to-open revalidation: reuse the cached pages when
            # the attributes say the file has not changed.  When this
            # client wrote the file itself, the server mtime is unknown
            # to it, so size match is the (weakly consistent, Linux-
            # faithful) criterion.
            same_size = attrs.size == entry["size"]
            mtime_ok = entry["own_writes"] or attrs.mtime == entry["mtime"]
            if same_size and mtime_ok:
                cache, valid = entry["cache"], entry["valid"]
        f.state.update(
            fh=fh,
            size=size,
            cache=cache,
            valid=valid,
            dirty=dirty,
            flushing=IntervalSet(),
            inflight=[],
            ra=[],
            ra_issued=IntervalSet(),
            wb_error=None,
            commit_needed=commit_needed,
            last_read_end=None,
            open_mtime=attrs.mtime if attrs is not None else None,
            wrote=False,
            trunc_gen=0,
        )

    # -- FileSystemClient ----------------------------------------------------
    def mount(self):
        result, _ = yield from self._call("mount", {})
        return result

    def create(self, path: str):
        result, _ = yield from self._call("open", {"path": path, "create": True})
        f = OpenFile(path=path, handle=result["fh"], client=self)
        self._init_state(f, result["fh"], 0)
        self._register_open(f)
        self._attr_cache.pop(path, None)
        yield from self._post_open(f)
        return f

    def _h_cb_recall_delegation(self, args, payload):
        """Backchannel: surrender the delegation (recall-on-reply)."""
        for path, entry in list(self._delegations.items()):
            if entry["fh"] == args["fh"]:
                del self._delegations[path]
        return None, None
        yield  # pragma: no cover

    def open(self, path: str, write: bool = True):
        if write:
            # A local writer gives up its own read delegation.
            self._delegations.pop(path, None)
        else:
            held = self._delegations.get(path)
            if held is not None:
                # Open served locally under the read delegation: no
                # round trip at all (the Linux NFSv4 fast path).
                f = OpenFile(path=path, handle=held["fh"], client=self, writable=False)
                self._init_state(f, held["fh"], held["attrs"].size, attrs=held["attrs"])
                self._register_open(f)
                yield from self._post_open(f)
                f.state["local_open"] = True
                return f
        result, _ = yield from self._call(
            "open",
            {"path": path, "cred": self.cred, "write": write, "callback": self._cb},
        )
        if result.get("delegation"):
            self._delegations[path] = {"fh": result["fh"], "attrs": result["attrs"]}
        attrs = result["attrs"]
        f = OpenFile(path=path, handle=result["fh"], client=self, writable=write)
        self._init_state(f, result["fh"], attrs.size if attrs else 0, attrs=attrs)
        self._register_open(f)
        f.state["open_write"] = write
        yield from self._post_open(f)
        return f

    # -- reads ----------------------------------------------------------------
    def _fetch_block(self, f: OpenFile, start: int, end: int):
        gen = f.state["trunc_gen"]
        _result, data = yield from self._io_read(f, start, end - start)
        if f.state["trunc_gen"] != gen:
            # The file was truncated while this fetch was on the wire:
            # the bytes predate the cut and must not repopulate pages
            # the truncation just invalidated.
            return
        # The attribute-derived size is authoritative: a short read
        # below it is a sparse hole, zero-filled exactly as the VFS
        # does.  (Servers addressing holes cannot tell them from EOF.)
        want = min(end, f.state["size"]) - start
        if data.nbytes < want:
            pad = want - data.nbytes
            filler = (
                Payload.synthetic(pad)
                if data.is_synthetic and data.nbytes
                else Payload(b"\x00" * pad)
            )
            data = Payload.concat([data, filler])
        if data.nbytes:
            # Never clobber pages dirtied (or being flushed) while this
            # fetch was in flight — page-cache semantics: local
            # modifications win over a concurrently completing read.
            protected = f.state["dirty"].copy()
            for s, e in f.state["flushing"]:
                protected.add(s, e)
            for s, e in protected.gaps(start, start + data.nbytes):
                f.state["cache"].write(s, data.slice(s - start, e - s))
                f.state["valid"].add(s, e)

    def _fetch(self, f: OpenFile, ranges: list[tuple[int, int]]):
        procs = []
        for s, e in ranges:
            pos = s
            while pos < e:
                length = min(self.cfg.rsize, e - pos)
                procs.append(self.sim.process(self._fetch_block(f, pos, pos + length)))
                pos += length
        if procs:
            yield self.sim.all_of(procs)

    def _extend_readahead(self, f: OpenFile, end: int) -> None:
        """Top up the prefetch pipeline to a full window beyond ``end``.

        One prefetch process per rsize block, so readers wait only for
        the blocks they overlap.  Issued *before* any wait so the
        pipeline refills while the reader blocks at the frontier.
        """
        state = f.state
        rsize = self.cfg.rsize
        ra_end = min(
            ((end + self.cfg.readahead + rsize - 1) // rsize) * rsize,
            state["size"],
        )
        # missing = (window \ valid) \ already-pending fetches
        missing = IntervalSet()
        for s, e in state["valid"].gaps(end, ra_end):
            missing.add(s, e)
        for s, e, _p in state["ra"]:
            missing.remove(s, e)
        for s, e in missing:
            pos = s
            while pos < e:
                blk_end = min(pos + rsize, e)
                proc = self.sim.process(self._fetch_block(f, pos, blk_end))
                state["ra"].append((pos, blk_end, proc))
                state["ra_issued"].add(pos, blk_end)
                self.readahead_issued_bytes += blk_end - pos
                pos = blk_end

    def read(self, f: OpenFile, offset: int, nbytes: int):
        col = obs_spans.ACTIVE
        if col is None:
            return (yield from self._read_impl(f, offset, nbytes))
        span = col.begin(
            "read", "client-op", self.node.name,
            path=f.path, offset=offset, nbytes=nbytes,
        )
        try:
            return (yield from self._read_impl(f, offset, nbytes))
        finally:
            col.end(span)

    def _read_impl(self, f: OpenFile, offset: int, nbytes: int):
        state = f.state
        end = min(offset + nbytes, state["size"])
        if end <= offset:
            return Payload(b"")

        # Sequential stream: top up the prefetch window BEFORE waiting,
        # so the pipeline refills while we block at its frontier.
        sequential = state["last_read_end"] is None or offset == state["last_read_end"]
        if sequential and self.cfg.readahead > 0:
            self._extend_readahead(f, end)

        # Wait for readahead already covering part of this range.
        overlapping = [
            p for (s, e, p) in state["ra"] if s < end and e > offset and p.is_alive
        ]
        if overlapping:
            yield self.sim.all_of(overlapping)
        state["ra"] = [(s, e, p) for (s, e, p) in state["ra"] if p.is_alive]
        end = min(end, state["size"])  # eof may have moved during the wait
        if end <= offset:
            return Payload(b"")

        # Readahead accounting: bytes of this range a prefetch covered
        # count as used (each issued byte is counted used at most once).
        ra_used = sum(e - s for s, e in state["ra_issued"].runs_in(offset, end))
        if ra_used:
            self.readahead_used_bytes += ra_used
            state["ra_issued"].remove(offset, end)

        gaps = state["valid"].gaps(offset, end)
        # Hit/miss accounting: a miss is a byte fetched synchronously
        # on demand; everything else (cached or prefetched) is a hit.
        miss = sum(e - s for s, e in gaps)
        self.cache_miss_bytes += miss
        self.cache_hit_bytes += (end - offset) - miss
        if gaps:
            yield from self._fetch(f, gaps)
            end = min(end, state["size"])
            if end <= offset:
                return Payload(b"")
        state["last_read_end"] = end

        length = end - offset
        yield from self.node.compute(self.cfg.client_copy_per_byte * length)
        self.bytes_read += length
        return state["cache"].read(offset, length)

    # -- writes ---------------------------------------------------------------
    def _writeback(self, f: OpenFile, start: int, end: int):
        data = f.state["cache"].read(start, end - start)
        try:
            yield from self._io_write(f, start, data)
        except (FsError, rpc.RpcTimeout) as exc:
            # Failed write-back: the pages are still dirty.  Re-mark the
            # range so the next fsync retries it (flushing the cache's
            # *current* contents, which may include newer overwrites),
            # latch the first error errseq-style on the open file, and
            # swallow the exception — an unawaited failing process would
            # otherwise crash the whole simulation.  Before this path
            # existed the range had already left ``dirty`` and the bytes
            # were silently lost while fsync reported success.
            f.state["dirty"].add(start, end)
            if f.state["wb_error"] is None:
                f.state["wb_error"] = exc
            self.writeback_errors += 1
            return
        finally:
            f.state["flushing"].remove(start, end)
        f.state["commit_needed"] = True
        self.bytes_written += data.nbytes

    def _spawn_writeback(self, f: OpenFile, start: int, end: int) -> None:
        f.state["dirty"].remove(start, end)
        f.state["flushing"].add(start, end)
        proc = self.sim.process(self._writeback(f, start, end))
        f.state["inflight"].append(proc)

    def _flush_full_blocks(self, f: OpenFile) -> None:
        """Kick async WRITEs for every full wsize-aligned dirty block.

        A byte already under write-back is never flushed again until
        that write-back completes (Linux PageWriteback semantics): two
        in-flight WRITEs covering the same range can be executed by the
        server in either order, so the one carrying older data may win
        — found by the torture harness as seed 146's silent reordering
        loss.  Deferred bytes stay dirty; fsync's flush loop (or the
        next full-block pass) picks them up once the range clears.
        """
        wsize = self.cfg.wsize
        flushing = f.state["flushing"]
        for s, e in list(f.state["dirty"]):
            first = ((s + wsize - 1) // wsize) * wsize
            last = (e // wsize) * wsize
            pos = first
            while pos < last:
                if flushing.gaps(pos, pos + wsize) == [(pos, pos + wsize)]:
                    self._spawn_writeback(f, pos, pos + wsize)
                pos += wsize

    def write(self, f: OpenFile, offset: int, payload: Payload):
        col = obs_spans.ACTIVE
        if col is None:
            return (yield from self._write_impl(f, offset, payload))
        span = col.begin(
            "write", "client-op", self.node.name,
            path=f.path, offset=offset, nbytes=payload.nbytes,
        )
        try:
            return (yield from self._write_impl(f, offset, payload))
        finally:
            col.end(span)

    def _write_impl(self, f: OpenFile, offset: int, payload: Payload):
        state = f.state
        yield from self.node.compute(self.cfg.client_copy_per_byte * payload.nbytes)
        state["cache"].write(offset, payload)
        end = offset + payload.nbytes
        state["valid"].add(offset, end)
        state["dirty"].add(offset, end)
        state["size"] = max(state["size"], end)
        state["wrote"] = True
        # Local change wins over cached attributes (Linux: i_size is
        # authoritative for local writes): a getattr served from the
        # attr cache within ac_timeo must not under-report an extend
        # this client just made.
        hit = self._attr_cache.get(f.path)
        if hit is not None and hit[0].size < state["size"]:
            patched = hit[0].copy()
            patched.size = state["size"]
            self._attr_cache[f.path] = (patched, hit[1])
        self._flush_full_blocks(f)
        return payload.nbytes

    def fsync(self, f: OpenFile):
        col = obs_spans.ACTIVE
        if col is None:
            return (yield from self._fsync_impl(f))
        span = col.begin("fsync", "client-op", self.node.name, path=f.path)
        try:
            return (yield from self._fsync_impl(f))
        finally:
            col.end(span)

    def _fsync_impl(self, f: OpenFile):
        state = f.state
        # Flush every remaining dirty run in ≤ wsize slices — except
        # bytes already under write-back, which are deferred until the
        # in-flight WRITE completes (same-range WRITEs must never race:
        # the server may apply them in either order).  Loop until
        # nothing is dirty or in flight, or a write-back error latches
        # (the failed ranges are re-dirtied; retrying them within this
        # fsync would spin against a dead server).
        while True:
            plan: list[tuple[int, int]] = []
            for s, e in list(state["dirty"]):
                plan.extend(state["flushing"].gaps(s, e))
            for s, e in plan:
                pos = s
                while pos < e:
                    length = min(self.cfg.wsize, e - pos)
                    self._spawn_writeback(f, pos, pos + length)
                    pos += length
            if not state["inflight"]:
                break
            while state["inflight"]:
                procs, state["inflight"] = state["inflight"], []
                yield self.sim.all_of(procs)
            if state["wb_error"] is not None:
                break
        err = state["wb_error"]
        if err is not None:
            # Surface the latched write-back failure (errseq semantics:
            # reported once, then cleared).  The failed ranges are back
            # in ``dirty``, so a later fsync — after the server
            # recovers — re-flushes them; nothing is silently dropped.
            state["wb_error"] = None
            raise err
        if state["commit_needed"]:
            yield from self._io_commit(f)
            state["commit_needed"] = False

    def close(self, f: OpenFile):
        try:
            yield from self.fsync(f)
        finally:
            # Retain the pages for close-to-open reuse — *including* any
            # ranges a failed flush re-dirtied.  Dirty pages belong to
            # the inode, not the fd (Linux: the address_space outlives
            # every open): when the flush above fails, close reports the
            # error, but the data must survive so a later open of the
            # same file re-flushes it once the server recovers.  Before
            # this, the re-dirtied ranges died with the abandoned
            # OpenFile and a post-reopen fsync reported clean — torture
            # seed 65 (write, reopen during a long outage, fsync).
            self._inode_cache[f.state["fh"]] = {
                "path": f.path,
                "cache": f.state["cache"],
                "valid": f.state["valid"],
                "size": f.state["size"],
                "mtime": f.state["open_mtime"],
                "own_writes": f.state["wrote"],
                "dirty": f.state["dirty"],
                "commit_needed": f.state["commit_needed"],
            }
            self._unregister_open(f)
        if not f.state.get("local_open"):
            yield from self._call(
                "close",
                {"fh": f.state["fh"], "write": f.state.get("open_write", True)},
            )
        self._attr_cache.pop(f.path, None)
        f.closed = True

    # -- metadata --------------------------------------------------------------
    def getattr(self, path: str):
        hit = self._attr_cache.get(path)
        if hit is not None and hit[1] > self.sim.now:
            return self._clamp_local_size(path, hit[0])
        result, _ = yield from self._call("getattr", {"path": path})
        attrs = result["attrs"]
        self._attr_cache[path] = (attrs, self.sim.now + self.cfg.ac_timeo)
        return self._clamp_local_size(path, attrs)

    def _clamp_local_size(self, path: str, attrs):
        """Local i_size is authoritative while the file is open here:
        dirty extends not yet written back make both the server's and
        the cached size under-report what this client already wrote."""
        local = max(
            (f.state["size"] for f in self._live_opens(path)), default=None
        )
        if local is not None and attrs is not None and attrs.size < local:
            attrs = attrs.copy()
            attrs.size = local
        return attrs

    def setattr(self, path: str, mode=None):
        result, _ = yield from self._call("setattr", {"path": path, "mode": mode})
        self._attr_cache.pop(path, None)
        return result["attrs"]

    def mkdir(self, path: str):
        yield from self._call("mkdir", {"path": path})

    def readdir(self, path: str):
        result, _ = yield from self._call("readdir", {"path": path})
        return result["names"]

    def remove(self, path: str):
        yield from self._call("remove", {"path": path})
        self._attr_cache.pop(path, None)
        self._delegations.pop(path, None)
        # The path's inode is gone: drop any retained pages for it, or a
        # recreated file of the same size could adopt the dead file's
        # cache on the close-to-open size/mtime match.
        self._evict_inode_cache(path)

    def rename(self, old: str, new: str):
        yield from self._call("rename", {"old": old, "new": new})
        self._attr_cache.pop(old, None)
        self._attr_cache.pop(new, None)
        self._delegations.pop(old, None)
        self._delegations.pop(new, None)
        # The rename target's inode (if any) was replaced: its retained
        # pages must die with it.  The renamed file's own cache follows
        # the inode to its new name, as do live open handles.
        self._evict_inode_cache(new)
        for entry in self._inode_cache.values():
            if entry.get("path") == old:
                entry["path"] = new
        for f in self._open_paths.pop(old, []):
            f.path = new
            self._open_paths.setdefault(new, []).append(f)

    def truncate(self, path: str, size: int):
        open_files = self._live_opens(path)
        # Wait out in-flight write-backs first (Linux truncate blocks on
        # PageWriteback): a WRITE completing after the cut would land
        # pre-truncate bytes back on the server.
        for f in open_files:
            while f.state["inflight"]:
                procs, f.state["inflight"] = f.state["inflight"], []
                yield self.sim.all_of(procs)
        self._delegations.pop(path, None)
        result, _ = yield from self._call(
            "truncate", {"path": path, "size": size, "callback": self._cb}
        )
        # Invalidate/clip every open handle for the path: stale
        # ``state["size"]`` would keep serving cached pages beyond the
        # new EOF, and ``dirty`` ranges past the cut would be written
        # back later, resurrecting the truncated bytes server-side.
        big = 1 << 62
        for f in open_files:
            st = f.state
            st["size"] = size
            st["trunc_gen"] += 1  # in-flight fetches discard their data
            st["cache"].truncate(size)
            st["valid"].remove(size, big)
            st["dirty"].remove(size, big)
            st["flushing"].remove(size, big)
            st["ra_issued"].remove(size, big)
            st["last_read_end"] = None
        # Retained close-to-open caches are clipped, not evicted: dirty
        # ranges below the cut are still owed to the server.
        for entry in self._inode_cache.values():
            if entry.get("path") == path and entry["size"] > size:
                entry["size"] = size
                entry["cache"].truncate(size)
                entry["valid"].remove(size, big)
                if entry.get("dirty"):
                    entry["dirty"].remove(size, big)
        attrs = (result or {}).get("attrs")
        if attrs is not None:
            self._attr_cache[path] = (attrs, self.sim.now + self.cfg.ac_timeo)
        else:
            self._attr_cache.pop(path, None)

    # -- byte-range locks ----------------------------------------------------
    def _lock_owner(self, f: OpenFile):
        return (self._cb, f.state["fh"])

    def lock(self, f: OpenFile, start: int, end: int, kind: str = "write"):
        """Acquire an advisory byte-range lock (NFSv4 LOCK).

        Raises :class:`repro.nfs.locks.LockConflict` when another
        client holds a conflicting lock — no blocking/queueing, as in
        NFSv4 (clients poll/retry).
        """
        result, _ = yield from self._call(
            "lock",
            {
                "fh": f.state["fh"],
                "owner": self._lock_owner(f),
                "start": start,
                "end": end,
                "kind": kind,
            },
        )
        return result["granted"]

    def unlock(self, f: OpenFile, start: int, end: int):
        """Release an advisory byte-range lock (NFSv4 LOCKU)."""
        result, _ = yield from self._call(
            "unlock",
            {
                "fh": f.state["fh"],
                "owner": self._lock_owner(f),
                "start": start,
                "end": end,
            },
        )
        return result["freed"]

    def test_lock(self, f: OpenFile, start: int, end: int, kind: str = "write"):
        """Probe for conflicts without acquiring (NFSv4 LOCKT)."""
        result, _ = yield from self._call(
            "lockt",
            {
                "fh": f.state["fh"],
                "owner": self._lock_owner(f),
                "start": start,
                "end": end,
                "kind": kind,
            },
        )
        return result["conflict"]
