"""Testbed model and the five architectures under test.

:mod:`repro.cluster.testbed` is the single source of truth for hardware
and calibration constants (paper §6.1); :mod:`repro.cluster.configs`
assembles the five systems the evaluation compares: ``direct-pnfs``,
``pvfs2``, ``pnfs-2tier``, ``pnfs-3tier``, and ``nfsv4``.
"""

from repro.cluster.testbed import (
    FAST_ETHERNET,
    GIGE,
    Testbed,
    default_nfs_config,
    default_pvfs2_config,
)
from repro.cluster.configs import (
    ARCHITECTURES,
    Deployment,
    make_deployment,
)

__all__ = [
    "ARCHITECTURES",
    "Deployment",
    "FAST_ETHERNET",
    "GIGE",
    "Testbed",
    "default_nfs_config",
    "default_pvfs2_config",
    "make_deployment",
]
