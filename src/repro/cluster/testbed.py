"""The paper's testbed (§6.1) and every calibration constant.

Sixteen nodes on gigabit Ethernet with jumbo frames (one experiment
uses 100 Mbps):

* six server-class nodes — dual 1.7 GHz P4, 2 GB RAM, one 7200 rpm
  ATA/100 disk (two in the 3-tier layout), 3Com gigabit NIC; one
  doubles as metadata manager;
* client nodes 1–7 — dual 1.3 GHz P3; clients 8–9 match the servers.

Calibration philosophy: hardware envelopes (NIC, disk, CPU clocks) are
taken from the paper/datasheets; per-operation protocol costs are the
free parameters, fitted so the absolute anchors of Figure 6/7 are
reproduced (≈119 MB/s disk-bound aggregate writes, ≈500 MB/s CPU-bound
warm-cache reads, NFSv4 flat at a single server's ceiling, PVFS2
small-I/O collapse).  Every number lives here — nothing is scattered.
"""

from __future__ import annotations

from repro.nfs.config import NfsConfig
from repro.pvfs2.config import Pvfs2Config
from repro.rpc import RpcCosts
from repro.sim.cpu import CpuSpec
from repro.sim.disk import DiskSpec
from repro.sim.engine import Simulator
from repro.sim.network import Network
from repro.sim.node import Node, NodeSpec

__all__ = [
    "FAST_ETHERNET",
    "GIGE",
    "Testbed",
    "default_nfs_config",
    "default_pvfs2_config",
]

MB = 1024 * 1024

#: Gigabit Ethernet with jumbo frames: practical TCP payload rate.
GIGE = 117e6
#: 100 Mbps Ethernet (Figure 6c).
FAST_ETHERNET = 11.5e6
#: One-way message latency: wire + switch + interrupt/stack.
LATENCY = 80e-6

#: Seagate 80 GB 7200 rpm ATA/100 as seen through ext3 + journalling
#: under concurrent striped load.  write_bw is the effective sustained
#: rate that calibrates Fig 6a's 119 MB/s over six disks.
SERVER_DISK = DiskSpec(read_bw=50e6, write_bw=20e6, positioning=0.0085)

#: Node-wide disk-path ceiling (CPU+bus): calibrates "two disks in one
#: 3-tier storage node do not double bandwidth" (§6.2) —
#: 3 nodes x ~27.5 MB/s ≈ the 83 MB/s 3-tier write plateau.
SERVER_IO_BUS = 28e6

SERVER_CPU = CpuSpec(cores=2, speed=1.7)
CLIENT_CPU_SLOW = CpuSpec(cores=2, speed=1.3)  # clients 1-7
CLIENT_CPU_FAST = CpuSpec(cores=2, speed=1.7)  # clients 8-9

#: NFSv4 path costs: the in-kernel, multi-threaded Linux implementation.
NFS_COSTS = RpcCosts(
    client_per_call=35e-6,
    client_per_byte=3.5e-9,
    server_per_call=50e-6,
    server_per_byte=5.5e-9,
)

#: PVFS2 storage-protocol per-flow-unit costs (units pipeline; the
#: heavy per-*request* setup is separate, below).
PVFS2_COSTS = RpcCosts(
    client_per_call=60e-6,
    client_per_byte=4.5e-9,
    server_per_call=60e-6,
    server_per_byte=5.0e-9,
)

#: PVFS2 per-request setup: posting + flow establishment + user-level
#: daemon scheduling — the "substantial per-request overhead" of §5.
#: Calibrates the small-I/O collapse (39.4 / 51 MB/s in Figs 6d, 7c).
PVFS2_REQUEST_SETUP_CLIENT = 900e-6
PVFS2_REQUEST_SETUP_SERVER = 500e-6

#: PVFS2 metadata-protocol costs (lighter than the data path).
PVFS2_META_COSTS = RpcCosts(
    client_per_call=150e-6,
    client_per_byte=2e-9,
    server_per_call=180e-6,
    server_per_byte=2e-9,
)

#: Extra per-byte cost on data servers colocated with storage: the
#: nfsd <-> loopback <-> user-level PVFS2 hop (§5) — copies plus
#: kernel/user crossings.  The write side is cheaper than the read side
#: (reads copy the reply back through the conduit's buffers); the read
#: total calibrates the data-server CPU ceiling that flattens
#: warm-cache reads near 509 MB/s (Fig 7a) and costs Direct-pNFS the
#: Figure 7b crossover against PVFS2 at eight clients.
LOOPBACK_COPY_PER_BYTE = 8e-9
LOOPBACK_READ_EXTRA_PER_BYTE = 12e-9

#: Gateway surcharges for servers whose backend is a FULL parallel-FS
#: client (store-and-forward).  These are *measured* inefficiencies the
#: paper attributes to indirect data access (§3.4.1/§6.2.1) that a pure
#: copy model underestimates: kernel/user crossings, request
#: re-buffering, and stripe-unaligned backend requests.  Calibrated so
#: the standalone NFSv4 write curve sits at its flat ≈45 MB/s and the
#: 3-tier read plateau lands near the paper's 115 MB/s.
GATEWAY_WRITE_PER_BYTE = 50e-9
GATEWAY_READ_PER_BYTE_3TIER = 65e-9


def default_nfs_config(**overrides) -> NfsConfig:
    """The paper's NFS settings: 2 MB rsize/wsize, 8 server threads."""
    params = dict(
        rsize=2 * MB,
        wsize=2 * MB,
        server_threads=8,
        session_slots=64,
        readahead=12 * MB,
        costs=NFS_COSTS,
    )
    params.update(overrides)
    return NfsConfig(**params)


def default_pvfs2_config(**overrides) -> Pvfs2Config:
    """PVFS2 1.5.1 as deployed in §6.1: 2 MB stripes."""
    params = dict(
        stripe_size=2 * MB,
        flow_unit=256 * 1024,
        flow_buffers=8,
        client_max_flight=8,
        storage_threads=16,
        costs=PVFS2_COSTS,
        meta_costs=PVFS2_META_COSTS,
        request_setup_client=PVFS2_REQUEST_SETUP_CLIENT,
        request_setup_server=PVFS2_REQUEST_SETUP_SERVER,
    )
    params.update(overrides)
    return Pvfs2Config(**params)


class Testbed:
    """A materialised cluster: server nodes, client nodes, one switch.

    ``server_disks`` gives the disk count per server node — ``(1,)*6``
    for the standard layout, ``(0, 0, 0, 2, 2, 2)`` for 3-tier (the
    paper moves the disks from the data servers to the storage nodes,
    keeping nodes and disks constant).  An extra diskless server-class
    node hosts standalone roles (the NFSv4 server).
    """

    #: Keep pytest from trying to collect this class when imported
    #: into test modules ("Test…" prefix).
    __test__ = False

    def __init__(
        self,
        n_clients: int = 8,
        net_bw: float = GIGE,
        server_disks: tuple[int, ...] = (1, 1, 1, 1, 1, 1),
        latency: float = LATENCY,
        net_model: str = "chunked",
        seed: int | None = None,
    ):
        if not 1 <= n_clients <= 9:
            raise ValueError("the testbed has at most nine client nodes")
        self.sim = Simulator() if seed is None else Simulator(seed=seed)
        self.network = Network(self.sim, latency=latency, model=net_model)
        self.server_nodes: list[Node] = []
        for i, ndisks in enumerate(server_disks):
            spec = NodeSpec(
                name=f"server{i}",
                cpu=SERVER_CPU,
                nic_bw=net_bw,
                disks=(SERVER_DISK,) * ndisks,
                io_bus_bw=SERVER_IO_BUS,
            )
            self.server_nodes.append(Node(self.sim, spec, self.network))
        self.extra_node = Node(
            self.sim,
            NodeSpec(name="extra0", cpu=SERVER_CPU, nic_bw=net_bw),
            self.network,
        )
        self.client_nodes: list[Node] = []
        for i in range(n_clients):
            cpu = CLIENT_CPU_SLOW if i < 7 else CLIENT_CPU_FAST
            spec = NodeSpec(name=f"client{i}", cpu=cpu, nic_bw=net_bw)
            self.client_nodes.append(Node(self.sim, spec, self.network))

    @property
    def storage_nodes(self) -> list[Node]:
        """Server nodes that carry disks."""
        return [n for n in self.server_nodes if n.disks]

    @property
    def diskless_server_nodes(self) -> list[Node]:
        """Server nodes without disks (3-tier data servers)."""
        return [n for n in self.server_nodes if not n.disks]
