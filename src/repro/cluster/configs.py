"""The five architectures of the paper's evaluation.

Each builder wires a deployment over a :class:`Testbed` and returns a
:class:`Deployment` whose ``make_client`` hands out application-facing
file-system clients.  The back end is held constant (§6.1): six server
nodes, six disks, 2 MB PVFS2 stripes.

* ``direct-pnfs`` — data servers on every storage node over local-only
  conduits; layout translator on the colocated MDS (Figure 5).
* ``pvfs2`` — the native parallel file system client.
* ``pnfs-2tier`` — pNFS file-layout data servers colocated with the
  storage nodes but issued synthetic layouts (1 MB stripes, blind to
  the 2 MB PVFS2 placement): on average only 1/6 of each request is
  local, the rest moves between servers (Figure 3b).
* ``pnfs-3tier`` — three dedicated data servers in front of three
  two-disk storage nodes (Figure 3a).
* ``nfsv4`` — one NFSv4 server on a dedicated node exporting a PVFS2
  client.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.system import DirectPnfsSystem
from repro.cluster.testbed import (
    GATEWAY_READ_PER_BYTE_3TIER,
    GATEWAY_WRITE_PER_BYTE,
    GIGE,
    LOOPBACK_COPY_PER_BYTE,
    Testbed,
    default_nfs_config,
    default_pvfs2_config,
)
from repro.nfs.client import Nfs4Client
from repro.nfs.server import Nfs4Server
from repro.pnfs.client import PnfsClient
from repro.pnfs.providers import SyntheticFileLayoutProvider
from repro.pnfs.server import PnfsMetadataServer
from repro.pvfs2.system import Pvfs2System
from repro.sim.node import Node

__all__ = ["ARCHITECTURES", "Deployment", "make_deployment"]

MB = 1024 * 1024


@dataclass
class Deployment:
    """A running architecture plus the handles the harness needs."""

    label: str
    testbed: Testbed
    make_client: Callable[[Node], object]
    pvfs: Pvfs2System
    servers: list = field(default_factory=list)


def _configs(nfs_overrides: dict | None, pvfs_overrides: dict | None):
    nfs_cfg = default_nfs_config(**(nfs_overrides or {}))
    pvfs_cfg = default_pvfs2_config(**(pvfs_overrides or {}))
    return nfs_cfg, pvfs_cfg


def build_direct_pnfs(tb: Testbed, nfs_overrides=None, pvfs_overrides=None) -> Deployment:
    nfs_cfg, pvfs_cfg = _configs(nfs_overrides, pvfs_overrides)
    pvfs = Pvfs2System(tb.sim, tb.storage_nodes, pvfs_cfg)
    system = DirectPnfsSystem(
        tb.sim, pvfs, nfs_cfg, loopback_copy_per_byte=LOOPBACK_COPY_PER_BYTE
    )
    return Deployment(
        label="direct-pnfs",
        testbed=tb,
        make_client=system.make_client,
        pvfs=pvfs,
        servers=system.data_servers + [system.mds],
    )


def build_pvfs2(tb: Testbed, nfs_overrides=None, pvfs_overrides=None) -> Deployment:
    _nfs_cfg, pvfs_cfg = _configs(nfs_overrides, pvfs_overrides)
    pvfs = Pvfs2System(tb.sim, tb.storage_nodes, pvfs_cfg)
    return Deployment(
        label="pvfs2",
        testbed=tb,
        make_client=lambda node: pvfs.make_client(node),
        pvfs=pvfs,
        servers=pvfs.daemons + [pvfs.mds],
    )


def build_pnfs_2tier(
    tb: Testbed, nfs_overrides=None, pvfs_overrides=None, stripe_unit: int = 1 * MB
) -> Deployment:
    nfs_cfg, pvfs_cfg = _configs(nfs_overrides, pvfs_overrides)
    pvfs = Pvfs2System(tb.sim, tb.storage_nodes, pvfs_cfg)
    # Data servers sit on the storage nodes but reach data through FULL
    # parallel-FS clients: a request for a byte range is satisfied
    # wherever PVFS2 put it — mostly on peer nodes.
    data_servers = [
        Nfs4Server(
            tb.sim,
            node,
            pvfs.make_client(node),
            nfs_cfg,
            name=f"{node.name}.2tier-ds",
            loopback_copy_per_byte=LOOPBACK_COPY_PER_BYTE,
            extra_write_per_byte=GATEWAY_WRITE_PER_BYTE,
        )
        for node in tb.storage_nodes
    ]
    # Synthetic layout with a 1 MB stripe: a deliberate block-size
    # mismatch against PVFS2's 2 MB stripes (§3.4.1) — on average only
    # 1/6 of the bytes a data server serves are local to it.
    # (``stripe_unit`` is overridable for the locality ablation.)
    provider = SyntheticFileLayoutProvider(len(data_servers), stripe_unit=stripe_unit)
    mds = PnfsMetadataServer(
        tb.sim,
        pvfs.mds_node,
        pvfs.make_client(pvfs.mds_node),
        nfs_cfg,
        data_servers,
        provider,
        name=f"{pvfs.mds_node.name}.2tier-mds",
    )

    def make_client(node: Node):
        client = PnfsClient(tb.sim, node, mds, nfs_cfg)
        client.label = "pnfs-2tier"
        return client

    return Deployment(
        label="pnfs-2tier",
        testbed=tb,
        make_client=make_client,
        pvfs=pvfs,
        servers=data_servers + [mds],
    )


def build_pnfs_3tier(tb: Testbed, nfs_overrides=None, pvfs_overrides=None) -> Deployment:
    if len(tb.diskless_server_nodes) != 3 or len(tb.storage_nodes) != 3:
        raise ValueError(
            "pnfs-3tier needs a testbed built with server_disks=(0,0,0,2,2,2)"
        )
    nfs_cfg, pvfs_cfg = _configs(nfs_overrides, pvfs_overrides)
    pvfs = Pvfs2System(tb.sim, tb.storage_nodes, pvfs_cfg)
    data_servers = [
        Nfs4Server(
            tb.sim,
            node,
            pvfs.make_client(node),
            nfs_cfg,
            name=f"{node.name}.3tier-ds",
            extra_read_per_byte=GATEWAY_READ_PER_BYTE_3TIER,
            extra_write_per_byte=GATEWAY_WRITE_PER_BYTE,
        )
        for node in tb.diskless_server_nodes
    ]
    provider = SyntheticFileLayoutProvider(len(data_servers), stripe_unit=2 * MB)
    mds = PnfsMetadataServer(
        tb.sim,
        tb.diskless_server_nodes[0],
        pvfs.make_client(tb.diskless_server_nodes[0]),
        nfs_cfg,
        data_servers,
        provider,
        name="3tier-mds",
    )

    def make_client(node: Node):
        client = PnfsClient(tb.sim, node, mds, nfs_cfg)
        client.label = "pnfs-3tier"
        return client

    return Deployment(
        label="pnfs-3tier",
        testbed=tb,
        make_client=make_client,
        pvfs=pvfs,
        servers=data_servers + [mds],
    )


def build_nfsv4(tb: Testbed, nfs_overrides=None, pvfs_overrides=None) -> Deployment:
    nfs_cfg, pvfs_cfg = _configs(nfs_overrides, pvfs_overrides)
    pvfs = Pvfs2System(tb.sim, tb.storage_nodes, pvfs_cfg)
    server = Nfs4Server(
        tb.sim,
        tb.extra_node,
        pvfs.make_client(tb.extra_node),
        nfs_cfg,
        name="nfsv4-server",
        extra_write_per_byte=GATEWAY_WRITE_PER_BYTE,
    )

    def make_client(node: Node):
        client = Nfs4Client(tb.sim, node, server, nfs_cfg)
        client.label = "nfsv4"
        return client

    return Deployment(
        label="nfsv4",
        testbed=tb,
        make_client=make_client,
        pvfs=pvfs,
        servers=[server],
    )


def build_direct_pnfs_sharded(
    tb: Testbed, nfs_overrides=None, pvfs_overrides=None, n_meta: int = 2
) -> Deployment:
    """Extension architecture: Direct-pNFS with ``n_meta`` hash-
    partitioned metadata servers (see :mod:`repro.core.multi_mds`)."""
    from repro.core.multi_mds import ShardedDirectPnfs, ShardedPvfs2System

    nfs_cfg, pvfs_cfg = _configs(nfs_overrides, pvfs_overrides)
    pvfs = ShardedPvfs2System(tb.sim, tb.storage_nodes, pvfs_cfg, n_meta=n_meta)
    system = ShardedDirectPnfs(tb.sim, pvfs, nfs_cfg)
    return Deployment(
        label="direct-pnfs-sharded",
        testbed=tb,
        make_client=system.make_client,
        pvfs=pvfs,
        servers=system.data_servers + system.mds_list,
    )


ARCHITECTURES: dict[str, Callable] = {
    "direct-pnfs": build_direct_pnfs,
    "pvfs2": build_pvfs2,
    "pnfs-2tier": build_pnfs_2tier,
    "pnfs-3tier": build_pnfs_3tier,
    "nfsv4": build_nfsv4,
    "direct-pnfs-sharded": build_direct_pnfs_sharded,
}


def make_deployment(
    arch: str,
    n_clients: int = 8,
    net_bw: float = GIGE,
    nfs_overrides: dict | None = None,
    pvfs_overrides: dict | None = None,
    net_model: str = "chunked",
    seed: int | None = None,
) -> Deployment:
    """Build the named architecture on a fresh testbed.

    ``net_model`` selects the network flow model (``"chunked"`` |
    ``"fluid"`` | ``"auto"``, see :mod:`repro.sim.network`); the
    calibrated default stays ``"chunked"``.  ``seed`` initialises the
    testbed's simulator (identical-seed deployments replay identically).
    """
    try:
        builder = ARCHITECTURES[arch]
    except KeyError:
        raise ValueError(
            f"unknown architecture {arch!r}; choose from {sorted(ARCHITECTURES)}"
        ) from None
    disks = (0, 0, 0, 2, 2, 2) if arch == "pnfs-3tier" else (1, 1, 1, 1, 1, 1)
    tb = Testbed(
        n_clients=n_clients,
        net_bw=net_bw,
        server_disks=disks,
        net_model=net_model,
        seed=seed,
    )
    return builder(tb, nfs_overrides=nfs_overrides, pvfs_overrides=pvfs_overrides)
