"""Bottleneck attribution: which resource limited a run?

The paper's discussion (§6.2.1) attributes each regime to a resource:
"In the write experiments, Direct-pNFS and PVFS2 fully utilize the
available disk bandwidth.  In the read experiments, data are read
directly from the server cache, so the disks are not a bottleneck.
Instead, client and server CPU performance becomes the limiting
factor."  This module measures exactly that: per-node utilisation of
CPU, NIC (each direction), and disks over a measurement window, and
names the most-utilised resource class.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.node import Node

__all__ = [
    "NodeSnapshot",
    "UtilisationReport",
    "attribute",
    "snapshot",
    "utilisation",
]


@dataclass
class NodeSnapshot:
    """Raw counters of one node at an instant."""

    t: float
    cpu_busy: float
    tx_bytes: int
    rx_bytes: int
    disk_busy: tuple[float, ...]


def snapshot(node: Node) -> NodeSnapshot:
    """Capture the node's cumulative counters now."""
    return NodeSnapshot(
        t=node.sim.now,
        cpu_busy=node.cpu.busy_time,
        tx_bytes=node.nic.tx_bytes,
        rx_bytes=node.nic.rx_bytes,
        disk_busy=tuple(d.busy_time for d in node.disks),
    )


@dataclass
class UtilisationReport:
    """Utilisation fractions of one node over a window."""

    node: str
    cpu: float
    nic_tx: float
    nic_rx: float
    disk: float  # max over the node's disks; 0.0 when diskless
    window: float

    @property
    def dominant(self) -> str:
        """The resource class closest to saturation."""
        candidates = {
            "cpu": self.cpu,
            "nic": max(self.nic_tx, self.nic_rx),
            "disk": self.disk,
        }
        return max(candidates, key=candidates.get)  # type: ignore[arg-type]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.node}: cpu {self.cpu:5.1%}  tx {self.nic_tx:5.1%}  "
            f"rx {self.nic_rx:5.1%}  disk {self.disk:5.1%}  -> {self.dominant}"
        )

    def as_dict(self) -> dict:
        """JSON-shaped form for result reports."""
        return {
            "node": self.node,
            "cpu": self.cpu,
            "nic_tx": self.nic_tx,
            "nic_rx": self.nic_rx,
            "disk": self.disk,
            "window": self.window,
            "dominant": self.dominant,
        }


def attribute(reports: list[UtilisationReport]) -> dict:
    """Name the run's overall bottleneck from per-node reports.

    The most-utilised (node, resource-class) pair across all reports —
    the component the makespan is attributed to.  Empty input yields an
    empty verdict rather than an error (diskless/unmonitored runs).
    """
    best: dict = {}
    for r in reports:
        for component, value in (
            ("cpu", r.cpu),
            ("nic_tx", r.nic_tx),
            ("nic_rx", r.nic_rx),
            ("disk", r.disk),
        ):
            if not best or value > best["utilisation"]:
                best = {
                    "node": r.node,
                    "component": component,
                    "utilisation": value,
                }
    return best


def utilisation(node: Node, before: NodeSnapshot, after: NodeSnapshot) -> UtilisationReport:
    """Utilisation of ``node`` between two snapshots."""
    window = after.t - before.t
    if window <= 0:
        raise ValueError("snapshots must span a positive window")
    cpu_capacity = window * node.cpu.spec.cores
    disk = 0.0
    for b, a in zip(before.disk_busy, after.disk_busy):
        disk = max(disk, (a - b) / window)
    return UtilisationReport(
        node=node.name,
        cpu=(after.cpu_busy - before.cpu_busy) / cpu_capacity,
        nic_tx=(after.tx_bytes - before.tx_bytes) / node.nic.bandwidth / window,
        nic_rx=(after.rx_bytes - before.rx_bytes) / node.nic.bandwidth / window,
        disk=disk,
        window=window,
    )
