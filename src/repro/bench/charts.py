"""ASCII charts for benchmark series (no plotting dependencies).

Renders the paper's line charts as terminal bar charts: one row per
(system, client-count) point, bars proportional to the metric, with the
paper's reference value marked.  Used by the CLI and available to any
report consumer::

    print(render_series(result))
"""

from __future__ import annotations

from repro.bench.experiments import ExperimentResult
from repro.bench.paper_data import PAPER

__all__ = ["bar", "render_series"]

BAR_WIDTH = 46


def bar(value: float, maximum: float, width: int = BAR_WIDTH, marker: float | None = None) -> str:
    """A text bar of ``value`` scaled to ``maximum``, with an optional
    reference ``marker`` drawn as ``|``."""
    if maximum <= 0:
        raise ValueError("maximum must be positive")
    cells = [" "] * width
    filled = min(width, round(value / maximum * width))
    for i in range(filled):
        cells[i] = "#"
    if marker is not None and marker >= 0:
        pos = min(width - 1, round(marker / maximum * width))
        cells[pos] = "|"
    return "".join(cells)


def render_series(res: ExperimentResult) -> str:
    """Bar-chart view of one experiment's sweep, measured vs paper."""
    exp = res.experiment
    paper = PAPER.get(exp.id, {})
    unit = {"mbps": "MB/s", "runtime": "s", "tps": "tps"}[exp.metric]
    peak = max(
        [v for series in res.values.values() for v in series.values()]
        + [v for system in paper.values() for v in system.values()]
    )
    lines = [f"{exp.id}: {exp.title}  [# measured, | paper, max {peak:.0f} {unit}]"]
    for system in exp.systems:
        if system not in res.values:
            continue
        lines.append(f"  {system}")
        for n, value in sorted(res.values[system].items()):
            ref = paper.get(system, {}).get(n)
            lines.append(
                f"   {n:>2} cl {bar(value, peak, marker=ref)} {value:7.1f}"
            )
    return "\n".join(lines)
