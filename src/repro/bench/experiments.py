"""Every figure panel of the paper's evaluation, as a runnable sweep.

An :class:`Experiment` names the workload factory, systems, client
counts, network, and metric for one figure panel.  ``run_experiment``
executes the sweep at a chosen scale and returns
``{system: {n_clients: value}}`` plus the per-cell raw results.

Scale note: data volumes shrink with ``scale`` (default 0.1 → 50 MB
IOR files); all systems shrink identically, so steady-state throughput
ratios and curve shapes are preserved while runs stay fast.  BTIO's
compute term scales too, keeping the compute/I-O ratio of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.bench.runner import RunResult, run_cell
from repro.cluster.testbed import FAST_ETHERNET, GIGE
from repro.workloads import (
    AtlasWorkload,
    BtioWorkload,
    IorWorkload,
    OltpWorkload,
    PostmarkWorkload,
    SshBuildWorkload,
)

__all__ = ["EXPERIMENTS", "Experiment", "ExperimentResult", "run_experiment"]

MB = 1024 * 1024

ALL_FIVE = ["direct-pnfs", "pvfs2", "pnfs-2tier", "pnfs-3tier", "nfsv4"]
HEAD_TO_HEAD = ["direct-pnfs", "pvfs2"]


@dataclass
class Experiment:
    """One figure panel."""

    id: str
    title: str
    metric: str  # "mbps" | "runtime" | "tps"
    systems: list[str]
    client_counts: list[int]
    workload: Callable[[float], object]  # scale -> Workload
    net_bw: float = GIGE
    pvfs_overrides: dict = field(default_factory=dict)
    nfs_overrides: dict = field(default_factory=dict)
    #: Per-experiment multiplier on the global scale (the 100 Mbps run
    #: needs longer streams for pipeline fill/drain to amortise).
    scale_factor: float = 1.0

    def value_of(self, result: RunResult) -> float:
        if self.metric == "mbps":
            return result.aggregate_mbps
        if self.metric == "runtime":
            return result.runtime
        if self.metric == "tps":
            return result.transactions_per_second
        raise ValueError(f"unknown metric {self.metric!r}")


@dataclass
class ExperimentResult:
    """Sweep output for one experiment."""

    experiment: Experiment
    scale: float
    values: dict[str, dict[int, float]]
    raw: dict[tuple[str, int], RunResult] = field(default_factory=dict)
    #: Batch cost telemetry (``EngineReport.as_dict()``): workers,
    #: cache hits, per-cell wall seconds.  Timing only — never part of
    #: the deterministic result content.
    parallel: dict = field(default_factory=dict)


def _ior(op: str, block: int, shared: bool):
    return lambda scale: IorWorkload(
        op=op, block_size=block, shared_file=shared, scale=scale
    )


EXPERIMENTS: dict[str, Experiment] = {
    e.id: e
    for e in [
        Experiment(
            "fig6a",
            "IOR write, separate files, large block",
            "mbps",
            ALL_FIVE,
            [1, 2, 3, 4, 5, 6, 7, 8],
            _ior("write", 4 * MB, shared=False),  # paper: 2-4 MB blocks
        ),
        Experiment(
            "fig6b",
            "IOR write, single file, large block",
            "mbps",
            ALL_FIVE,
            [1, 2, 3, 4, 5, 6, 7, 8],
            _ior("write", 4 * MB, shared=True),
        ),
        Experiment(
            "fig6c",
            "IOR write, separate files, 100 Mbps Ethernet",
            "mbps",
            ["direct-pnfs", "pvfs2", "pnfs-2tier"],
            [1, 2, 3, 4, 5, 6, 7, 8],
            _ior("write", 4 * MB, shared=False),
            net_bw=FAST_ETHERNET,
            scale_factor=2.0,
        ),
        Experiment(
            "fig6d",
            "IOR write, separate files, 8 KB block",
            "mbps",
            ALL_FIVE,
            [1, 2, 3, 4, 5, 6, 7, 8],
            _ior("write", 8 * 1024, shared=False),
        ),
        Experiment(
            "fig6e",
            "IOR write, single file, 8 KB block",
            "mbps",
            ALL_FIVE,
            [1, 2, 3, 4, 5, 6, 7, 8],
            _ior("write", 8 * 1024, shared=True),
        ),
        Experiment(
            "fig7a",
            "IOR read, separate files, large block (warm cache)",
            "mbps",
            ALL_FIVE,
            [1, 2, 3, 4, 5, 6, 7, 8],
            _ior("read", 4 * MB, shared=False),
        ),
        Experiment(
            "fig7b",
            "IOR read, single file, large block (warm cache)",
            "mbps",
            ALL_FIVE,
            [1, 2, 3, 4, 5, 6, 7, 8],
            _ior("read", 4 * MB, shared=True),
        ),
        Experiment(
            "fig7c",
            "IOR read, separate files, 8 KB block",
            "mbps",
            ALL_FIVE,
            [1, 2, 3, 4, 5, 6, 7, 8],
            _ior("read", 8 * 1024, shared=False),
        ),
        Experiment(
            "fig7d",
            "IOR read, single file, 8 KB block",
            "mbps",
            ALL_FIVE,
            [1, 2, 3, 4, 5, 6, 7, 8],
            _ior("read", 8 * 1024, shared=True),
        ),
        Experiment(
            "fig8a",
            "ATLAS digitization write replay",
            "mbps",
            HEAD_TO_HEAD,
            [1, 4, 8],
            lambda scale: AtlasWorkload(scale=scale),
        ),
        Experiment(
            "fig8b",
            "NPB BTIO class A (runtime, lower is better)",
            "runtime",
            HEAD_TO_HEAD,
            [1, 4, 9],
            lambda scale: BtioWorkload(scale=scale),
        ),
        Experiment(
            "fig8c",
            "OLTP: 8 KB read-modify-write + fsync",
            "mbps",
            HEAD_TO_HEAD,
            [1, 4, 8],
            lambda scale: OltpWorkload(scale=scale),
        ),
        Experiment(
            "fig8d",
            "Postmark (transactions per second)",
            "tps",
            HEAD_TO_HEAD,
            [1, 4, 8],
            lambda scale: PostmarkWorkload(scale=scale),
            pvfs_overrides={"stripe_size": 64 * 1024},
            nfs_overrides={"rsize": 64 * 1024, "wsize": 64 * 1024},
        ),
        Experiment(
            "sshbuild",
            "SSH-build phases (§6.4.3, in-text)",
            "runtime",
            HEAD_TO_HEAD,
            [1],
            lambda scale: SshBuildWorkload(scale=scale),
        ),
    ]
}


def run_experiment(
    exp_id: str,
    scale: float = 0.1,
    client_counts: list[int] | None = None,
    systems: list[str] | None = None,
    net_model: str = "chunked",
    jobs: int = 1,
    cache=None,
    progress=None,
) -> ExperimentResult:
    """Run one figure panel's sweep and collect the metric values.

    ``net_model`` selects the network flow model for every cell
    (``"chunked"`` | ``"fluid"`` | ``"auto"``); the calibrated figures
    use the default ``"chunked"``.

    ``jobs`` fans the (system, client-count) cells over that many
    worker processes via :mod:`repro.parallel`; every cell is a pure
    function of its spec, so the sweep's values are identical whatever
    ``jobs`` is.  ``cache`` (a :class:`repro.parallel.ResultCache`)
    skips cells whose spec + code fingerprint already have a stored
    result.  ``progress(spec, result, wall, cached)`` is called per
    finished cell — see :class:`repro.parallel.ProgressReporter`.
    """
    from repro.parallel import figure_cell_spec, run_jobs

    exp = EXPERIMENTS[exp_id]
    counts = client_counts or exp.client_counts
    chosen = systems or exp.systems
    pairs = [(system, n) for system in chosen for n in counts]
    specs = [
        figure_cell_spec(exp_id, system, n, scale, net_model)
        for system, n in pairs
    ]
    results, report = run_jobs(specs, jobs=jobs, cache=cache, progress=progress)
    values: dict[str, dict[int, float]] = {system: {} for system in chosen}
    raw: dict[tuple[str, int], RunResult] = {}
    for (system, n), result in zip(pairs, results):
        values[system][n] = exp.value_of(result)
        raw[(system, n)] = result
    return ExperimentResult(
        experiment=exp,
        scale=scale,
        values=values,
        raw=raw,
        parallel=report.as_dict(),
    )
