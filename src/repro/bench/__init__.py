"""Benchmark harness: experiment runner, paper data, and reporting.

:mod:`repro.bench.runner` executes one (architecture, workload,
client-count) cell and returns measured metrics;
:mod:`repro.bench.experiments` defines every figure panel of the
paper's evaluation as a sweep; :mod:`repro.bench.paper_data` digitises
the paper's reported values; :mod:`repro.bench.report` renders
paper-vs-measured tables and checks the qualitative shape criteria.
"""

from repro.bench.runner import RunResult, run_cell
from repro.bench.experiments import EXPERIMENTS, Experiment, run_experiment
from repro.bench.report import format_table, shape_checks
from repro.bench.charts import render_series
from repro.bench.bottleneck import snapshot, utilisation

__all__ = [
    "EXPERIMENTS",
    "Experiment",
    "RunResult",
    "format_table",
    "render_series",
    "run_cell",
    "run_experiment",
    "shape_checks",
    "snapshot",
    "utilisation",
]
