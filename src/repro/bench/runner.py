"""Execute one experiment cell: (architecture, workload, #clients).

The runner reproduces the paper's measurement protocol: a preparation
pass (through an extra admin client — creating read data sets warms the
server caches), then all clients started at the same instant, and the
aggregate throughput computed as total payload bytes over the group
makespan, in decimal MB/s as the figures report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.configs import Deployment, make_deployment
from repro.cluster.testbed import GIGE
from repro.sim.stats import MB
from repro.workloads.base import Workload, WorkloadResult

__all__ = ["RunResult", "run_cell"]


@dataclass
class RunResult:
    """Measured outcome of one cell."""

    arch: str
    workload: str
    n_clients: int
    makespan: float
    total_bytes: int
    results: list[WorkloadResult] = field(default_factory=list)
    deployment: Deployment | None = None
    #: Per-server-node utilisation over the measured window (populated
    #: when ``run_cell(measure_utilisation=True)``).
    utilisation: list = field(default_factory=list)
    #: Observability section (populated when ``run_cell(metrics=True)``):
    #: final counter/gauge values, the sampler's time series, per-node
    #: utilisation dicts over the measured phase, and the bottleneck
    #: verdict — the metrics/utilization section of the JSON report.
    metrics: dict = field(default_factory=dict)
    #: Span trace of the measured phase (populated when
    #: ``run_cell(trace=True)``); export with
    #: ``result.trace.write_chrome_trace(path)``.
    trace: object | None = None
    #: Engine cost telemetry for the whole cell (prepare + settle +
    #: measured phase): ``EngineStats.as_dict()`` plus the network
    #: model and its flow counters — the numbers the fluid fast path
    #: is judged by.
    engine: dict = field(default_factory=dict)

    @property
    def aggregate_mbps(self) -> float:
        """Total payload MB (decimal) over the group makespan."""
        if self.makespan <= 0:
            raise ValueError("zero makespan")
        return self.total_bytes / MB / self.makespan

    @property
    def transactions_per_second(self) -> float:
        """Aggregate tps over the transaction window (Postmark) or run."""
        starts = [r.extra.get("txn_start") for r in self.results]
        ends = [r.extra.get("txn_end") for r in self.results]
        total = sum(r.transactions for r in self.results)
        if all(s is not None for s in starts) and all(e is not None for e in ends):
            window = max(ends) - min(starts)
        else:
            window = self.makespan
        return total / window if window > 0 else float("inf")

    @property
    def runtime(self) -> float:
        """Wall-clock runtime (BTIO's metric; lower is better)."""
        return self.makespan


def run_cell(
    arch: str,
    workload: Workload,
    n_clients: int,
    net_bw: float = GIGE,
    nfs_overrides: dict | None = None,
    pvfs_overrides: dict | None = None,
    keep_deployment: bool = False,
    measure_utilisation: bool = False,
    net_model: str = "chunked",
    metrics: bool = False,
    sample_interval: float = 0.25,
    trace: bool = False,
) -> RunResult:
    """Build the architecture, run the workload on ``n_clients``.

    ``metrics=True`` attaches a :class:`~repro.obs.MetricsRegistry` to
    every component, samples it every ``sample_interval`` sim seconds
    over the measured phase, and fills ``RunResult.metrics`` with
    counters, time series, per-node utilisation, and the bottleneck
    verdict.  ``trace=True`` records spans over the measured phase into
    ``RunResult.trace``.  Both default off and add nothing to the run
    when off.
    """
    dep = make_deployment(
        arch,
        n_clients=n_clients,
        net_bw=net_bw,
        nfs_overrides=nfs_overrides,
        pvfs_overrides=pvfs_overrides,
        net_model=net_model,
    )
    tb = dep.testbed
    sim = tb.sim

    # Preparation through an admin client on client node 0.
    admin = dep.make_client(tb.client_nodes[0])

    def prep():
        yield from admin.mount()
        yield from workload.prepare(sim, admin, n_clients)

    prep_proc = sim.process(prep(), name="prepare")
    sim.run(until=prep_proc)

    # Quiesce: let the storage daemons drain preparation data before
    # the measured phase (the paper runs each experiment in isolation).
    def settle():
        deadline = sim.now + 600.0  # safety bound; drains take seconds
        tick = None
        while any(d.dirty_backlog > 0 for d in dep.pvfs.daemons):
            if sim.now >= deadline:
                raise RuntimeError("storage daemons failed to quiesce")
            # Reuse one Timeout for the polling tick: the previous one
            # is always processed by the time we loop.
            tick = sim.timeout(0.25) if tick is None else tick.reset()
            yield tick

    sim.run(until=sim.process(settle(), name="settle"))

    # Mount all measurement clients before the clock starts.
    clients = [dep.make_client(tb.client_nodes[i]) for i in range(n_clients)]

    def mount_all():
        for c in clients:
            yield from c.mount()

    mount_proc = sim.process(mount_all(), name="mounts")
    sim.run(until=mount_proc)

    monitored = tb.server_nodes + [tb.extra_node] if measure_utilisation else []
    if metrics:
        # Metrics runs always attribute utilisation, over every node.
        monitored = tb.server_nodes + [tb.extra_node] + tb.client_nodes[:n_clients]
    before = None
    if monitored:
        from repro.bench.bottleneck import snapshot, utilisation

        before = [snapshot(node) for node in monitored]

    registry = sampler = None
    if metrics:
        from repro.obs import MetricsRegistry, Sampler, observe_deployment

        registry = MetricsRegistry()
        observe_deployment(registry, dep, clients=clients)
        sampler = Sampler(sim, registry, interval=sample_interval).start()

    collector = None
    if trace:
        from repro.obs import SpanCollector

        collector = SpanCollector(sim)
        collector.__enter__()

    t0 = sim.now
    try:
        procs = [
            sim.process(
                workload.client_proc(sim, c, i, n_clients), name=f"client{i}"
            )
            for i, c in enumerate(clients)
        ]
        done = sim.all_of(procs)
        sim.run(until=done)
    finally:
        if collector is not None:
            collector.__exit__(None, None, None)
        if sampler is not None:
            sampler.stop()
    makespan = sim.now - t0
    results = [p.value for p in procs]

    reports = []
    if monitored:
        after = [snapshot(node) for node in monitored]
        reports = [
            utilisation(node, b, a) for node, b, a in zip(monitored, before, after)
        ]
    metrics_section: dict = {}
    if metrics:
        from repro.bench.bottleneck import attribute

        metrics_section = {
            "counters": registry.collect(),
            "series": sampler.as_dict(),
            "utilisation": [r.as_dict() for r in reports],
            "bottleneck": attribute(reports),
        }
    engine = dict(sim.stats.as_dict())
    engine.update(
        net_model=net_model,
        flows_chunked=tb.network.flows_chunked,
        flows_fluid=tb.network.flows_fluid,
        fluid_recomputes=tb.network.fluid_recomputes,
    )
    return RunResult(
        arch=arch,
        workload=workload.name,
        n_clients=n_clients,
        makespan=makespan,
        total_bytes=sum(r.bytes_moved for r in results),
        results=results,
        deployment=dep if keep_deployment else None,
        utilisation=reports,
        metrics=metrics_section,
        trace=collector,
        engine=engine,
    )
