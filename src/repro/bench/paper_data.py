"""The paper's reported results, digitised from Figures 6-8.

Exact numbers quoted in the text are exact here (119.2, 110, 39.4, 509,
530.7, 51, 115, 83, 102.5, 26, 6); the remaining points are read off
the figures and are approximate (±5 MB/s or so).  The harness compares
*shape* — who wins, by what factor, where curves flatten — not absolute
values: our substrate is a calibrated simulator, not the authors'
testbed.
"""

from __future__ import annotations

__all__ = ["PAPER", "paper_series"]

CLIENTS_1_8 = [1, 2, 3, 4, 5, 6, 7, 8]

#: figure id -> system -> {n_clients: value}
PAPER: dict[str, dict[str, dict[int, float]]] = {
    # ---- Figure 6: aggregate write throughput (MB/s) -------------------
    "fig6a": {  # separate files, large block
        "direct-pnfs": {1: 88, 2: 108, 3: 116, 4: 119.2, 5: 119, 6: 119, 7: 119, 8: 119},
        "pvfs2": {1: 85, 2: 106, 3: 115, 4: 119, 5: 119, 6: 119, 7: 119, 8: 119},
        "pnfs-2tier": {1: 78, 2: 98, 3: 108, 4: 112, 5: 113, 6: 113, 7: 113, 8: 112},
        "pnfs-3tier": {1: 55, 2: 72, 3: 80, 4: 83, 5: 83, 6: 83, 7: 83, 8: 83},
        "nfsv4": {1: 45, 2: 47, 3: 47, 4: 47, 5: 46, 6: 46, 7: 46, 8: 45},
    },
    "fig6b": {  # single file, large block
        "direct-pnfs": {1: 85, 2: 103, 3: 108, 4: 110, 5: 110, 6: 110, 7: 110, 8: 110},
        "pvfs2": {1: 83, 2: 102, 3: 108, 4: 110, 5: 110, 6: 110, 7: 110, 8: 110},
        "pnfs-2tier": {1: 75, 2: 95, 3: 102, 4: 105, 5: 105, 6: 105, 7: 104, 8: 104},
        "pnfs-3tier": {1: 54, 2: 70, 3: 79, 4: 82, 5: 83, 6: 83, 7: 83, 8: 82},
        "nfsv4": {1: 44, 2: 46, 3: 46, 4: 46, 5: 46, 6: 45, 7: 45, 8: 45},
    },
    "fig6c": {  # separate files, large block, 100 Mbps Ethernet
        "direct-pnfs": {1: 11, 2: 22, 3: 32, 4: 42, 5: 50, 6: 57, 7: 61, 8: 63},
        "pvfs2": {1: 11, 2: 22, 3: 32, 4: 42, 5: 50, 6: 57, 7: 61, 8: 63},
        "pnfs-2tier": {1: 6, 2: 12, 3: 17, 4: 22, 5: 26, 6: 29, 7: 31, 8: 32},
    },
    "fig6d": {  # separate files, 8 KB block
        "direct-pnfs": {1: 88, 2: 108, 3: 116, 4: 119, 5: 119, 6: 119, 7: 119, 8: 119},
        "pvfs2": {1: 10, 2: 18, 3: 25, 4: 30, 5: 33, 6: 36, 7: 38, 8: 39.4},
        "pnfs-2tier": {1: 78, 2: 98, 3: 108, 4: 112, 5: 112, 6: 112, 7: 112, 8: 112},
        "pnfs-3tier": {1: 55, 2: 72, 3: 80, 4: 83, 5: 83, 6: 83, 7: 83, 8: 83},
        "nfsv4": {1: 45, 2: 47, 3: 47, 4: 47, 5: 46, 6: 46, 7: 46, 8: 45},
    },
    "fig6e": {  # single file, 8 KB block
        "direct-pnfs": {1: 85, 2: 103, 3: 108, 4: 110, 5: 110, 6: 110, 7: 110, 8: 110},
        "pvfs2": {1: 10, 2: 17, 3: 24, 4: 29, 5: 32, 6: 35, 7: 37, 8: 38},
        "pnfs-2tier": {1: 75, 2: 95, 3: 102, 4: 105, 5: 104, 6: 104, 7: 104, 8: 104},
        "pnfs-3tier": {1: 54, 2: 70, 3: 79, 4: 82, 5: 83, 6: 83, 7: 82, 8: 82},
        "nfsv4": {1: 44, 2: 46, 3: 46, 4: 46, 5: 45, 6: 45, 7: 45, 8: 45},
    },
    # ---- Figure 7: aggregate read throughput (MB/s), warm cache ----------
    "fig7a": {  # separate files, large block
        "direct-pnfs": {1: 110, 2: 210, 3: 300, 4: 370, 5: 430, 6: 470, 7: 495, 8: 509},
        "pvfs2": {1: 105, 2: 205, 3: 295, 4: 365, 5: 425, 6: 465, 7: 490, 8: 509},
        "pnfs-2tier": {1: 95, 2: 170, 3: 220, 4: 255, 5: 275, 6: 285, 7: 290, 8: 290},
        "pnfs-3tier": {1: 90, 2: 110, 3: 115, 4: 115, 5: 115, 6: 115, 7: 115, 8: 115},
        "nfsv4": {1: 105, 2: 110, 3: 110, 4: 110, 5: 110, 6: 110, 7: 110, 8: 110},
    },
    "fig7b": {  # single file, large block
        "direct-pnfs": {1: 110, 2: 210, 3: 295, 4: 365, 5: 420, 6: 460, 7: 485, 8: 505},
        "pvfs2": {1: 95, 2: 190, 3: 280, 4: 360, 5: 425, 6: 470, 7: 505, 8: 530.7},
        "pnfs-2tier": {1: 95, 2: 170, 3: 220, 4: 255, 5: 275, 6: 285, 7: 290, 8: 290},
        "pnfs-3tier": {1: 90, 2: 110, 3: 115, 4: 115, 5: 115, 6: 115, 7: 115, 8: 115},
        "nfsv4": {1: 105, 2: 110, 3: 110, 4: 110, 5: 110, 6: 110, 7: 110, 8: 110},
    },
    "fig7c": {  # separate files, 8 KB block
        "direct-pnfs": {1: 110, 2: 210, 3: 300, 4: 370, 5: 430, 6: 470, 7: 495, 8: 505},
        "pvfs2": {1: 12, 2: 22, 3: 31, 4: 38, 5: 43, 6: 47, 7: 49, 8: 51},
        "pnfs-2tier": {1: 95, 2: 170, 3: 220, 4: 255, 5: 275, 6: 285, 7: 290, 8: 290},
        "pnfs-3tier": {1: 90, 2: 110, 3: 115, 4: 115, 5: 115, 6: 115, 7: 115, 8: 115},
        "nfsv4": {1: 105, 2: 110, 3: 110, 4: 110, 5: 110, 6: 110, 7: 110, 8: 110},
    },
    "fig7d": {  # single file, 8 KB block
        "direct-pnfs": {1: 110, 2: 208, 3: 295, 4: 365, 5: 420, 6: 460, 7: 485, 8: 500},
        "pvfs2": {1: 12, 2: 21, 3: 30, 4: 37, 5: 42, 6: 46, 7: 48, 8: 50},
        "pnfs-2tier": {1: 95, 2: 170, 3: 220, 4: 255, 5: 275, 6: 285, 7: 290, 8: 290},
        "pnfs-3tier": {1: 90, 2: 110, 3: 115, 4: 115, 5: 115, 6: 115, 7: 115, 8: 115},
        "nfsv4": {1: 105, 2: 110, 3: 110, 4: 110, 5: 110, 6: 110, 7: 110, 8: 110},
    },
    # ---- Figure 8: application and synthetic workloads ---------------------
    "fig8a": {  # ATLAS digitization aggregate write MB/s; 1/4/8 clients
        "direct-pnfs": {1: 45, 4: 93, 8: 102.5},
        "pvfs2": {1: 33, 4: 48, 8: 49},
    },
    "fig8b": {  # BTIO class A runtime (s), lower is better; 1/4/9 clients
        "direct-pnfs": {1: 1500, 4: 480, 9: 300},
        "pvfs2": {1: 1490, 4: 470, 9: 285},
    },
    "fig8c": {  # OLTP aggregate MB/s; 1/4/8 clients
        "direct-pnfs": {1: 5, 4: 15, 8: 26},
        "pvfs2": {1: 2, 4: 5, 8: 6},
    },
    "fig8d": {  # Postmark transactions/second; 1/4/8 clients
        "direct-pnfs": {1: 12, 4: 28, 8: 36},
        "pvfs2": {1: 1, 4: 1, 8: 1},
    },
}


def paper_series(fig: str, system: str, clients: list[int]) -> list[float]:
    """Paper values for ``system`` at each client count in ``clients``."""
    table = PAPER[fig][system]
    return [table[n] for n in clients]
