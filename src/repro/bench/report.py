"""Render paper-vs-measured tables and check qualitative shape criteria.

The shape criteria encode the paper's *claims* (who wins, by roughly
what factor, where curves flatten) rather than absolute numbers; they
are what EXPERIMENTS.md records and what the benchmark suite asserts.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

from repro.bench.experiments import ExperimentResult
from repro.bench.paper_data import PAPER

__all__ = [
    "ShapeCheck",
    "canonical_json",
    "experiment_report",
    "format_metrics",
    "format_table",
    "result_hash",
    "shape_checks",
]


@dataclass
class ShapeCheck:
    """One qualitative criterion and its verdict."""

    name: str
    ok: bool
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        mark = "PASS" if self.ok else "FAIL"
        return f"[{mark}] {self.name}: {self.detail}"


def format_table(res: ExperimentResult) -> str:
    """ASCII table: one row per client count, measured (paper) pairs."""
    exp = res.experiment
    systems = [s for s in exp.systems if s in res.values]
    counts = sorted(next(iter(res.values.values())).keys())
    paper = PAPER.get(exp.id, {})
    unit = {"mbps": "MB/s", "runtime": "s", "tps": "tps"}[exp.metric]

    header = f"{exp.id}: {exp.title}   [measured (paper), {unit}]"
    colw = 22
    lines = [header, "-" * len(header)]
    lines.append("clients " + "".join(f"{s:>{colw}}" for s in systems))
    for n in counts:
        cells = []
        for s in systems:
            measured = res.values[s].get(n)
            ref = paper.get(s, {}).get(n)
            cell = f"{measured:8.1f}" if measured is not None else "       -"
            cell += f" ({ref:6.1f})" if ref is not None else "       "
            cells.append(f"{cell:>{colw}}")
        lines.append(f"{n:>7} " + "".join(cells))
    return "\n".join(lines)


def format_metrics(result) -> str:
    """ASCII rendering of a ``RunResult``'s observability section.

    Utilisation table with the bottleneck verdict, then the counters
    that answer "where did the bytes (and the failures) go" — cache
    behaviour, writeback errors, RPC retransmissions.  Counters that
    stayed at zero are suppressed except the failure-path ones, whose
    zeroes are the interesting reassurance.
    """
    m = result.metrics
    if not m:
        return "(no metrics captured — run with metrics=True)"
    lines = [
        f"metrics: {result.arch} / {result.workload} @ {result.n_clients} clients",
    ]
    lines.append("  utilisation over the measured phase:")
    for u in m["utilisation"]:
        lines.append(
            f"    {u['node']:>8}: cpu {u['cpu']:5.1%}  tx {u['nic_tx']:5.1%}  "
            f"rx {u['nic_rx']:5.1%}  disk {u['disk']:5.1%}  -> {u['dominant']}"
        )
    bn = m.get("bottleneck") or {}
    if bn:
        lines.append(
            f"  bottleneck: {bn['component']} on {bn['node']} "
            f"({bn['utilisation']:.1%} utilised)"
        )
    always = ("writeback_errors", "client_timeouts", "retransmissions", "errors")
    interesting = []
    for name, value in m["counters"].items():
        if isinstance(value, dict):  # histogram summary
            if value.get("count"):
                interesting.append((name, value))
        elif value or name.endswith(always):
            interesting.append((name, value))
    lines.append("  counters:")
    for name, value in interesting:
        lines.append(f"    {name} = {value}")
    n_samples = len(m["series"]["t"])
    lines.append(
        f"  sampler: {n_samples} samples at {m['series']['interval']}s intervals"
    )
    return "\n".join(lines)


def canonical_json(obj) -> str:
    """Stable serialisation: sorted keys, no whitespace."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"), default=str)


def result_hash(report: dict) -> str:
    """sha256 of a report's deterministic content.

    ``result_hash`` and ``timing`` keys are excluded: the hash covers
    only what the simulation computed, never how long or with how many
    workers the host computed it — this is the value the parallel-
    equals-serial CI gate compares.
    """
    clean = {k: v for k, v in report.items() if k not in ("result_hash", "timing")}
    return hashlib.sha256(canonical_json(clean).encode()).hexdigest()


def experiment_report(res: ExperimentResult) -> dict:
    """JSON-able sweep report with only deterministic content.

    Everything here is a pure function of the experiment spec: values,
    per-cell makespans/bytes/event counts, shape-check verdicts, and a
    ``result_hash`` over all of it.  Wall-clock and worker telemetry
    belong in a separate ``timing`` section (``ExperimentResult.
    parallel``) that callers may attach *after* hashing.
    """
    exp = res.experiment
    cells = [
        {
            "system": system,
            "n_clients": n,
            "value": exp.value_of(r),
            "makespan": r.makespan,
            "total_bytes": r.total_bytes,
            "events_processed": int(r.engine.get("events_processed", 0))
            if r.engine
            else 0,
        }
        for (system, n), r in sorted(res.raw.items())
    ]
    report = {
        "experiment": exp.id,
        "title": exp.title,
        "metric": exp.metric,
        "scale": res.scale,
        "values": res.values,
        "cells": cells,
    }
    try:
        report["checks"] = [
            {"name": c.name, "ok": c.ok, "detail": c.detail}
            for c in shape_checks(res)
        ]
    except KeyError:
        # Restricted sweep (subset of systems/counts): the shape
        # criteria need the full panel, so a partial run records none.
        report["checks"] = []
    report["result_hash"] = result_hash(report)
    return report


def _at(res: ExperimentResult, system: str, n: int) -> float:
    return res.values[system][n]


def _max_clients(res: ExperimentResult) -> int:
    return max(next(iter(res.values.values())).keys())


def shape_checks(res: ExperimentResult) -> list[ShapeCheck]:
    """The per-figure qualitative criteria from DESIGN.md §3."""
    exp = res.experiment
    checks: list[ShapeCheck] = []
    n_hi = _max_clients(res)

    def add(name: str, ok: bool, detail: str) -> None:
        checks.append(ShapeCheck(name, ok, detail))

    def ratio(a: float, b: float) -> float:
        return a / b if b else float("inf")

    if exp.id in ("fig6a", "fig6b"):
        d, p = _at(res, "direct-pnfs", n_hi), _at(res, "pvfs2", n_hi)
        add(
            "direct matches pvfs2",
            0.85 <= ratio(d, p) <= 1.15,
            f"direct {d:.0f} vs pvfs2 {p:.0f} MB/s at {n_hi} clients",
        )
        t3 = _at(res, "pnfs-3tier", n_hi)
        add(
            "3-tier plateaus below direct",
            t3 < 0.85 * d,
            f"3tier {t3:.0f} vs direct {d:.0f}",
        )
        t3_4 = _at(res, "pnfs-3tier", 4) if 4 in res.values["pnfs-3tier"] else t3
        add(
            "3-tier flat beyond 4 clients",
            abs(t3 - t3_4) <= 0.2 * t3_4,
            f"{t3_4:.0f} @4 vs {t3:.0f} @{n_hi}",
        )
        nf = _at(res, "nfsv4", n_hi)
        nf1 = _at(res, "nfsv4", 1)
        add(
            "nfsv4 flat and lowest",
            abs(nf - nf1) <= 0.3 * max(nf1, 1e-9) and nf <= min(d, p, t3) * 1.05,
            f"nfsv4 {nf1:.0f}..{nf:.0f} MB/s",
        )
    elif exp.id == "fig6c":
        d, p = _at(res, "direct-pnfs", n_hi), _at(res, "pvfs2", n_hi)
        t2 = _at(res, "pnfs-2tier", n_hi)
        add(
            "direct matches pvfs2 on 100 Mbps",
            0.8 <= ratio(d, p) <= 1.25,
            f"direct {d:.0f} vs pvfs2 {p:.0f}",
        )
        add(
            "2-tier at about half throughput",
            0.35 <= ratio(t2, d) <= 0.65,
            f"2tier/direct = {ratio(t2, d):.2f}",
        )
    elif exp.id in ("fig6d", "fig6e"):
        d, p = _at(res, "direct-pnfs", n_hi), _at(res, "pvfs2", n_hi)
        add(
            "pvfs2 collapses with 8 KB blocks",
            ratio(d, p) >= 2.0,
            f"direct/pvfs2 = {ratio(d, p):.1f}x (paper ~3x)",
        )
        nf = _at(res, "nfsv4", n_hi)
        others = min(d, _at(res, "pnfs-2tier", n_hi), _at(res, "pnfs-3tier", n_hi))
        add(
            "NFSv4-based architectures do not collapse like pvfs2",
            others > 1.15 * p and nf >= 0.85 * p,
            "parallel NFS curves above PVFS2 at its small-block peak; "
            f"single-server NFSv4 at its large-block level ({nf:.0f} vs "
            f"pvfs2 {p:.0f})",
        )
    elif exp.id in ("fig7a", "fig7b"):
        d, p = _at(res, "direct-pnfs", n_hi), _at(res, "pvfs2", n_hi)
        add(
            "direct comparable to pvfs2",
            0.8 <= ratio(d, p) <= 1.25,
            f"direct {d:.0f} vs pvfs2 {p:.0f}",
        )
        nf = _at(res, "nfsv4", n_hi)
        add(
            "direct scales far beyond single-server nfsv4",
            ratio(d, nf) >= 3.0,
            f"direct/nfsv4 = {ratio(d, nf):.1f}x (paper ~4.6x)",
        )
        t2, t3 = _at(res, "pnfs-2tier", n_hi), _at(res, "pnfs-3tier", n_hi)
        add(
            "indirect tiers bandwidth-limited below direct",
            t2 < 0.8 * d and t3 < 0.8 * d,
            f"2tier {t2:.0f}, 3tier {t3:.0f} vs direct {d:.0f}",
        )
        if exp.id == "fig7b":
            add(
                "single-file top end: pvfs2 at least at parity with direct",
                p >= 0.9 * d,
                f"pvfs2 {p:.0f} vs direct {d:.0f} at {n_hi} clients "
                "(paper: pvfs2 slightly ahead, 530.7 vs ~505; we measure "
                "near-parity — the loopback tax narrows but does not flip "
                "the gap at benchmark scale)",
            )
    elif exp.id in ("fig7c", "fig7d"):
        d, p = _at(res, "direct-pnfs", n_hi), _at(res, "pvfs2", n_hi)
        add(
            "pvfs2 collapses on 8 KB reads",
            ratio(d, p) >= 4.0,
            f"direct/pvfs2 = {ratio(d, p):.1f}x (paper ~10x)",
        )
    elif exp.id == "fig8a":
        d, p = _at(res, "direct-pnfs", n_hi), _at(res, "pvfs2", n_hi)
        add(
            "direct wins the ATLAS mix",
            d >= p,
            f"direct {d:.0f} vs pvfs2 {p:.0f} (paper ~2.1x — see the "
            "EXPERIMENTS.md deviation note: our rational PVFS2 drain "
            "model does not reproduce its measured collapse)",
        )
    elif exp.id == "fig8b":
        d, p = _at(res, "direct-pnfs", n_hi), _at(res, "pvfs2", n_hi)
        add(
            "runtimes comparable (direct within ~15%)",
            ratio(d, p) <= 1.15,
            f"direct {d:.0f}s vs pvfs2 {p:.0f}s (paper: +5% at 9 clients)",
        )
    elif exp.id == "fig8c":
        d, p = _at(res, "direct-pnfs", n_hi), _at(res, "pvfs2", n_hi)
        add(
            "direct clearly faster on OLTP",
            ratio(d, p) >= 1.2,
            f"direct/pvfs2 = {ratio(d, p):.1f}x (paper ~4.3x — see the "
            "EXPERIMENTS.md deviation note)",
        )
    elif exp.id == "fig8d":
        d, p = _at(res, "direct-pnfs", n_hi), _at(res, "pvfs2", n_hi)
        add(
            "direct at least matches pvfs2 on Postmark",
            ratio(d, p) >= 0.95,
            f"direct/pvfs2 = {ratio(d, p):.1f}x (paper: up to 36x — both "
            "systems share the create/journal substrate in our model; "
            "see the EXPERIMENTS.md deviation note)",
        )
    elif exp.id == "sshbuild":
        raw_d = res.raw[("direct-pnfs", 1)].results[0].extra["phases"]
        raw_p = res.raw[("pvfs2", 1)].results[0].extra["phases"]
        add(
            "direct faster in the build phase",
            raw_d["build"] < raw_p["build"],
            f"build: direct {raw_d['build']:.1f}s vs pvfs2 {raw_p['build']:.1f}s",
        )
        add(
            "direct slower in uncompress+configure (metadata-bound)",
            raw_d["uncompress"] + raw_d["configure"]
            > raw_p["uncompress"] + raw_p["configure"],
            f"meta phases: direct {raw_d['uncompress'] + raw_d['configure']:.1f}s "
            f"vs pvfs2 {raw_p['uncompress'] + raw_p['configure']:.1f}s",
        )
    return checks
