"""RPC tracing: capture every call on the simulated wire and analyse it.

Performance debugging in this repository is about *which RPCs went
where and how long they took*.  Install a tracer around any simulated
activity::

    from repro.tracing import RpcTracer

    with RpcTracer() as tracer:
        sim.run(until=proc)
    print(tracer.summary())

Records carry (start, end, client node, server name, procedure, request
payload bytes, reply payload bytes, error flag) plus the failure-path
annotations added with the fault layer: ``retries`` (how many
retransmissions preceded this exchange) and ``timeout`` (the call gave
up after exhausting its retry budget — no reply was ever received).
The analysis helpers aggregate by procedure and by server — enough to
answer "why is this workload slow" without reading event logs.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Optional

from repro.sim.engine import EngineStats
from repro.sim.stats import nearest_rank

__all__ = [
    "EngineStats",
    "RpcRecord",
    "RpcTracer",
    "current_tracer",
    "engine_summary",
    "nearest_rank",
]

_ACTIVE: Optional["RpcTracer"] = None


def current_tracer() -> Optional["RpcTracer"]:
    """The installed tracer, if any (used by :mod:`repro.rpc`)."""
    return _ACTIVE


def engine_summary(stats: EngineStats) -> str:
    """One-line human summary of an :class:`EngineStats` snapshot.

    Pairs with :meth:`RpcTracer.summary` in benchmark reports: the RPC
    table says where simulated time went, this line says what the
    simulation *cost* to run — the number the fluid-model fast path is
    meant to shrink.
    """
    rate = (
        stats.events_processed / stats.wall_seconds
        if stats.wall_seconds > 0
        else float("inf")
    )
    return (
        f"engine: {stats.events_scheduled} scheduled "
        f"({stats.fast_lane_events} fast-lane / {stats.heap_events} heap), "
        f"{stats.events_processed} processed "
        f"(peak heap {stats.peak_heap}) in {stats.wall_seconds:.3f}s wall "
        f"({rate:,.0f} ev/s)"
    )


@dataclass(frozen=True)
class RpcRecord:
    """One completed RPC exchange (or a final, given-up timeout)."""

    start: float
    end: float
    client: str
    server: str
    proc: str
    req_bytes: int
    reply_bytes: int
    error: bool
    #: Retransmissions that preceded this exchange (0 = first try).
    retries: int = 0
    #: True when the call exhausted its retry budget and raised
    #: :class:`~repro.rpc.RpcTimeout`; no reply was received.
    timeout: bool = False

    @property
    def latency(self) -> float:
        return self.end - self.start


class RpcTracer:
    """Context manager collecting :class:`RpcRecord` entries."""

    def __init__(self):
        self.records: list[RpcRecord] = []

    # -- installation ------------------------------------------------------
    def __enter__(self) -> "RpcTracer":
        global _ACTIVE
        if _ACTIVE is not None:
            raise RuntimeError("an RpcTracer is already installed")
        _ACTIVE = self
        return self

    def __exit__(self, *exc) -> None:
        global _ACTIVE
        _ACTIVE = None

    def record(self, record: RpcRecord) -> None:
        self.records.append(record)

    # -- analysis -------------------------------------------------------------
    def by_proc(self) -> dict[str, list[RpcRecord]]:
        out: dict[str, list[RpcRecord]] = defaultdict(list)
        for r in self.records:
            out[r.proc].append(r)
        return dict(out)

    def by_server(self) -> dict[str, list[RpcRecord]]:
        out: dict[str, list[RpcRecord]] = defaultdict(list)
        for r in self.records:
            out[r.server].append(r)
        return dict(out)

    def total_payload_bytes(self) -> int:
        return sum(r.req_bytes + r.reply_bytes for r in self.records)

    def server_counters(self) -> dict[str, dict[str, int]]:
        """Per-server failure accounting: errors, timeouts, retries.

        ``errors`` counts completed exchanges whose reply carried an
        error status; ``timeouts`` counts calls that gave up without a
        reply; ``retries`` sums retransmissions across all records.
        """
        out: dict[str, dict[str, int]] = {}
        for r in self.records:
            c = out.setdefault(
                r.server, {"calls": 0, "errors": 0, "timeouts": 0, "retries": 0}
            )
            c["calls"] += 1
            if r.timeout:
                c["timeouts"] += 1
            elif r.error:
                c["errors"] += 1
            c["retries"] += r.retries
        return out

    def summary(self) -> str:
        """Per-procedure table: count, latency, volume, failure counts.

        The ``errors`` column counts every call that did not return a
        successful reply — error replies *and* timed-out calls.
        """
        lines = [
            f"{'procedure':>16} {'calls':>7} {'mean ms':>9} {'p95 ms':>9} "
            f"{'MB moved':>9} {'errors':>7} {'retries':>8}"
        ]
        for proc, records in sorted(self.by_proc().items()):
            lat = sorted(r.latency for r in records)
            mean = sum(lat) / len(lat)
            p95 = nearest_rank(lat, 0.95)
            volume = sum(r.req_bytes + r.reply_bytes for r in records) / 1e6
            errors = sum(1 for r in records if r.error or r.timeout)
            retries = sum(r.retries for r in records)
            lines.append(
                f"{proc:>16} {len(records):>7} {mean * 1e3:>9.2f} "
                f"{p95 * 1e3:>9.2f} {volume:>9.1f} {errors:>7} {retries:>8}"
            )
        return "\n".join(lines)
