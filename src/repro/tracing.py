"""RPC tracing: capture every call on the simulated wire and analyse it.

Performance debugging in this repository is about *which RPCs went
where and how long they took*.  Install a tracer around any simulated
activity::

    from repro.tracing import RpcTracer

    with RpcTracer() as tracer:
        sim.run(until=proc)
    print(tracer.summary())

Records carry (start, end, client node, server name, procedure, request
payload bytes, reply payload bytes, error flag).  The analysis helpers
aggregate by procedure and by server — enough to answer "why is this
workload slow" without reading event logs.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Optional

__all__ = ["RpcRecord", "RpcTracer", "current_tracer"]

_ACTIVE: Optional["RpcTracer"] = None


def current_tracer() -> Optional["RpcTracer"]:
    """The installed tracer, if any (used by :mod:`repro.rpc`)."""
    return _ACTIVE


@dataclass(frozen=True)
class RpcRecord:
    """One completed RPC."""

    start: float
    end: float
    client: str
    server: str
    proc: str
    req_bytes: int
    reply_bytes: int
    error: bool

    @property
    def latency(self) -> float:
        return self.end - self.start


class RpcTracer:
    """Context manager collecting :class:`RpcRecord` entries."""

    def __init__(self):
        self.records: list[RpcRecord] = []

    # -- installation ------------------------------------------------------
    def __enter__(self) -> "RpcTracer":
        global _ACTIVE
        if _ACTIVE is not None:
            raise RuntimeError("an RpcTracer is already installed")
        _ACTIVE = self
        return self

    def __exit__(self, *exc) -> None:
        global _ACTIVE
        _ACTIVE = None

    def record(self, record: RpcRecord) -> None:
        self.records.append(record)

    # -- analysis -------------------------------------------------------------
    def by_proc(self) -> dict[str, list[RpcRecord]]:
        out: dict[str, list[RpcRecord]] = defaultdict(list)
        for r in self.records:
            out[r.proc].append(r)
        return dict(out)

    def by_server(self) -> dict[str, list[RpcRecord]]:
        out: dict[str, list[RpcRecord]] = defaultdict(list)
        for r in self.records:
            out[r.server].append(r)
        return dict(out)

    def total_payload_bytes(self) -> int:
        return sum(r.req_bytes + r.reply_bytes for r in self.records)

    def summary(self) -> str:
        """Per-procedure table: count, mean latency, payload volume."""
        lines = [
            f"{'procedure':>16} {'calls':>7} {'mean ms':>9} {'p95 ms':>9} "
            f"{'MB moved':>9} {'errors':>7}"
        ]
        for proc, records in sorted(self.by_proc().items()):
            lat = sorted(r.latency for r in records)
            mean = sum(lat) / len(lat)
            p95 = lat[min(len(lat) - 1, int(0.95 * len(lat)))]
            volume = sum(r.req_bytes + r.reply_bytes for r in records) / 1e6
            errors = sum(r.error for r in records)
            lines.append(
                f"{proc:>16} {len(records):>7} {mean * 1e3:>9.2f} "
                f"{p95 * 1e3:>9.2f} {volume:>9.1f} {errors:>7}"
            )
        return "\n".join(lines)
