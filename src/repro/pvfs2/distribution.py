"""File data distributions: how logical bytes map onto storage servers.

A :class:`Distribution` answers three questions:

* which server stores logical offset *o* and at which *local* offset in
  that server's bstream (``runs`` splits a byte range into per-server
  contiguous runs),
* how large is the logical file given each server's bstream size
  (``logical_size`` — PVFS2 derives file size from its datafiles), and
* how to describe itself portably (``describe`` /
  :func:`distribution_from_description`) — the contract the Direct-pNFS
  layout translator relies on (paper §4.2: the translator does not
  interpret file-system-specific layout information, it forwards the
  aggregation type and parameters).

``SimpleStripe`` is PVFS2's default round-robin striping;
``VarStrip`` expresses arbitrary repeating (server, length) patterns —
the "variable stripe size" scheme the paper cites as needing an
optional aggregation driver.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

__all__ = [
    "Distribution",
    "Run",
    "SimpleStripe",
    "VarStrip",
    "distribution_from_description",
]


@dataclass(frozen=True)
class Run:
    """A maximal contiguous byte run on one server.

    ``logical`` is the file offset of the run's first byte; ``local`` is
    the offset inside the server's bstream; ``length`` is in bytes.
    """

    server: int
    local: int
    length: int
    logical: int


class Distribution(ABC):
    """Mapping between a file's logical bytes and server bstreams."""

    #: registry key used by ``describe``/``distribution_from_description``
    name: str = "abstract"

    def __init__(self, nservers: int):
        if nservers < 1:
            raise ValueError("distribution needs at least one server")
        self.nservers = nservers

    @abstractmethod
    def locate(self, offset: int) -> tuple[int, int, int]:
        """Map logical ``offset`` to ``(server, local_offset, run_remaining)``.

        ``run_remaining`` is the number of bytes from ``offset`` (incl.)
        that stay contiguous on that server.
        """

    @abstractmethod
    def logical_size(self, local_sizes: list[int]) -> int:
        """Logical EOF implied by each server's bstream size."""

    @abstractmethod
    def describe(self) -> dict:
        """Portable description: ``{"type": name, ...params}``."""

    def runs(self, offset: int, nbytes: int) -> list[Run]:
        """Split ``[offset, offset+nbytes)`` into per-server runs in logical order."""
        if offset < 0 or nbytes < 0:
            raise ValueError("offset/nbytes must be >= 0")
        out: list[Run] = []
        pos = offset
        end = offset + nbytes
        while pos < end:
            server, local, remaining = self.locate(pos)
            length = min(remaining, end - pos)
            # Merge with previous run when contiguous on the same server.
            if out and out[-1].server == server and out[-1].local + out[-1].length == local:
                prev = out.pop()
                out.append(Run(server, prev.local, prev.length + length, prev.logical))
            else:
                out.append(Run(server, local, length, pos))
            pos += length
        return out


class SimpleStripe(Distribution):
    """Round-robin striping with a fixed stripe unit (PVFS2 default).

    ``start_server`` rotates which server holds stripe 0.  PVFS2
    rotates the first datafile per file so concurrent streams do not
    convoy on one server; the NFSv4.1 file layout carries the same
    information as ``first_stripe_index``.
    """

    name = "simple_stripe"

    def __init__(self, nservers: int, stripe_size: int, start_server: int = 0):
        super().__init__(nservers)
        if stripe_size < 1:
            raise ValueError("stripe_size must be >= 1")
        if not 0 <= start_server < nservers:
            raise ValueError("start_server out of range")
        self.stripe_size = stripe_size
        self.start_server = start_server

    def locate(self, offset: int) -> tuple[int, int, int]:
        unit = self.stripe_size
        stripe_no = offset // unit
        within = offset - stripe_no * unit
        server = (stripe_no + self.start_server) % self.nservers
        local = (stripe_no // self.nservers) * unit + within
        return server, local, unit - within

    def logical_size(self, local_sizes: list[int]) -> int:
        if len(local_sizes) != self.nservers:
            raise ValueError(
                f"expected {self.nservers} bstream sizes, got {len(local_sizes)}"
            )
        unit = self.stripe_size
        eof = 0
        for server, lsize in enumerate(local_sizes):
            if lsize == 0:
                continue
            # Position of this server in the rotated round-robin order.
            rr = (server - self.start_server) % self.nservers
            last = lsize - 1  # last local byte index on this server
            full = last // unit
            within = last - full * unit
            logical_last = (full * self.nservers + rr) * unit + within
            eof = max(eof, logical_last + 1)
        return eof

    def describe(self) -> dict:
        return {
            "type": self.name,
            "nservers": self.nservers,
            "stripe_size": self.stripe_size,
            "start_server": self.start_server,
        }


class VarStrip(Distribution):
    """Repeating pattern of (server, length) strips of arbitrary sizes.

    ``pattern=[(0, 1 MB), (1, 64 KB), (2, 1 MB)]`` lays the file out in
    repeating cycles of those strips — the Exedra-style variable stripe
    size scheme (paper §4.3, ref [24]).
    """

    name = "varstrip"

    def __init__(self, nservers: int, pattern: list[tuple[int, int]]):
        super().__init__(nservers)
        if not pattern:
            raise ValueError("pattern must be non-empty")
        for server, length in pattern:
            if not 0 <= server < nservers:
                raise ValueError(f"pattern server {server} out of range")
            if length < 1:
                raise ValueError("pattern strip lengths must be >= 1")
        self.pattern = [(int(s), int(l)) for s, l in pattern]
        self.cycle = sum(l for _, l in self.pattern)
        # Per-server bytes contributed by one full cycle, and the local
        # offset of each strip within its server's per-cycle share.
        per_server = [0] * nservers
        self._strip_local_base: list[int] = []
        self._strip_logical_base: list[int] = []
        logical = 0
        for server, length in self.pattern:
            self._strip_local_base.append(per_server[server])
            self._strip_logical_base.append(logical)
            per_server[server] += length
            logical += length
        self.per_cycle = per_server

    def locate(self, offset: int) -> tuple[int, int, int]:
        k, rem = divmod(offset, self.cycle)
        for idx, (server, length) in enumerate(self.pattern):
            if rem < length:
                local = k * self.per_cycle[server] + self._strip_local_base[idx] + rem
                return server, local, length - rem
            rem -= length
        raise AssertionError("unreachable: rem < cycle by construction")

    def logical_size(self, local_sizes: list[int]) -> int:
        if len(local_sizes) != self.nservers:
            raise ValueError(
                f"expected {self.nservers} bstream sizes, got {len(local_sizes)}"
            )
        eof = 0
        for server, lsize in enumerate(local_sizes):
            if lsize == 0 or self.per_cycle[server] == 0:
                continue
            last = lsize - 1
            k, rem = divmod(last, self.per_cycle[server])
            # Find the strip of this server containing per-cycle local `rem`.
            for idx, (s, length) in enumerate(self.pattern):
                if s != server:
                    continue
                base = self._strip_local_base[idx]
                if base <= rem < base + length:
                    logical_last = (
                        k * self.cycle + self._strip_logical_base[idx] + (rem - base)
                    )
                    eof = max(eof, logical_last + 1)
                    break
        return eof

    def describe(self) -> dict:
        return {
            "type": self.name,
            "nservers": self.nservers,
            "pattern": list(self.pattern),
        }


def distribution_from_description(desc: dict) -> Distribution:
    """Rebuild a distribution from ``describe()`` output."""
    kind = desc.get("type")
    if kind == SimpleStripe.name:
        return SimpleStripe(
            desc["nservers"], desc["stripe_size"], desc.get("start_server", 0)
        )
    if kind == VarStrip.name:
        return VarStrip(desc["nservers"], [tuple(p) for p in desc["pattern"]])
    raise ValueError(f"unknown distribution type {kind!r}")
