"""The native PVFS2 client.

Implements :class:`~repro.vfs.api.FileSystemClient` by speaking the
PVFS2 storage protocol directly to the storage daemons and the metadata
protocol to the MDS.  Faithful to the traits the paper attributes to
PVFS2 1.5.1 (§5):

* **no client data cache and no write-back cache** — every application
  read/write becomes storage-protocol requests immediately, so 8 KB
  application I/O pays a full round trip per request (Figures 6d/6e,
  7c/7d);
* **large transfer buffers** — requests move in ``flow_unit`` slices;
* **limited request parallelisation** — at most ``client_max_flight``
  flow units outstanding per client;
* **substantial per-request overhead** — the storage-protocol RPC cost
  model.

A ``local_only`` restriction turns the client into the loopback conduit
used by Direct-pNFS data servers: it refuses I/O that would touch a
non-local server, guaranteeing the data server only ever reads its own
storage node (DESIGN.md §4.1).
"""

from __future__ import annotations

from repro import rpc
from repro.pvfs2.config import Pvfs2Config
from repro.pvfs2.distribution import Distribution, distribution_from_description
from repro.sim.engine import Simulator
from repro.sim.node import Node
from repro.sim.resources import Resource
from repro.vfs.api import (
    FileSystemClient,
    FsError,
    IsDirectory,
    OpenFile,
    Payload,
)

__all__ = ["Pvfs2Client"]


class Pvfs2Client(FileSystemClient):
    """Application-facing PVFS2 client bound to one cluster node."""

    label = "pvfs2"

    def __init__(
        self,
        sim: Simulator,
        node: Node,
        mds,
        daemons: list,
        cfg: Pvfs2Config,
        local_only: bool = False,
    ):
        self.sim = sim
        self.node = node
        self.mds = mds
        self.daemons = daemons
        self.cfg = cfg
        self.local_only = local_only
        self._flight = Resource(sim, cfg.client_max_flight, name=f"{node.name}.pvfs2flight")
        self._mounted = False
        self.bytes_read = 0
        self.bytes_written = 0

    # -- metadata plumbing -------------------------------------------------
    def _mds_call(self, proc: str, args: dict):
        return rpc.call(self.node, self.mds.rpc, proc, args)

    def _require_file(self, info: dict, path: str) -> None:
        if info["is_dir"]:
            raise IsDirectory(path)

    def _dist_of(self, f: OpenFile) -> Distribution:
        dist = f.state.get("dist_obj")
        if dist is None:
            dist = distribution_from_description(f.state["dist"])
            f.state["dist_obj"] = dist
        return dist

    def _open_from_info(self, path: str, info: dict) -> OpenFile:
        f = OpenFile(path=path, handle=info["handle"], client=self)
        f.state["dfiles"] = info["dfiles"]
        f.state["dist"] = info["dist"]
        return f

    # -- FileSystemClient --------------------------------------------------
    def mount(self):
        info, _ = yield from self._mds_call("mount", {})
        self._root = info["root"]
        self._mounted = True
        return info

    def create(self, path: str):
        info, _ = yield from self._mds_call("create", {"path": path})
        return self._open_from_info(path, info)

    def open(self, path: str, write: bool = True):
        info, _ = yield from self._mds_call("lookup", {"path": path})
        self._require_file(info, path)
        return self._open_from_info(path, info)

    def open_by_handle(self, handle: int):
        info, _ = yield from self._mds_call("lookup_handle", {"handle": handle})
        self._require_file(info, f"handle:{handle}")
        return self._open_from_info(f"handle:{handle}", info)

    def setattr(self, path: str, mode=None):
        info, _ = yield from self._mds_call("setattr", {"path": path, "mode": mode})
        return info["attrs"]

    def size_hint(self, handle: int, size):
        yield from self._mds_call("setsize_hint", {"handle": handle, "size": size})

    def _check_local(self, server_idx: int) -> None:
        if self.local_only and self.daemons[server_idx].node is not self.node:
            raise FsError(
                f"local-only PVFS2 conduit on {self.node.name} asked for "
                f"remote server {server_idx}"
            )

    def _unit_io(self, op: str, server: int, args: dict, payload, results, idx):
        yield self._flight.acquire()
        try:
            result, reply = yield from rpc.call(
                self.node, self.daemons[server].rpc, op, args, payload=payload
            )
            if results is not None:
                results[idx] = (result, reply)
        finally:
            self._flight.release()

    def _split_units(self, dist, offset: int, nbytes: int):
        """(server, local, length, src_off, first_of_run) flow units."""
        units: list[tuple[int, int, int, int, bool]] = []
        for run in dist.runs(offset, nbytes):
            self._check_local(run.server)
            pos = 0
            while pos < run.length:
                length = min(self.cfg.flow_unit, run.length - pos)
                units.append(
                    (
                        run.server,
                        run.local + pos,
                        length,
                        run.logical - offset + pos,
                        pos == 0,
                    )
                )
                pos += length
        return units

    def read(self, f: OpenFile, offset: int, nbytes: int):
        dist = self._dist_of(f)
        dfiles = f.state["dfiles"]
        units = self._split_units(dist, offset, nbytes)
        # Request setup: once per server touched by this operation.
        nruns = sum(1 for u in units if u[4])
        if nruns:
            yield from self.node.compute(self.cfg.request_setup_client * nruns)
        results: list = [None] * len(units)
        procs = [
            self.sim.process(
                self._unit_io(
                    "read",
                    server,
                    {
                        "handle": dfiles[server],
                        "offset": local,
                        "nbytes": length,
                        "setup": first,
                    },
                    None,
                    results,
                    i,
                )
            )
            for i, (server, local, length, _src, first) in enumerate(units)
        ]
        if procs:
            yield self.sim.all_of(procs)
        payloads = [reply for (_result, reply) in results]
        # Zero-fill interior shortfalls (sparse regions followed by data).
        last_with_data = -1
        for i, p in enumerate(payloads):
            if p.nbytes > 0:
                last_with_data = i
        for i in range(last_with_data):
            want = units[i][2]
            p = payloads[i]
            if p.nbytes < want:
                pad = (
                    Payload.synthetic(want - p.nbytes)
                    if p.is_synthetic
                    else Payload(b"\x00" * (want - p.nbytes))
                )
                payloads[i] = Payload.concat([p, pad])
        out = Payload.concat(payloads) if payloads else Payload(b"")
        self.bytes_read += out.nbytes
        return out

    def write(self, f: OpenFile, offset: int, payload: Payload):
        dist = self._dist_of(f)
        dfiles = f.state["dfiles"]
        units = self._split_units(dist, offset, payload.nbytes)
        nruns = sum(1 for u in units if u[4])
        if nruns:
            yield from self.node.compute(self.cfg.request_setup_client * nruns)
        procs = [
            self.sim.process(
                self._unit_io(
                    "write",
                    server,
                    {"handle": dfiles[server], "offset": local, "setup": first},
                    payload.slice(src_off, length),
                    None,
                    i,
                )
            )
            for i, (server, local, length, src_off, first) in enumerate(units)
        ]
        if procs:
            yield self.sim.all_of(procs)
        self.bytes_written += payload.nbytes
        # No MDS round trip on the write path: PVFS2 file size lives on
        # the storage servers and is recomputed by getattr.
        return payload.nbytes

    def fsync(self, f: OpenFile):
        dfiles = f.state["dfiles"]
        targets = []
        for server, dfile in enumerate(dfiles):
            if self.local_only and self.daemons[server].node is not self.node:
                continue  # conduit flushes only its local daemon
            targets.append((server, dfile))
        # Posting one flush request per storage server costs the same
        # request setup as any other PVFS2 request — a real burden for
        # fsync-per-transaction workloads (§6.4).
        if targets:
            yield from self.node.compute(self.cfg.request_setup_client * len(targets))
        procs = [
            self.sim.process(
                rpc.call(self.node, self.daemons[server].rpc, "flush", {"handle": dfile})
            )
            for server, dfile in targets
        ]
        if procs:
            yield self.sim.all_of(procs)

    def close(self, f: OpenFile):
        # PVFS2 close is a purely local operation: no cache to flush,
        # durability only on explicit fsync (paper §5).
        f.closed = True
        return None
        yield  # pragma: no cover

    def getattr(self, path: str):
        info, _ = yield from self._mds_call("getattr", {"path": path})
        return info["attrs"]

    def getattr_handle(self, handle: int):
        """getattr by namespace handle (used by NFS exports)."""
        info, _ = yield from self._mds_call("getattr", {"handle": handle})
        return info["attrs"]

    def mkdir(self, path: str):
        info, _ = yield from self._mds_call("mkdir", {"path": path})
        return info

    def readdir(self, path: str):
        names, _ = yield from self._mds_call("readdir", {"path": path})
        return names

    def remove(self, path: str):
        yield from self._mds_call("remove", {"path": path})

    def rename(self, old: str, new: str):
        yield from self._mds_call("rename", {"old": old, "new": new})

    def truncate(self, path: str, size: int):
        """Truncate ``path`` to ``size`` bytes (extension beyond POSIX open)."""
        yield from self._mds_call("truncate", {"path": path, "size": size})
