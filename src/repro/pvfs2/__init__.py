"""PVFS2-like user-level parallel file system (the exported substrate).

The paper's prototype exports PVFS2 1.5.1; this package reimplements the
pieces its evaluation depends on:

* striping distributions (:mod:`repro.pvfs2.distribution`) — round-robin
  ``simple_stripe`` plus ``varstrip``-style patterns,
* storage daemons (:mod:`repro.pvfs2.storage`) with in-memory bstreams,
  a bounded dirty buffer drained by a write-behind flusher, and a fixed
  kernel↔user transfer-buffer pool,
* a metadata server (:mod:`repro.pvfs2.metadata`) that creates datafiles
  on every storage server and computes file sizes by querying them,
* a cacheless client (:mod:`repro.pvfs2.client`) with substantial
  per-request overhead and limited request parallelisation — the traits
  behind every PVFS2 curve in the paper's figures,
* a deployment helper (:mod:`repro.pvfs2.system`).
"""

from repro.pvfs2.config import Pvfs2Config
from repro.pvfs2.distribution import (
    Distribution,
    Run,
    SimpleStripe,
    VarStrip,
    distribution_from_description,
)
from repro.pvfs2.metadata import FileMeta, MetadataServer
from repro.pvfs2.storage import StorageDaemon
from repro.pvfs2.client import Pvfs2Client
from repro.pvfs2.system import Pvfs2System

__all__ = [
    "Distribution",
    "FileMeta",
    "MetadataServer",
    "Pvfs2Client",
    "Pvfs2Config",
    "Pvfs2System",
    "Run",
    "SimpleStripe",
    "StorageDaemon",
    "VarStrip",
    "distribution_from_description",
]
