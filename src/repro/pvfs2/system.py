"""Deployment helper: wire a complete PVFS2 file system.

The paper's testbed runs six storage nodes with one of them doubling as
the metadata manager (§6.1); :class:`Pvfs2System` reproduces that
wiring and hands out clients (native, or local-only conduits for
Direct-pNFS data servers).
"""

from __future__ import annotations

from repro.pvfs2.client import Pvfs2Client
from repro.pvfs2.config import Pvfs2Config
from repro.pvfs2.metadata import MetadataServer
from repro.pvfs2.storage import StorageDaemon
from repro.sim.engine import Simulator
from repro.sim.node import Node

__all__ = ["Pvfs2System"]


class Pvfs2System:
    """A running PVFS2 deployment: daemons + MDS + client factory."""

    def __init__(
        self,
        sim: Simulator,
        storage_nodes: list[Node],
        cfg: Pvfs2Config | None = None,
        mds_node: Node | None = None,
    ):
        if not storage_nodes:
            raise ValueError("need at least one storage node")
        self.sim = sim
        self.cfg = cfg or Pvfs2Config()
        self.storage_nodes = storage_nodes
        self.daemons = [
            StorageDaemon(sim, node, self.cfg) for node in storage_nodes
        ]
        # One storage node doubles as the metadata manager by default.
        self.mds_node = mds_node if mds_node is not None else storage_nodes[0]
        self.mds = MetadataServer(sim, self.mds_node, self.daemons, self.cfg)

    def make_client(self, node: Node, local_only: bool = False) -> Pvfs2Client:
        """A PVFS2 client running on ``node``.

        ``local_only=True`` builds the loopback conduit used by
        Direct-pNFS data servers: it may only touch the daemon
        colocated on ``node``, and its request-posting path is cheaper
        (no BMI/TCP endpoint work — the conduit feeds a same-node
        daemon through the loopback device).
        """
        cfg = self.cfg
        if local_only:
            from dataclasses import replace

            cfg = replace(
                cfg,
                request_setup_client=cfg.request_setup_client * 0.4,
            )
        return Pvfs2Client(
            self.sim, node, self.mds, self.daemons, cfg, local_only=local_only
        )

    def daemon_on(self, node: Node) -> StorageDaemon:
        """The storage daemon colocated with ``node``."""
        for daemon in self.daemons:
            if daemon.node is node:
                return daemon
        raise KeyError(f"no storage daemon on {node.name}")

    def server_index_of(self, node: Node) -> int:
        """Distribution server index of the daemon on ``node``."""
        for i, daemon in enumerate(self.daemons):
            if daemon.node is node:
                return i
        raise KeyError(f"no storage daemon on {node.name}")
