"""PVFS2 storage daemon ("trove" + "flow" in real PVFS2).

Each daemon owns a set of *bstreams* — the local byte streams backing
one datafile each — kept in memory (the paper's read experiments use a
warm server cache) and drained to disk by a write-behind flusher.

Two bounded pools shape the performance curves:

* ``flow_pool`` — the fixed kernel↔user transfer-buffer pool.  Every
  read/write request holds one buffer while the daemon copies data
  between the request and the bstream; this is the "fixed number of
  buffers to transfer data between the kernel and the user-level
  storage daemon" that caps single-file read throughput (§6.2).
* ``dirty_tokens`` — the in-memory dirty-data bound.  Writes admit
  instantly until the watermark, then back-pressure to disk speed,
  which makes sustained large writes disk-bound as in Figure 6.

Durability: data reaches the platter via the flusher; a ``flush``
request (client fsync) blocks until the daemon's dirty backlog is
drained, matching "PVFS2 buffers data on storage nodes and sends the
data to stable storage only when necessary or at the application's
request" (§5).
"""

from __future__ import annotations

from repro.nfs.intervals import IntervalSet
from repro.obs import spans as obs_spans
from repro.pvfs2.config import Pvfs2Config
from repro.rpc import RpcServer
from repro.sim.engine import Event, Simulator
from repro.sim.node import Node
from repro.sim.resources import Resource
from repro.vfs.api import NoEntry, Payload
from repro.vfs.filedata import FileData

__all__ = ["StorageDaemon"]

#: Max bytes the flusher coalesces into one disk request.
FLUSH_COALESCE = 4 * 1024 * 1024

#: Virtual disk address stride between bstreams (forces repositioning
#: when the flusher alternates between files).
BSTREAM_STRIDE = 1 << 34

#: Extra user-level copy cost (s/byte) for the daemon's kernel↔user hop.
DAEMON_COPY_PER_BYTE = 2.0e-9


class StorageDaemon:
    """One storage node's data service."""

    def __init__(self, sim: Simulator, node: Node, cfg: Pvfs2Config, name: str = ""):
        self.sim = sim
        self.node = node
        self.cfg = cfg
        self.name = name or f"{node.name}.pvfs2d"
        self.rpc = RpcServer(sim, node, self.name, cfg.costs, threads=cfg.storage_threads)
        self.flow_pool = Resource(sim, cfg.flow_buffers, name=f"{self.name}.flow")
        self.dirty_tokens = Resource(
            sim, cfg.dirty_watermark, name=f"{self.name}.dirty"
        )
        self.bstreams: dict[int, FileData] = {}
        #: Byte ranges known to have reached the disk (per bstream) —
        #: the survivors of a crash.
        self._persisted: dict[int, IntervalSet] = {}
        self.crashes = 0
        ndisks = max(1, len(node.disks))
        #: Dirty byte ranges per disk, per bstream — *interval sets*, so
        #: overwriting already-dirty bytes costs nothing extra (page-
        #: cache semantics) and contiguous arrivals coalesce for free.
        self._dirty: list[dict[int, IntervalSet]] = [{} for _ in range(ndisks)]
        self._pending_bytes = 0
        self._dirty_signal: list[Event | None] = [None] * ndisks
        self._drain_waiters: list[Event] = []
        self.bytes_read = 0
        self.bytes_written = 0
        self._journal_lock = Resource(sim, 1, name=f"{self.name}.journal")
        self._journal_seq = 0
        for proc, handler in [
            ("read", self._h_read),
            ("write", self._h_write),
            ("flush", self._h_flush),
            ("create_bstream", self._h_create),
            ("remove_bstream", self._h_remove),
            ("bstream_size", self._h_size),
            ("truncate_bstream", self._h_truncate),
        ]:
            self.rpc.register(proc, handler)
        for disk_idx in range(ndisks):
            sim.process(
                self._flusher(disk_idx), name=f"{self.name}.flusher{disk_idx}"
            )

    # -- helpers ---------------------------------------------------------
    def _bstream(self, handle: int, create: bool = False) -> FileData:
        fd = self.bstreams.get(handle)
        if fd is None:
            if not create:
                raise NoEntry(f"{self.name}: bstream {handle}")
            fd = FileData()
            self.bstreams[handle] = fd
        return fd

    def _disk_index(self, handle: int) -> int:
        """Bstreams are spread over the node's disks (two in 3-tier)."""
        return handle % max(1, len(self.node.disks))

    def _disk_for(self, handle: int):
        return self.node.disks[self._disk_index(handle)]

    @property
    def dirty_backlog(self) -> int:
        """Bytes accepted but not yet on the platter."""
        return self._pending_bytes

    # -- handlers ----------------------------------------------------------
    def _journal(self):
        """Synchronous dspace metadata write (trove/BDB sync)."""
        if not self.cfg.metadata_sync or not self.node.disks:
            return
        yield self._journal_lock.acquire()
        try:
            offset = (1 << 41) + self._journal_seq * self.cfg.journal_io_bytes
            self._journal_seq += 1
            yield from self.node.disks[0].io(
                offset, self.cfg.journal_io_bytes, write=True
            )
        finally:
            self._journal_lock.release()

    def _h_create(self, args, payload):
        self._bstream(args["handle"], create=True)
        yield from self._journal()
        return None, None

    def _h_remove(self, args, payload):
        self.bstreams.pop(args["handle"], None)
        self._persisted.pop(args["handle"], None)
        yield from self._journal()
        return None, None

    def _h_size(self, args, payload):
        fd = self.bstreams.get(args["handle"])
        return (fd.size if fd is not None else 0), None
        yield  # pragma: no cover

    def _h_truncate(self, args, payload):
        self._bstream(args["handle"], create=True).truncate(args["size"])
        return None, None
        yield  # pragma: no cover

    def _h_read(self, args, payload):
        handle, offset, nbytes = args["handle"], args["offset"], args["nbytes"]
        if args.get("setup"):
            yield from self.node.compute(self.cfg.request_setup_server)
        fd = self.bstreams.get(handle)
        if fd is None:
            return 0, Payload(b"")
        yield self.flow_pool.acquire()
        try:
            if self.cfg.cold_reads:
                yield from self._disk_for(handle).io(
                    handle * BSTREAM_STRIDE + offset, nbytes, write=False
                )
            data = fd.read(offset, nbytes)
            yield from self.node.compute(DAEMON_COPY_PER_BYTE * data.nbytes)
        finally:
            self.flow_pool.release()
        self.bytes_read += data.nbytes
        return data.nbytes, data

    def _h_write(self, args, payload):
        handle, offset = args["handle"], args["offset"]
        assert payload is not None, "write carries a payload"
        nbytes = payload.nbytes
        if args.get("setup"):
            yield from self.node.compute(
                self.cfg.request_setup_server + self.cfg.request_setup_write_extra
            )
        delta = 0
        yield self.flow_pool.acquire()
        try:
            yield from self.node.compute(DAEMON_COPY_PER_BYTE * nbytes)
            disk_idx = self._disk_index(handle)
            # Overwrites of already-dirty bytes are free (the page is
            # rewritten in memory); only newly-dirtied bytes need
            # admission tokens.  The token acquire yields, and the
            # flusher may drain (and even drop) this bstream's interval
            # set meanwhile — so re-fetch and re-count until settled,
            # then mutate with no yields in between.
            acquired = 0
            while True:
                ivs = self._dirty[disk_idx].setdefault(handle, IntervalSet())
                overlap = sum(
                    e - s for s, e in ivs.runs_in(offset, offset + nbytes)
                )
                need = (nbytes - overlap) - acquired
                if need <= 0:
                    break
                grant = min(need, self.dirty_tokens.capacity)
                yield self.dirty_tokens.acquire(grant)
                acquired += grant
            self._bstream(handle, create=True).write(offset, payload)
            if nbytes > 0:
                before = ivs.total
                ivs.add(offset, offset + nbytes)
                delta = ivs.total - before
                self._pending_bytes += delta
                if acquired > delta:
                    self.dirty_tokens.release(acquired - delta)
        finally:
            self.flow_pool.release()
        if delta > 0:
            if self._dirty_signal[disk_idx] is not None:
                self._dirty_signal[disk_idx].succeed()
                self._dirty_signal[disk_idx] = None
        self.bytes_written += nbytes
        return nbytes, None

    def persisted_bytes(self, handle: int) -> int:
        """Bytes of ``handle`` known to be on a platter (introspection)."""
        ivs = self._persisted.get(handle)
        return ivs.total if ivs is not None else 0

    def crash(self) -> None:
        """Fail-stop crash: all buffered (non-persisted) data is lost.

        The daemon restarts immediately with only the on-disk state —
        the failure mode §5's durability discussion trades against:
        "many scientific applications can re-create lost data, so PVFS2
        buffers data on storage nodes".  In-flight flush barriers fail
        with an I/O error that propagates to the caller's fsync.
        """
        self.crashes += 1
        for handle, fd in self.bstreams.items():
            survived = self._persisted.get(handle, IntervalSet())
            # Lost ranges read back as zeros after the restart.
            for s, e in survived.gaps(0, fd.size):
                if fd.exact:
                    fd.write(s, Payload(b"\x00" * (e - s)))
        # Dirty buffers are gone; admission tokens return to the pool.
        for per_disk in self._dirty:
            per_disk.clear()
        if self.dirty_tokens.in_use:
            self.dirty_tokens.release(self.dirty_tokens.in_use)
        self._pending_bytes = 0
        waiters, self._drain_waiters = self._drain_waiters, []
        from repro.vfs.api import FsError

        for ev in waiters:
            ev.fail(FsError(f"{self.name}: storage daemon crashed during flush"))

    def _h_flush(self, args, payload):
        """Barrier: returns once the dirty backlog fits the disk's own
        write cache (ATA drives acknowledge from cache — see config).
        Issuing the flush costs trove a request-setup's worth of work."""
        yield from self.node.compute(self.cfg.request_setup_server)
        if self._pending_bytes <= self.cfg.disk_cache_bytes:
            return None, None
        ev = Event(self.sim)
        self._drain_waiters.append(ev)
        yield ev
        return None, None

    # -- write-behind ------------------------------------------------------
    def _flusher(self, disk_idx: int):
        dirty = self._dirty[disk_idx]
        sweep_pos: tuple[int, int] = (0, 0)
        while True:
            while not any(dirty.values()):
                self._dirty_signal[disk_idx] = Event(self.sim)
                yield self._dirty_signal[disk_idx]
            # C-SCAN elevator over (bstream, offset): keep sweeping
            # forward from the last serviced position, wrap when past
            # the end.  Interval sets have already merged contiguous
            # arrivals, so each pick is a maximal sequential run.
            candidates = [
                (h, next(iter(ivs))[0]) for h, ivs in dirty.items() if ivs
            ]
            ahead = [c for c in candidates if c >= sweep_pos]
            handle, start = min(ahead) if ahead else min(candidates)
            ivs = dirty[handle]
            start, end = next(iter(ivs))
            nbytes = min(end - start, FLUSH_COALESCE)
            ivs.remove(start, start + nbytes)
            if not ivs:
                del dirty[handle]
            sweep_pos = (handle, start + nbytes)
            col = obs_spans.ACTIVE
            span = (
                col.begin(
                    "flush", "storage", self.name,
                    handle=handle, offset=start, nbytes=nbytes,
                )
                if col is not None
                else None
            )
            try:
                yield from self._disk_for(handle).io(
                    handle * BSTREAM_STRIDE + start, nbytes, write=True
                )
            finally:
                if span is not None:
                    col.end(span)
            self._persisted.setdefault(handle, IntervalSet()).add(
                start, start + nbytes
            )
            release = min(nbytes, self.dirty_tokens.in_use)
            if release > 0:
                self.dirty_tokens.release(release)
            # The clamps guard the crash path: a crash mid-io zeroes the
            # accounting while this extent is still on the arm.
            self._pending_bytes = max(0, self._pending_bytes - nbytes)
            if self._pending_bytes <= self.cfg.disk_cache_bytes and self._drain_waiters:
                waiters, self._drain_waiters = self._drain_waiters, []
                for ev in waiters:
                    ev.succeed()
