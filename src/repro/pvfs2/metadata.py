"""PVFS2 metadata server.

Owns the namespace and per-file metadata (datafile handles + data
distribution).  Two behaviours the paper leans on are modelled
faithfully:

* **file creation is expensive**: creating a file allocates a datafile
  on *every* storage server (one RPC each) — the reason metadata-heavy
  phases (Postmark, SSH-build configure) are slow on parallel file
  systems (§6.4.3);
* **file size is distributed**: getattr on a file queries every storage
  server for its bstream size and combines them through the
  distribution — the metadata "ripple effect" of §3.4.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro import rpc
from repro.pvfs2.config import Pvfs2Config
from repro.pvfs2.distribution import Distribution, SimpleStripe
from repro.sim.engine import Simulator
from repro.sim.node import Node
from repro.vfs.api import IsDirectory, NoEntry
from repro.vfs.namespace import Namespace

__all__ = ["FileMeta", "MetadataServer"]


@dataclass
class FileMeta:
    """Metadata of one regular file."""

    ns_handle: int
    dfiles: list[int]
    dist_desc: dict = field(default_factory=dict)
    dist: Optional[Distribution] = None


class MetadataServer:
    """The PVFS2 metadata manager (one per file system in the paper)."""

    def __init__(
        self,
        sim: Simulator,
        node: Node,
        daemons: list,
        cfg: Pvfs2Config,
        name: str = "",
    ):
        if not daemons:
            raise ValueError("need at least one storage daemon")
        self.sim = sim
        self.node = node
        self.daemons = daemons
        self.cfg = cfg
        self.name = name or f"{node.name}.pvfs2-mds"
        self.rpc = rpc.RpcServer(
            sim, node, self.name, cfg.meta_costs, threads=cfg.storage_threads
        )
        self.namespace = Namespace()
        self.files: dict[int, FileMeta] = {}
        self._next_dfile = 1
        self._created_files = 0
        from repro.sim.resources import Resource as _Resource

        self._journal_lock = _Resource(sim, 1, name=f"{self.name}.journal")
        self._journal_seq = 0
        for proc, handler in [
            ("mount", self._h_mount),
            ("lookup", self._h_lookup),
            ("lookup_handle", self._h_lookup_handle),
            ("setattr", self._h_setattr),
            ("create", self._h_create),
            ("getattr", self._h_getattr),
            ("setsize_hint", self._h_setsize_hint),
            ("mkdir", self._h_mkdir),
            ("readdir", self._h_readdir),
            ("remove", self._h_remove),
            ("rename", self._h_rename),
            ("truncate", self._h_truncate),
        ]:
            self.rpc.register(proc, handler)

    # -- helpers -----------------------------------------------------------
    def default_distribution(self) -> Distribution:
        return SimpleStripe(len(self.daemons), self.cfg.stripe_size)

    def _file_meta(self, ns_handle: int) -> FileMeta:
        try:
            return self.files[ns_handle]
        except KeyError:
            raise NoEntry(f"file meta for handle {ns_handle}") from None

    def _journal(self):
        """Synchronous metadata journal write (BDB sync, see config)."""
        if not self.cfg.metadata_sync or not self.node.disks:
            return
        yield self._journal_lock.acquire()
        try:
            offset = (1 << 40) + self._journal_seq * self.cfg.journal_io_bytes
            self._journal_seq += 1
            yield from self.node.disks[0].io(
                offset, self.cfg.journal_io_bytes, write=True
            )
        finally:
            self._journal_lock.release()

    def _daemon_call(self, server_idx: int, proc: str, args: dict):
        daemon = self.daemons[server_idx]
        return rpc.call(self.node, daemon.rpc, proc, args)

    def _query_sizes(self, meta: FileMeta):
        """Gather bstream sizes from every storage server (parallel)."""
        procs = [
            self.sim.process(
                self._daemon_call(i, "bstream_size", {"handle": dfile})
            )
            for i, dfile in enumerate(meta.dfiles)
        ]
        replies = yield self.sim.all_of(procs)
        return [size for size, _payload in replies]

    def _entry_info(self, entry) -> dict:
        info = {
            "handle": entry.handle,
            "is_dir": entry.is_dir,
            "attrs": entry.attrs.copy(),
        }
        if not entry.is_dir:
            meta = self._file_meta(entry.handle)
            info["dfiles"] = list(meta.dfiles)
            info["dist"] = dict(meta.dist_desc)
        return info

    # -- handlers ----------------------------------------------------------
    def _h_mount(self, args, payload):
        return {"root": self.namespace.root.handle, "nservers": len(self.daemons)}, None
        yield  # pragma: no cover

    def _h_lookup(self, args, payload):
        entry = self.namespace.resolve(args["path"])
        return self._entry_info(entry), None
        yield  # pragma: no cover

    def _h_lookup_handle(self, args, payload):
        entry = self.namespace.by_handle(args["handle"])
        return self._entry_info(entry), None
        yield  # pragma: no cover

    def _h_setattr(self, args, payload):
        entry = self.namespace.resolve(args["path"])
        if args.get("mode") is not None:
            entry.attrs.mode = args["mode"]
        entry.attrs.ctime = self.sim.now
        return self._entry_info(entry), None
        yield  # pragma: no cover

    def _h_create(self, args, payload):
        path = args["path"]
        dist = args.get("dist")
        if dist is None:
            # Rotate the first datafile per file so concurrent streams
            # spread over the storage servers instead of convoying.
            dist = SimpleStripe(
                len(self.daemons),
                self.cfg.stripe_size,
                start_server=self._created_files % len(self.daemons),
            ).describe()
        self._created_files += 1
        entry = self.namespace.create(path, is_dir=False, now=self.sim.now)
        dfiles = []
        for _ in self.daemons:
            dfiles.append(self._next_dfile)
            self._next_dfile += 1
        meta = FileMeta(ns_handle=entry.handle, dfiles=dfiles, dist_desc=dist)
        self.files[entry.handle] = meta
        yield from self._journal()
        # Allocate a datafile on every storage server — the costly part.
        procs = [
            self.sim.process(self._daemon_call(i, "create_bstream", {"handle": d}))
            for i, d in enumerate(dfiles)
        ]
        yield self.sim.all_of(procs)
        return self._entry_info(entry), None

    def _h_getattr(self, args, payload):
        if "handle" in args:
            entry = self.namespace.by_handle(args["handle"])
        else:
            entry = self.namespace.resolve(args["path"])
        attrs = entry.attrs.copy()
        if not entry.is_dir:
            meta = self._file_meta(entry.handle)
            if meta.dist is None:
                from repro.pvfs2.distribution import distribution_from_description

                meta.dist = distribution_from_description(meta.dist_desc)
            sizes = yield from self._query_sizes(meta)
            attrs.size = meta.dist.logical_size(sizes)
        info = self._entry_info(entry)
        info["attrs"] = attrs
        return info, None

    def _h_setsize_hint(self, args, payload):
        """Record an mtime/size hint after client I/O (cheap, local)."""
        entry = self.namespace.by_handle(args["handle"])
        entry.attrs.mtime = self.sim.now
        if args.get("size") is not None:
            entry.attrs.size = max(entry.attrs.size, args["size"])
        return None, None
        yield  # pragma: no cover

    def _h_mkdir(self, args, payload):
        entry = self.namespace.create(args["path"], is_dir=True, now=self.sim.now)
        yield from self._journal()
        return self._entry_info(entry), None

    def _h_readdir(self, args, payload):
        return self.namespace.listdir(args["path"]), None
        yield  # pragma: no cover

    def _h_remove(self, args, payload):
        entry = self.namespace.resolve(args["path"])
        if entry.is_dir:
            self.namespace.remove(args["path"], now=self.sim.now)
            yield from self._journal()
            return None, None
        meta = self.files.pop(entry.handle, None)
        self.namespace.remove(args["path"], now=self.sim.now)
        yield from self._journal()
        if meta is not None:
            procs = [
                self.sim.process(self._daemon_call(i, "remove_bstream", {"handle": d}))
                for i, d in enumerate(meta.dfiles)
            ]
            yield self.sim.all_of(procs)
        return None, None

    def _h_rename(self, args, payload):
        self.namespace.rename(args["old"], args["new"], now=self.sim.now)
        yield from self._journal()
        return None, None

    def _h_truncate(self, args, payload):
        entry = self.namespace.resolve(args["path"])
        if entry.is_dir:
            raise IsDirectory(args["path"])
        meta = self._file_meta(entry.handle)
        if meta.dist is None:
            from repro.pvfs2.distribution import distribution_from_description

            meta.dist = distribution_from_description(meta.dist_desc)
        size = args["size"]
        # Per-server local sizes implied by truncating to `size`.
        local_end = [0] * len(meta.dfiles)
        if size > 0:
            for run in meta.dist.runs(0, size):
                local_end[run.server] = max(local_end[run.server], run.local + run.length)
        procs = [
            self.sim.process(
                self._daemon_call(
                    i, "truncate_bstream", {"handle": d, "size": local_end[i]}
                )
            )
            for i, d in enumerate(meta.dfiles)
        ]
        yield self.sim.all_of(procs)
        entry.attrs.size = size
        # Deterministic attribute bump: truncate is a metadata change,
        # so clients revalidating by mtime must see it move.
        entry.attrs.mtime = self.sim.now
        entry.attrs.ctime = self.sim.now
        return None, None
