"""PVFS2 tunables and cost model.

Defaults reproduce the character of PVFS2 1.5.1 as the paper describes
it (§5): large transfer buffers, limited request parallelisation,
substantial per-request overhead, no client data or write-back cache.
The calibrated testbed values are set in :mod:`repro.cluster.testbed`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.rpc import RpcCosts

__all__ = ["Pvfs2Config"]


@dataclass(frozen=True)
class Pvfs2Config:
    """All PVFS2 knobs in one place.

    ``flow_unit`` is the transfer-buffer granularity between client and
    storage daemon; ``flow_buffers`` bounds the *per-daemon* buffer pool
    (the fixed kernel↔user buffer pool of §6.2 that caps single-file
    read throughput); ``client_max_flight`` bounds one client's
    outstanding flow units (limited request parallelisation);
    ``dirty_watermark`` is the storage daemon's in-memory dirty-data
    bound — writes beyond it are back-pressured to disk speed.
    """

    stripe_size: int = 2 * 1024 * 1024
    flow_unit: int = 256 * 1024
    flow_buffers: int = 8
    client_max_flight: int = 8
    dirty_watermark: int = 64 * 1024 * 1024
    storage_threads: int = 16
    cold_reads: bool = False  # charge disk on reads (ablation; paper uses warm cache)
    #: Write-cache/queue allowance: a flush barrier returns once the
    #: backlog is at or below this.  2002-era ATA drives acknowledge
    #: writes from their on-drive cache and 2.6.17 ext3 issued no write
    #: barriers (§6.1 hardware), so "stable" meant handed to the
    #: storage stack — small-commit workloads (OLTP, Postmark) ride
    #: this allowance, while multi-hundred-MB streaming drains still
    #: wait for the platters.
    disk_cache_bytes: int = 16 * 1024 * 1024
    #: PVFS2 1.5 syncs metadata mutations (dspace create/remove) to its
    #: Berkeley-DB store: every create/remove/rename journals a small
    #: synchronous write on the metadata and storage servers' disks —
    #: the reason file creation is expensive on the parallel FS
    #: (paper §6.4.3) and Postmark collapses.
    metadata_sync: bool = True
    journal_io_bytes: int = 4096

    #: Per-flow-unit RPC costs (cheap: units pipeline within a request).
    costs: RpcCosts = field(
        default_factory=lambda: RpcCosts(
            client_per_call=60e-6,
            client_per_byte=4.5e-9,
            server_per_call=60e-6,
            server_per_byte=5.0e-9,
        )
    )
    #: Per-*request* setup, charged once per (I/O op, server) pair —
    #: the "substantial per-request overhead" of §5: request posting,
    #: flow establishment, user-level daemon scheduling.  Writes pay an
    #: additional two-phase acknowledgement/admission cost.
    request_setup_client: float = 900e-6
    request_setup_server: float = 500e-6
    request_setup_write_extra: float = 250e-6
    #: Metadata-operation RPC costs.
    meta_costs: RpcCosts = field(
        default_factory=lambda: RpcCosts(
            client_per_call=120e-6,
            client_per_byte=2e-9,
            server_per_call=150e-6,
            server_per_byte=2e-9,
        )
    )

    def __post_init__(self):
        if self.stripe_size < 1 or self.flow_unit < 1:
            raise ValueError("stripe_size and flow_unit must be >= 1")
        if self.flow_buffers < 1 or self.client_max_flight < 1:
            raise ValueError("buffer counts must be >= 1")
        if self.dirty_watermark < self.flow_unit:
            raise ValueError("dirty_watermark must hold at least one flow unit")
