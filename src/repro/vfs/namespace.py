"""Server-side directory tree.

Used by the PVFS2 metadata server (and, through it, by every NFS/pNFS
metadata server in the reproduction) to manage the namespace: path
resolution, create/remove/rename, and directory listings.  Entries map
names to opaque per-filesystem object identifiers ("handles").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.vfs.api import (
    Exists,
    FileAttributes,
    InvalidArgument,
    IsDirectory,
    NoEntry,
    NotDirectory,
    split_path,
)

__all__ = ["Namespace", "NsEntry"]


@dataclass
class NsEntry:
    """One namespace object: a directory (with children) or a file."""

    handle: int
    attrs: FileAttributes
    children: Optional[dict[str, "NsEntry"]] = None  # None for files
    parent: Optional["NsEntry"] = None
    name: str = ""

    @property
    def is_dir(self) -> bool:
        return self.children is not None


class Namespace:
    """A rooted directory tree handing out monotonically increasing handles."""

    def __init__(self):
        self._next_handle = 2  # handle 1 is the root
        self.root = NsEntry(
            handle=1,
            attrs=FileAttributes(is_dir=True, mode=0o755, nlink=2),
            children={},
            name="/",
        )
        self._by_handle: dict[int, NsEntry] = {1: self.root}

    def _alloc_handle(self) -> int:
        h = self._next_handle
        self._next_handle += 1
        return h

    # -- resolution ------------------------------------------------------
    def resolve(self, path: str) -> NsEntry:
        """Resolve an absolute path; raises :class:`NoEntry`/:class:`NotDirectory`."""
        entry = self.root
        for part in split_path(path):
            if not entry.is_dir:
                raise NotDirectory(f"{entry.name!r} in {path!r}")
            assert entry.children is not None
            try:
                entry = entry.children[part]
            except KeyError:
                raise NoEntry(path) from None
        return entry

    def resolve_parent(self, path: str) -> tuple[NsEntry, str]:
        """Resolve the parent directory of ``path``; returns (dir, leaf)."""
        parts = split_path(path)
        if not parts:
            raise IsDirectory("cannot operate on the root")
        parent_path = "/" + "/".join(parts[:-1])
        parent = self.resolve(parent_path)
        if not parent.is_dir:
            raise NotDirectory(parent_path)
        return parent, parts[-1]

    def by_handle(self, handle: int) -> NsEntry:
        """Look up an entry by handle; raises :class:`NoEntry` if stale."""
        try:
            return self._by_handle[handle]
        except KeyError:
            raise NoEntry(f"handle {handle}") from None

    def path_of(self, entry: NsEntry) -> str:
        """Reconstruct an entry's absolute path."""
        parts: list[str] = []
        node: Optional[NsEntry] = entry
        while node is not None and node is not self.root:
            parts.append(node.name)
            node = node.parent
        return "/" + "/".join(reversed(parts))

    # -- mutation ----------------------------------------------------------
    def create(self, path: str, is_dir: bool = False, now: float = 0.0) -> NsEntry:
        """Create a file or directory; raises :class:`Exists` on conflict."""
        parent, leaf = self.resolve_parent(path)
        assert parent.children is not None
        if leaf in parent.children:
            raise Exists(path)
        attrs = FileAttributes(
            is_dir=is_dir,
            mode=0o755 if is_dir else 0o644,
            mtime=now,
            ctime=now,
            nlink=2 if is_dir else 1,
        )
        entry = NsEntry(
            handle=self._alloc_handle(),
            attrs=attrs,
            children={} if is_dir else None,
            parent=parent,
            name=leaf,
        )
        parent.children[leaf] = entry
        parent.attrs.mtime = now
        self._by_handle[entry.handle] = entry
        return entry

    def remove(self, path: str, now: float = 0.0) -> NsEntry:
        """Unlink a file or *empty* directory; returns the removed entry."""
        parent, leaf = self.resolve_parent(path)
        assert parent.children is not None
        try:
            entry = parent.children[leaf]
        except KeyError:
            raise NoEntry(path) from None
        if entry.is_dir and entry.children:
            raise FsErrorNotEmpty(path)
        del parent.children[leaf]
        parent.attrs.mtime = now
        del self._by_handle[entry.handle]
        entry.parent = None
        return entry

    def rename(self, old: str, new: str, now: float = 0.0) -> NsEntry:
        """Move ``old`` to ``new``, replacing a non-directory target."""
        entry = self.resolve(old)
        new_parent, new_leaf = self.resolve_parent(new)
        assert new_parent.children is not None
        if entry.is_dir:
            # Renaming a directory under itself would detach a cycle
            # from the tree (EINVAL, as rename(2) specifies).
            node: Optional[NsEntry] = new_parent
            while node is not None:
                if node is entry:
                    raise InvalidArgument(f"rename {old!r} into itself: {new!r}")
                node = node.parent
        existing = new_parent.children.get(new_leaf)
        if existing is entry:
            # Renaming a path onto itself is a no-op (POSIX rename(2));
            # falling through would drop the entry from _by_handle.
            return entry
        if existing is not None:
            if existing.is_dir:
                raise Exists(new)
            if entry.is_dir:
                # A directory cannot replace a file (ENOTDIR per
                # rename(2)); silently unlinking the file here would
                # lose it without any remove ever being issued.
                raise NotDirectory(new)
            del self._by_handle[existing.handle]
            existing.parent = None
        old_parent, old_leaf = self.resolve_parent(old)
        assert old_parent.children is not None
        del old_parent.children[old_leaf]
        new_parent.children[new_leaf] = entry
        entry.parent = new_parent
        entry.name = new_leaf
        old_parent.attrs.mtime = now
        new_parent.attrs.mtime = now
        return entry

    def listdir(self, path: str) -> list[str]:
        """Sorted child names of directory ``path``."""
        entry = self.resolve(path)
        if not entry.is_dir:
            raise NotDirectory(path)
        assert entry.children is not None
        return sorted(entry.children)


class FsErrorNotEmpty(Exists):
    """Directory not empty (ENOTEMPTY) — a flavour of Exists."""
