"""Sparse file-content store with graceful degradation to size-only mode.

Functional tests write real bytes and read them back exactly; benchmark
workloads write synthetic payloads hundreds of megabytes long.  A
:class:`FileData` starts *exact* (a real zero-filled buffer) and drops
to size-only accounting as soon as a synthetic payload arrives or the
file outgrows the materialisation cap; from then on reads return
synthetic payloads of the correct length.  The switch is one-way and
per-file, so small functional files keep full fidelity even in runs
that also move synthetic gigabytes.

Zero-copy reads
---------------
:meth:`FileData.read` does not copy: it returns a
:class:`~repro.vfs.api.Payload` borrowing a ``memoryview`` into the
store's buffer.  The store remembers every outstanding view (weakly)
and freezes them — materialising their bytes — immediately before any
operation that mutates or resizes the buffer, so a payload always
observes the buffer contents as of its ``read`` call, exactly as the
copying implementation did.  Readers that never inspect the bytes
(every benchmark workload) never pay the copy.
"""

from __future__ import annotations

import weakref

from repro.vfs.api import Payload

__all__ = ["FileData"]

#: Files larger than this stop storing real bytes (per storage object).
MATERIALISE_CAP = 64 * 1024 * 1024


class FileData:
    """Contents of one storage object (whole file or one server's stripe)."""

    __slots__ = ("size", "_buf", "exact", "cap", "_views")

    def __init__(self, cap: int = MATERIALISE_CAP):
        self.size = 0
        self._buf = bytearray()
        self.exact = True
        self.cap = cap
        #: Weak refs to Payloads currently borrowing views of ``_buf``.
        self._views: list = []

    def _freeze_views(self) -> None:
        """Materialise every outstanding borrowed view.

        Must run before any mutation of ``_buf``: in-place writes would
        silently change what lent-out views observe, and resizes would
        raise ``BufferError`` while exports are alive.
        """
        views = self._views
        if views:
            for ref in views:
                p = ref()
                if p is not None:
                    p._freeze()
            views.clear()

    def write(self, offset: int, payload: Payload) -> None:
        """Store ``payload`` at ``offset``, extending the object if needed."""
        if offset < 0:
            raise ValueError("offset must be >= 0")
        end = offset + payload.nbytes
        self.size = max(self.size, end)
        if not self.exact:
            return
        if payload.is_synthetic or end > self.cap:
            # One-way degradation to size-only accounting.  The old
            # buffer is abandoned, never mutated again: outstanding
            # views stay valid snapshots without freezing.
            self.exact = False
            self._buf = bytearray()
            self._views.clear()
            return
        self._freeze_views()
        if len(self._buf) < end:
            self._buf.extend(b"\x00" * (end - len(self._buf)))
        self._buf[offset:end] = payload.raw  # type: ignore[index]

    def read(self, offset: int, nbytes: int) -> Payload:
        """Read up to ``nbytes`` at ``offset``; truncated at EOF.

        Zero-copy: the returned payload borrows a view of the buffer
        (frozen automatically before the next mutation).
        """
        if offset < 0 or nbytes < 0:
            raise ValueError("offset/nbytes must be >= 0")
        start = min(offset, self.size)
        length = min(nbytes, self.size - start)
        if not self.exact:
            return Payload.synthetic(length)
        end = start + length
        if len(self._buf) < end:
            # Sparse tail beyond what was materialised: zero-fill.
            self._freeze_views()
            self._buf.extend(b"\x00" * (end - len(self._buf)))
        if length == 0:
            return Payload(b"")
        p = Payload._of_view(memoryview(self._buf)[start:end])
        self._views.append(weakref.ref(p))
        return p

    def truncate(self, new_size: int) -> None:
        """Set the object size; shrinking discards trailing bytes."""
        if new_size < 0:
            raise ValueError("size must be >= 0")
        self.size = new_size
        if self.exact and len(self._buf) > new_size:
            self._freeze_views()
            del self._buf[new_size:]
