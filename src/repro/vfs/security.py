"""Access control: credentials and permission checks.

The paper's control path uses RPCSEC_GSS for authentication and NFSv4
ACLs for authorization (§3.1); one of Direct-pNFS's selling points is
that the *data* path inherits NFSv4's security semantics instead of
exposing each parallel file system's own mechanism (§3.2).  We model
the authorization decision — who may read/write/traverse what — as
data structures checked on access, not the cryptography.

:class:`Credential` identifies a caller; :func:`check_access` evaluates
classic owner/other mode bits plus NFSv4-style ACE overrides attached
to :class:`~repro.vfs.api.FileAttributes` via ``acl`` entries.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.vfs.api import AccessDenied, FileAttributes

__all__ = ["ACE", "Credential", "check_access", "READ", "WRITE", "EXECUTE"]

READ = 4
WRITE = 2
EXECUTE = 1


@dataclass(frozen=True)
class Credential:
    """An authenticated principal (the result of RPCSEC_GSS, §3.1)."""

    user: str = "root"
    groups: tuple[str, ...] = ()

    @property
    def is_superuser(self) -> bool:
        return self.user == "root"


@dataclass(frozen=True)
class ACE:
    """NFSv4-style access-control entry: allow or deny bits per principal."""

    principal: str  # user name, "group:<name>", or "EVERYONE"
    allow: bool
    mask: int

    def matches(self, cred: Credential) -> bool:
        if self.principal == "EVERYONE":
            return True
        if self.principal.startswith("group:"):
            return self.principal[6:] in cred.groups
        return self.principal == cred.user


def check_access(attrs: FileAttributes, cred: Credential, want: int) -> None:
    """Raise :class:`AccessDenied` unless ``cred`` holds ``want`` bits.

    NFSv4 ACL semantics: ACEs are evaluated in order, first match per
    bit wins; bits not decided by any ACE fall back to the mode bits
    (owner class for the owner, other class otherwise).
    """
    if not 0 < want <= 7:
        raise ValueError("want must be a combination of R/W/X bits")
    if cred.is_superuser:
        return
    remaining = want
    for ace in getattr(attrs, "acl", None) or ():
        if not ace.matches(cred):
            continue
        decided = remaining & ace.mask
        if not decided:
            continue
        if not ace.allow:
            raise AccessDenied(
                f"{cred.user}: denied {decided:#o} by ACE for {ace.principal}"
            )
        remaining &= ~decided
        if not remaining:
            return
    mode = attrs.mode
    granted = (mode >> 6) & 7 if cred.user == attrs.owner else mode & 7
    if remaining & ~granted:
        raise AccessDenied(
            f"{cred.user}: mode {mode:#o} grants {granted:#o}, wanted {want:#o}"
        )
