"""In-memory local file system.

A zero-cost :class:`~repro.vfs.api.FileSystemClient` used as (a) the
reference implementation in conformance tests, (b) a standalone-NFS
export backend in unit tests, and (c) a convenient playground in the
examples.  An optional fixed per-operation delay and per-byte media
rate let tests give it a crude timing envelope.
"""

from __future__ import annotations

from repro.sim.engine import Simulator
from repro.vfs.api import (
    FileSystemClient,
    FsError,
    IsDirectory,
    OpenFile,
    Payload,
)
from repro.vfs.filedata import FileData
from repro.vfs.namespace import Namespace

__all__ = ["LocalFileSystem", "LocalClient"]


class LocalFileSystem:
    """Shared state of an in-memory file system."""

    def __init__(self):
        self.namespace = Namespace()
        self.contents: dict[int, FileData] = {}

    def data_for(self, handle: int) -> FileData:
        fd = self.contents.get(handle)
        if fd is None:
            fd = FileData()
            self.contents[handle] = fd
        return fd


class LocalClient(FileSystemClient):
    """Client view onto a :class:`LocalFileSystem`."""

    label = "localfs"

    def __init__(self, sim: Simulator, fs: LocalFileSystem, op_delay: float = 0.0):
        self.sim = sim
        self.fs = fs
        self.op_delay = op_delay

    def _tick(self):
        if self.op_delay > 0:
            yield self.sim.timeout(self.op_delay)

    def mount(self):
        yield from self._tick()
        return {"root": self.fs.namespace.root.handle}

    def create(self, path: str):
        yield from self._tick()
        entry = self.fs.namespace.create(path, now=self.sim.now)
        return OpenFile(path=path, handle=entry.handle, client=self)

    def open(self, path: str, write: bool = True):
        yield from self._tick()
        entry = self.fs.namespace.resolve(path)
        if entry.is_dir:
            raise IsDirectory(path)
        return OpenFile(path=path, handle=entry.handle, client=self, writable=write)

    def open_by_handle(self, handle: int):
        yield from self._tick()
        entry = self.fs.namespace.by_handle(handle)
        if entry.is_dir:
            raise IsDirectory(f"handle {handle}")
        return OpenFile(
            path=self.fs.namespace.path_of(entry), handle=handle, client=self
        )

    def read(self, f: OpenFile, offset: int, nbytes: int):
        yield from self._tick()
        return self.fs.data_for(f.handle).read(offset, nbytes)

    def write(self, f: OpenFile, offset: int, payload: Payload):
        yield from self._tick()
        self.fs.data_for(f.handle).write(offset, payload)
        entry = self.fs.namespace.by_handle(f.handle)
        entry.attrs.size = self.fs.data_for(f.handle).size
        entry.attrs.mtime = self.sim.now
        return payload.nbytes

    def fsync(self, f: OpenFile):
        yield from self._tick()

    def close(self, f: OpenFile):
        yield from self._tick()
        f.closed = True

    def getattr(self, path: str):
        yield from self._tick()
        entry = self.fs.namespace.resolve(path)
        attrs = entry.attrs.copy()
        if not entry.is_dir:
            attrs.size = self.fs.data_for(entry.handle).size
        return attrs

    def getattr_handle(self, handle: int):
        yield from self._tick()
        entry = self.fs.namespace.by_handle(handle)
        attrs = entry.attrs.copy()
        if not entry.is_dir:
            attrs.size = self.fs.data_for(entry.handle).size
        return attrs

    def mkdir(self, path: str):
        yield from self._tick()
        self.fs.namespace.create(path, is_dir=True, now=self.sim.now)

    def readdir(self, path: str):
        yield from self._tick()
        return self.fs.namespace.listdir(path)

    def remove(self, path: str):
        yield from self._tick()
        entry = self.fs.namespace.resolve(path)
        self.fs.namespace.remove(path, now=self.sim.now)
        self.fs.contents.pop(entry.handle, None)

    def rename(self, old: str, new: str):
        yield from self._tick()
        try:
            victim = self.fs.namespace.resolve(new)
        except FsError:
            victim = None
        entry = self.fs.namespace.rename(old, new, now=self.sim.now)
        if victim is not None and victim is not entry:
            # Renamed-over target: its contents die with its handle.
            self.fs.contents.pop(victim.handle, None)

    def truncate(self, path: str, size: int):
        yield from self._tick()
        entry = self.fs.namespace.resolve(path)
        if entry.is_dir:
            raise IsDirectory(path)
        self.fs.data_for(entry.handle).truncate(size)
        entry.attrs.size = size
        entry.attrs.mtime = self.sim.now
        entry.attrs.ctime = self.sim.now

    def setattr(self, path: str, mode=None):
        yield from self._tick()
        entry = self.fs.namespace.resolve(path)
        if mode is not None:
            entry.attrs.mode = mode
        entry.attrs.ctime = self.sim.now
        return entry.attrs.copy()

    def size_hint(self, handle, size):
        yield from self._tick()
        entry = self.fs.namespace.by_handle(handle)
        if size is not None:
            entry.attrs.size = max(entry.attrs.size, size)
        entry.attrs.mtime = self.sim.now
