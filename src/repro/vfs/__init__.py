"""Generic file-system abstractions shared by every protocol stack.

:mod:`repro.vfs.api` defines the application-facing
:class:`~repro.vfs.api.FileSystemClient` interface that all five
architectures implement and all workloads program against, plus the
:class:`~repro.vfs.api.Payload` byte-or-synthetic data carrier and the
error hierarchy.  :mod:`repro.vfs.filedata` stores file contents;
:mod:`repro.vfs.namespace` provides the server-side directory tree.
"""

from repro.vfs.api import (
    AccessDenied,
    Exists,
    FileAttributes,
    FileSystemClient,
    FsError,
    IsDirectory,
    NoEntry,
    NotDirectory,
    OpenFile,
    Payload,
    StaleHandle,
)
from repro.vfs.filedata import FileData
from repro.vfs.namespace import Namespace

__all__ = [
    "AccessDenied",
    "Exists",
    "FileAttributes",
    "FileData",
    "FileSystemClient",
    "FsError",
    "IsDirectory",
    "Namespace",
    "NoEntry",
    "NotDirectory",
    "OpenFile",
    "Payload",
    "StaleHandle",
]
