"""The application-facing file-system interface.

Every architecture in the reproduction — native PVFS2, NFSv4, file-based
pNFS (2- and 3-tier), and Direct-pNFS — exposes the same
:class:`FileSystemClient` interface, and every workload (IOR, ATLAS,
BTIO, OLTP, Postmark, SSH-build) is written against it.  This is the
reproduction's analogue of the POSIX VFS boundary that lets the paper
run identical benchmarks over five different stacks.

All I/O methods are *simulation process generators*: callers must drive
them with ``yield from`` (or wrap them in :meth:`Simulator.process`), so
the same implementation provides both functional behaviour (bytes move,
metadata updates) and timing behaviour (resources are held for the
modelled durations).

Payloads
--------
Benchmarks move hundreds of gigabytes of simulated data; materialising
those bytes would be pointless.  :class:`Payload` therefore carries
either real ``bytes`` (used throughout the functional tests, stored and
returned faithfully) or a bare length ("synthetic" data whose content is
never inspected).  Both kinds flow through exactly the same code paths.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Iterator, Optional

__all__ = [
    "AccessDenied",
    "Exists",
    "FileAttributes",
    "FileSystemClient",
    "FsError",
    "InvalidArgument",
    "IsDirectory",
    "NoEntry",
    "NotDirectory",
    "OpenFile",
    "Payload",
    "StaleHandle",
]


# --------------------------------------------------------------------------
# Errors
# --------------------------------------------------------------------------


class FsError(Exception):
    """Base class for file-system protocol errors."""


class NoEntry(FsError):
    """Path component does not exist (ENOENT / NFS4ERR_NOENT)."""


class Exists(FsError):
    """Target already exists (EEXIST / NFS4ERR_EXIST)."""


class NotDirectory(FsError):
    """Path component is not a directory (ENOTDIR)."""


class IsDirectory(FsError):
    """File operation applied to a directory (EISDIR)."""


class AccessDenied(FsError):
    """Caller lacks permission (EACCES / NFS4ERR_ACCESS)."""


class StaleHandle(FsError):
    """Filehandle no longer refers to a live object (ESTALE)."""


class InvalidArgument(FsError):
    """Operation arguments are structurally invalid (EINVAL) — e.g.
    renaming a directory into one of its own descendants."""


# --------------------------------------------------------------------------
# Payload
# --------------------------------------------------------------------------


class Payload:
    """A chunk of file data: real bytes, a borrowed view, or a length.

    ``Payload(b"abc")`` carries real bytes; ``Payload.synthetic(n)``
    carries only a length.  Synthetic payloads compare equal to each
    other by length; slicing and concatenation work on both kinds.

    A third, internal kind backs the zero-copy read path: a payload may
    *borrow* a ``memoryview`` into a store's buffer instead of copying
    it (:meth:`_of_view`, used by :class:`repro.vfs.filedata.FileData`).
    The bytes are materialised lazily — only when someone actually
    inspects :attr:`data` (escape) or when the owning store is about to
    mutate the underlying buffer (:meth:`_freeze`).  Workloads that
    move data without looking at it never pay the copy.
    """

    __slots__ = ("nbytes", "_data", "_view", "__weakref__")

    def __init__(self, data: bytes | bytearray | memoryview):
        self._data: Optional[bytes] = bytes(data)
        self._view: Optional[memoryview] = None
        self.nbytes: int = len(self._data)

    @classmethod
    def synthetic(cls, nbytes: int) -> "Payload":
        """A payload of ``nbytes`` whose content is never inspected."""
        if nbytes < 0:
            raise ValueError("payload size must be >= 0")
        p = cls.__new__(cls)
        p._data = None
        p._view = None
        p.nbytes = nbytes
        return p

    @classmethod
    def _of_view(cls, view: memoryview) -> "Payload":
        """Zero-copy payload borrowing ``view`` (internal).

        The lender must call :meth:`_freeze` before mutating or
        resizing the viewed buffer; views over immutable ``bytes``
        never need freezing.
        """
        p = cls.__new__(cls)
        p._data = None
        p._view = view
        p.nbytes = len(view)
        return p

    def _freeze(self) -> None:
        """Materialise a borrowed view into owned bytes."""
        if self._view is not None:
            self._data = bytes(self._view)
            self._view = None

    @property
    def data(self) -> Optional[bytes]:
        """The payload bytes (``None`` when synthetic).

        Accessing it on a borrowed-view payload materialises the copy —
        this is the "escape" in copy-on-escape.
        """
        if self._view is not None:
            self._freeze()
        return self._data

    @property
    def raw(self):
        """Cheapest readable buffer: the live view if one is borrowed,
        else the owned bytes (``None`` when synthetic).  For copying
        *out* of the payload without forcing materialisation."""
        return self._view if self._view is not None else self._data

    @property
    def is_synthetic(self) -> bool:
        return self._data is None and self._view is None

    def __len__(self) -> int:
        return self.nbytes

    def slice(self, start: int, length: int) -> "Payload":
        """Sub-payload ``[start, start+length)``; clamped to bounds."""
        if start < 0 or length < 0:
            raise ValueError("negative slice bounds")
        start = min(start, self.nbytes)
        length = min(length, self.nbytes - start)
        if self.is_synthetic:
            return Payload.synthetic(length)
        # Freeze first (if borrowed), then lend a view over the owned
        # immutable bytes: slicing never copies the sliced range.
        data = self.data
        return Payload._of_view(memoryview(data)[start : start + length])

    @staticmethod
    def concat(parts: list["Payload"]) -> "Payload":
        """Join payloads; any synthetic part makes the result synthetic."""
        total = sum(p.nbytes for p in parts)
        if any(p.is_synthetic for p in parts):
            return Payload.synthetic(total)
        return Payload(b"".join(p.raw for p in parts))  # type: ignore[arg-type]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Payload):
            return NotImplemented
        if self.nbytes != other.nbytes:
            return False
        if self.is_synthetic or other.is_synthetic:
            return self.is_synthetic and other.is_synthetic
        return self.data == other.data

    def __hash__(self) -> int:
        return hash((self.nbytes, self.data))

    def __reduce__(self):
        # Views don't pickle; ship the materialised kind instead.
        if self.is_synthetic:
            return (Payload.synthetic, (self.nbytes,))
        return (Payload, (self.data,))

    def __repr__(self) -> str:  # pragma: no cover
        kind = "synthetic" if self.is_synthetic else "bytes"
        return f"<Payload {kind} len={self.nbytes}>"


# --------------------------------------------------------------------------
# Attributes and open-file records
# --------------------------------------------------------------------------


@dataclass
class FileAttributes:
    """The attribute subset the protocols exchange (NFSv4 fattr4-ish).

    ``acl`` holds NFSv4-style access-control entries evaluated before
    the mode bits (see :mod:`repro.vfs.security`).
    """

    size: int = 0
    is_dir: bool = False
    mode: int = 0o644
    owner: str = "root"
    mtime: float = 0.0
    ctime: float = 0.0
    nlink: int = 1
    acl: tuple = ()

    def copy(self) -> "FileAttributes":
        return FileAttributes(
            size=self.size,
            is_dir=self.is_dir,
            mode=self.mode,
            owner=self.owner,
            mtime=self.mtime,
            ctime=self.ctime,
            nlink=self.nlink,
            acl=self.acl,
        )


@dataclass
class OpenFile:
    """Client-side open-file record returned by ``open``/``create``.

    ``handle`` is the backend's opaque file identifier; ``state`` holds
    per-protocol state (NFSv4 stateid, cached layout, ...).
    """

    path: str
    handle: object
    client: "FileSystemClient"
    writable: bool = True
    closed: bool = False
    state: dict = field(default_factory=dict)


# --------------------------------------------------------------------------
# The interface
# --------------------------------------------------------------------------


class FileSystemClient(ABC):
    """Uniform client API over any of the five architectures.

    Methods are generator-processes: drive them with ``yield from``
    inside a simulation process.  Example::

        def app(sim, fsc):
            yield from fsc.mount()
            f = yield from fsc.create("/data/out")
            yield from fsc.write(f, 0, Payload(b"hello"))
            yield from fsc.fsync(f)
            yield from fsc.close(f)

        sim.process(app(sim, client))
        sim.run()
    """

    #: Human-readable architecture tag ("direct-pnfs", "pvfs2", ...).
    label: str = "abstract"

    @abstractmethod
    def mount(self) -> Iterator:
        """Attach to the file system (fetch root handle, device lists)."""

    @abstractmethod
    def create(self, path: str) -> Iterator:
        """Create a regular file; returns an :class:`OpenFile`."""

    @abstractmethod
    def open(self, path: str, write: bool = True) -> Iterator:
        """Open an existing regular file; returns an :class:`OpenFile`.

        ``write=False`` declares a read-only open — protocol stacks may
        exploit the weaker intent (NFSv4 grants read delegations to
        read-only opens with no conflicting writers).
        """

    @abstractmethod
    def read(self, f: OpenFile, offset: int, nbytes: int) -> Iterator:
        """Read up to ``nbytes`` at ``offset``; returns a :class:`Payload`.

        Reads past end-of-file are truncated (a zero-length payload at
        or past EOF), matching POSIX semantics.
        """

    @abstractmethod
    def write(self, f: OpenFile, offset: int, payload: Payload) -> Iterator:
        """Write ``payload`` at ``offset``; returns bytes accepted.

        Durability follows the architecture's semantics: NFS-based
        stacks may buffer in the client cache until ``fsync``/``close``.
        """

    @abstractmethod
    def fsync(self, f: OpenFile) -> Iterator:
        """Flush cached dirty data and commit it to stable storage."""

    @abstractmethod
    def close(self, f: OpenFile) -> Iterator:
        """Flush, commit, and release the open-file record."""

    @abstractmethod
    def getattr(self, path: str) -> Iterator:
        """Return :class:`FileAttributes` for ``path``."""

    @abstractmethod
    def mkdir(self, path: str) -> Iterator:
        """Create a directory."""

    @abstractmethod
    def readdir(self, path: str) -> Iterator:
        """Return sorted child names of directory ``path``."""

    @abstractmethod
    def remove(self, path: str) -> Iterator:
        """Remove a file (or empty directory)."""

    @abstractmethod
    def rename(self, old: str, new: str) -> Iterator:
        """Atomically rename ``old`` to ``new``."""

    # -- optional extensions (servers exporting a backend rely on these) --

    def open_by_handle(self, handle) -> Iterator:
        """Open a file by backend handle (used by NFS servers for lazy
        filehandle binding); optional."""
        raise NotImplementedError(f"{self.label} has no open_by_handle")
        yield  # pragma: no cover

    def getattr_handle(self, handle) -> Iterator:
        """getattr by backend handle; optional."""
        raise NotImplementedError(f"{self.label} has no getattr_handle")
        yield  # pragma: no cover

    def truncate(self, path: str, size: int) -> Iterator:
        """Truncate a file to ``size``; optional."""
        raise NotImplementedError(f"{self.label} has no truncate")
        yield  # pragma: no cover

    def setattr(self, path: str, mode: Optional[int] = None) -> Iterator:
        """Update attributes (chmod-style); optional, cheap metadata op."""
        raise NotImplementedError(f"{self.label} has no setattr")
        yield  # pragma: no cover

    def size_hint(self, handle, size: Optional[int]) -> Iterator:
        """Record a post-I/O size/mtime hint (pNFS LAYOUTCOMMIT); optional."""
        raise NotImplementedError(f"{self.label} has no size_hint")
        yield  # pragma: no cover


def split_path(path: str) -> list[str]:
    """Split an absolute path into components; validates the shape."""
    if not path.startswith("/"):
        raise ValueError(f"path must be absolute: {path!r}")
    parts = [p for p in path.split("/") if p]
    for p in parts:
        if p in (".", ".."):
            raise ValueError(f"path may not contain {p!r}: {path!r}")
    return parts
