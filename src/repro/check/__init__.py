"""Deterministic simulation-torture harness (FoundationDB-style).

``repro.check`` turns the simulator into a bug-finding machine: a seed
fully determines a concurrent multi-client workload *program*, a fault
schedule drawn against it, and the simulation that executes both — so
any invariant violation is replayable from its seed alone, and a
failing program can be shrunk to a minimal reproducer by re-running
candidate sub-programs.

Layers:

* :mod:`repro.check.program` — seeded workload generator; a
  :class:`~repro.check.program.Program` is architecture-agnostic and
  runs unchanged against all five deployments;
* :mod:`repro.check.model` — reference in-memory file model and the
  invariant checkers (durability after fsync, read oracles, lock
  safety, exactly-once, conservation);
* :mod:`repro.check.runner` — executes one (program, architecture)
  episode under fault injection and reports violations plus a
  deterministic trace hash;
* :mod:`repro.check.shrink` — generic greedy delta-debugging plus the
  program-specific shrinker behind ``repro torture --shrink``.
"""

from repro.check.program import FaultSpec, Op, Program, generate
from repro.check.model import Model
from repro.check.runner import EpisodeResult, run_episode, sweep
from repro.check.shrink import shrink_list, shrink_program

__all__ = [
    "EpisodeResult",
    "FaultSpec",
    "Model",
    "Op",
    "Program",
    "generate",
    "run_episode",
    "shrink_list",
    "shrink_program",
    "sweep",
]
