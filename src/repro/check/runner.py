"""Execute one torture episode and check every invariant.

An *episode* is ``(program, architecture)``: the program's clients run
concurrently against a fresh seeded deployment while the program's
fault schedule plays out, then faults heal, the cluster settles, and a
fresh verifier client reads every file back for the durability oracle.
The whole episode is a deterministic function of the program (and the
program of its seed), so :func:`run_episode` also returns a sha256
trace hash — byte-identical across replays of the same seed, the
property the shrinker and CI artifacts rely on.

Invariants checked (ISSUE: torture-harness checkers):

* data integrity / errseq — :mod:`repro.check.model` oracles;
* exactly-once — no session sequence id executes twice server-side
  (``Session.TRACK_EXECUTIONS``);
* lock safety — a monitor polls every server's lock tables for
  conflicting coexisting grants;
* liveness — the episode and the final verification each finish within
  a generous sim-time deadline (RPC timeouts bound every stall);
* conservation / leaks — post-heal: no session slot or server worker
  thread still held, readahead never consumes more than it issued, and
  the network never delivers more bytes than were sent.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro import rpc
from repro.check.model import Model
from repro.check.program import Program, generate
from repro.cluster.configs import make_deployment
from repro.nfs.sessions import Session
from repro.sim.faults import FaultInjector
from repro.vfs.api import FsError, Payload

__all__ = [
    "EpisodeResult",
    "buggy_truncate_factory",
    "buggy_writeback_factory",
    "run_episode",
    "sweep",
    "TORTURE_NFS",
    "TORTURE_PVFS",
]

KB = 1024

#: Aggressive-but-sane protocol knobs for torture runs: small transfers
#: (more interleavings per byte), short RPC timeouts (faults surface
#: within the episode), no delegations (recalls to a crashed client
#: cannot wedge an episode).
TORTURE_NFS = dict(
    rsize=16 * KB,
    wsize=16 * KB,
    readahead=32 * KB,
    ac_timeo=0.05,
    delegations=False,
    rpc_timeout=0.25,
    rpc_max_retries=3,
    rpc_backoff=2.0,
    rpc_max_timeout=2.0,
    ds_retry_interval=0.5,
)
TORTURE_PVFS = dict(stripe_size=32 * KB)

#: Fault kinds each architecture can absorb without wedging by design.
#: The native PVFS2 client has no RPC retry layer at all — a lost flow
#: hangs it forever — so it only gets added-latency faults.
_FAULT_CAPS = {"pvfs2": {"nic_delay"}}

_EPISODE_DEADLINE = 120.0  # sim seconds
_VERIFY_DEADLINE = 60.0
_SETTLE = 8.0
_LOCK_POLL = 0.02


@dataclass
class EpisodeResult:
    seed: int
    arch: str
    violations: list[str] = field(default_factory=list)
    trace_hash: str = ""
    wedged: bool = False
    op_count: int = 0
    fault_log: list[tuple[float, str]] = field(default_factory=list)
    stats: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations


def _caps(arch: str) -> set:
    return _FAULT_CAPS.get(arch, {"outage", "blackout", "nic_drop", "nic_delay"})


def buggy_writeback_factory(dep, node):
    """Client factory reintroducing the pre-fix write-back bug.

    Before the errseq fix, a failed asynchronous write-back left the
    range off the dirty list and latched no error: the bytes were gone
    and the next fsync still reported success.  Re-running a sweep with
    this factory must make the durability oracle report the silent
    loss — the standing proof that the harness has the power to catch
    the bug class this repo already shipped a fix for.
    """
    import types

    cl = dep.make_client(node)
    if not hasattr(cl, "_writeback"):  # native PVFS2 client: no cache
        return cl

    def _writeback(self, f, start, end):
        data = f.state["cache"].read(start, end - start)
        try:
            yield from self._io_write(f, start, data)
        except (FsError, rpc.RpcTimeout):
            return  # the bug: range already left ``dirty``, no error latched
        finally:
            f.state["flushing"].remove(start, end)
        f.state["commit_needed"] = True
        self.bytes_written += data.nbytes

    cl._writeback = types.MethodType(_writeback, cl)
    return cl


def buggy_truncate_factory(dep, node):
    """Client factory reintroducing the pre-fix truncate bug.

    Before the fix, ``truncate`` only dropped the path's cached
    attributes: every open file kept its stale ``size``, its cached
    pages above the cut, and its dirty ranges — so later reads served
    resurrected bytes from local cache and later write-backs pushed
    them back to the server.  A metadata-enabled sweep with this
    factory must report truncate-resurrection — the checker-power
    proof for this PR's headline fix.
    """
    import types

    cl = dep.make_client(node)
    if not hasattr(cl, "_open_paths"):  # native PVFS2 client: no cache
        return cl

    def truncate(self, path, size):
        self._attr_cache.pop(path, None)  # the bug: this was the whole fix-less op
        yield from self._call(
            "truncate", {"path": path, "size": size, "callback": self._cb}
        )

    cl.truncate = types.MethodType(truncate, cl)
    return cl


def run_episode(
    program: Program,
    arch: str,
    deadline: float = _EPISODE_DEADLINE,
    client_factory=None,
) -> EpisodeResult:
    """Run ``program`` against ``arch``; returns violations + trace hash.

    ``client_factory(deployment, node)`` overrides client construction —
    the hook the silent-loss demonstration uses to install a client
    class with the pre-fix write-back bug.
    """
    result = EpisodeResult(seed=program.seed, arch=arch, op_count=program.op_count)
    dep = make_deployment(
        arch,
        n_clients=program.n_clients + 1,  # +1 node for the fresh verifier
        seed=program.seed,
        nfs_overrides=dict(TORTURE_NFS),
        pvfs_overrides=dict(TORTURE_PVFS),
    )
    sim = dep.testbed.sim
    model = Model(program)
    trace: list[tuple] = []
    violations = result.violations
    make_client = client_factory or (lambda d, node: d.make_client(node))

    was_tracking = Session.TRACK_EXECUTIONS
    Session.TRACK_EXECUTIONS = True
    try:
        clients = [
            make_client(dep, node)
            for node in dep.testbed.client_nodes[: program.n_clients]
        ]

        # -- setup: mount + create every file before faults start ----------
        def setup():
            for c, cl in enumerate(clients):
                if hasattr(cl, "mount"):
                    yield from cl.mount()
            cl = clients[0]
            for path in program.files:
                f = yield from cl.create(path)
                yield from cl.close(f)

        sim.run(until=sim.process(setup(), name="torture-setup"))
        t0 = sim.now

        # -- fault schedule ------------------------------------------------
        inj = FaultInjector(sim)
        caps = _caps(arch)
        for spec in program.faults:
            if spec.kind not in caps:
                trace.append(("fault-skipped", spec.kind, arch))
                continue
            start = t0 + spec.start
            if spec.kind == "outage":
                srv = dep.servers[spec.target % len(dep.servers)]
                inj.outage(srv.rpc, start, spec.duration)
            elif spec.kind == "blackout":
                for srv in dep.servers:
                    inj.outage(srv.rpc, start, spec.duration)
            elif spec.kind == "nic_drop":
                nic = dep.testbed.client_nodes[spec.target % program.n_clients].nic
                inj.flaky_nic(nic, spec.param, start, spec.duration)
            elif spec.kind == "nic_delay":
                nic = dep.testbed.client_nodes[spec.target % program.n_clients].nic
                inj.at(start, lambda nic=nic, p=spec.param: inj.nic_delay(nic, p))
                inj.at(
                    start + spec.duration,
                    lambda nic=nic: inj.nic_delay(nic, 0.0),
                )

        # -- workers -------------------------------------------------------
        def worker(c: int, cl, track):
            files: dict[str, object] = {}

            def ensure_open(path):
                if path not in files:
                    files[path] = yield from cl.open(path, write=True)
                return files[path]

            for op in track:
                t = round(sim.now - t0, 9)
                try:
                    if op.kind == "sleep":
                        yield sim.timeout(op.delay)
                        outcome = "ok"
                    elif op.kind == "write":
                        f = yield from ensure_open(op.file)
                        idx = model.on_write_start(
                            c, op.file, op.offset, op.offset + op.length, op.tag
                        )
                        yield from cl.write(
                            f, op.offset, Payload(bytes([op.tag]) * op.length)
                        )
                        model.on_write_ack(op.file, idx)
                        outcome = f"ok:{op.length}"
                    elif op.kind == "read":
                        f = yield from ensure_open(op.file)
                        got = yield from cl.read(f, op.offset, op.length)
                        violations.extend(
                            model.check_read(
                                c, op.file, op.offset, got.data, got.nbytes
                            )
                        )
                        outcome = f"ok:{got.nbytes}"
                    elif op.kind == "fsync":
                        if op.file in files:
                            yield from cl.fsync(files[op.file])
                            model.on_durable(c, op.file)
                        outcome = "ok"
                    elif op.kind == "reopen":
                        if op.file in files:
                            yield from cl.close(files.pop(op.file))
                            model.on_durable(c, op.file)
                        files[op.file] = yield from cl.open(op.file, write=True)
                        outcome = "ok"
                    elif op.kind == "lock":
                        if not hasattr(cl, "lock"):
                            outcome = "skip"
                        else:
                            f = yield from ensure_open(op.file)
                            yield from cl.lock(
                                f, op.offset, op.offset + op.length, op.lock_kind
                            )
                            outcome = "ok"
                    elif op.kind == "unlock":
                        if not hasattr(cl, "lock") or op.file not in files:
                            outcome = "skip"
                        else:
                            yield from cl.unlock(
                                files[op.file], op.offset, op.offset + op.length
                            )
                            outcome = "ok"
                    elif op.kind == "truncate":
                        # ``length`` holds the new size.  The model hooks
                        # are error-aware (an unacked truncate may have
                        # landed), so handle failures here rather than in
                        # the generic except below.
                        if not hasattr(cl, "truncate"):
                            outcome = "skip"
                        else:
                            idx = model.on_trunc_start(c, op.file, op.length)
                            try:
                                yield from cl.truncate(op.file, op.length)
                            except (FsError, rpc.RpcTimeout) as exc:
                                model.on_trunc_error(c, op.file)
                                outcome = f"err:{type(exc).__name__}"
                            else:
                                model.on_trunc_ack(op.file, idx, op.length)
                                outcome = f"ok:{op.length}"
                    elif op.kind == "recreate":
                        if not hasattr(cl, "remove"):
                            outcome = "skip"
                        else:
                            try:
                                if op.file in files:
                                    yield from cl.close(files.pop(op.file))
                                    model.on_durable(c, op.file)
                                yield from cl.remove(op.file)
                                model.on_remove_ack(c, op.file)
                                f = yield from cl.create(op.file)
                                model.on_recreate_ack(c, op.file)
                                files[op.file] = f
                                outcome = "ok"
                            except (FsError, rpc.RpcTimeout) as exc:
                                model.on_ns_error(c, op.file, op.kind)
                                outcome = f"err:{type(exc).__name__}"
                    elif op.kind == "rename":
                        if not hasattr(cl, "rename"):
                            outcome = "skip"
                        else:
                            try:
                                if op.file in files:
                                    yield from cl.close(files.pop(op.file))
                                    model.on_durable(c, op.file)
                                yield from cl.rename(op.file, op.dest)
                                model.on_rename_ack(c, op.file, op.dest)
                                outcome = "ok"
                            except (FsError, rpc.RpcTimeout) as exc:
                                model.on_rename_error(c, op.file, op.dest)
                                outcome = f"err:{type(exc).__name__}"
                    elif op.kind == "mkdir":
                        if not hasattr(cl, "mkdir"):
                            outcome = "skip"
                        else:
                            try:
                                yield from cl.mkdir(op.file)
                                model.on_mkdir_ack(c, op.file)
                                outcome = "ok"
                            except (FsError, rpc.RpcTimeout) as exc:
                                model.on_mkdir_error(c, op.file)
                                outcome = f"err:{type(exc).__name__}"
                    elif op.kind == "readdir":
                        if not hasattr(cl, "readdir"):
                            outcome = "skip"
                        else:
                            names = yield from cl.readdir(op.file)
                            violations.extend(
                                model.check_readdir(c, op.file, names)
                            )
                            outcome = f"ok:{len(names)}"
                    elif op.kind == "getattr":
                        if not hasattr(cl, "getattr"):
                            outcome = "skip"
                        else:
                            attrs = yield from cl.getattr(op.file)
                            violations.extend(
                                model.check_getattr(c, op.file, attrs)
                            )
                            outcome = (
                                f"ok:{int(attrs.size)}"
                                if attrs is not None
                                else "ok"
                            )
                    else:  # pragma: no cover - generator never emits others
                        outcome = "skip"
                except (FsError, rpc.RpcTimeout) as exc:
                    # Trace the *class*, never the message: messages can
                    # embed object reprs (memory addresses) and would
                    # break trace-hash determinism.
                    outcome = f"err:{type(exc).__name__}"
                    model.on_error(c, op.file, op.kind)
                trace.append((t, c, op.kind, op.file, outcome))
            for path, f in list(files.items()):
                try:
                    yield from cl.close(f)
                    model.on_durable(c, path)
                    trace.append((round(sim.now - t0, 9), c, "close", path, "ok"))
                except (FsError, rpc.RpcTimeout) as exc:
                    model.on_error(c, path, "close")
                    trace.append(
                        (
                            round(sim.now - t0, 9),
                            c,
                            "close",
                            path,
                            f"err:{type(exc).__name__}",
                        )
                    )

        procs = [
            sim.process(worker(c, cl, track), name=f"torture-c{c}")
            for c, (cl, track) in enumerate(zip(clients, program.ops))
        ]
        done = sim.all_of(procs)

        # -- lock-safety monitor ------------------------------------------
        lock_reports: set[str] = set()

        def lock_monitor():
            while not done.triggered:
                for srv in dep.servers:
                    locks = getattr(srv, "locks", None)
                    if locks is None:
                        continue
                    for fh, table in locks.snapshot().items():
                        for i, a in enumerate(table):
                            for b in table[i + 1 :]:
                                if (
                                    a.owner != b.owner
                                    and a.overlaps(b.start, b.end)
                                    and ("write" in (a.kind, b.kind))
                                ):
                                    lock_reports.add(
                                        f"lock-safety: {srv.name} fh={fh} "
                                        f"conflicting grants {a.kind}"
                                        f"[{a.start},{a.end}) and {b.kind}"
                                        f"[{b.start},{b.end}) coexist"
                                    )
                yield sim.timeout(_LOCK_POLL)

        sim.process(lock_monitor(), name="lock-monitor")

        sim.run(until=sim.any_of([done, sim.timeout(deadline)]))
        if not done.triggered:
            result.wedged = True
            stuck = [p.name for p in procs if not p.triggered]
            violations.append(
                f"liveness: episode exceeded {deadline}s sim deadline; "
                f"stuck: {', '.join(stuck)}"
            )
        violations.extend(sorted(lock_reports))

        # -- heal + settle -------------------------------------------------
        sim.run(until=sim.now + _SETTLE)

        # -- final verification (skip if wedged: cluster state is moot) ----
        if not result.wedged:
            verifier = make_client(
                dep, dep.testbed.client_nodes[program.n_clients]
            )

            def verify():
                if hasattr(verifier, "mount"):
                    yield from verifier.mount()
                # The model's namespace, not ``program.files``: renames
                # move files, removes kill them, and paths whose
                # namespace history is ambiguous cannot be verified.
                for path in model.final_paths():
                    f = yield from verifier.open(path, write=False)
                    got = yield from verifier.read(
                        f, 0, model.files[path].size
                    )
                    violations.extend(
                        model.check_final(path, got.data, got.nbytes)
                    )
                    yield from verifier.close(f)
                    if hasattr(verifier, "getattr"):
                        attrs = yield from verifier.getattr(path)
                        violations.extend(
                            model.check_final_getattr(path, attrs)
                        )
                if hasattr(verifier, "readdir"):
                    for dpath in sorted(model.dirs):
                        try:
                            names = yield from verifier.readdir(dpath)
                        except (FsError, rpc.RpcTimeout):
                            continue  # dir's very existence is uncertain
                        violations.extend(
                            model.check_readdir(-1, dpath, names)
                        )

            vproc = sim.process(verify(), name="torture-verify")
            sim.run(until=sim.any_of([vproc, sim.timeout(_VERIFY_DEADLINE)]))
            if not vproc.triggered:
                result.wedged = True
                violations.append(
                    f"liveness: final verification exceeded "
                    f"{_VERIFY_DEADLINE}s sim deadline"
                )

            # -- leaks + conservation (only meaningful post-quiesce) ------
            all_clients = clients + [verifier]
            for c, cl in enumerate(all_clients):
                for srv, sess in getattr(cl, "_sessions", {}).items():
                    if sess.slots.in_use:
                        violations.append(
                            f"leak: client{c} session to {srv.name} still "
                            f"holds {sess.slots.in_use} slots after quiesce"
                        )
                    if sess.duplicate_executions:
                        violations.append(
                            f"exactly-once: client{c} session to {srv.name} "
                            f"re-executed {sess.duplicate_executions} "
                            f"retransmitted requests (reply cache failed)"
                        )
                issued = getattr(cl, "readahead_issued_bytes", 0)
                used = getattr(cl, "readahead_used_bytes", 0)
                if used > issued:
                    violations.append(
                        f"conservation: client{c} readahead used {used} > "
                        f"issued {issued}"
                    )
            for srv in dep.servers:
                if srv.rpc.threads.in_use:
                    violations.append(
                        f"leak: {srv.name} still holds "
                        f"{srv.rpc.threads.in_use} worker threads after "
                        f"quiesce"
                    )
            nodes = (
                dep.testbed.server_nodes
                + dep.testbed.client_nodes
                + [dep.testbed.extra_node]
            )
            tx = sum(n.nic.tx_bytes for n in nodes)
            rx = sum(n.nic.rx_bytes for n in nodes)
            if rx > tx:
                violations.append(
                    f"conservation: network delivered {rx} bytes but only "
                    f"{tx} were sent"
                )

        result.fault_log = list(inj.events)
        result.stats = {
            "reads_checked": model.reads_checked,
            "bytes_checked": model.bytes_checked,
            "synthetic_reads": model.synthetic_reads,
            "trace_len": len(trace),
            "sim_time": round(sim.now, 6),
        }
        digest = hashlib.sha256()
        for entry in trace:
            digest.update(repr(entry).encode())
        for when, what in inj.events:
            digest.update(f"{when:.9f}:{what}".encode())
        result.trace_hash = digest.hexdigest()
    finally:
        Session.TRACK_EXECUTIONS = was_tracking
    return result


def sweep(
    arches: list[str],
    seeds: int,
    start_seed: int = 0,
    client_factory=None,
    progress=None,
    jobs: int = 1,
    cache=None,
    metadata: bool = False,
) -> list[EpisodeResult]:
    """Run ``seeds`` consecutive seeds against each architecture.

    Returns every result (failing and passing); callers filter.  The
    program for a seed is shared across architectures — the same
    workload must hold up everywhere.  ``progress(result, wall_seconds,
    cached)`` is called once per finished episode.

    ``jobs`` fans the (seed, arch) episodes over worker processes via
    :mod:`repro.parallel`; every episode is a pure function of its
    seed, so the result list — including each episode's ``trace_hash``
    — is identical whatever ``jobs`` is.  Parallel runs only support
    the stock client factory or :func:`buggy_writeback_factory`
    (workers rebuild it from a flag; arbitrary callables don't pickle),
    so any other ``client_factory`` forces the serial path.
    """
    picklable = (None, buggy_writeback_factory, buggy_truncate_factory)
    if client_factory not in picklable:
        jobs = 1
    if jobs <= 1 and cache is None:
        results = []
        for seed in range(start_seed, start_seed + seeds):
            program = generate(seed, metadata_ops=metadata)
            for arch in arches:
                res = run_episode(program, arch, client_factory=client_factory)
                results.append(res)
                if progress is not None:
                    progress(res, 0.0, False)
        return results

    from repro.parallel import run_jobs, torture_spec

    specs = [
        torture_spec(
            seed,
            arch,
            buggy_writeback=client_factory is buggy_writeback_factory,
            buggy_truncate=client_factory is buggy_truncate_factory,
            metadata=metadata,
        )
        for seed in range(start_seed, start_seed + seeds)
        for arch in arches
    ]
    wrapped = None
    if progress is not None:

        def wrapped(spec, res, wall, cached):
            progress(res, wall, cached)
    results, _report = run_jobs(specs, jobs=jobs, cache=cache, progress=wrapped)
    return results
