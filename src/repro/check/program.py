"""Seeded torture programs: concurrent multi-client workloads.

A :class:`Program` is a deterministic function of its seed: per-client
op lists (overlapping and noncontiguous reads/writes, byte-range locks,
fsync, close/reopen, think time) over one shared file plus per-client
private files, and a fault schedule.  Programs are architecture-
agnostic — the runner maps abstract fault targets ("server 2", "client
1's NIC") onto whatever the deployment provides, and skips op/fault
kinds an architecture cannot express (PVFS2 has no locks and no RPC
retry, so it gets delay faults only).

**Byte ownership** makes concurrent writes checkable without modelling
server-side serialisation: the shared file is divided into ``chunk``-
sized slots and slot ``s`` belongs to client ``s % n_clients``; clients
write only bytes they own, so every byte has a single, well-ordered
writer history.  Each write carries a distinct nonzero *tag* byte, so
any observed byte identifies exactly which write produced it.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, replace

import numpy as np

__all__ = [
    "FaultSpec",
    "Op",
    "Program",
    "dir_path",
    "generate",
    "ns_path",
    "private_path",
    "scratch_path",
]

KB = 1024

SHARED = "/torture-shared"


def private_path(client: int) -> str:
    return f"/torture-private{client}"


def scratch_path(client: int) -> str:
    """Per-client scratch file: the truncate/remove/rename victim."""
    return f"/torture-scratch{client}"


def ns_path(slot: int) -> str:
    """Shared namespace slot ``slot`` — a rename target name.

    The slot *names* are shared across episodes, but each episode
    assigns every slot to exactly one client (rotated by the seed, see
    :meth:`Program.ns_slot_of`), so concurrent namespace traffic stays
    single-writer and therefore checkable.
    """
    return f"/torture-ns{slot}"


def dir_path(client: int) -> str:
    """Per-client directory for mkdir/readdir traffic."""
    return f"/torture-dir{client}"


@dataclass(frozen=True)
class Op:
    """One client-program step.

    ``kind`` is one of ``write`` (own bytes, tagged), ``read``,
    ``fsync``, ``reopen`` (close + open, drops close-to-open state),
    ``lock`` / ``unlock`` (advisory byte-range), ``sleep``; metadata
    programs add ``truncate`` (``length`` holds the new size),
    ``recreate`` (remove + create the same path), ``rename`` (``file``
    → ``dest``), ``mkdir``, ``readdir`` and ``getattr``.
    """

    kind: str
    file: str = ""
    offset: int = 0
    length: int = 0
    tag: int = 0
    lock_kind: str = "write"
    delay: float = 0.0
    #: rename destination (metadata programs only; "" otherwise keeps
    #: old serialized programs loadable).
    dest: str = ""


@dataclass(frozen=True)
class FaultSpec:
    """One abstract fault: resolved against a deployment by the runner.

    ``kind``: ``outage`` (one server fail/restore), ``blackout`` (every
    server down for the window — defeats pNFS MDS-proxy failover, the
    schedule that must flush out silent write-back loss), ``nic_drop``
    / ``nic_delay`` (a client NIC loses a fraction of flows / gains
    latency for the window).  ``target`` indexes servers (outage) or
    clients (nic_*); ``param`` is the drop probability or added delay.
    """

    kind: str
    target: int = 0
    start: float = 0.1
    duration: float = 0.5
    param: float = 0.0


@dataclass
class Program:
    """A complete torture episode: workload + fault schedule."""

    seed: int
    n_clients: int
    chunk: int
    shared_size: int
    private_size: int
    ops: list[list[Op]] = field(default_factory=list)
    faults: list[FaultSpec] = field(default_factory=list)
    #: True when the program exercises metadata/namespace op kinds.
    metadata: bool = False

    # -- ownership ---------------------------------------------------------
    def ns_slot_of(self, client: int) -> int:
        """The shared namespace slot owned by ``client`` this episode.

        Rotated by the seed so the slot *names* are contended across
        episodes while staying single-owner within one.
        """
        return (client + self.seed) % self.n_clients

    def owner_of(self, path: str, offset: int) -> int:
        """The client allowed to write byte ``offset`` of ``path``."""
        if path == SHARED:
            return (offset // self.chunk) % self.n_clients
        for c in range(self.n_clients):
            if path == private_path(c):
                return c
            if path == scratch_path(c) or path == ns_path(self.ns_slot_of(c)):
                return c
        raise ValueError(f"unknown torture file {path!r}")

    def file_size(self, path: str) -> int:
        return self.shared_size if path == SHARED else self.private_size

    @property
    def files(self) -> list[str]:
        paths = [SHARED] + [private_path(c) for c in range(self.n_clients)]
        if self.metadata:
            paths += [scratch_path(c) for c in range(self.n_clients)]
        return paths

    @property
    def op_count(self) -> int:
        return sum(len(t) for t in self.ops)

    # -- (de)serialisation — failing programs ship as CI artifacts ---------
    def to_json(self) -> str:
        return json.dumps(
            {
                "seed": self.seed,
                "n_clients": self.n_clients,
                "chunk": self.chunk,
                "shared_size": self.shared_size,
                "private_size": self.private_size,
                "ops": [[asdict(op) for op in track] for track in self.ops],
                "faults": [asdict(f) for f in self.faults],
                "metadata": self.metadata,
            },
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str) -> "Program":
        raw = json.loads(text)
        return cls(
            seed=raw["seed"],
            n_clients=raw["n_clients"],
            chunk=raw["chunk"],
            shared_size=raw["shared_size"],
            private_size=raw["private_size"],
            ops=[[Op(**op) for op in track] for track in raw["ops"]],
            faults=[FaultSpec(**f) for f in raw["faults"]],
            metadata=raw.get("metadata", False),
        )

    def without(self, drop_ops: set = frozenset(), drop_faults: set = frozenset()) -> "Program":
        """Copy minus the ops/faults named by (client, index) / index."""
        ops = [
            [op for j, op in enumerate(track) if (c, j) not in drop_ops]
            for c, track in enumerate(self.ops)
        ]
        faults = [f for i, f in enumerate(self.faults) if i not in drop_faults]
        return replace(self, ops=ops, faults=faults)


# --------------------------------------------------------------------------
# Generation
# --------------------------------------------------------------------------

_OP_KINDS = ["write", "read", "fsync", "reopen", "lock", "sleep"]
_OP_WEIGHTS = [0.40, 0.23, 0.12, 0.07, 0.13, 0.05]

#: Metadata programs add namespace/attribute op kinds.  The weights are
#: a separate universe: enabling ``metadata_ops`` deliberately changes
#: every rng draw, which is why the flag defaults off — the pinned
#: data-path regression seeds must keep their exact streams.
_META_OP_KINDS = _OP_KINDS + [
    "truncate",
    "recreate",
    "rename",
    "mkdir",
    "readdir",
    "getattr",
]
_META_OP_WEIGHTS = [
    0.28, 0.16, 0.09, 0.05, 0.09, 0.04,  # the data-path kinds
    0.09, 0.05, 0.05, 0.04, 0.03, 0.03,  # the metadata kinds
]

_FAULT_KINDS = ["outage", "blackout", "nic_drop", "nic_delay"]
_FAULT_WEIGHTS = [0.40, 0.20, 0.25, 0.15]


def generate(
    seed: int,
    n_clients: int | None = None,
    ops_per_client: int | None = None,
    with_faults: bool = True,
    metadata_ops: bool = False,
) -> Program:
    """The torture program for ``seed`` — pure function of its arguments."""
    rng = np.random.default_rng(seed)
    n = int(n_clients) if n_clients is not None else int(rng.integers(2, 4))
    chunk = int(rng.choice([8, 16, 32])) * KB
    slots_per_client = int(rng.integers(2, 4))
    prog = Program(
        seed=seed,
        n_clients=n,
        chunk=chunk,
        shared_size=chunk * n * slots_per_client,
        private_size=chunk * int(rng.integers(1, 4)),
        metadata=bool(metadata_ops),
    )
    next_tag = 1

    def take_tag() -> int:
        nonlocal next_tag
        tag = (next_tag - 1) % 255 + 1  # 1..255, never 0 (the hole value)
        next_tag += 1
        return tag

    for c in range(n):
        track: list[Op] = []
        held: list[tuple[str, int, int]] = []  # (file, start, end) we hold
        own_slots = [k * n + c for k in range(slots_per_client)]

        def own_range(rng=rng, c=c, own_slots=own_slots):
            """A write range the client owns: one shared slot or private."""
            if rng.random() < 0.6:
                slot = int(rng.choice(own_slots))
                base = slot * chunk
                span = chunk
                path = SHARED
            else:
                base, span, path = 0, prog.private_size, private_path(c)
            start = base + int(rng.integers(0, span))
            length = int(rng.integers(1, span - (start - base) + 1))
            return path, start, start + length

        # Metadata programs: current name of the client's scratch file
        # (renames toggle it against the client's namespace slot) and
        # the number of directories created so far.
        cur_scratch = scratch_path(c)
        slot_name = ns_path(prog.ns_slot_of(c))
        ndirs = 0

        def meta_rw_path(rng=rng, c=c):
            """A read/fsync/reopen target including the scratch file."""
            r = rng.random()
            if r < 0.5:
                return SHARED
            if r < 0.8:
                return private_path(c)
            return cur_scratch

        def own_range_meta(rng=rng, c=c, own_slots=own_slots):
            """Like own_range, but a quarter of writes hit the scratch
            file so truncate/recreate have bytes to resurrect."""
            r = rng.random()
            if r < 0.5:
                slot = int(rng.choice(own_slots))
                base, span, path = slot * chunk, chunk, SHARED
            elif r < 0.75:
                base, span, path = 0, prog.private_size, private_path(c)
            else:
                base, span, path = 0, prog.private_size, cur_scratch
            start = base + int(rng.integers(0, span))
            length = int(rng.integers(1, span - (start - base) + 1))
            return path, start, start + length

        count = (
            int(ops_per_client)
            if ops_per_client is not None
            else int(rng.integers(6, 14))
        )
        for _ in range(count):
            if metadata_ops:
                kind = str(rng.choice(_META_OP_KINDS, p=_META_OP_WEIGHTS))
                if kind == "write":
                    path, start, end = own_range_meta()
                    track.append(
                        Op("write", path, start, end - start, tag=take_tag())
                    )
                elif kind == "read":
                    path = meta_rw_path()
                    size = prog.file_size(path)
                    start = int(rng.integers(0, size))
                    length = int(rng.integers(1, min(64 * KB, size - start) + 1))
                    track.append(Op("read", path, start, length))
                elif kind == "fsync":
                    track.append(Op("fsync", meta_rw_path()))
                elif kind == "reopen":
                    track.append(Op("reopen", meta_rw_path()))
                elif kind == "lock":
                    # Locks stay on the stable files: a lock held on a
                    # path that is then renamed/recreated could never be
                    # released by its (path-keyed) unlock op.
                    if held and rng.random() < 0.45:
                        path, start, end = held.pop(int(rng.integers(len(held))))
                        track.append(Op("unlock", path, start, end - start))
                    else:
                        path, start, end = own_range()
                        lk = "write" if rng.random() < 0.7 else "read"
                        track.append(
                            Op("lock", path, start, end - start, lock_kind=lk)
                        )
                        held.append((path, start, end))
                elif kind == "truncate":
                    target = cur_scratch if rng.random() < 0.6 else private_path(c)
                    new_size = int(rng.integers(0, prog.private_size + 1))
                    track.append(Op("truncate", target, length=new_size))
                elif kind == "recreate":
                    track.append(Op("recreate", cur_scratch))
                elif kind == "rename":
                    other = (
                        slot_name
                        if cur_scratch == scratch_path(c)
                        else scratch_path(c)
                    )
                    track.append(Op("rename", cur_scratch, dest=other))
                    cur_scratch = other
                elif kind == "mkdir":
                    path = (
                        dir_path(c) if ndirs == 0 else f"{dir_path(c)}/d{ndirs}"
                    )
                    track.append(Op("mkdir", path))
                    ndirs += 1
                elif kind == "readdir":
                    if ndirs == 0:
                        track.append(Op("mkdir", dir_path(c)))
                        ndirs += 1
                    else:
                        track.append(Op("readdir", dir_path(c)))
                elif kind == "getattr":
                    r = rng.random()
                    path = (
                        SHARED
                        if r < 0.4
                        else (private_path(c) if r < 0.7 else cur_scratch)
                    )
                    track.append(Op("getattr", path))
                else:
                    track.append(Op("sleep", delay=float(rng.uniform(0.01, 0.15))))
                continue
            kind = str(rng.choice(_OP_KINDS, p=_OP_WEIGHTS))
            if kind == "write":
                path, start, end = own_range()
                track.append(
                    Op("write", path, start, end - start, tag=take_tag())
                )
            elif kind == "read":
                # Anywhere in any file — including other owners' bytes.
                path = SHARED if rng.random() < 0.7 else private_path(c)
                size = prog.file_size(path)
                start = int(rng.integers(0, size))
                length = int(rng.integers(1, min(64 * KB, size - start) + 1))
                track.append(Op("read", path, start, length))
            elif kind == "fsync":
                path = SHARED if rng.random() < 0.7 else private_path(c)
                track.append(Op("fsync", path))
            elif kind == "reopen":
                path = SHARED if rng.random() < 0.7 else private_path(c)
                track.append(Op("reopen", path))
            elif kind == "lock":
                if held and rng.random() < 0.45:
                    path, start, end = held.pop(int(rng.integers(len(held))))
                    track.append(Op("unlock", path, start, end - start))
                else:
                    path, start, end = own_range()
                    lk = "write" if rng.random() < 0.7 else "read"
                    track.append(Op("lock", path, start, end - start, lock_kind=lk))
                    held.append((path, start, end))
            else:
                # Think time stretches the episode across the fault
                # windows; without it the whole workload outruns them.
                track.append(Op("sleep", delay=float(rng.uniform(0.01, 0.15))))
        # Orderly epilogue: drop every lock still held, then persist.
        for path, start, end in held:
            track.append(Op("unlock", path, start, end - start))
        track.append(Op("fsync", SHARED))
        track.append(Op("fsync", private_path(c)))
        if metadata_ops:
            track.append(Op("fsync", cur_scratch))
        prog.ops.append(track)

    if with_faults:
        for _ in range(int(rng.integers(0, 3))):
            kind = str(rng.choice(_FAULT_KINDS, p=_FAULT_WEIGHTS))
            # Start/duration are sized against the workload: episodes run
            # their ops in a few hundred milliseconds of sim time, so
            # windows beyond that only ever fault an idle cluster.  Most
            # windows are shorter than the RPC retry budget (~3.75 s
            # under the torture config) — retransmission must save the
            # data; a minority outlast it, forcing write-backs to *fail*
            # and the errseq/failover paths to carry the episode.
            duration = (
                float(rng.uniform(4.0, 8.0))
                if rng.random() < 0.3
                else float(rng.uniform(0.05, 0.45))
            )
            spec = FaultSpec(
                kind=kind,
                target=int(rng.integers(0, 8)),
                start=float(rng.uniform(0.002, 0.2)),
                duration=duration,
                param=float(rng.uniform(0.05, 0.4))
                if kind == "nic_drop"
                else float(rng.uniform(0.001, 0.05)),
            )
            prog.faults.append(spec)
    return prog
