"""Greedy delta-debugging: minimise failing inputs by re-running them.

:func:`shrink_list` is the generic core (also used by the property
tests to minimise counterexamples); :func:`shrink_program` applies it
to a failing torture program — first dropping whole fault specs, then
halves/quarters/single ops — re-running the candidate episode after
each removal and keeping it only while the failure persists.
Determinism (same program → same trace → same verdict) is what makes
this sound: a kept removal can never "un-fail" later.
"""

from __future__ import annotations

from typing import Callable, Iterable, TypeVar

from repro.check.program import Program
from repro.check.runner import run_episode

__all__ = ["shrink_list", "shrink_program"]

T = TypeVar("T")


def shrink_list(items: list[T], still_fails: Callable[[list[T]], bool]) -> list[T]:
    """Greedy ddmin: smallest sublist for which ``still_fails`` holds.

    ``still_fails(items)`` must be True on entry.  Tries removing
    contiguous blocks of halving size; restarts the pass whenever a
    removal sticks, until no single element can be removed.
    """
    if not still_fails(items):
        raise ValueError("shrink_list needs a failing input to start from")
    block = max(1, len(items) // 2)
    while block >= 1:
        i, shrunk = 0, False
        while i < len(items):
            candidate = items[:i] + items[i + block :]
            if candidate and still_fails(candidate):
                items = candidate
                shrunk = True
            else:
                i += block
        block = block // 2 if not shrunk else min(block, max(1, len(items) // 2))
        if block == 0:
            break
    return items


def _violation_kinds(violations: Iterable[str]) -> set:
    """The failure fingerprint: the checker name before each ':'."""
    return {v.split(":", 1)[0] for v in violations}


def shrink_program(
    program: Program,
    arch: str,
    client_factory=None,
    max_runs: int = 400,
    progress=None,
) -> tuple[Program, int]:
    """Minimise a failing program; returns (minimal program, runs used).

    A candidate counts as still-failing when it reproduces at least one
    violation of the same *kind* (same checker) as the original — so
    the shrinker chases one bug instead of hopping between bugs.
    """
    baseline = run_episode(program, arch, client_factory=client_factory)
    if baseline.ok:
        raise ValueError("program does not fail; nothing to shrink")
    target_kinds = _violation_kinds(baseline.violations)
    runs = 1

    def fails(candidate: Program) -> bool:
        nonlocal runs
        if runs >= max_runs:
            return False  # budget exhausted: stop accepting removals
        runs += 1
        res = run_episode(candidate, arch, client_factory=client_factory)
        hit = bool(_violation_kinds(res.violations) & target_kinds)
        if progress is not None:
            progress(candidate, hit, runs)
        return hit

    # 1. Faults: drop them all if the bug survives, else ddmin the set.
    if program.faults:
        idx = list(range(len(program.faults)))
        if fails(program.without(drop_faults=set(idx))):
            program = program.without(drop_faults=set(idx))
        else:
            try:
                kept = shrink_list(
                    idx,
                    lambda keep: fails(
                        program.without(drop_faults=set(idx) - set(keep))
                    ),
                )
                program = program.without(drop_faults=set(idx) - set(kept))
            except ValueError:  # budget ran out on the entry re-check
                pass

    # 2. Ops: flatten to (client, index) labels and ddmin over them.
    labels = [
        (c, j) for c, track in enumerate(program.ops) for j in range(len(track))
    ]
    all_labels = set(labels)
    try:
        kept = shrink_list(
            labels, lambda keep: fails(program.without(drop_ops=all_labels - set(keep)))
        )
        program = program.without(drop_ops=all_labels - set(kept))
    except ValueError:
        pass
    return program, runs
