"""Reference file model and data-integrity oracles.

The model shadows every torture write at the byte level (vectorised
over numpy arrays, so whole-file checks stay cheap) and answers two
questions the simulation cannot answer about itself:

* **mid-episode read oracle** — a read may be stale (close-to-open
  consistency, caches, in-flight write-back) but never *invented*:
  every observed byte must be a value some write actually put there, or
  0 (the hole value).  Additionally, a client reading bytes it wrote
  itself, with no I/O error surfaced to it so far, must see its own
  last acknowledged write (read-your-writes);
* **post-episode durability oracle** — after faults heal and every
  client has fsynced, a fresh client's read-back must satisfy errseq
  semantics: for each byte, the *durability floor* is the last
  acknowledged write covered by a successful fsync; the byte must hold
  that write's tag or a later write's tag.  An older tag (or a hole)
  below the floor means an acknowledged-and-fsynced write was silently
  lost — the class of bug the PR-3 write-back fix closed.

Byte ownership (see :mod:`repro.check.program`) guarantees each byte
has one writer, so "last write" is well defined without modelling the
servers' internal serialisation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.check.program import Program

__all__ = ["Model"]

#: Error kinds that may legitimately cost data (degrade read-your-writes
#: to the tolerant oracle).  Lock conflicts never taint.
_DATA_OPS = ("write", "fsync", "reopen", "close", "open")


@dataclass
class _Write:
    start: int
    end: int
    tag: int
    client: int
    acked: bool = False


@dataclass
class _FileState:
    size: int
    owner: np.ndarray  # per-byte writing client
    writes: list[_Write] = field(default_factory=list)
    last_acked_idx: np.ndarray = None  # type: ignore[assignment]
    acked_writer: np.ndarray = None  # type: ignore[assignment]
    floor_idx: np.ndarray = None  # type: ignore[assignment]

    def __post_init__(self):
        self.last_acked_idx = np.full(self.size, -1, dtype=np.int32)
        self.acked_writer = np.full(self.size, -1, dtype=np.int16)
        self.floor_idx = np.full(self.size, -1, dtype=np.int32)

    def tags(self) -> np.ndarray:
        return np.array([w.tag for w in self.writes] or [0], dtype=np.int32)


class Model:
    """Shadow state + oracles for one program execution."""

    def __init__(self, program: Program):
        self.program = program
        self.files: dict[str, _FileState] = {}
        for path in program.files:
            size = program.file_size(path)
            owner = np.fromiter(
                (program.owner_of(path, x) for x in range(0, size, 1)),
                dtype=np.int16,
                count=size,
            )
            self.files[path] = _FileState(size=size, owner=owner)
        #: (client, path) pairs that saw an I/O error: read-your-writes
        #: no longer applies (data may legitimately have been dropped
        #: after the error was *surfaced* — that is errseq working).
        self.tainted: set[tuple[int, str]] = set()
        self.reads_checked = 0
        self.bytes_checked = 0
        self.synthetic_reads = 0

    # -- write lifecycle ---------------------------------------------------
    def on_write_start(self, client: int, path: str, start: int, end: int, tag: int) -> int:
        """Register an attempted write; returns its index.

        Attempted-but-unacknowledged writes may still land on disk (the
        ack, not the data, can be what the fault destroyed), so they
        enter the oracle's *allowed* sets immediately.
        """
        st = self.files[path]
        st.writes.append(_Write(start, end, tag, client))
        return len(st.writes) - 1

    def on_write_ack(self, path: str, idx: int) -> None:
        st = self.files[path]
        w = st.writes[idx]
        w.acked = True
        st.last_acked_idx[w.start : w.end] = idx
        st.acked_writer[w.start : w.end] = w.client

    def on_durable(self, client: int, path: str) -> None:
        """A successful fsync/close by ``client``: every write it has
        had acknowledged so far is now guaranteed durable."""
        st = self.files[path]
        mine = st.acked_writer == client
        st.floor_idx[mine] = np.maximum(st.floor_idx[mine], st.last_acked_idx[mine])

    def on_error(self, client: int, path: str, op_kind: str) -> None:
        if op_kind in _DATA_OPS:
            self.tainted.add((client, path))

    # -- oracles -----------------------------------------------------------
    def _allowed_mask(
        self, st: _FileState, offset: int, observed: np.ndarray, floor: np.ndarray | None
    ) -> np.ndarray:
        """Bytes of ``observed`` explainable by the write history.

        With ``floor`` (final check) a write only explains bytes whose
        durability floor it meets; without (mid-episode) any historical
        value — or a hole — is acceptable.
        """
        n = len(observed)
        end = offset + n
        if floor is None:
            allowed = observed == 0
        else:
            allowed = (observed == 0) & (floor == -1)
        for idx, w in enumerate(st.writes):
            if w.end <= offset or w.start >= end:
                continue
            lo, hi = max(w.start, offset) - offset, min(w.end, end) - offset
            span = slice(lo, hi)
            ok = observed[span] == w.tag
            if floor is not None:
                ok &= idx >= floor[span]
            allowed[span] |= ok
        return allowed

    def check_read(
        self, client: int, path: str, offset: int, data: bytes | None, nbytes: int
    ) -> list[str]:
        """Mid-episode oracle for one read's result."""
        self.reads_checked += 1
        if data is None:
            self.synthetic_reads += 1
            return []
        st = self.files[path]
        observed = np.frombuffer(data, dtype=np.uint8).astype(np.int32)
        self.bytes_checked += len(observed)
        violations = []
        allowed = self._allowed_mask(st, offset, observed, floor=None)
        if not allowed.all():
            bad = int(np.flatnonzero(~allowed)[0])
            violations.append(
                f"read-oracle: client{client} {path}[{offset}+{nbytes}] "
                f"byte {offset + bad} = {int(observed[bad])}, never written"
            )
        # Read-your-writes on the reader's own acknowledged bytes.
        if (client, path) not in self.tainted:
            end = offset + len(observed)
            region = slice(offset, end)
            own = (st.acked_writer[region] == client) & (
                st.last_acked_idx[region] >= 0
            )
            if own.any():
                expected = st.tags()[st.last_acked_idx[region]]
                mism = own & (observed != expected)
                if mism.any():
                    bad = int(np.flatnonzero(mism)[0])
                    violations.append(
                        f"read-your-writes: client{client} {path} byte "
                        f"{offset + bad} = {int(observed[bad])}, expected "
                        f"{int(expected[bad])} (own acknowledged write, "
                        f"no error surfaced)"
                    )
        return violations

    def check_final(self, path: str, data: bytes | None, nbytes: int) -> list[str]:
        """Post-heal durability oracle over a fresh client's read-back."""
        st = self.files[path]
        observed = np.zeros(st.size, dtype=np.int32)
        if data is not None:
            got = np.frombuffer(data, dtype=np.uint8).astype(np.int32)
            observed[: min(len(got), st.size)] = got[: st.size]
        elif nbytes and any(w.acked for w in st.writes):
            return [
                f"final-read: {path} returned synthetic payload — cannot "
                f"verify durability of acknowledged writes"
            ]
        allowed = self._allowed_mask(st, 0, observed, floor=st.floor_idx)
        if allowed.all():
            return []
        bad_idx = np.flatnonzero(~allowed)
        bad = int(bad_idx[0])
        floor = int(st.floor_idx[bad])
        want = int(st.tags()[floor]) if floor >= 0 else 0
        kind = (
            "silent-loss: acknowledged+fsynced write lost"
            if floor >= 0
            else "corruption: value never written"
        )
        return [
            f"durability: {path} {len(bad_idx)} bad bytes, first at "
            f"{bad}: got {int(observed[bad])}, durability floor requires "
            f">= write tag {want} — {kind}"
        ]
