"""Reference file model and data-integrity oracles.

The model shadows every torture write at the byte level (vectorised
over numpy arrays, so whole-file checks stay cheap) and answers two
questions the simulation cannot answer about itself:

* **mid-episode read oracle** — a read may be stale (close-to-open
  consistency, caches, in-flight write-back) but never *invented*:
  every observed byte must be a value some write actually put there, or
  0 (the hole value).  Additionally, a client reading bytes it wrote
  itself, with no I/O error surfaced to it so far, must see its own
  last acknowledged write (read-your-writes);
* **post-episode durability oracle** — after faults heal and every
  client has fsynced, a fresh client's read-back must satisfy errseq
  semantics: for each byte, the *durability floor* is the last
  acknowledged write covered by a successful fsync; the byte must hold
  that write's tag or a later write's tag.  An older tag (or a hole)
  below the floor means an acknowledged-and-fsynced write was silently
  lost — the class of bug the PR-3 write-back fix closed.

Byte ownership (see :mod:`repro.check.program`) guarantees each byte
has one writer, so "last write" is well defined without modelling the
servers' internal serialisation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.check.program import Program

__all__ = ["Model"]

#: Error kinds that may legitimately cost data (degrade read-your-writes
#: to the tolerant oracle).  Lock conflicts never taint.
_DATA_OPS = (
    "write",
    "fsync",
    "reopen",
    "close",
    "open",
    "truncate",
    "recreate",
    "rename",
)


@dataclass
class _Write:
    start: int
    end: int
    tag: int
    client: int
    acked: bool = False
    #: True for the pseudo-write a truncate enters into the history:
    #: tag 0 (the hole value) over [new_size, cap).
    is_trunc: bool = False


@dataclass
class _FileState:
    size: int  # allocation cap — the byte-array extent, not logical size
    owner: np.ndarray  # per-byte writing client
    writes: list[_Write] = field(default_factory=list)
    last_acked_idx: np.ndarray = None  # type: ignore[assignment]
    acked_writer: np.ndarray = None  # type: ignore[assignment]
    floor_idx: np.ndarray = None  # type: ignore[assignment]
    #: Logical-size window: every acked size-changing op raises/sets
    #: ``size_lo``; every *attempted* one raises ``size_hi``.  When the
    #: two agree the post-quiesce server size is exactly pinned.
    size_lo: int = 0
    size_hi: int = 0
    #: Per-client own-size floor: a client's getattr must never report
    #: less than its own acknowledged extends (used for the shared
    #: file, where the exact size is a cross-client race).
    own_floor: dict = field(default_factory=dict)
    #: A namespace op (remove/recreate/rename) on this file errored —
    #: even its *name* is no longer certain; skip final verification.
    ns_uncertain: bool = False
    #: A truncate errored: the logical size is one of two values.
    size_uncertain: bool = False
    #: Removed and not (yet) certainly recreated.
    absent: bool = False

    def __post_init__(self):
        self.last_acked_idx = np.full(self.size, -1, dtype=np.int32)
        self.acked_writer = np.full(self.size, -1, dtype=np.int16)
        self.floor_idx = np.full(self.size, -1, dtype=np.int32)

    def tags(self) -> np.ndarray:
        return np.array([w.tag for w in self.writes] or [0], dtype=np.int32)

    @property
    def size_known(self) -> bool:
        return not self.size_uncertain and self.size_lo == self.size_hi


class Model:
    """Shadow state + oracles for one program execution."""

    def __init__(self, program: Program):
        self.program = program
        self.files: dict[str, _FileState] = {}
        for path in program.files:
            size = program.file_size(path)
            owner = np.fromiter(
                (program.owner_of(path, x) for x in range(0, size, 1)),
                dtype=np.int16,
                count=size,
            )
            self.files[path] = _FileState(size=size, owner=owner)
        #: (client, path) pairs that saw an I/O error: read-your-writes
        #: no longer applies (data may legitimately have been dropped
        #: after the error was *surfaced* — that is errseq working).
        self.tainted: set[tuple[int, str]] = set()
        #: Reference namespace for directories: dir path -> child name
        #: -> "sure" (mkdir acked) | "maybe" (mkdir attempted, errored).
        self.dirs: dict[str, dict[str, str]] = {}
        self.reads_checked = 0
        self.bytes_checked = 0
        self.synthetic_reads = 0

    def _state(self, path: str) -> _FileState:
        """State for ``path``, materialising one if the runner reaches a
        name the model has not tracked there (possible only after a
        namespace op whose outcome was ambiguous) — such states are born
        ``ns_uncertain`` so they are never verified, only tolerated."""
        st = self.files.get(path)
        if st is None:
            size = self.program.file_size(path)
            owner = np.fromiter(
                (self.program.owner_of(path, x) for x in range(size)),
                dtype=np.int16,
                count=size,
            )
            st = _FileState(size=size, owner=owner)
            st.ns_uncertain = True
            self.files[path] = st
        return st

    # -- write lifecycle ---------------------------------------------------
    def on_write_start(self, client: int, path: str, start: int, end: int, tag: int) -> int:
        """Register an attempted write; returns its index.

        Attempted-but-unacknowledged writes may still land on disk (the
        ack, not the data, can be what the fault destroyed), so they
        enter the oracle's *allowed* sets immediately.
        """
        st = self._state(path)
        st.writes.append(_Write(start, end, tag, client))
        st.size_hi = max(st.size_hi, end)
        return len(st.writes) - 1

    def on_write_ack(self, path: str, idx: int) -> None:
        st = self.files[path]
        w = st.writes[idx]
        w.acked = True
        st.last_acked_idx[w.start : w.end] = idx
        st.acked_writer[w.start : w.end] = w.client
        st.size_lo = max(st.size_lo, w.end)
        st.own_floor[w.client] = max(st.own_floor.get(w.client, 0), w.end)

    # -- truncate lifecycle ------------------------------------------------
    def on_trunc_start(self, client: int, path: str, new_size: int) -> int:
        """A truncate attempt enters the history immediately: tag 0 over
        [new_size, cap) — even an unacknowledged truncate may have
        landed, so post-cut holes must be tolerated either way."""
        st = self._state(path)
        st.writes.append(
            _Write(min(new_size, st.size), st.size, 0, client, is_trunc=True)
        )
        st.size_hi = max(st.size_hi, new_size)
        return len(st.writes) - 1

    def on_trunc_ack(self, path: str, idx: int, new_size: int) -> None:
        """Truncate acknowledged: it is synchronous server-side metadata,
        so the durability floor over the cut range rises *now* — bytes
        past ``new_size`` resurfacing later is resurrection."""
        st = self.files[path]
        w = st.writes[idx]
        w.acked = True
        st.last_acked_idx[w.start : w.end] = idx
        st.acked_writer[w.start : w.end] = w.client
        st.floor_idx[w.start : w.end] = idx
        # Single-writer files only: the acked truncate pins the exact
        # logical size until the next size-changing op.
        st.size_lo = st.size_hi = new_size
        st.size_uncertain = False
        for c in list(st.own_floor):
            st.own_floor[c] = min(st.own_floor[c], new_size)

    def on_trunc_error(self, client: int, path: str) -> None:
        st = self._state(path)
        st.size_uncertain = True
        self.on_error(client, path, "truncate")

    # -- namespace lifecycle -----------------------------------------------
    def _fresh_state(self, path: str) -> "_FileState":
        old = self._state(path)
        return _FileState(size=old.size, owner=old.owner)

    def on_remove_ack(self, client: int, path: str) -> None:
        """The file was removed: its history dies with it.  A recreated
        file starts from an empty history — the dead file's bytes must
        never resurface under the same name."""
        st = self._fresh_state(path)
        st.absent = True
        self.files[path] = st
        self.tainted = {(cl, p) for (cl, p) in self.tainted if p != path}

    def on_recreate_ack(self, client: int, path: str) -> None:
        self._state(path).absent = False

    def on_ns_error(self, client: int, path: str, op_kind: str) -> None:
        """A namespace op errored: the file's very name/existence is now
        uncertain — drop it from final verification."""
        self._state(path).ns_uncertain = True
        self.on_error(client, path, op_kind)

    def on_rename_ack(self, client: int, old: str, new: str) -> None:
        """The file's history follows it to the new name; anything that
        previously lived at the new name (rename-over) dies, taints
        included."""
        st = self.files.pop(old, None)
        if st is None:
            st = self._fresh_state(new)
            st.ns_uncertain = True
        self.files[new] = st
        self.tainted = {
            (cl, new if p == old else p)
            for (cl, p) in self.tainted
            if p != new
        }

    def on_rename_error(self, client: int, old: str, new: str) -> None:
        """Either name may now hold the file (or neither, transiently):
        both drop out of verification."""
        for p in (old, new):
            self._state(p).ns_uncertain = True
        self.on_error(client, old, "rename")

    def on_mkdir_ack(self, client: int, path: str) -> None:
        parent, _, leaf = path.rpartition("/")
        if parent and parent != "/":
            self.dirs.setdefault(parent, {})[leaf] = "sure"
        self.dirs.setdefault(path, {})

    def on_mkdir_error(self, client: int, path: str) -> None:
        parent, _, leaf = path.rpartition("/")
        if parent and parent != "/":
            entry = self.dirs.setdefault(parent, {})
            entry.setdefault(leaf, "maybe")
        self.dirs.setdefault(path, {})

    def on_durable(self, client: int, path: str) -> None:
        """A successful fsync/close by ``client``: every write it has
        had acknowledged so far is now guaranteed durable."""
        st = self._state(path)
        mine = st.acked_writer == client
        st.floor_idx[mine] = np.maximum(st.floor_idx[mine], st.last_acked_idx[mine])

    def on_error(self, client: int, path: str, op_kind: str) -> None:
        if op_kind in _DATA_OPS:
            self.tainted.add((client, path))

    # -- namespace / attribute oracles -------------------------------------
    def check_getattr(self, client: int, path: str, attrs) -> list[str]:
        """Mid-episode size oracle for one getattr reply.

        Single-writer files (private/scratch): the owner's own getattr
        must report the exact current size — local extends count (Linux
        i_size semantics), which is what flushes out attr-cache
        staleness after own writes.  The shared file's exact size is a
        cross-client race, but a reader must never see less than its
        own acknowledged extends, nor more than any write ever reached.
        """
        st = self.files.get(path)
        if st is None or attrs is None:
            return []
        if attrs.size > st.size_hi:
            return [
                f"getattr-size: client{client} {path} size {int(attrs.size)} "
                f"> {st.size_hi}, beyond any write/truncate ever attempted"
            ]
        if (client, path) in self.tainted:
            return []
        own = st.own_floor.get(client, 0)
        if attrs.size < own:
            return [
                f"getattr-size: client{client} {path} size {int(attrs.size)} "
                f"< {own}, below the client's own acknowledged extend "
                f"(stale own-write attributes)"
            ]
        multi = st.owner.size > 0 and bool((st.owner != st.owner[0]).any())
        sole_writer = not multi and st.owner.size > 0 and int(st.owner[0]) == client
        if (
            sole_writer
            and st.size_known
            and not st.ns_uncertain
            and not st.absent
            and attrs.size != st.size_lo
        ):
            return [
                f"getattr-size: client{client} {path} size {int(attrs.size)} "
                f"!= {st.size_lo}, the sole writer's acknowledged size"
            ]
        return []

    def check_readdir(self, client: int, path: str, names) -> list[str]:
        """Listing oracle: acked children must appear; nothing the model
        never attempted to create may appear."""
        entry = self.dirs.get(path)
        if entry is None:
            return []
        got = set(names)
        sure = {n for n, s in entry.items() if s == "sure"}
        missing = sure - got
        invented = got - set(entry)
        v = []
        if missing:
            v.append(
                f"readdir: client{client} {path} listing misses acknowledged "
                f"entries {sorted(missing)}"
            )
        if invented:
            v.append(
                f"readdir: client{client} {path} listing invented entries "
                f"{sorted(invented)}"
            )
        return v

    def final_paths(self) -> list[str]:
        """File paths the post-heal verifier can check: present, and with
        a history the model is still certain about."""
        return sorted(
            p
            for p, st in self.files.items()
            if not st.ns_uncertain and not st.absent
        )

    def check_final_getattr(self, path: str, attrs) -> list[str]:
        """Post-quiesce size oracle: with every client closed and faults
        healed, a fresh client's getattr must report the exact final
        size whenever the model has it pinned."""
        st = self.files[path]
        if attrs is None:
            return []
        tainted_file = any(p == path for (_c, p) in self.tainted)
        if st.ns_uncertain or not st.size_known or tainted_file:
            if attrs.size > st.size_hi:
                return [
                    f"final-getattr: {path} size {int(attrs.size)} > "
                    f"{st.size_hi}, beyond any write/truncate ever attempted"
                ]
            return []
        if attrs.size != st.size_lo:
            return [
                f"final-getattr: {path} size {int(attrs.size)} != "
                f"{st.size_lo} after quiesce (all writes acknowledged and "
                f"closed cleanly)"
            ]
        return []

    # -- oracles -----------------------------------------------------------
    def _allowed_mask(
        self, st: _FileState, offset: int, observed: np.ndarray, floor: np.ndarray | None
    ) -> np.ndarray:
        """Bytes of ``observed`` explainable by the write history.

        With ``floor`` (final check) a write only explains bytes whose
        durability floor it meets; without (mid-episode) any historical
        value — or a hole — is acceptable.
        """
        n = len(observed)
        end = offset + n
        if floor is None:
            allowed = observed == 0
        else:
            allowed = (observed == 0) & (floor == -1)
        for idx, w in enumerate(st.writes):
            if w.end <= offset or w.start >= end:
                continue
            lo, hi = max(w.start, offset) - offset, min(w.end, end) - offset
            span = slice(lo, hi)
            ok = observed[span] == w.tag
            if floor is not None:
                ok &= idx >= floor[span]
            allowed[span] |= ok
        return allowed

    def check_read(
        self, client: int, path: str, offset: int, data: bytes | None, nbytes: int
    ) -> list[str]:
        """Mid-episode oracle for one read's result."""
        self.reads_checked += 1
        if data is None:
            self.synthetic_reads += 1
            return []
        st = self._state(path)
        observed = np.frombuffer(data, dtype=np.uint8).astype(np.int32)
        self.bytes_checked += len(observed)
        violations = []
        allowed = self._allowed_mask(st, offset, observed, floor=None)
        if not allowed.all():
            bad = int(np.flatnonzero(~allowed)[0])
            violations.append(
                f"read-oracle: client{client} {path}[{offset}+{nbytes}] "
                f"byte {offset + bad} = {int(observed[bad])}, never written"
            )
        # Read-your-writes on the reader's own acknowledged bytes.
        if (client, path) not in self.tainted:
            end = offset + len(observed)
            region = slice(offset, end)
            own = (st.acked_writer[region] == client) & (
                st.last_acked_idx[region] >= 0
            )
            if own.any():
                expected = st.tags()[st.last_acked_idx[region]]
                mism = own & (observed != expected)
                if mism.any():
                    bad = int(np.flatnonzero(mism)[0])
                    violations.append(
                        f"read-your-writes: client{client} {path} byte "
                        f"{offset + bad} = {int(observed[bad])}, expected "
                        f"{int(expected[bad])} (own acknowledged write, "
                        f"no error surfaced)"
                    )
        return violations

    def check_final(self, path: str, data: bytes | None, nbytes: int) -> list[str]:
        """Post-heal durability oracle over a fresh client's read-back."""
        st = self.files[path]
        observed = np.zeros(st.size, dtype=np.int32)
        if data is not None:
            got = np.frombuffer(data, dtype=np.uint8).astype(np.int32)
            observed[: min(len(got), st.size)] = got[: st.size]
        elif nbytes and any(w.acked for w in st.writes):
            return [
                f"final-read: {path} returned synthetic payload — cannot "
                f"verify durability of acknowledged writes"
            ]
        allowed = self._allowed_mask(st, 0, observed, floor=st.floor_idx)
        if allowed.all():
            return []
        bad_idx = np.flatnonzero(~allowed)
        bad = int(bad_idx[0])
        floor = int(st.floor_idx[bad])
        want = int(st.tags()[floor]) if floor >= 0 else 0
        if floor >= 0 and st.writes[floor].is_trunc:
            kind = (
                "truncate-resurrection: bytes beyond an acknowledged "
                "truncate reappeared"
            )
        elif floor >= 0:
            kind = "silent-loss: acknowledged+fsynced write lost"
        else:
            kind = "corruption: value never written"
        return [
            f"durability: {path} {len(bad_idx)} bad bytes, first at "
            f"{bad}: got {int(observed[bad])}, durability floor requires "
            f">= write tag {want} — {kind}"
        ]
