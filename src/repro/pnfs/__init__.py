"""pNFS (NFSv4.1 parallel NFS) protocol layer.

Extends the NFSv4 substrate with the file-based storage protocol (§3):
layouts and devices (:mod:`repro.pnfs.layout`), the metadata server
with GETDEVLIST / LAYOUTGET / LAYOUTCOMMIT / LAYOUTRETURN and callback
recall (:mod:`repro.pnfs.server`), layout providers — including the
synthetic provider used by the indirect 2-/3-tier architectures
(:mod:`repro.pnfs.providers`) — and the pNFS client whose layout driver
routes I/O straight to data servers (:mod:`repro.pnfs.client`).
"""

from repro.pnfs.layout import FileLayout
from repro.pnfs.providers import LayoutProvider, SyntheticFileLayoutProvider
from repro.pnfs.server import PnfsMetadataServer
from repro.pnfs.client import PnfsClient

__all__ = [
    "FileLayout",
    "LayoutProvider",
    "PnfsClient",
    "PnfsMetadataServer",
    "SyntheticFileLayoutProvider",
]
