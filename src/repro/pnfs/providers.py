"""Layout providers: how a pNFS metadata server synthesises layouts.

The provider is the policy seam that distinguishes the architectures:

* :class:`SyntheticFileLayoutProvider` — used by the 2-tier and 3-tier
  file-layout systems.  It stripes round-robin over the data servers
  *without any knowledge of where the exported parallel file system
  actually put the bytes* (§3.4.1); data servers then reach the data
  through their own full parallel-FS clients, moving stripes between
  servers.
* :class:`repro.core.layout_translator.LayoutTranslator` — the
  Direct-pNFS provider, which converts the parallel file system's own
  distribution into an *accurate* layout.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.pnfs.layout import FileLayout

__all__ = ["LayoutProvider", "SyntheticFileLayoutProvider"]


class LayoutProvider(ABC):
    """Produces a :class:`FileLayout` for a file (generator method)."""

    @abstractmethod
    def get_layout(self, fh, path: str):
        """Simulation generator returning a :class:`FileLayout`."""


class SyntheticFileLayoutProvider(LayoutProvider):
    """Round-robin layout over the data servers, blind to data location.

    Every data server exports the same backend file system, so the same
    filehandle works at each of them; the stripe unit is a free policy
    choice with **no relation to the backend's stripe size** — the
    block-size mismatch of §3.4.1 falls out of that freedom.
    """

    def __init__(self, ndevices: int, stripe_unit: int):
        if ndevices < 1 or stripe_unit < 1:
            raise ValueError("ndevices and stripe_unit must be >= 1")
        self.ndevices = ndevices
        self.stripe_unit = stripe_unit
        self._issued = 0
        self._first_slot_by_fh: dict = {}

    def get_layout(self, fh, path: str):
        # Rotate the first stripe index per file (stable per fh) so
        # concurrent single-stream clients spread over the data servers.
        first = self._first_slot_by_fh.get(fh)
        if first is None:
            first = self._issued % self.ndevices
            self._first_slot_by_fh[fh] = first
            self._issued += 1
        return FileLayout(
            device_slots=list(range(self.ndevices)),
            fhs=[fh] * self.ndevices,
            aggregation={
                "type": "round_robin",
                "nslots": self.ndevices,
                "stripe_unit": self.stripe_unit,
                "first_slot": first,
            },
        )
        yield  # pragma: no cover - generator protocol
