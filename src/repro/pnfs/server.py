"""pNFS metadata server: NFSv4.1 control path plus layout operations.

Extends :class:`~repro.nfs.server.Nfs4Server` with the four layout
operations the prototype uses (§5) and the callback path:

* ``GETDEVLIST`` — device (data-server) access information, fetched
  once at mount time;
* ``LAYOUTGET`` — a file's layout, issued after open, valid for the
  file's lifetime;
* ``LAYOUTCOMMIT`` — post-I/O metadata update (file size, mtime);
* ``LAYOUTRETURN`` — voluntary return;
* ``CB_LAYOUTRECALL`` — server-initiated recall, sent over the
  client's backchannel when a conflicting operation (e.g. truncate)
  invalidates issued layouts.
"""

from __future__ import annotations

from typing import Optional

from repro import rpc
from repro.nfs.config import NfsConfig
from repro.nfs.server import Nfs4Server
from repro.pnfs.layout import FileLayout
from repro.pnfs.providers import LayoutProvider
from repro.sim.engine import Simulator
from repro.sim.node import Node
from repro.vfs.api import FileSystemClient

__all__ = ["PnfsMetadataServer"]


class PnfsMetadataServer(Nfs4Server):
    """Metadata server for any file-layout pNFS deployment."""

    def __init__(
        self,
        sim: Simulator,
        node: Node,
        backend: FileSystemClient,
        cfg: NfsConfig,
        data_servers: list[Nfs4Server],
        layout_provider: LayoutProvider,
        name: str = "",
    ):
        super().__init__(sim, node, backend, cfg, name=name or f"{node.name}.pnfs-mds")
        if not data_servers:
            raise ValueError("pNFS needs at least one data server")
        self.data_servers = data_servers
        self.layout_provider = layout_provider
        #: issued layouts: fh -> list of (layout, callback RpcServer|None)
        self._issued: dict[object, list[tuple[FileLayout, Optional[rpc.RpcServer]]]] = {}
        self.layouts_granted = 0
        self.layouts_recalled = 0
        for proc, handler in [
            ("getdevlist", self._h_getdevlist),
            ("layoutget", self._h_layoutget),
            ("layoutcommit", self._h_layoutcommit),
            ("layoutreturn", self._h_layoutreturn),
        ]:
            self.rpc.register(proc, handler)

    # -- layout operations ----------------------------------------------------
    def _h_getdevlist(self, args, payload):
        # Device access information: in the simulation the "address" is
        # the data server endpoint object itself.
        return {"devices": list(self.data_servers)}, None
        yield  # pragma: no cover

    def _h_layoutget(self, args, payload):
        fh = args["fh"]
        layout = yield from self.layout_provider.get_layout(fh, args.get("path", ""))
        if layout.stateid == 0:
            # Stamp freshly minted layouts from the simulation's own id
            # stream (providers may also return cached, already-issued
            # layouts, which keep their stateid).
            layout.stateid = self.sim.next_id("layout-stateid")
        self._issued.setdefault(fh, []).append((layout, args.get("callback")))
        self.layouts_granted += 1
        return {"layout": layout}, None

    def _h_layoutcommit(self, args, payload):
        """Record post-I/O metadata: possible file-size extension (§5)."""
        fh, size = args["fh"], args.get("size")
        try:
            yield from self.backend.size_hint(fh, size)
        except NotImplementedError:
            pass
        return None, None

    def _h_layoutreturn(self, args, payload):
        fh, stateid = args["fh"], args.get("stateid")
        grants = self._issued.get(fh, [])
        self._issued[fh] = [
            (lo, cb) for (lo, cb) in grants if stateid is not None and lo.stateid != stateid
        ]
        return None, None
        yield  # pragma: no cover

    # -- recall ---------------------------------------------------------------
    def recall_layouts(self, fh):
        """Generator: CB_LAYOUTRECALL every issued layout for ``fh``."""
        grants = self._issued.pop(fh, [])
        procs = []
        for layout, callback in grants:
            if callback is None:
                continue
            procs.append(
                self.sim.process(
                    self._cb_call(
                        callback,
                        "cb_layoutrecall",
                        {"fh": fh, "stateid": layout.stateid},
                    )
                )
            )
            self.layouts_recalled += 1
        if procs:
            yield self.sim.all_of(procs)

    def issued_for(self, fh) -> int:
        """Number of currently issued layouts for ``fh`` (introspection)."""
        return len(self._issued.get(fh, []))

    # -- conflicting metadata ops trigger recalls ------------------------------
    def _h_truncate(self, args, payload):
        # Truncate invalidates issued layouts: resolve the path to its
        # filehandle(s) through the open-file table (layouts are only
        # issued against handles this server has opened) and recall
        # every grant.  The old fh-only match never fired — clients
        # send path-based truncates — so stale layouts survived the
        # cut.  Recalls run detached from this handler (see the base
        # class's truncate-recall note): the grants leave ``_issued``
        # the moment the recall process starts, and a holder that
        # cannot be reached is simply revoked.
        for fh, f in list(self._open_files.items()):
            if f.path == args["path"] and fh in self._issued:
                self.sim.process(
                    self.recall_layouts(fh), name=f"{self.name}.layout-recall"
                )
        if args.get("fh") is not None and args["fh"] in self._issued:
            self.sim.process(
                self.recall_layouts(args["fh"]),
                name=f"{self.name}.layout-recall",
            )
        result = yield from super()._h_truncate(args, payload)
        return result
