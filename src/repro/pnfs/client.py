"""pNFS client: NFSv4.1 client + file layout driver + I/O driver.

Subclasses :class:`~repro.nfs.client.Nfs4Client`, keeping the whole
page-cache/readahead/write-back machinery, and reroutes the wire I/O
through layouts:

* ``mount`` adds GETDEVLIST;
* ``open``/``create`` add LAYOUTGET (layouts govern the whole file and
  are cached for the life of the open, §3.4/§5);
* READ/WRITE go directly to the data servers selected by the layout's
  aggregation driver;
* fsync/close COMMIT at every touched data server (or through the MDS
  when the layout says so) and then LAYOUTCOMMIT the new file size to
  the metadata server;
* a backchannel service answers CB_LAYOUTRECALL by dropping the cached
  layout (re-fetched lazily on the next I/O).

This class *is* the "unmodified NFSv4.1 client" of the paper: the same
code serves Direct-pNFS and the 2-/3-tier architectures — only the
layout contents differ.
"""

from __future__ import annotations

from repro.core.aggregation import driver_for
from repro.nfs.client import Nfs4Client
from repro.nfs.config import NfsConfig
from repro.nfs.server import Nfs4Server
from repro.pnfs.server import PnfsMetadataServer
from repro.rpc import RpcTimeout
from repro.sim.engine import Simulator
from repro.sim.node import Node
from repro.vfs.api import OpenFile, Payload

__all__ = ["PnfsClient"]


class PnfsClient(Nfs4Client):
    """Stock NFSv4.1 client with the file-based layout driver."""

    label = "pnfs"

    def __init__(self, sim: Simulator, node: Node, mds: PnfsMetadataServer, cfg: NfsConfig):
        super().__init__(sim, node, mds, cfg)
        self.mds = mds
        self.devices: list[Nfs4Server] = []
        # Layout recalls share the base client's backchannel (one
        # session backchannel carries all callback programs).
        self._cb.register("cb_layoutrecall", self._h_cb_layoutrecall)
        self._open_by_fh: dict[object, list[OpenFile]] = {}
        #: Layouts are valid for the lifetime of the inode (§5): keep
        #: them across open/close and skip LAYOUTGET on reopen.
        self._layout_cache: dict[object, object] = {}
        #: Failover state (paper §5 "versatility"): data servers whose
        #: direct path timed out, mapped to the sim time at which the
        #: client will probe them again.  While a server is listed, its
        #: stripes are proxied through the MDS as plain NFSv4 I/O.
        #: Only meaningful when ``cfg.rpc_timeout`` enables the fault
        #: layer — without timeouts a dead server hangs the call.
        self._ds_blacklist: dict[Nfs4Server, float] = {}
        #: Times a healthy data server was newly failed over from.
        self.failovers = 0
        #: Times a blacklisted data server was probed and found healthy.
        self.recoveries = 0
        #: Payload bytes that took the MDS-proxy path instead of the
        #: direct path (failover traffic, visible in benchmarks).
        self.proxied_bytes = 0

    # -- mount / layout management ------------------------------------------
    def mount(self):
        result = yield from super().mount()
        dres, _ = yield from self._call("getdevlist", {})
        self.devices = dres["devices"]
        return result

    def _post_open(self, f: OpenFile):
        yield from self._layoutget(f)

    def _layoutget(self, f: OpenFile):
        layout = self._layout_cache.get(f.state["fh"])
        if layout is None:
            result, _ = yield from self._call(
                "layoutget",
                {"fh": f.state["fh"], "path": f.path, "callback": self._cb},
            )
            layout = result["layout"]
            self._layout_cache[f.state["fh"]] = layout
        f.state["layout"] = layout
        f.state["agg"] = driver_for(layout.aggregation)
        f.state.setdefault("commit_slots", set())
        f.state.setdefault("layoutcommitted_size", f.state["size"])
        siblings = self._open_by_fh.setdefault(f.state["fh"], [])
        if f not in siblings:
            siblings.append(f)
        return layout

    def _ensure_layout(self, f: OpenFile):
        if f.state.get("layout") is None:
            yield from self._layoutget(f)

    def _h_cb_layoutrecall(self, args, payload):
        """Backchannel: drop the recalled layout; re-fetch lazily."""
        self._layout_cache.pop(args["fh"], None)
        for f in self._open_by_fh.get(args["fh"], []):
            f.state["layout"] = None
            f.state["agg"] = None
        return None, None
        yield  # pragma: no cover

    def layout_return(self, f: OpenFile):
        """Voluntarily return the file's layout (LAYOUTRETURN)."""
        layout = f.state.get("layout")
        if layout is None:
            return
        yield from self._call(
            "layoutreturn", {"fh": f.state["fh"], "stateid": layout.stateid}
        )
        self._layout_cache.pop(f.state["fh"], None)
        f.state["layout"] = None
        f.state["agg"] = None

    # -- data path -------------------------------------------------------------
    def _ds_for(self, layout, slot: int) -> Nfs4Server:
        return self.devices[layout.device_slots[slot]]

    # -- failover (paper §5: fall back to NFSv4 I/O through the MDS) --------
    def _ds_down(self, ds: Nfs4Server) -> bool:
        """True while ``ds`` is blacklisted.  An expired entry returns
        False so the next I/O probes the direct path again."""
        until = self._ds_blacklist.get(ds)
        return until is not None and self.sim.now < until

    def _note_ds_ok(self, ds: Nfs4Server) -> None:
        """A direct call to a (formerly blacklisted) server succeeded:
        direct access is recovered."""
        if ds in self._ds_blacklist:
            del self._ds_blacklist[ds]
            self.recoveries += 1

    def _note_ds_failure(self, f: OpenFile, ds: Nfs4Server):
        """A direct call to ``ds`` timed out: blacklist it and return
        the layout so the MDS knows we are falling back (LAYOUTRETURN,
        §5).  Subsequent I/O to its stripes is proxied until a probe
        after ``cfg.ds_retry_interval`` finds it healthy."""
        newly = not self._ds_down(ds)
        self._ds_blacklist[ds] = self.sim.now + self.cfg.ds_retry_interval
        if newly:
            self.failovers += 1
            try:
                yield from self.layout_return(f)
            except RpcTimeout:
                # The MDS is unreachable too; nothing left to fail over
                # to — the layout will be recalled when state recovers.
                pass

    def _io_read(self, f: OpenFile, offset: int, nbytes: int):
        yield from self._ensure_layout(f)
        layout, agg = f.state["layout"], f.state["agg"]
        segments = agg.map(offset, nbytes, for_write=False)
        results: list = [None] * len(segments)

        def proxy_read(i, seg):
            res, data = yield from Nfs4Client._io_read(self, f, seg.offset, seg.length)
            self.proxied_bytes += data.nbytes
            results[i] = (res, data)

        def seg_read(i, seg):
            ds = self._ds_for(layout, seg.device_slot)
            if not self._ds_down(ds):
                try:
                    res, data = yield from self._call(
                        "read",
                        {
                            "fh": layout.fhs[seg.device_slot],
                            "offset": seg.offset,
                            "nbytes": seg.length,
                        },
                        server=ds,
                    )
                    self._note_ds_ok(ds)
                    results[i] = (res, data)
                    return
                except RpcTimeout:
                    yield from self._note_ds_failure(f, ds)
            yield from proxy_read(i, seg)

        procs = [
            self.sim.process(seg_read(i, seg)) for i, seg in enumerate(segments)
        ]
        if procs:
            yield self.sim.all_of(procs)

        payloads = [data for (_res, data) in results]
        last_with_data = -1
        for i, p in enumerate(payloads):
            if p.nbytes > 0:
                last_with_data = i
        for i in range(last_with_data):
            want = segments[i].length
            p = payloads[i]
            if p.nbytes < want:
                pad = (
                    Payload.synthetic(want - p.nbytes)
                    if p.is_synthetic
                    else Payload(b"\x00" * (want - p.nbytes))
                )
                payloads[i] = Payload.concat([p, pad])
        out = Payload.concat(payloads) if payloads else Payload(b"")
        return {"count": out.nbytes, "eof": out.nbytes < nbytes}, out

    def _io_write(self, f: OpenFile, offset: int, payload: Payload):
        yield from self._ensure_layout(f)
        layout, agg = f.state["layout"], f.state["agg"]
        segments = agg.map(offset, payload.nbytes, for_write=True)

        def proxy_write(seg, sub):
            yield from Nfs4Client._io_write(self, f, seg.offset, sub)
            self.proxied_bytes += sub.nbytes
            # Proxied data is only durable via a COMMIT at the MDS.
            f.state["mds_dirty"] = True

        def seg_write(seg):
            ds = self._ds_for(layout, seg.device_slot)
            sub = payload.slice(seg.offset - offset, seg.length)
            if not self._ds_down(ds):
                try:
                    yield from self._call(
                        "write",
                        {"fh": layout.fhs[seg.device_slot], "offset": seg.offset},
                        payload=sub,
                        server=ds,
                    )
                    self._note_ds_ok(ds)
                    f.state["commit_slots"].add(seg.device_slot)
                    return
                except RpcTimeout:
                    yield from self._note_ds_failure(f, ds)
            yield from proxy_write(seg, sub)

        procs = [self.sim.process(seg_write(seg)) for seg in segments]
        if procs:
            yield self.sim.all_of(procs)
        return {"count": payload.nbytes}, None

    def _io_commit(self, f: OpenFile):
        yield from self._ensure_layout(f)
        layout = f.state["layout"]
        if layout.commit_through_mds:
            yield from super()._io_commit(f)
            f.state["mds_dirty"] = False
        else:
            need_mds = [f.state.pop("mds_dirty", False)]

            def seg_commit(slot):
                ds = self._ds_for(layout, slot)
                if not self._ds_down(ds):
                    try:
                        yield from self._call(
                            "commit", {"fh": layout.fhs[slot]}, server=ds
                        )
                        self._note_ds_ok(ds)
                        return
                    except RpcTimeout:
                        yield from self._note_ds_failure(f, ds)
                # Data written through this server reached the shared
                # backend; a COMMIT at the MDS makes it durable there.
                need_mds[0] = True

            procs = [
                self.sim.process(seg_commit(slot))
                for slot in sorted(f.state["commit_slots"])
            ]
            if procs:
                yield self.sim.all_of(procs)
            if need_mds[0]:
                yield from Nfs4Client._io_commit(self, f)
        f.state["commit_slots"].clear()
        # Inform the MDS of metadata changes — only when the file size
        # may actually have moved (Linux sends LAYOUTCOMMIT only for
        # size/mtime changes beyond the MDS's knowledge).
        if f.state["size"] > f.state.get("layoutcommitted_size", -1):
            yield from self._call(
                "layoutcommit", {"fh": f.state["fh"], "size": f.state["size"]}
            )
            f.state["layoutcommitted_size"] = f.state["size"]

    def close(self, f: OpenFile):
        yield from super().close(f)
        siblings = self._open_by_fh.get(f.state["fh"], [])
        if f in siblings:
            siblings.remove(f)
