"""pNFS file-based layout types (paper §3.4).

A file-based layout carries exactly what the paper lists: aggregation
type and stripe size, data-server identifiers, one filehandle per data
server, and policy parameters.  Layouts govern the whole file and stay
valid until returned or recalled.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["FileLayout"]


@dataclass
class FileLayout:
    """An issued file-based layout.

    ``device_slots`` indexes the file system's device list (GETDEVLIST
    order); ``fhs`` gives the filehandle to use at each slot;
    ``aggregation`` describes how bytes map to slots and is interpreted
    by an aggregation driver on the client (round-robin for the two
    schemes NFSv4.1 supports natively, richer types via optional
    drivers).  ``commit_through_mds`` selects whether COMMIT goes to
    data servers or the metadata server (a standard file-layout policy
    bit).
    """

    device_slots: list[int]
    fhs: list
    aggregation: dict
    policy: dict = field(default_factory=dict)
    commit_through_mds: bool = False
    #: Assigned by the issuing metadata server from its simulation's id
    #: stream (``Simulator.next_id``); 0 means "not yet issued".  Ids
    #: must never come from process-global state: replayed runs have to
    #: hand out identical stateids.
    stateid: int = 0

    def __post_init__(self):
        if len(self.device_slots) != len(self.fhs):
            raise ValueError("one filehandle per device slot required")
        if not self.device_slots:
            raise ValueError("layout needs at least one device")
        if "type" not in self.aggregation:
            raise ValueError("aggregation description needs a 'type'")

    @property
    def ndevices(self) -> int:
        return len(self.device_slots)
