"""ATLAS digitization write-trace replay (paper §6.3.1).

The Digitization stage of the ATLAS detector simulation writes
≈650 MB per 500-event run, spread randomly over a single file per
client, with a bimodal request-size mix the paper characterises
precisely: **95 % of requests are smaller than 275 KB, yet 95 % of the
bytes are written by requests of at least 275 KB.**  The trace
generator reproduces exactly that mix; the workload replays it the way
the paper replayed its IOZone trace (write-only, one file per client,
durable at the end).
"""

from __future__ import annotations

import numpy as np

from repro.vfs.api import FileSystemClient, Payload
from repro.workloads.base import Workload, WorkloadResult

__all__ = ["AtlasWorkload", "generate_digitization_trace"]

KB = 1024
MB = 1024 * 1024

#: The paper's small/large boundary.
SMALL_LARGE_CUTOFF = 275 * KB


def generate_digitization_trace(
    rng: np.random.Generator,
    total_bytes: int,
    n_requests: int,
) -> list[tuple[int, int]]:
    """(offset, size) write requests with the ATLAS §6.3.1 size mix.

    95 % of the requests draw from a small-request class (< 275 KB) that
    carries 5 % of the bytes; the remaining 5 % of requests carry 95 %
    of the bytes in requests ≥ 275 KB.
    """
    if total_bytes < 1 or n_requests < 20:
        raise ValueError("need at least 20 requests and 1 byte")
    n_small = max(1, int(round(n_requests * 0.95)))
    n_large = max(1, n_requests - n_small)
    small_budget = int(total_bytes * 0.05)
    large_budget = total_bytes - small_budget

    # Small requests: uniform around their implied mean, capped below
    # the cutoff.  Large requests: uniform around their mean, floored at
    # the cutoff.
    small_mean = max(1 * KB, small_budget // n_small)
    small_sizes = rng.integers(
        max(512, small_mean // 2), min(SMALL_LARGE_CUTOFF, small_mean * 2), size=n_small
    )
    large_mean = max(SMALL_LARGE_CUTOFF, large_budget // n_large)
    large_sizes = rng.integers(
        SMALL_LARGE_CUTOFF, max(SMALL_LARGE_CUTOFF + 1, 2 * large_mean), size=n_large
    )
    # Rescale each class to hit its byte budget exactly (integer-safely).
    small_sizes = _rescale(small_sizes, small_budget, lo=512, hi=SMALL_LARGE_CUTOFF - 1)
    large_sizes = _rescale(large_sizes, large_budget, lo=SMALL_LARGE_CUTOFF, hi=None)

    sizes = np.concatenate([small_sizes, large_sizes])
    rng.shuffle(sizes)
    requests = []
    for size in sizes:
        size = int(size)
        offset = int(rng.integers(0, max(1, total_bytes - size)))
        requests.append((offset, size))
    return requests


def _rescale(sizes: np.ndarray, budget: int, lo: int, hi) -> np.ndarray:
    """Scale integer sizes so their sum ≈ budget, clipped to [lo, hi]."""
    sizes = sizes.astype(np.float64)
    sizes *= budget / sizes.sum()
    sizes = np.clip(np.round(sizes), lo, hi if hi is not None else None)
    return sizes.astype(np.int64)


class AtlasWorkload(Workload):
    """Replay one 500-event digitization write trace per client."""

    name = "atlas"

    def __init__(
        self,
        total_bytes: int = 650 * MB,
        n_requests: int = 2000,
        scale: float = 1.0,
        seed: int = 20070625,
    ):
        super().__init__(scale=scale, seed=seed)
        self.total_bytes = max(4 * MB, int(total_bytes * scale))
        self.n_requests = max(40, int(n_requests * scale))

    def prepare(self, sim, admin: FileSystemClient, n_clients: int):
        yield from admin.mkdir("/atlas")

    def client_proc(self, sim, fsc: FileSystemClient, client_idx: int, n_clients: int):
        trace = generate_digitization_trace(
            self.rng(client_idx), self.total_bytes, self.n_requests
        )
        f = yield from fsc.create(f"/atlas/digi{client_idx}")
        moved = 0
        for offset, size in trace:
            yield from fsc.write(f, offset, Payload.synthetic(size))
            moved += size
        yield from fsc.fsync(f)
        yield from fsc.close(f)
        return WorkloadResult(bytes_moved=moved, transactions=len(trace))
