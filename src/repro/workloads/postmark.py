"""Postmark macro-benchmark (paper §6.4.2).

Simulates mail/news/web-service file activity: a pool of small files
(1 KB–500 KB) spread over ten directories, then transactions that
first delete, create, or open a file and then read or append 512
bytes, with data sent to stable storage before each close.  The paper
runs 2,000 transactions over 100 files per client and reports
transactions per second, using 64 KB stripe/rsize/wsize.

The transaction window (after the creation phase, before cleanup) is
reported in ``extra['txn_start'] / extra['txn_end']`` so the harness
can compute tps exactly as Postmark does.
"""

from __future__ import annotations

from repro.vfs.api import FileSystemClient, Payload
from repro.workloads.base import Workload, WorkloadResult

__all__ = ["PostmarkWorkload"]

KB = 1024


class PostmarkWorkload(Workload):
    """Metadata + small-I/O transaction mix."""

    name = "postmark"

    def __init__(
        self,
        transactions: int = 2000,
        nfiles: int = 100,
        ndirs: int = 10,
        fmin: int = 1 * KB,
        fmax: int = 500 * KB,
        io_bytes: int = 512,
        scale: float = 1.0,
        seed: int = 20070625,
    ):
        super().__init__(scale=scale, seed=seed)
        self.transactions = max(10, int(transactions * scale))
        self.nfiles = max(10, int(nfiles * min(1.0, scale * 2)))
        self.ndirs = ndirs
        self.fmin = fmin
        self.fmax = fmax
        self.io_bytes = io_bytes

    def prepare(self, sim, admin: FileSystemClient, n_clients: int):
        yield from admin.mkdir("/postmark")
        for c in range(n_clients):
            yield from admin.mkdir(f"/postmark/c{c}")
            for d in range(self.ndirs):
                yield from admin.mkdir(f"/postmark/c{c}/d{d}")

    def _create_file(self, fsc, rng, path: str):
        size = int(rng.integers(self.fmin, self.fmax))
        f = yield from fsc.create(path)
        yield from fsc.write(f, 0, Payload.synthetic(size))
        yield from fsc.fsync(f)  # data durable before close
        yield from fsc.close(f)
        return size

    def client_proc(self, sim, fsc: FileSystemClient, client_idx: int, n_clients: int):
        rng = self.rng(client_idx)
        base = f"/postmark/c{client_idx}"
        next_id = 0
        files: dict[str, int] = {}  # path -> size

        def new_path():
            nonlocal next_id
            d = int(rng.integers(0, self.ndirs))
            path = f"{base}/d{d}/pm{next_id}"
            next_id += 1
            return path

        # Phase 1: create the initial pool (not part of the tps window).
        moved = 0
        for _ in range(self.nfiles):
            path = new_path()
            size = yield from self._create_file(fsc, rng, path)
            files[path] = size
            moved += size

        # Phase 2: transactions.
        txn_start = sim.now
        paths = list(files)
        for _ in range(self.transactions):
            if rng.random() < 0.5:
                # create/delete class
                if rng.random() < 0.5 and len(paths) > 1:
                    victim = paths.pop(int(rng.integers(0, len(paths))))
                    size = files.pop(victim)
                    yield from fsc.remove(victim)
                else:
                    path = new_path()
                    size = yield from self._create_file(fsc, rng, path)
                    files[path] = size
                    paths.append(path)
                    moved += size
            else:
                # read/append class on a random existing file
                path = paths[int(rng.integers(0, len(paths)))]
                reading = rng.random() < 0.5
                f = yield from fsc.open(path, write=not reading)
                if reading:
                    offset = int(rng.integers(0, max(1, files[path] - self.io_bytes)))
                    yield from fsc.read(f, offset, self.io_bytes)
                else:
                    yield from fsc.write(f, files[path], Payload.synthetic(self.io_bytes))
                    files[path] += self.io_bytes
                    yield from fsc.fsync(f)
                moved += self.io_bytes
                yield from fsc.close(f)
        txn_end = sim.now

        # Phase 3: cleanup (not timed).
        for path in paths:
            yield from fsc.remove(path)

        return WorkloadResult(
            bytes_moved=moved,
            transactions=self.transactions,
            extra={"txn_start": txn_start, "txn_end": txn_end},
        )
