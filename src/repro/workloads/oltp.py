"""OLTP macro-benchmark (paper §6.4.1).

A database-style workload: a single large shared file, and per client a
stream of transactions, each an 8 KB random read-modify-write with the
data sent to stable storage after every transaction (fsync).  The paper
runs 20,000 transactions per client; aggregate throughput counts the
8 KB transaction payload.
"""

from __future__ import annotations

from repro.vfs.api import FileSystemClient, Payload
from repro.workloads.base import Workload, WorkloadResult

__all__ = ["OltpWorkload"]

KB = 1024
MB = 1024 * 1024


class OltpWorkload(Workload):
    """8 KB read-modify-write transactions on one shared file."""

    name = "oltp"

    def __init__(
        self,
        transactions: int = 20_000,
        io_size: int = 8 * KB,
        region_bytes: int = 16 * MB,
        scale: float = 1.0,
        seed: int = 20070625,
    ):
        super().__init__(scale=scale, seed=seed)
        self.transactions = max(10, int(transactions * scale))
        self.io_size = io_size
        # The hot region is NOT scaled: the working-set density, which
        # governs write-back coalescing, must stay scale-invariant.
        self.region_bytes = max(io_size * 16, int(region_bytes))

    def prepare(self, sim, admin: FileSystemClient, n_clients: int):
        yield from admin.mkdir("/oltp")
        f = yield from admin.create("/oltp/db")
        total = self.region_bytes * n_clients
        pos = 0
        while pos < total:
            n = min(8 * MB, total - pos)
            yield from admin.write(f, pos, Payload.synthetic(n))
            pos += n
        yield from admin.fsync(f)
        yield from admin.close(f)

    def client_proc(self, sim, fsc: FileSystemClient, client_idx: int, n_clients: int):
        rng = self.rng(client_idx)
        f = yield from fsc.open("/oltp/db")
        base = client_idx * self.region_bytes
        slots = self.region_bytes // self.io_size
        moved = 0
        for _ in range(self.transactions):
            offset = base + int(rng.integers(0, slots)) * self.io_size
            data = yield from fsc.read(f, offset, self.io_size)
            if data.nbytes != self.io_size:
                raise RuntimeError("OLTP read shortfall")
            yield from fsc.write(f, offset, Payload.synthetic(self.io_size))
            yield from fsc.fsync(f)
            moved += self.io_size
        yield from fsc.close(f)
        return WorkloadResult(bytes_moved=moved, transactions=self.transactions)
