"""Workload interface.

A workload is architecture-agnostic: it only sees
:class:`~repro.vfs.api.FileSystemClient` instances.  The benchmark
runner calls ``prepare`` once (through an extra "admin" client — e.g.
pre-creating the files a read experiment will read, which also warms
the server caches exactly as the paper's warm-cache read experiments
require), then starts ``client_proc`` simultaneously on every client.

All workloads accept a ``scale`` factor that shrinks data volumes and
operation counts proportionally, so the test suite can exercise them
quickly while benchmark runs use larger (or full) scale.  Random
streams are seeded per (workload, client) — runs are deterministic.
"""

from __future__ import annotations

import zlib
from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from repro.vfs.api import FileSystemClient

__all__ = ["Workload", "WorkloadResult"]


@dataclass
class WorkloadResult:
    """Per-client outcome of one workload run."""

    bytes_moved: int = 0
    transactions: int = 0
    #: Workload-specific measurements (phase timings, txn windows, ...).
    extra: dict = field(default_factory=dict)


class Workload(ABC):
    """Base class for all benchmark workloads."""

    name: str = "abstract"

    def __init__(self, scale: float = 1.0, seed: int = 20070625):
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.scale = scale
        self.seed = seed

    def rng(self, client_idx: int) -> np.random.Generator:
        """Deterministic per-client random stream.

        The name is folded in with ``crc32``, not ``hash()``: string
        hashes are randomised per process, which would make the same
        workload draw different streams in different worker processes —
        parallel sweeps must be bit-identical to serial ones.
        """
        name_tag = zlib.crc32(self.name.encode()) & 0xFFFF
        return np.random.default_rng((self.seed, name_tag, client_idx))

    def prepare(self, sim, admin: FileSystemClient, n_clients: int):
        """Generator: one-time setup (directories, pre-created files)."""
        return None
        yield  # pragma: no cover

    @abstractmethod
    def client_proc(self, sim, fsc: FileSystemClient, client_idx: int, n_clients: int):
        """Generator: one client's benchmark; returns a WorkloadResult."""
