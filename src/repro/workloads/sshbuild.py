"""SSH-build style benchmark (paper §6.4.3).

Following the SSH build benchmark of Seltzer et al., the paper built a
workload that uncompresses, configures, and builds OpenSSH and reports
per-phase behaviour: Direct-pNFS *reduces* compilation time (small
read/write dominated) but *increases* uncompress and configure time
(file creation and attribute updates, which NFS recentralises on its
metadata server).

This workload reproduces the op mix of the three phases as a synthetic
trace with per-phase timings returned in ``extra``:

* **uncompress** — create many small source files;
* **configure** — small probe files created/removed, lots of getattr
  and attribute updates, small reads;
* **build** — read each source (some repeatedly — header files), write
  object files, then link: read all objects, write one large binary.
"""

from __future__ import annotations

from repro.vfs.api import FileSystemClient, Payload
from repro.workloads.base import Workload, WorkloadResult

__all__ = ["SshBuildWorkload"]

KB = 1024


class SshBuildWorkload(Workload):
    """Uncompress / configure / build phase mix."""

    name = "sshbuild"

    def __init__(self, nsources: int = 400, scale: float = 1.0, seed: int = 20070625):
        super().__init__(scale=scale, seed=seed)
        self.nsources = max(20, int(nsources * scale))

    def prepare(self, sim, admin: FileSystemClient, n_clients: int):
        yield from admin.mkdir("/build")
        for c in range(n_clients):
            yield from admin.mkdir(f"/build/c{c}")

    def client_proc(self, sim, fsc: FileSystemClient, client_idx: int, n_clients: int):
        rng = self.rng(client_idx)
        base = f"/build/c{client_idx}"
        moved = 0
        phases = {}

        # -- uncompress: extract the source tree --------------------------
        t0 = sim.now
        yield from fsc.mkdir(f"{base}/src")
        sources = []
        for i in range(self.nsources):
            path = f"{base}/src/s{i}.c"
            size = int(rng.integers(2 * KB, 40 * KB))
            f = yield from fsc.create(path)
            yield from fsc.write(f, 0, Payload.synthetic(size))
            yield from fsc.close(f)
            sources.append((path, size))
            moved += size
        phases["uncompress"] = sim.now - t0

        # -- configure: probes, stats, attribute updates --------------------
        t0 = sim.now
        nprobes = self.nsources // 2
        for i in range(nprobes):
            probe = f"{base}/conftest{i}.c"
            f = yield from fsc.create(probe)
            yield from fsc.write(f, 0, Payload.synthetic(int(rng.integers(256, 2048))))
            yield from fsc.close(f)
            yield from fsc.getattr(probe)
            yield from fsc.setattr(probe, mode=0o755)
            yield from fsc.remove(probe)
        for path, _size in sources[: self.nsources // 4]:
            yield from fsc.getattr(path)
        phases["configure"] = sim.now - t0

        # -- build: compile + link -------------------------------------------
        t0 = sim.now
        yield from fsc.mkdir(f"{base}/obj")
        headers = sources[: max(1, self.nsources // 10)]
        objects = []
        for i, (path, size) in enumerate(sources):
            f = yield from fsc.open(path, write=False)
            pos = 0
            while pos < size:  # compilers read in small chunks
                chunk = yield from fsc.read(f, pos, 8 * KB)
                pos += max(1, chunk.nbytes)
            yield from fsc.close(f)
            # every compile re-reads a few headers (cache-friendly)
            for hpath, hsize in headers[:3]:
                hf = yield from fsc.open(hpath, write=False)
                yield from fsc.read(hf, 0, min(hsize, 8 * KB))
                yield from fsc.close(hf)
            opath = f"{base}/obj/o{i}.o"
            osize = int(size * 1.5)
            of = yield from fsc.create(opath)
            yield from fsc.write(of, 0, Payload.synthetic(osize))
            yield from fsc.close(of)
            objects.append((opath, osize))
            moved += size + osize
        # link: read all objects, emit the binary
        total_obj = 0
        for opath, osize in objects:
            of = yield from fsc.open(opath, write=False)
            yield from fsc.read(of, 0, osize)
            yield from fsc.close(of)
            total_obj += osize
        binf = yield from fsc.create(f"{base}/sshd")
        yield from fsc.write(binf, 0, Payload.synthetic(total_obj))
        yield from fsc.fsync(binf)
        yield from fsc.close(binf)
        moved += 2 * total_obj
        phases["build"] = sim.now - t0

        return WorkloadResult(
            bytes_moved=moved,
            transactions=self.nsources,
            extra={"phases": phases},
        )
