"""NAS Parallel Benchmarks BTIO (paper §6.3.2).

Class A: 200 time steps checkpointing every five steps → 40 collective
checkpoint appends producing a 400 MB file, using MPI-IO collective
buffering so each I/O request is ≥ 1 MB.  The benchmark time also
includes the ingestion and verification of the result file (a full
read-back) — and, being a CFD code, a dominant compute phase between
checkpoints which scales down with the number of clients.

The runner reports *runtime* for BTIO (lower is better), matching
Figure 8b.
"""

from __future__ import annotations

from repro.vfs.api import FileSystemClient, Payload
from repro.workloads.base import Workload, WorkloadResult

__all__ = ["BtioWorkload"]

MB = 1024 * 1024


class BtioWorkload(Workload):
    """Class-A BTIO: checkpointed collective writes + verification read."""

    name = "btio"

    def __init__(
        self,
        total_bytes: int = 400 * MB,
        checkpoints: int = 40,
        compute_seconds_per_checkpoint: float = 20.0,
        scale: float = 1.0,
        seed: int = 20070625,
    ):
        super().__init__(scale=scale, seed=seed)
        self.checkpoints = checkpoints
        self.total_bytes = max(checkpoints * MB, int(total_bytes * scale))
        self.step_bytes = self.total_bytes // checkpoints
        self.compute_per_checkpoint = compute_seconds_per_checkpoint * scale

    def prepare(self, sim, admin: FileSystemClient, n_clients: int):
        yield from admin.mkdir("/btio")
        f = yield from admin.create("/btio/out")
        yield from admin.close(f)

    def client_proc(self, sim, fsc: FileSystemClient, client_idx: int, n_clients: int):
        f = yield from fsc.open("/btio/out")
        slice_bytes = self.step_bytes // n_clients
        moved = 0
        for step in range(self.checkpoints):
            # The CFD solve: embarrassingly parallel across clients.
            if self.compute_per_checkpoint > 0:
                yield sim.timeout(self.compute_per_checkpoint / n_clients)
            # Collective buffering: each client writes one contiguous
            # >= 1 MB aggregate chunk of this checkpoint's region.
            offset = step * self.step_bytes + client_idx * slice_bytes
            n = (
                self.step_bytes - client_idx * slice_bytes
                if client_idx == n_clients - 1
                else slice_bytes
            )
            yield from fsc.write(f, offset, Payload.synthetic(n))
            moved += n
        yield from fsc.fsync(f)

        # Ingestion + verification: read back this client's slices.
        for step in range(self.checkpoints):
            offset = step * self.step_bytes + client_idx * slice_bytes
            n = (
                self.step_bytes - client_idx * slice_bytes
                if client_idx == n_clients - 1
                else slice_bytes
            )
            data = yield from fsc.read(f, offset, n)
            if data.nbytes != n:
                raise RuntimeError(f"BTIO verification shortfall at step {step}")
            moved += n
        yield from fsc.close(f)
        return WorkloadResult(bytes_moved=moved, transactions=self.checkpoints)
