"""mdtest-style metadata micro-benchmark.

§6.4.3 closes with the observation that metadata management — simple
for standalone file systems, complex for parallel ones — deserves
study: NFSv4 recentralises the decentralised parallel-FS metadata
protocol.  This workload isolates exactly that axis: per client, a
private directory tree is created, stat'ed, listed, and removed, with
no data I/O at all.  Reported per-phase op rates make the
NFS-extra-hop vs native-metadata trade directly visible (it is the
uncompress/configure half of the SSH-build result in isolation).
"""

from __future__ import annotations

from repro.vfs.api import FileSystemClient
from repro.workloads.base import Workload, WorkloadResult

__all__ = ["MdtestWorkload"]


class MdtestWorkload(Workload):
    """create / stat / readdir / remove sweeps over empty files."""

    name = "mdtest"

    def __init__(
        self,
        nfiles: int = 400,
        ndirs: int = 10,
        stat_passes: int = 2,
        concurrency: int = 1,
        scale: float = 1.0,
        seed: int = 20070625,
    ):
        super().__init__(scale=scale, seed=seed)
        self.nfiles = max(20, int(nfiles * scale))
        self.ndirs = ndirs
        self.stat_passes = stat_passes
        if concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        #: mdtest-style ranks per client node: metadata ops issued by
        #: ``concurrency`` parallel processes sharing the client mount.
        self.concurrency = concurrency

    def prepare(self, sim, admin: FileSystemClient, n_clients: int):
        yield from admin.mkdir("/mdtest")

    def client_proc(self, sim, fsc: FileSystemClient, client_idx: int, n_clients: int):
        base = f"/mdtest/c{client_idx}"
        yield from fsc.mkdir(base)
        phases: dict[str, float] = {}
        ranks = self.concurrency
        per_rank = max(1, self.nfiles // ranks)
        per_dir = max(1, per_rank // self.ndirs)
        rank_paths: list[list[str]] = [[] for _ in range(ranks)]

        def fan_out(maker):
            procs = [sim.process(maker(r)) for r in range(ranks)]
            return sim.all_of(procs)

        t0 = sim.now

        def create_rank(r):
            yield from fsc.mkdir(f"{base}/r{r}")
            for d in range(self.ndirs):
                yield from fsc.mkdir(f"{base}/r{r}/d{d}")
                for i in range(per_dir):
                    path = f"{base}/r{r}/d{d}/f{i}"
                    f = yield from fsc.create(path)
                    yield from fsc.close(f)
                    rank_paths[r].append(path)

        yield fan_out(create_rank)
        phases["create"] = sim.now - t0

        t0 = sim.now

        def stat_rank(r):
            for _ in range(self.stat_passes):
                for path in rank_paths[r]:
                    yield from fsc.getattr(path)

        yield fan_out(stat_rank)
        phases["stat"] = sim.now - t0

        t0 = sim.now

        def readdir_rank(r):
            for d in range(self.ndirs):
                yield from fsc.readdir(f"{base}/r{r}/d{d}")

        yield fan_out(readdir_rank)
        phases["readdir"] = sim.now - t0

        t0 = sim.now

        def remove_rank(r):
            for path in rank_paths[r]:
                yield from fsc.remove(path)
            for d in range(self.ndirs):
                yield from fsc.remove(f"{base}/r{r}/d{d}")
            yield from fsc.remove(f"{base}/r{r}")

        yield fan_out(remove_rank)
        yield from fsc.remove(base)
        phases["remove"] = sim.now - t0
        paths = [p for rp in rank_paths for p in rp]

        nops = len(paths)
        rates = {
            "create": nops / phases["create"] if phases["create"] else float("inf"),
            "stat": nops * self.stat_passes / phases["stat"] if phases["stat"] else float("inf"),
            "remove": nops / phases["remove"] if phases["remove"] else float("inf"),
        }
        return WorkloadResult(
            bytes_moved=0,
            transactions=nops,
            extra={"phases": phases, "rates": rates},
        )
