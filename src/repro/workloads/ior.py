"""IOR micro-benchmark (paper §6.2).

Clients sequentially read or write separate 500 MB files, or disjoint
500 MB portions of a single file, with a configurable application block
size — 2 MB ("large block") and 8 KB ("small block") in the paper's
figures.  Read experiments run against files pre-created in
``prepare``, which leaves the data resident in the storage nodes'
memory: the paper's warm server cache.
"""

from __future__ import annotations

from repro.vfs.api import FileSystemClient, Payload
from repro.workloads.base import Workload, WorkloadResult

__all__ = ["IorWorkload"]

MB = 1024 * 1024


class IorWorkload(Workload):
    """Sequential per-client read or write streams."""

    name = "ior"

    def __init__(
        self,
        op: str = "write",
        block_size: int = 2 * MB,
        file_size: int = 500 * MB,
        shared_file: bool = False,
        fsync_at_end: bool = True,
        fsync_every: int = 0,
        scale: float = 1.0,
        seed: int = 20070625,
    ):
        super().__init__(scale=scale, seed=seed)
        if op not in ("read", "write"):
            raise ValueError("op must be 'read' or 'write'")
        if block_size < 1:
            raise ValueError("block_size must be >= 1")
        if fsync_every < 0:
            raise ValueError("fsync_every must be >= 0")
        self.op = op
        self.block_size = block_size
        # Scale, then round up to a whole number of blocks.
        scaled = max(int(file_size * scale), block_size)
        self.file_size = ((scaled + block_size - 1) // block_size) * block_size
        self.shared_file = shared_file
        self.fsync_at_end = fsync_at_end
        #: fsync after every N blocks (0 = only at the end) — the
        #: O_SYNC-style mode used by the write-back-cache ablation.
        self.fsync_every = fsync_every

    # -- helpers --------------------------------------------------------------
    def _path(self, client_idx: int) -> str:
        return "/ior/shared" if self.shared_file else f"/ior/f{client_idx}"

    def _base(self, client_idx: int) -> int:
        return client_idx * self.file_size if self.shared_file else 0

    # -- Workload ---------------------------------------------------------------
    def prepare(self, sim, admin: FileSystemClient, n_clients: int):
        yield from admin.mkdir("/ior")
        if self.op == "read":
            # Pre-create the data set; this warms the server caches.
            paths = (
                ["/ior/shared"]
                if self.shared_file
                else [f"/ior/f{i}" for i in range(n_clients)]
            )
            total_each = (
                self.file_size * n_clients if self.shared_file else self.file_size
            )
            for path in paths:
                f = yield from admin.create(path)
                pos = 0
                chunk = 8 * MB
                while pos < total_each:
                    n = min(chunk, total_each - pos)
                    yield from admin.write(f, pos, Payload.synthetic(n))
                    pos += n
                yield from admin.fsync(f)
                yield from admin.close(f)
        elif self.shared_file:
            # Writers to a single file need it to exist up front.
            f = yield from admin.create("/ior/shared")
            yield from admin.close(f)

    def client_proc(self, sim, fsc: FileSystemClient, client_idx: int, n_clients: int):
        path = self._path(client_idx)
        base = self._base(client_idx)
        if self.op == "write" and not self.shared_file:
            f = yield from fsc.create(path)
        else:
            f = yield from fsc.open(path, write=self.op == "write")

        moved = 0
        pos = 0
        blocks = 0
        while pos < self.file_size:
            n = min(self.block_size, self.file_size - pos)
            if self.op == "write":
                yield from fsc.write(f, base + pos, Payload.synthetic(n))
                blocks += 1
                if self.fsync_every and blocks % self.fsync_every == 0:
                    yield from fsc.fsync(f)
            else:
                data = yield from fsc.read(f, base + pos, n)
                if data.nbytes != n:
                    raise RuntimeError(
                        f"IOR read shortfall at {base + pos}: {data.nbytes} != {n}"
                    )
            moved += n
            pos += n

        if self.op == "write" and self.fsync_at_end:
            yield from fsc.fsync(f)
        yield from fsc.close(f)
        return WorkloadResult(bytes_moved=moved, transactions=self.file_size // self.block_size)
