"""Workload generators for the paper's evaluation (§6).

Each workload implements :class:`~repro.workloads.base.Workload` and is
written against the generic :class:`~repro.vfs.api.FileSystemClient`
interface, so the identical workload code runs over all five
architectures:

* :mod:`repro.workloads.ior` — the IOR micro-benchmark (§6.2),
* :mod:`repro.workloads.atlas` — ATLAS detector-simulation
  digitization write trace replay (§6.3.1),
* :mod:`repro.workloads.btio` — NAS Parallel Benchmark BTIO (§6.3.2),
* :mod:`repro.workloads.oltp` — 8 KB read-modify-write transactions
  (§6.4.1),
* :mod:`repro.workloads.postmark` — metadata/small-I/O file-server mix
  (§6.4.2),
* :mod:`repro.workloads.sshbuild` — the SSH-build style
  uncompress/configure/build phases (§6.4.3).
"""

from repro.workloads.base import Workload, WorkloadResult
from repro.workloads.ior import IorWorkload
from repro.workloads.atlas import AtlasWorkload
from repro.workloads.btio import BtioWorkload
from repro.workloads.mdtest import MdtestWorkload
from repro.workloads.oltp import OltpWorkload
from repro.workloads.postmark import PostmarkWorkload
from repro.workloads.sshbuild import SshBuildWorkload

__all__ = [
    "AtlasWorkload",
    "BtioWorkload",
    "IorWorkload",
    "MdtestWorkload",
    "OltpWorkload",
    "PostmarkWorkload",
    "SshBuildWorkload",
    "Workload",
    "WorkloadResult",
]
