"""I/O trace records, capture, replay, and (de)serialisation.

The paper replays an application write trace (ATLAS digitization via
IOZone, §6.3.1).  This module provides the general mechanism:

* :class:`TraceOp` — one operation (op, path, offset, nbytes);
* :class:`TraceRecorder` — wrap any
  :class:`~repro.vfs.api.FileSystemClient` and record every call,
  yielding a replayable trace of an arbitrary workload;
* :func:`replay` — drive a trace against any client;
* :func:`save_trace` / :func:`load_trace` — JSONL persistence, so
  captured traces can ship with the repository.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import IO, Iterable

from repro.vfs.api import FileSystemClient, Payload

__all__ = ["TraceOp", "TraceRecorder", "load_trace", "replay", "save_trace"]

#: Operations a trace may contain.
OPS = (
    "create",
    "open",
    "read",
    "write",
    "fsync",
    "close",
    "mkdir",
    "remove",
    "rename",
    "getattr",
    "setattr",
)


@dataclass(frozen=True)
class TraceOp:
    """One traced file-system operation."""

    op: str
    path: str = ""
    offset: int = 0
    nbytes: int = 0
    dest: str = ""  # rename target

    def __post_init__(self):
        if self.op not in OPS:
            raise ValueError(f"unknown trace op {self.op!r}")
        if self.offset < 0 or self.nbytes < 0:
            raise ValueError("offset/nbytes must be >= 0")


class TraceRecorder(FileSystemClient):
    """Records every operation passing through to an inner client."""

    label = "trace-recorder"

    def __init__(self, inner: FileSystemClient):
        self.inner = inner
        self.ops: list[TraceOp] = []

    # -- passthrough with recording --------------------------------------
    def mount(self):
        return (yield from self.inner.mount())

    def create(self, path):
        self.ops.append(TraceOp("create", path))
        return (yield from self.inner.create(path))

    def open(self, path, write: bool = True):
        self.ops.append(TraceOp("open", path))
        return (yield from self.inner.open(path, write=write))

    def read(self, f, offset, nbytes):
        self.ops.append(TraceOp("read", f.path, offset, nbytes))
        return (yield from self.inner.read(f, offset, nbytes))

    def write(self, f, offset, payload):
        self.ops.append(TraceOp("write", f.path, offset, payload.nbytes))
        return (yield from self.inner.write(f, offset, payload))

    def fsync(self, f):
        self.ops.append(TraceOp("fsync", f.path))
        return (yield from self.inner.fsync(f))

    def close(self, f):
        self.ops.append(TraceOp("close", f.path))
        return (yield from self.inner.close(f))

    def getattr(self, path):
        self.ops.append(TraceOp("getattr", path))
        return (yield from self.inner.getattr(path))

    def setattr(self, path, mode=None):
        self.ops.append(TraceOp("setattr", path))
        return (yield from self.inner.setattr(path, mode=mode))

    def mkdir(self, path):
        self.ops.append(TraceOp("mkdir", path))
        return (yield from self.inner.mkdir(path))

    def readdir(self, path):
        return (yield from self.inner.readdir(path))

    def remove(self, path):
        self.ops.append(TraceOp("remove", path))
        return (yield from self.inner.remove(path))

    def rename(self, old, new):
        self.ops.append(TraceOp("rename", old, dest=new))
        return (yield from self.inner.rename(old, new))


def replay(client: FileSystemClient, trace: Iterable[TraceOp]):
    """Generator: drive ``trace`` against ``client``.

    Open files are tracked by path; reads/writes to paths without an
    explicit prior open are opened implicitly (as IOZone-style replays
    expect).  Returns (ops_executed, bytes_moved).
    """
    open_files: dict[str, object] = {}
    executed = 0
    moved = 0

    def get_open(path):
        f = open_files.get(path)
        return f

    for op in trace:
        executed += 1
        if op.op == "create":
            open_files[op.path] = yield from client.create(op.path)
        elif op.op == "open":
            open_files[op.path] = yield from client.open(op.path)
        elif op.op == "read":
            f = get_open(op.path)
            if f is None:
                f = yield from client.open(op.path)
                open_files[op.path] = f
            data = yield from client.read(f, op.offset, op.nbytes)
            moved += data.nbytes
        elif op.op == "write":
            f = get_open(op.path)
            if f is None:
                from repro.vfs.api import NoEntry

                try:
                    f = yield from client.open(op.path)
                except NoEntry:
                    f = yield from client.create(op.path)
                open_files[op.path] = f
            yield from client.write(f, op.offset, Payload.synthetic(op.nbytes))
            moved += op.nbytes
        elif op.op == "fsync":
            f = get_open(op.path)
            if f is not None:
                yield from client.fsync(f)
        elif op.op == "close":
            f = open_files.pop(op.path, None)
            if f is not None:
                yield from client.close(f)
        elif op.op == "mkdir":
            yield from client.mkdir(op.path)
        elif op.op == "remove":
            open_files.pop(op.path, None)
            yield from client.remove(op.path)
        elif op.op == "rename":
            yield from client.rename(op.path, op.dest)
            if op.path in open_files:
                open_files[op.dest] = open_files.pop(op.path)
        elif op.op == "getattr":
            yield from client.getattr(op.path)
        elif op.op == "setattr":
            yield from client.setattr(op.path)
    # Close any stragglers so cached data reaches the servers.
    for f in list(open_files.values()):
        yield from client.close(f)
    return executed, moved


def save_trace(fh: IO[str], trace: Iterable[TraceOp]) -> int:
    """Write a trace as JSON lines; returns the number of records."""
    count = 0
    for op in trace:
        fh.write(json.dumps(asdict(op), separators=(",", ":")) + "\n")
        count += 1
    return count


def load_trace(fh: IO[str]) -> list[TraceOp]:
    """Read a JSONL trace written by :func:`save_trace`."""
    out = []
    for line in fh:
        line = line.strip()
        if not line:
            continue
        out.append(TraceOp(**json.loads(line)))
    return out
