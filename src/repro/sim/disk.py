"""Rotating-disk model.

The paper's storage nodes carry one (two, in the 3-tier configuration)
Seagate 80 GB 7200 rpm ATA/100 drives.  Writes in the evaluation are
disk-bound, so the disk model matters for every Figure-6 curve; reads
come from the warm server cache, so the model mostly matters for cache
misses and commit traffic.

The model charges, per request on a single arm (capacity-1 resource):

* a positioning cost (average seek + half-rotation) whenever the
  request does not continue the previous request's byte range, and
* a media-transfer cost at the platter rate, issued in chunks through
  the owning node's I/O bus so that two disks on one node share the
  node's I/O ceiling (the reason 3-tier storage nodes with two disks do
  not deliver twice the bandwidth — paper §6.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.obs import spans as obs_spans
from repro.sim.engine import Simulator
from repro.sim.resources import Resource

__all__ = ["DiskFailed", "DiskSpec", "Disk"]


class DiskFailed(Exception):
    """An I/O was issued to (or caught mid-flight by) a failed disk.

    Deliberately not an :class:`~repro.vfs.api.FsError`: media failure
    is a hardware event the storage daemon must translate into protocol
    errors (or mask via recovery) itself.
    """

#: Chunk used to interleave media transfers through a shared I/O bus.
DISK_CHUNK = 512 * 1024


@dataclass(frozen=True)
class DiskSpec:
    """Performance envelope of one drive.

    ``read_bw``/``write_bw`` are sustained media rates in bytes/second;
    ``positioning`` is the *full* average seek + rotational latency in
    seconds, charged for long jumps.  Short forward jumps (an elevator
    sweeping a dense batch of sorted requests) cost ``settle`` plus the
    pass-over time of the skipped bytes, capped at the full positioning
    cost — the reason a sorted queue of nearby small writes vastly
    outperforms scattered ones.  Defaults approximate a 2002-era
    7200 rpm ATA drive as seen through a journalled filesystem (see
    DESIGN.md §4.3).
    """

    read_bw: float = 55e6
    write_bw: float = 24e6
    positioning: float = 0.0085
    settle: float = 0.0012

    def __post_init__(self):
        if self.read_bw <= 0 or self.write_bw <= 0:
            raise ValueError("disk bandwidths must be positive")
        if self.positioning < 0 or self.settle < 0:
            raise ValueError("positioning/settle times must be >= 0")
        # settle > positioning is harmless: position_cost caps at the
        # full positioning time.

    def position_cost(self, gap_bytes: int) -> float:
        """Arm-movement cost for a jump of ``gap_bytes`` (0 = contiguous)."""
        if gap_bytes == 0:
            return 0.0
        sweep = self.settle + gap_bytes / self.read_bw
        return min(self.positioning, sweep)


class Disk:
    """One disk arm attached to a node's I/O bus.

    ``io_bus`` is an optional capacity-1 resource shared by all disks of
    a node; ``bus_bw`` is that bus's bandwidth.  When absent, the disk
    is limited only by its own media rate.
    """

    def __init__(
        self,
        sim: Simulator,
        spec: DiskSpec,
        name: str = "disk",
        io_bus: Optional[Resource] = None,
        bus_bw: float = float("inf"),
    ):
        self.sim = sim
        self.spec = spec
        self.name = name
        self.arm = Resource(sim, 1, name=f"{name}.arm")
        self.io_bus = io_bus
        self.bus_bw = bus_bw
        self._last_end: int = -1
        self.read_bytes = 0
        self.write_bytes = 0
        self.requests = 0
        self.busy_time = 0.0
        #: Set by the fault injector; requests against a failed disk
        #: raise :class:`DiskFailed` instead of touching the media.
        self.failed = False
        self.failed_requests = 0

    def fail(self) -> None:
        """Fail the media: every request raises :class:`DiskFailed`
        until :meth:`restore`.  Requests already past their failure
        check complete normally (the drive's track buffer drains)."""
        self.failed = True

    def restore(self) -> None:
        """Bring the media back (a drive swap: the arm position is no
        longer meaningful, so the next request pays full positioning)."""
        self.failed = False
        self._last_end = -1

    def _check_failed(self) -> None:
        if self.failed:
            self.failed_requests += 1
            raise DiskFailed(f"{self.name}: media failed")

    def io(self, offset: int, nbytes: int, write: bool):
        """Process generator performing one request against the media."""
        col = obs_spans.ACTIVE
        if col is None:
            return (yield from self._io_impl(offset, nbytes, write))
        span = col.begin(
            "disk:write" if write else "disk:read", "disk", self.name,
            offset=offset, nbytes=nbytes,
        )
        try:
            return (yield from self._io_impl(offset, nbytes, write))
        finally:
            col.end(span)

    def _io_impl(self, offset: int, nbytes: int, write: bool):
        if offset < 0 or nbytes < 0:
            raise ValueError("offset/nbytes must be >= 0")
        self._check_failed()
        yield self.arm.acquire()
        t_start = self.sim.now
        try:
            self._check_failed()
            self.requests += 1
            if offset != self._last_end:
                # Forward sweeps over short gaps are cheap; anything
                # else (including backward jumps) pays the full cost.
                gap = offset - self._last_end
                if self._last_end >= 0 and 0 < gap:
                    cost = self.spec.position_cost(gap)
                else:
                    cost = self.spec.positioning
                if cost > 0:
                    yield self.sim.timeout(cost)
            media_bw = self.spec.write_bw if write else self.spec.read_bw
            remaining = nbytes
            while remaining > 0:
                chunk = min(remaining, DISK_CHUNK)
                # The bus is held only for the wire time of the chunk;
                # the media-transfer residual overlaps with the other
                # disk's bus usage (buffered DMA pipeline).
                bus_time = chunk / self.bus_bw if self.io_bus is not None else 0.0
                media_time = chunk / media_bw
                if self.io_bus is not None:
                    yield self.io_bus.acquire()
                    try:
                        yield self.sim.timeout(bus_time)
                    finally:
                        self.io_bus.release()
                residual = media_time - bus_time
                if residual > 0:
                    yield self.sim.timeout(residual)
                remaining -= chunk
            self._last_end = offset + nbytes
            if write:
                self.write_bytes += nbytes
            else:
                self.read_bytes += nbytes
        finally:
            self.busy_time += self.sim.now - t_start
            self.arm.release()
