"""Deterministic fault injection for cluster simulations.

The :class:`FaultInjector` schedules failures and repairs at simulated
times — it is the experiment-side counterpart of the recovery machinery
in the protocol layers (RPC retry, session replay, pNFS failover).
Schedules are driven purely by sim time and a seeded RNG, so a run with
a given seed is exactly reproducible (no wall clock anywhere).

Fault classes it knows how to inject:

* **service failure** — any :class:`repro.rpc.RpcServer` (an NFS data
  server, an MDS, a PVFS2 daemon endpoint) goes fail-stop: requests and
  replies in flight are lost, new requests vanish;
* **disk failure** — a :class:`repro.sim.disk.Disk` starts raising
  :class:`~repro.sim.disk.DiskFailed`;
* **NIC faults** — a :class:`repro.sim.network.Nic` goes down (drops
  every flow), drops a seeded random fraction of flows, or adds
  latency;
* **node crash** — the node's NIC goes down and every service/disk
  passed alongside it fails, modelling a power loss.

Usage::

    inj = FaultInjector(sim, seed=7)
    inj.outage(ds.rpc, start=2.0, duration=1.5)     # fail at 2s, back at 3.5s
    inj.at(4.0, lambda: nic_delay(...))             # anything callable
    sim.run()
    print(inj.events)                                # [(2.0, 'fail ...'), ...]

Every action is also available un-scheduled (``fail_server(s)``) for
tests that drive time by hand.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.sim.disk import Disk
from repro.sim.engine import Simulator
from repro.sim.network import Nic
from repro.sim.node import Node

__all__ = ["FaultInjector"]


class FaultInjector:
    """Schedules deterministic failures/repairs against sim components."""

    def __init__(self, sim: Simulator, seed: Optional[int] = None):
        self.sim = sim
        if seed is None:
            self.rng = sim.rng  # share the simulation's seeded stream
        else:
            import numpy as np

            self.rng = np.random.default_rng(seed)
        #: Chronological log of injected events: (sim time, description).
        self.events: list[tuple[float, str]] = []

    def _log(self, what: str) -> None:
        self.events.append((self.sim.now, what))

    # -- scheduling ---------------------------------------------------------
    def at(self, when: float, action: Callable[[], None], name: str = "") -> None:
        """Run ``action()`` at sim time ``when`` (>= now)."""
        if when < self.sim.now:
            raise ValueError(f"cannot schedule fault in the past ({when} < {self.sim.now})")

        def fire():
            yield self.sim.timeout(when - self.sim.now)
            if name:
                self._log(name)
            action()

        self.sim.process(fire(), name=name or "fault")

    # -- immediate actions --------------------------------------------------
    def fail_server(self, server) -> None:
        """Fail-stop an :class:`repro.rpc.RpcServer`."""
        server.fail()
        self._log(f"fail server {server.name}")

    def restore_server(self, server) -> None:
        server.restore()
        self._log(f"restore server {server.name}")

    def fail_disk(self, disk: Disk) -> None:
        disk.fail()
        self._log(f"fail disk {disk.name}")

    def restore_disk(self, disk: Disk) -> None:
        disk.restore()
        self._log(f"restore disk {disk.name}")

    def nic_down(self, nic: Nic) -> None:
        """Every flow touching ``nic`` is lost until :meth:`nic_up`.

        New flows are dropped at transfer start; under the fluid
        network model, *in-flight* rate-based flows through ``nic`` are
        also stranded on the spot (the ``Nic.down`` setter notifies the
        solver), so both flow models expose a dead NIC the same way —
        the flow never completes and only an RPC timeout notices.
        """
        nic.down = True
        self._log(f"nic down {nic.name}")

    def nic_up(self, nic: Nic) -> None:
        nic.down = False
        self._log(f"nic up {nic.name}")

    def nic_drop(self, nic: Nic, prob: float) -> None:
        """Lose a seeded-random fraction ``prob`` of flows through
        ``nic`` (0 turns the fault off)."""
        if not 0.0 <= prob <= 1.0:
            raise ValueError("drop probability must be in [0, 1]")
        nic.drop_prob = prob
        self._log(f"nic drop {nic.name} p={prob}")

    def nic_delay(self, nic: Nic, extra_latency: float) -> None:
        """Add ``extra_latency`` seconds one-way to flows through
        ``nic`` (0 turns the fault off)."""
        if extra_latency < 0:
            raise ValueError("extra latency must be >= 0")
        nic.extra_latency = extra_latency
        self._log(f"nic delay {nic.name} +{extra_latency}s")

    def crash_node(self, node: Node, services: Iterable = ()) -> None:
        """Power-fail ``node``: NIC down, disks failed, and every
        service in ``services`` (its RpcServers/daemons) fail-stopped.
        As with :meth:`nic_down`, in-flight fluid flows through the
        node's NIC are stranded by the ``down`` setter."""
        node.nic.down = True
        for disk in node.disks:
            disk.fail()
        for svc in services:
            svc.fail()
        self._log(f"crash node {node.name}")

    def restart_node(self, node: Node, services: Iterable = ()) -> None:
        """Undo :meth:`crash_node`.  Volatile state lost in the crash
        stays lost — restoring a service does not restore its data."""
        node.nic.down = False
        for disk in node.disks:
            disk.restore()
        for svc in services:
            svc.restore()
        self._log(f"restart node {node.name}")

    # -- composite schedules ------------------------------------------------
    def outage(self, server, start: float, duration: float) -> None:
        """Fail ``server`` at ``start`` and restore it ``duration``
        seconds later — the standard kill/restart experiment."""
        if duration <= 0:
            raise ValueError("outage duration must be positive")
        self.at(start, lambda: self.fail_server(server))
        self.at(start + duration, lambda: self.restore_server(server))

    def node_outage(
        self, node: Node, start: float, duration: float, services: Iterable = ()
    ) -> None:
        """Crash ``node`` at ``start``, restart at ``start + duration``."""
        if duration <= 0:
            raise ValueError("outage duration must be positive")
        svcs = tuple(services)
        self.at(start, lambda: self.crash_node(node, svcs))
        self.at(start + duration, lambda: self.restart_node(node, svcs))

    def flaky_nic(self, nic: Nic, prob: float, start: float, duration: float) -> None:
        """Drop a random fraction of ``nic``'s flows during the window
        ``[start, start + duration)``."""
        if duration <= 0:
            raise ValueError("flaky window must be positive")
        self.at(start, lambda: self.nic_drop(nic, prob))
        self.at(start + duration, lambda: self.nic_drop(nic, 0.0))
