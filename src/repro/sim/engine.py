"""Deterministic discrete-event simulation engine.

The engine follows the classic process-interaction style popularised by
SimPy: simulation activities are Python generators that ``yield`` events
(timeouts, resource grants, other processes) and are resumed when those
events fire.  We implement our own small kernel rather than depending on
SimPy so the repository is self-contained and the scheduling semantics
are fully under test.

Determinism
-----------
Events scheduled for the same instant fire in FIFO order of scheduling
(a monotonically increasing sequence number breaks time ties), so a
simulation configured with a seeded RNG is exactly reproducible.

Two-lane scheduling
-------------------
The kernel keeps two queues: a FIFO *fast lane* (a deque) for events
scheduled with zero delay at the current instant, and the time-ordered
heap for genuinely future timestamps.  Most of a protocol simulation's
events are zero-delay bookkeeping — process start kicks, free-resource
grants, condition joins — and the fast lane turns each of those from an
O(log n) heap push/pop with tuple comparisons into a deque append/pop.

The split preserves firing order *by construction*.  Every entry in
either lane carries the same ``(time, priority, seq)`` key the pure
heap used; the fast lane is sorted by that key automatically (entries
are appended at the current instant with increasing seq), so the
scheduler pops whichever lane has the smaller head key and the merged
order is exactly the single-heap order.  Two supporting invariants:

* a fast-lane entry's timestamp always equals ``now`` — the lane only
  accepts zero-delay events, and it drains before the clock can
  advance (its head always compares smaller than any later heap entry);
* *urgent* events (process interrupts, priority 0) go to the heap even
  at zero delay, so they keep beating same-instant priority-1 events
  regardless of scheduling order, exactly as before.

``Simulator(two_lane=False)`` routes everything through the heap — the
reference kernel the differential tests compare against.

Typical usage::

    sim = Simulator()

    def worker(sim, results):
        yield sim.timeout(2.0)
        results.append(sim.now)

    out = []
    sim.process(worker(sim, out))
    sim.run()
    assert out == [2.0]
"""

from __future__ import annotations

import heapq
import itertools
import time as _time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "AllOf",
    "AnyOf",
    "EngineStats",
    "Event",
    "Interrupt",
    "Join",
    "Process",
    "SimulationError",
    "Simulator",
    "Timeout",
]


class SimulationError(Exception):
    """Raised for engine-level misuse (double trigger, bad yield, ...)."""


class Interrupt(Exception):
    """Thrown into a process when :meth:`Process.interrupt` is called.

    The interrupted process may catch the exception and continue; the
    ``cause`` attribute carries the value passed to ``interrupt``.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Event lifecycle states.
_PENDING = 0  # created, not yet triggered
_TRIGGERED = 1  # scheduled on the event queue
_PROCESSED = 2  # callbacks have run


class Event:
    """A one-shot occurrence in simulated time.

    Events carry a ``value`` (delivered to yielding processes) and an
    ``ok`` flag.  Failed events (``ok is False``) propagate their value
    as an exception into every process waiting on them, unless the
    failure is *defused* by a waiter that handles it.
    """

    __slots__ = ("sim", "_cb1", "_cbs", "_value", "ok", "_state", "_defused", "_abandon")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        #: Single-waiter fast path: the overwhelmingly common case is one
        #: process (or condition) waiting per event, so the first callback
        #: lives in a slot and the overflow list is allocated lazily.
        self._cb1: Optional[Callable[["Event"], None]] = None
        self._cbs: Optional[list[Callable[["Event"], None]]] = None
        self._value: Any = None
        self.ok: bool = True
        self._state = _PENDING
        self._defused = False
        #: Optional hook invoked when the sole waiter detaches (process
        #: interrupt) — lets resource-like owners reclaim a grant that
        #: nobody will consume.
        self._abandon: Optional[Callable[["Event"], None]] = None

    # -- introspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._state >= _TRIGGERED

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have run."""
        return self._state == _PROCESSED

    @property
    def value(self) -> Any:
        if self._state == _PENDING:
            raise SimulationError("value of untriggered event")
        return self._value

    @property
    def callbacks(self) -> Optional[list[Callable[["Event"], None]]]:
        """Snapshot of pending callbacks; ``None`` once processed.

        Introspection only — mutating the returned list has no effect
        (the single-waiter slot is internal).
        """
        if self._state == _PROCESSED:
            return None
        out: list[Callable[["Event"], None]] = []
        if self._cb1 is not None:
            out.append(self._cb1)
        if self._cbs:
            out.extend(self._cbs)
        return out

    # -- triggering ----------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Schedule this event to fire successfully after ``delay``."""
        if self._state != _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._value = value
        self.ok = True
        self._state = _TRIGGERED
        self.sim._enqueue(self, delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Schedule this event to fire as a failure after ``delay``."""
        if self._state != _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._value = exception
        self.ok = False
        self._state = _TRIGGERED
        self.sim._enqueue(self, delay)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled so it does not crash the run."""
        self._defused = True

    # -- engine internals ----------------------------------------------
    def _process_callbacks(self) -> None:
        cb1, cbs = self._cb1, self._cbs
        self._cb1 = None
        self._cbs = None
        self._state = _PROCESSED
        if cb1 is not None:
            cb1(self)
        if cbs:
            for cb in cbs:
                cb(self)
        if not self.ok and not self._defused:
            # Nobody caught the failure: surface it to the caller of run().
            raise self._value

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Invoke ``fn(event)`` when the event fires.

        If the event already fired, the callback runs immediately.
        """
        if self._state == _PROCESSED:
            fn(self)
        elif self._cb1 is None and not self._cbs:
            self._cb1 = fn
        elif self._cbs is None:
            self._cbs = [fn]
        else:
            self._cbs.append(fn)

    def _discard_callback(self, fn: Callable[["Event"], None]) -> None:
        """Detach a waiter (process interrupt); missing ``fn`` is a no-op.

        Equality, not identity: bound methods (``process._resume``) are
        re-created per access and compare equal without being the same
        object.
        """
        if self._cb1 == fn:
            self._cb1 = None
        elif self._cbs:
            try:
                self._cbs.remove(fn)
            except ValueError:  # pragma: no cover - defensive
                pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = {_PENDING: "pending", _TRIGGERED: "triggered", _PROCESSED: "processed"}
        return f"<{type(self).__name__} {state[self._state]} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay {delay!r}")
        super().__init__(sim)
        self.delay = delay
        self._value = value
        self.ok = True
        self._state = _TRIGGERED
        sim._enqueue(self, delay)

    def reset(self, delay: Optional[float] = None, value: Any = None) -> "Timeout":
        """Re-arm a *processed* timeout in place and return it.

        Retry/backoff loops fire the same timer over and over (the RPC
        retransmission ladder, drain polls); re-arming the object that
        just fired is cheaper than allocating a fresh ``Timeout`` per
        lap.  Only a processed timeout can be re-armed — a pending one
        still sits on the event heap.
        """
        if self._state != _PROCESSED:
            raise SimulationError("reset() on a timeout that has not fired yet")
        if delay is None:
            delay = self.delay
        elif delay < 0:
            raise ValueError(f"negative timeout delay {delay!r}")
        self.delay = delay
        self._value = value
        self.ok = True
        self._defused = False
        self._state = _TRIGGERED
        self.sim._enqueue(self, delay)
        return self


class _Start:
    """Pre-fired sentinel delivered to a generator's first resume.

    Shaped like a processed, successful event (``ok``/``_value`` are
    all ``_resume`` reads on the success path) without being one — the
    start kick needs no per-process event allocation.
    """

    __slots__ = ()
    ok = True
    _value = None


_START = _Start()


class _Kick:
    """Fast-lane entry that starts a process/task at the current instant.

    Replaces the per-process init :class:`Event`: the scheduler calls
    ``_process_callbacks`` on whatever it pops, and a kick's only job
    is to push the wrapped activity into its first generator segment.
    """

    __slots__ = ("proc",)

    def __init__(self, proc):
        self.proc = proc

    def _process_callbacks(self) -> None:
        self.proc._resume(_START)


class Process(Event):
    """A running simulation activity wrapping a generator.

    A process is itself an event: it fires when the generator returns
    (value = the generator's return value) or raises (failure).  Other
    processes may therefore ``yield`` a process to join it.
    """

    __slots__ = ("_generator", "_waiting_on", "name")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        if not hasattr(generator, "send"):
            raise TypeError(f"process requires a generator, got {generator!r}")
        super().__init__(sim)
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        # Kick off the process at the current instant.  The kick takes
        # the same scheduling slot the old init-event enqueue did, so
        # firing order is unchanged — it just costs no Event allocation
        # and (on the fast lane) no heap traffic.
        sim._enqueue(_Kick(self), 0.0)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._state == _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a dead process is an error; interrupting a process
        that is waiting on an event detaches it from that event (the
        event may still fire later and is ignored by this process).
        """
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt dead process {self.name!r}")
        if self._waiting_on is self:
            raise SimulationError("process cannot interrupt itself synchronously")
        interrupt_ev = Event(self.sim)
        interrupt_ev.ok = False
        interrupt_ev._value = Interrupt(cause)
        interrupt_ev._defused = True
        interrupt_ev._state = _TRIGGERED
        # Detach from whatever we were waiting on.
        target = self._waiting_on
        if target is not None:
            if target._state != _PROCESSED:
                target._discard_callback(self._resume)
            if target._abandon is not None:
                target._abandon(target)
        self._waiting_on = None
        self.sim._enqueue(interrupt_ev, 0.0, urgent=True)
        interrupt_ev.add_callback(self._resume)

    # -- engine internals ----------------------------------------------
    def _resume(self, event) -> None:
        # Trampoline: yielding an already-processed event used to recurse
        # (``add_callback`` on a processed event calls back immediately);
        # looping here resumes such targets iteratively, so long chains
        # of completed events cost stack-free sends instead of recursion.
        sim = self.sim
        gen = self._generator
        while True:
            self._waiting_on = None
            sim._active_process = self
            try:
                if event.ok:
                    target = gen.send(event._value)
                else:
                    event._defused = True
                    target = gen.throw(event._value)
            except StopIteration as stop:
                sim._active_process = None
                self.succeed(stop.value)
                return
            except BaseException as exc:
                sim._active_process = None
                self.fail(exc)
                return
            sim._active_process = None
            if not isinstance(target, Event):
                error = SimulationError(
                    f"process {self.name!r} yielded non-event {target!r}"
                )
                try:
                    gen.throw(error)
                except BaseException as exc:
                    self.fail(exc)
                    return
                raise error
            if target.sim is not sim:
                raise SimulationError("yielded event belongs to another simulator")
            if target._state == _PROCESSED:
                event = target
                continue
            self._waiting_on = target
            target.add_callback(self._resume)
            return


class _Condition(Event):
    """Base for AllOf/AnyOf composite events."""

    __slots__ = ("events", "_pending_count")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = tuple(events)
        for ev in self.events:
            if ev.sim is not sim:
                raise SimulationError("condition mixes events from two simulators")
        self._pending_count = len(self.events)
        if not self.events:
            self.succeed(())
        else:
            for ev in self.events:
                ev.add_callback(self._check)

    def _check(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(_Condition):
    """Fires when every constituent event has fired.

    Its value is a tuple of the constituent values in construction
    order.  If any constituent fails, the condition fails with that
    exception.
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._state != _PENDING:
            return
        if not event.ok:
            event.defuse()
            self.fail(event._value)
            return
        self._pending_count -= 1
        if self._pending_count == 0:
            self.succeed(tuple(ev._value for ev in self.events))


class AnyOf(_Condition):
    """Fires as soon as one constituent event fires.

    Its value is ``(index, value)`` of the first event to fire.  If the
    same event object appears more than once, the index of its *first*
    occurrence is reported (both slots fire at the same instant with the
    same value, so the first occurrence is the meaningful one).
    """

    __slots__ = ("_index",)

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        events = tuple(events)
        # id -> construction index, first occurrence wins.  Precomputed
        # *before* callbacks can run (an already-fired constituent calls
        # _check synchronously inside super().__init__), replacing the
        # old O(n) ``tuple.index`` lookup per fire — which also reported
        # a wrong (albeit first-occurrence-by-scan) slot under aliasing.
        self._index: dict[int, int] = {}
        for i, ev in enumerate(events):
            self._index.setdefault(id(ev), i)
        super().__init__(sim, events)

    def _check(self, event: Event) -> None:
        if self._state != _PENDING:
            return
        if not event.ok:
            event.defuse()
            self.fail(event._value)
            return
        self.succeed((self._index[id(event)], event._value))


class Join(Event):
    """Completion event for a batch of lightweight tasks.

    Returned by :meth:`Simulator.spawn`; fires (value ``None``) when
    every spawned generator has run to completion, or fails with the
    first task exception.  Unlike :class:`AllOf` over processes, the
    join is told about completions directly — finishing a task costs no
    per-task completion event.
    """

    __slots__ = ("_pending_count",)

    def __init__(self, sim: "Simulator", count: int):
        super().__init__(sim)
        self._pending_count = count
        if count == 0:
            self.succeed(None)

    def _task_done(self) -> None:
        self._pending_count -= 1
        if self._pending_count == 0 and self._state == _PENDING:
            self.succeed(None)

    def _task_fail(self, exc: BaseException) -> None:
        if self._state == _PENDING:
            self.fail(exc)
        else:
            # Mirrors a leg Process failing after its AllOf resolved:
            # nobody can observe the failure, so it crashes the run.
            raise exc


class _Task:
    """Lightweight generator driver for :meth:`Simulator.spawn` legs.

    Unlike :class:`Process` a task is not itself an event — nothing can
    wait on (or interrupt) an individual leg, only the shared
    :class:`Join` — so a leg costs one slotted object and no completion
    event.  Tasks skip the ``_active_process`` bookkeeping too: spans
    only ever begin inside full processes.
    """

    __slots__ = ("sim", "_generator", "join")

    def __init__(self, sim: "Simulator", generator: Generator, join: Join):
        self.sim = sim
        self._generator = generator
        self.join = join
        sim._enqueue(_Kick(self), 0.0)

    def _resume(self, event) -> None:
        sim = self.sim
        gen = self._generator
        while True:
            try:
                if event.ok:
                    target = gen.send(event._value)
                else:
                    event._defused = True
                    target = gen.throw(event._value)
            except StopIteration:
                self.join._task_done()
                return
            except BaseException as exc:
                self.join._task_fail(exc)
                return
            if not isinstance(target, Event):
                raise SimulationError(
                    f"task {getattr(gen, '__name__', gen)!r} yielded "
                    f"non-event {target!r}"
                )
            if target.sim is not sim:
                raise SimulationError("yielded event belongs to another simulator")
            if target._state == _PROCESSED:
                event = target
                continue
            target.add_callback(self._resume)
            return


@dataclass
class EngineStats:
    """Event-loop accounting: how much work a simulation actually did.

    ``wall_seconds`` accumulates real (host) time spent inside
    :meth:`Simulator.run` — the number the fluid-model speedup claims
    are measured against, not asserted from.
    """

    events_processed: int = 0
    peak_heap: int = 0
    wall_seconds: float = 0.0
    #: Lane split of scheduled events: zero-delay entries routed to the
    #: FIFO fast lane vs entries that paid for a real heap push.
    fast_lane_events: int = 0
    heap_events: int = 0

    @property
    def events_scheduled(self) -> int:
        """Total events scheduled (sum of the two lane counters).

        Derived rather than counted: ``_enqueue`` is the hottest call
        in the kernel and bumps exactly one lane counter per event.
        """
        return self.fast_lane_events + self.heap_events

    def as_dict(self) -> dict:
        return {
            "events_scheduled": self.events_scheduled,
            "events_processed": self.events_processed,
            "peak_heap": self.peak_heap,
            "wall_seconds": self.wall_seconds,
            "fast_lane_events": self.fast_lane_events,
            "heap_events": self.heap_events,
        }

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.events_scheduled} events scheduled "
            f"({self.fast_lane_events} fast-lane / {self.heap_events} heap), "
            f"{self.events_processed} processed, "
            f"peak heap {self.peak_heap}, "
            f"{self.wall_seconds:.3f}s wall"
        )


class Simulator:
    """The event loop: a heap of (time, priority, seq, event) entries.

    ``seed`` initialises the simulation-wide RNG used by stochastic
    components (e.g. randomised network-pipe arbitration); runs with the
    same seed are exactly reproducible.
    """

    def __init__(self, seed: int = 20070625, two_lane: bool = True):
        self.now: float = 0.0
        self._queue: list[tuple[float, int, int, Event]] = []
        #: FIFO fast lane of ``(seq, event)`` pairs, all at time ``now``
        #: with normal priority.  ``None`` disables the lane (pure-heap
        #: reference kernel for the differential tests).
        self._fast: Optional[deque] = deque() if two_lane else None
        self._seq = itertools.count()
        self._active_process: Optional[Process] = None
        self.stats = EngineStats()
        #: Per-simulation id streams (sessions, layout stateids, ...).
        #: Keeping these on the simulator — never module-global — makes
        #: identical-seed runs produce identical ids regardless of how
        #: many simulations ran earlier in the process (the same-seed-
        #: same-trace guarantee the torture replayer depends on).
        self._ids: dict[str, int] = {}
        import numpy as _np

        self.rng = _np.random.default_rng(seed)

    def next_id(self, kind: str) -> int:
        """Allocate the next id (1, 2, ...) from this sim's ``kind`` stream."""
        n = self._ids.get(kind, 0) + 1
        self._ids[kind] = n
        return n

    # -- event constructors ---------------------------------------------
    def event(self) -> Event:
        """Create an untriggered one-shot event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing ``delay`` simulated seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start ``generator`` as a process at the current instant."""
        return Process(self, generator, name)

    def spawn(self, *generators: Generator) -> Join:
        """Run ``generators`` as lightweight legs; join fires when all end.

        Cheaper than ``all_of([process(g) for g in generators])``: legs
        are not events (nothing can join or interrupt one individually),
        so each costs a small driver object instead of a full
        :class:`Process` plus a completion event plus an ``AllOf``
        callback chain.  Use for fire-and-join work like RPC transfer
        legs; use :meth:`process` when the activity itself must be
        awaitable or interruptible.
        """
        join = Join(self, len(generators))
        for gen in generators:
            _Task(self, gen, join)
        return join

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event firing when all ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event firing when the first of ``events`` fires."""
        return AnyOf(self, events)

    # -- scheduling -------------------------------------------------------
    def _enqueue(self, event: Event, delay: float, urgent: bool = False) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule event {delay!r}s in the past")
        stats = self.stats
        fast = self._fast
        if delay == 0.0 and not urgent and fast is not None:
            # Zero-delay, normal priority: fires at ``now`` in seq order,
            # which is exactly FIFO append order on the lane.
            fast.append((next(self._seq), event))
            stats.fast_lane_events += 1
            return
        queue = self._queue
        heapq.heappush(
            queue, (self.now + delay, 0 if urgent else 1, next(self._seq), event)
        )
        stats.heap_events += 1
        if len(queue) > stats.peak_heap:
            stats.peak_heap = len(queue)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        if self._fast:
            # Fast-lane entries always fire at the current instant.
            return self.now
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event (the merged-order head of both lanes)."""
        fast = self._fast
        queue = self._queue
        if fast:
            if queue:
                when, prio, seq, event = queue[0]
                # The heap head beats the fast-lane head only when its
                # (time, prio, seq) key is smaller; fast entries sit at
                # (now, 1, seq), so that means an urgent event at ``now``
                # or an older same-instant heap entry.
                if (when, prio, seq) < (self.now, 1, fast[0][0]):
                    heapq.heappop(queue)
                else:
                    event = fast.popleft()[1]
            else:
                event = fast.popleft()[1]
        else:
            when, _prio, _seq, event = heapq.heappop(queue)
            if when < self.now:  # pragma: no cover - heap guarantees ordering
                raise SimulationError("event queue corrupted: time went backwards")
            self.now = when
        self.stats.events_processed += 1
        event._process_callbacks()

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run until the queues drain, a deadline passes, or an event fires.

        ``until`` may be ``None`` (drain the queues), a number (stop when
        simulated time would exceed it; ``now`` is set to the deadline),
        or an :class:`Event` (stop when it fires and return its value).
        """
        stop_event: Optional[Event] = None
        deadline = float("inf")
        if isinstance(until, Event):
            stop_event = until
            if stop_event.processed:
                return stop_event._value
        elif until is not None:
            deadline = float(until)
            if deadline < self.now:
                raise SimulationError(
                    f"run(until={deadline}) is in the past (now={self.now})"
                )

        # Hot loop: this is where a protocol simulation spends most of
        # its wall clock, so lane heads are compared inline (no step()
        # call, no key-tuple allocation) and hot attributes live in
        # locals.  ``events_processed`` is batched into one add at exit.
        stats = self.stats
        queue = self._queue
        fast = self._fast
        heappop = heapq.heappop
        processed = 0
        wall_start = _time.perf_counter()
        try:
            while queue or fast:
                if fast:
                    if queue:
                        head = queue[0]
                        # Heap head beats the fast head only at the same
                        # instant, via urgent priority or an older seq.
                        if head[0] <= self.now and (
                            head[1] == 0 or head[2] < fast[0][0]
                        ):
                            event = heappop(queue)[3]
                        else:
                            event = fast.popleft()[1]
                    else:
                        event = fast.popleft()[1]
                    # No deadline check: fast entries fire at ``now`` and
                    # a winning heap head is also at ``now`` (it beat a
                    # same-instant key), so neither can pass ``deadline``.
                else:
                    when = queue[0][0]
                    if when > deadline:
                        self.now = deadline
                        return None
                    event = heappop(queue)[3]
                    self.now = when
                processed += 1
                event._process_callbacks()
                if stop_event is not None and stop_event._state == _PROCESSED:
                    if not stop_event.ok:
                        raise stop_event._value
                    return stop_event._value
            if stop_event is not None:
                raise SimulationError(
                    "run() ran out of events before the awaited event fired"
                )
            if deadline != float("inf"):
                self.now = deadline
            return None
        finally:
            stats.events_processed += processed
            stats.wall_seconds += _time.perf_counter() - wall_start
