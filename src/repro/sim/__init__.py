"""Discrete-event cluster simulation substrate.

This package provides the performance layer of the reproduction: a
deterministic discrete-event engine (:mod:`repro.sim.engine`), resource
primitives (:mod:`repro.sim.resources`), and hardware models — network
(:mod:`repro.sim.network`), disk (:mod:`repro.sim.disk`), CPU
(:mod:`repro.sim.cpu`) — composed into cluster nodes
(:mod:`repro.sim.node`) with measurement helpers
(:mod:`repro.sim.stats`) and deterministic fault injection
(:mod:`repro.sim.faults`).

All protocol implementations (NFSv4, pNFS, PVFS2, Direct-pNFS) run as
processes on this engine, so that the same code path serves both the
functional tests and the performance experiments.
"""

from repro.sim.engine import (
    AllOf,
    AnyOf,
    EngineStats,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from repro.sim.resources import Resource, Store, TokenBucket
from repro.sim.network import Network, Nic, Flow
from repro.sim.disk import Disk, DiskFailed, DiskSpec
from repro.sim.faults import FaultInjector
from repro.sim.cpu import Cpu, CpuSpec
from repro.sim.node import Node, NodeSpec
from repro.sim.stats import Counter, ThroughputMeter, LatencyRecorder

__all__ = [
    "AllOf",
    "AnyOf",
    "Counter",
    "Cpu",
    "CpuSpec",
    "Disk",
    "DiskFailed",
    "DiskSpec",
    "EngineStats",
    "Event",
    "FaultInjector",
    "Flow",
    "Interrupt",
    "LatencyRecorder",
    "Network",
    "Nic",
    "Node",
    "NodeSpec",
    "Process",
    "Resource",
    "SimulationError",
    "Simulator",
    "Store",
    "ThroughputMeter",
    "Timeout",
    "TokenBucket",
]
