"""Resource primitives for the simulation engine.

Three primitives cover every queueing structure in the reproduction:

* :class:`Resource` — a FIFO counting semaphore (CPU cores, disk arms,
  NFS server threads, NFSv4.1 session slots, PVFS2 buffer pools).
* :class:`Store` — a FIFO queue of items with optional capacity
  (request queues between daemons).
* :class:`TokenBucket` — byte-rate limiting (used in tests and for
  optional client throttling).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Optional

from repro.sim.engine import Event, SimulationError, Simulator

__all__ = ["Resource", "Store", "TokenBucket"]


class Resource:
    """Counting semaphore with FIFO (default) or randomised arbitration.

    Usage from a process::

        yield resource.acquire()
        try:
            yield sim.timeout(service_time)
        finally:
            resource.release()

    ``acquire(n)`` atomically claims ``n`` units (granted only when all
    ``n`` are free, still in FIFO order, so large requests are not
    starved).

    ``policy="random"`` grants a uniformly random eligible waiter
    instead of the oldest — used by the network pipes, where packet
    interleaving is not per-flow round-robin at millisecond scale.  The
    randomness is what lets co-scheduled identical clients drift apart
    instead of convoying in deterministic lockstep.
    """

    def __init__(
        self,
        sim: Simulator,
        capacity: int = 1,
        name: str = "",
        policy: str = "fifo",
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if policy not in ("fifo", "random"):
            raise ValueError(f"unknown arbitration policy {policy!r}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.policy = policy
        self._in_use = 0
        #: Peak units simultaneously held over the resource's lifetime
        #: (occupancy high-water mark; tracked at grant time, same as
        #: the session slot table's ``highest_used``).
        self.high_water = 0
        #: Pending acquires: the dict gives O(1) withdrawal for an
        #: interrupted waiter (events hash by identity) and carries the
        #: requested units; insertion order is FIFO order.  ``_order``
        #: shadows the FIFO policy's grant order in a deque, because
        #: peeking the oldest *dict* entry (``next(iter(d))``) walks the
        #: tombstones of everything already granted — O(n²) across a
        #: long drain.  Withdrawn events stay in the deque and are
        #: discarded lazily when they reach the front.
        self._waiters: dict[Event, int] = {}
        self._order: deque[Event] = deque()

    @property
    def in_use(self) -> int:
        """Units currently held."""
        return self._in_use

    @property
    def available(self) -> int:
        """Units currently free."""
        return self.capacity - self._in_use

    @property
    def queue_len(self) -> int:
        """Number of acquire requests waiting."""
        return len(self._waiters)

    def acquire(self, units: int = 1) -> Event:
        """Return an event that fires when ``units`` are granted.

        If the waiting process is interrupted, the pending request is
        withdrawn (or, if already granted, the units are returned) —
        no leak.
        """
        if units < 1 or units > self.capacity:
            raise ValueError(
                f"cannot acquire {units} units of {self.name or 'resource'} "
                f"with capacity {self.capacity}"
            )
        ev = Event(self.sim)
        # Bound method, not a per-acquire closure: acquire() is one of
        # the hottest calls in the simulator and the lambda allocation
        # showed up in profiles.  The grant size travels as the event
        # value, so the abandon path can recover it without capture.
        ev._abandon = self._abandon_acquire
        if not self._waiters and self._in_use + units <= self.capacity:
            self._in_use += units
            if self._in_use > self.high_water:
                self.high_water = self._in_use
            ev.succeed(units)
        else:
            self._waiters[ev] = units
            if self.policy == "fifo":
                self._order.append(ev)
        return ev

    def try_acquire(self, units: int = 1) -> bool:
        """Claim ``units`` immediately if free; never queues.

        Returns ``False`` when the units are not available *or* other
        requests are already waiting (claiming would jump the queue).
        The fast path for hot acquire/release cycles: a successful
        try_acquire costs no event at all.
        """
        if units < 1 or units > self.capacity:
            raise ValueError(
                f"cannot acquire {units} units of {self.name or 'resource'} "
                f"with capacity {self.capacity}"
            )
        if self._waiters or self._in_use + units > self.capacity:
            return False
        self._in_use += units
        if self._in_use > self.high_water:
            self.high_water = self._in_use
        return True

    def _abandon_acquire(self, ev: Event) -> None:
        """The waiter was interrupted: withdraw or return the grant."""
        if self._waiters.pop(ev, None) is not None:
            return
        if ev.triggered:
            # Grant already made but never consumed; the event value is
            # the number of units granted (see acquire/release).
            self.release(ev._value)

    def release(self, units: int = 1) -> None:
        """Return ``units`` to the pool and wake FIFO waiters."""
        if units < 1 or units > self._in_use:
            raise SimulationError(
                f"release({units}) with only {self._in_use} in use "
                f"on {self.name or 'resource'}"
            )
        self._in_use -= units
        waiters = self._waiters
        if self.policy == "random":
            if not waiters:
                return
            # Build the eligible set once, in waiter order, then shrink
            # it incrementally.  Equivalent to re-filtering the whole
            # queue after every grant (the old O(n^2) inner loop):
            # eligibility only ever shrinks while ``_in_use`` grows, the
            # candidate order is unchanged, and the rng draws see the
            # same list lengths, so the grant sequence is identical.
            avail = self.capacity - self._in_use
            eligible = [(ev, want) for ev, want in waiters.items() if want <= avail]
            rng_integers = self.sim.rng.integers
            mx = -1  # max outstanding want; computed lazily on first use
            while eligible:
                ev, want = eligible.pop(int(rng_integers(0, len(eligible))))
                del waiters[ev]
                self._in_use += want
                if self._in_use > self.high_water:
                    self.high_water = self._in_use
                ev.succeed(want)
                avail -= want
                if not eligible or avail <= 0:
                    # Nothing left to grant (wants are >= 1): done
                    # without ever scanning for the max — the whole
                    # loop for a capacity-1 pipe is one filter pass,
                    # one draw, one grant.
                    break
                if mx < 0:
                    mx = max(w for _e, w in eligible)
                if mx > avail:
                    # The grant made large requests ineligible: drop
                    # them.  Skipped while every remaining want still
                    # fits (the single-unit-waiters case).
                    eligible = [e for e in eligible if e[1] <= avail]
                    mx = max((w for _e, w in eligible), default=0)
            return
        order = self._order
        while order:
            ev = order[0]
            want = waiters.get(ev)
            if want is None:
                # Withdrawn by _abandon_acquire; discard lazily.
                order.popleft()
                continue
            if self._in_use + want > self.capacity:
                break
            order.popleft()
            del waiters[ev]
            self._in_use += want
            if self._in_use > self.high_water:
                self.high_water = self._in_use
            ev.succeed(want)


class Store:
    """FIFO item queue with optional capacity bound.

    ``put`` returns an event that fires when the item is accepted
    (immediately if there is room); ``get`` returns an event that fires
    with the oldest item.
    """

    def __init__(self, sim: Simulator, capacity: float = float("inf"), name: str = ""):
        if capacity < 1:
            raise ValueError("store capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()
        self._putters: deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> tuple:
        """Snapshot of queued items (oldest first)."""
        return tuple(self._items)

    def put(self, item: Any) -> Event:
        """Queue ``item``; event fires when accepted."""
        ev = Event(self.sim)
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
            ev.succeed(item)
        elif len(self._items) < self.capacity:
            self._items.append(item)
            ev.succeed(item)
        else:
            self._putters.append((ev, item))
        return ev

    def get(self) -> Event:
        """Event firing with the oldest available item."""
        ev = Event(self.sim)
        if self._items:
            ev.succeed(self._items.popleft())
            # Admission of a blocked putter now that there is room.
            if self._putters and len(self._items) < self.capacity:
                put_ev, item = self._putters.popleft()
                self._items.append(item)
                put_ev.succeed(item)
        elif self._putters:
            put_ev, item = self._putters.popleft()
            put_ev.succeed(item)
            ev.succeed(item)
        else:
            self._getters.append(ev)
        return ev


class TokenBucket:
    """Byte-rate limiter: ``take(n)`` completes at ``n / rate`` pacing.

    The bucket accumulates capacity at ``rate`` units/second up to
    ``burst`` units; a take larger than the burst is paced in slices.
    """

    def __init__(
        self,
        sim: Simulator,
        rate: float,
        burst: Optional[float] = None,
        name: str = "",
    ):
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.sim = sim
        self.rate = rate
        self.burst = burst if burst is not None else rate
        self.name = name
        self._tokens = self.burst
        self._last_refill = sim.now
        self._gate = Resource(sim, 1, name=f"{name}.gate")

    def _refill(self) -> None:
        now = self.sim.now
        self._tokens = min(self.burst, self._tokens + (now - self._last_refill) * self.rate)
        self._last_refill = now

    def take(self, amount: float):
        """Process generator: consume ``amount`` units at the bucket rate."""
        if amount < 0:
            raise ValueError("amount must be >= 0")
        yield self._gate.acquire()
        try:
            remaining = amount
            # Epsilon guards against float residue spinning the loop
            # without advancing simulated time.
            while remaining > 1e-9:
                self._refill()
                need = min(remaining, self.burst)
                if self._tokens + 1e-12 < need:
                    yield self.sim.timeout((need - self._tokens) / self.rate)
                    self._refill()
                take = min(need, self._tokens)
                self._tokens -= take
                remaining -= take
        finally:
            self._gate.release()
