"""Cluster node: CPU + NIC + disks + shared I/O bus.

A :class:`Node` is the hosting abstraction for every daemon in the
reproduction (NFS servers, PVFS2 daemons, pNFS metadata servers,
application clients).  Daemons receive the node at construction and
charge their work to its resources.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.cpu import Cpu, CpuSpec
from repro.sim.disk import Disk, DiskSpec
from repro.sim.engine import Simulator
from repro.sim.network import Network, Nic
from repro.sim.resources import Resource

__all__ = ["NodeSpec", "Node"]


@dataclass(frozen=True)
class NodeSpec:
    """Hardware description of one node (paper §6.1).

    ``io_bus_bw`` is the node-wide ceiling on disk traffic in
    bytes/second — CPU, memory, and bus effects folded into one number.
    It is what prevents a two-disk 3-tier storage node from doubling
    its bandwidth.
    """

    name: str
    cpu: CpuSpec = field(default_factory=CpuSpec)
    nic_bw: float = 117e6
    disks: tuple[DiskSpec, ...] = ()
    io_bus_bw: float = 30e6

    def __post_init__(self):
        if not self.name:
            raise ValueError("node needs a name")
        if self.nic_bw <= 0:
            raise ValueError("nic_bw must be positive")
        if self.io_bus_bw <= 0:
            raise ValueError("io_bus_bw must be positive")


class Node:
    """A materialised node wired into a network."""

    def __init__(self, sim: Simulator, spec: NodeSpec, network: Network):
        self.sim = sim
        self.spec = spec
        self.name = spec.name
        self.network = network
        self.cpu = Cpu(sim, spec.cpu, name=f"{spec.name}.cpu")
        self.nic: Nic = network.add_nic(spec.name, spec.nic_bw)
        self.io_bus = Resource(sim, 1, name=f"{spec.name}.iobus") if spec.disks else None
        self.disks: list[Disk] = [
            Disk(
                sim,
                dspec,
                name=f"{spec.name}.disk{i}",
                io_bus=self.io_bus,
                bus_bw=spec.io_bus_bw,
            )
            for i, dspec in enumerate(spec.disks)
        ]

    @property
    def disk(self) -> Disk:
        """The node's sole disk (errors if it has zero or several)."""
        if len(self.disks) != 1:
            raise ValueError(f"{self.name} has {len(self.disks)} disks, not 1")
        return self.disks[0]

    def send(self, dst: "Node | str", nbytes: int):
        """Process generator: move ``nbytes`` from this node to ``dst``."""
        dst_name = dst.name if isinstance(dst, Node) else dst
        return self.network.transfer(self.name, dst_name, nbytes)

    def compute(self, work_seconds: float):
        """Process generator: charge protocol work to this node's CPU."""
        return self.cpu.consume(work_seconds)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Node {self.name}>"
