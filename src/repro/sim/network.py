"""Cluster network model: NICs, a non-blocking switch, and chunked flows.

Every node owns a :class:`Nic` with independent transmit and receive
pipes (full-duplex Ethernet).  A transfer is carved into fixed-size
chunks; each chunk holds the sender's tx pipe and the receiver's rx
pipe simultaneously for ``chunk / min(bw_tx, bw_rx)`` seconds.  This
cut-through model has two properties the experiments rely on:

* an uncontended flow achieves the full link bandwidth (no
  store-and-forward halving), and
* concurrent flows into one NIC interleave chunks FIFO, which
  approximates the fair sharing of a switched Ethernet — the mechanism
  behind the paper's aggregate-throughput curves.

The switch is modelled as non-blocking (a 16-port gigabit switch has a
backplane far exceeding the sum of its ports), so contention arises
only at NICs — matching the paper's testbed.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.engine import Simulator
from repro.sim.resources import Resource

__all__ = ["Nic", "Network", "Flow"]

#: Default chunk size used to discretise flows (bytes).  Chosen close to
#: a jumbo-frame TCP window slice: small enough for fair interleaving,
#: large enough to keep the event count manageable.
DEFAULT_CHUNK = 256 * 1024

#: Per-flow switch-buffer window, in chunks: how far a flow's tx legs
#: may run ahead of its rx legs.
FLOW_WINDOW = 3


class Nic:
    """A full-duplex network interface with independent tx/rx pipes."""

    def __init__(self, sim: Simulator, name: str, bandwidth: float):
        """``bandwidth`` is in bytes/second, applied to each direction."""
        if bandwidth <= 0:
            raise ValueError("NIC bandwidth must be positive")
        self.sim = sim
        self.name = name
        self.bandwidth = bandwidth
        self.tx = Resource(sim, 1, name=f"{name}.tx", policy="random")
        self.rx = Resource(sim, 1, name=f"{name}.rx", policy="random")
        #: Payload bytes sent/received over the wire.  Framing overhead
        #: (``Network.per_message_bytes``) is charged for *time* on the
        #: pipes but excluded here, so these counters compare directly
        #: against application-level byte counts.  Loopback transfers
        #: never touch the wire and are tallied in ``loopback_bytes``.
        self.tx_bytes = 0
        self.rx_bytes = 0
        #: Payload bytes moved through loopback (src == dst) transfers.
        self.loopback_bytes = 0
        #: Fault-injection state (see :mod:`repro.sim.faults`).  A down
        #: NIC loses every flow touching it; ``drop_prob`` loses a
        #: random fraction; ``extra_latency`` is added to the one-way
        #: latency of flows through this NIC.  Lost flows never
        #: complete — only sender-side timeouts (the RPC retry layer)
        #: notice them, exactly as on a real network.
        self.down = False
        self.drop_prob = 0.0
        self.extra_latency = 0.0
        self.flows_dropped = 0

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Nic {self.name} {self.bandwidth/1e6:.0f} MB/s>"


class Flow:
    """Bookkeeping record for one transfer (returned for inspection)."""

    __slots__ = ("src", "dst", "nbytes", "start", "end")

    def __init__(self, src: str, dst: str, nbytes: int, start: float):
        self.src = src
        self.dst = dst
        self.nbytes = nbytes
        self.start = start
        self.end: Optional[float] = None

    @property
    def duration(self) -> float:
        if self.end is None:
            raise RuntimeError("flow still in progress")
        return self.end - self.start


class Network:
    """Registry of NICs plus the transfer primitive.

    ``latency`` is the one-way message latency (propagation + switch +
    interrupt handling), charged once per transfer.  ``per_message_bytes``
    models framing/RPC header overhead added to every transfer.
    """

    def __init__(
        self,
        sim: Simulator,
        latency: float = 60e-6,
        chunk_bytes: int = DEFAULT_CHUNK,
        per_message_bytes: int = 120,
    ):
        if chunk_bytes < 1:
            raise ValueError("chunk_bytes must be >= 1")
        self.sim = sim
        self.latency = latency
        self.chunk_bytes = chunk_bytes
        self.per_message_bytes = per_message_bytes
        self._nics: dict[str, Nic] = {}
        self.flows_completed = 0

    def add_nic(self, name: str, bandwidth: float) -> Nic:
        """Register a NIC for node ``name`` (bytes/second per direction)."""
        if name in self._nics:
            raise ValueError(f"duplicate NIC for node {name!r}")
        nic = Nic(self.sim, name, bandwidth)
        self._nics[name] = nic
        return nic

    def nic(self, name: str) -> Nic:
        """Look up the NIC registered for ``name``."""
        try:
            return self._nics[name]
        except KeyError:
            raise KeyError(f"no NIC registered for node {name!r}") from None

    def transfer(self, src: str, dst: str, nbytes: int):
        """Process generator moving ``nbytes`` from ``src`` to ``dst``.

        Yields until the last byte has been received.  Loopback
        transfers (src == dst) skip the wire entirely; the memory-copy
        cost of loopback is charged by the caller as CPU time, which is
        how the Direct-pNFS prototype's loopback conduit is modelled.

        Byte accounting is uniform: every completed transfer counts one
        ``flows_completed``; ``nbytes`` of *payload* lands in the NIC's
        ``tx_bytes``/``rx_bytes`` for wire transfers and in
        ``loopback_bytes`` for loopback ones.  The ``per_message_bytes``
        framing overhead occupies pipe time (it slows the wire) but is
        deliberately excluded from all byte counters, so they stay
        comparable with application-level accounting.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        flow = Flow(src, dst, nbytes, self.sim.now)
        if src == dst:
            lnic = self._nics.get(src)
            if lnic is not None:
                lnic.loopback_bytes += nbytes
            flow.end = self.sim.now
            self.flows_completed += 1
            return flow

        snic = self.nic(src)
        dnic = self.nic(dst)
        dropped = snic.down or dnic.down
        for nic in (snic, dnic):
            if not dropped and nic.drop_prob > 0.0:
                dropped = float(self.sim.rng.random()) < nic.drop_prob
        if dropped:
            # The flow vanishes on the wire: it never completes, and no
            # error surfaces here — a waiting process hangs until an
            # RPC timeout (repro.rpc) interrupts it.
            snic.flows_dropped += 1
            from repro.sim.engine import Event

            yield Event(self.sim)
        latency = self.latency + snic.extra_latency + dnic.extra_latency
        if latency > 0:
            yield self.sim.timeout(latency)

        # Store-and-forward through the switch with a small per-flow
        # window: a chunk occupies the sender's tx pipe, is buffered at
        # the switch, then occupies the receiver's rx pipe.  Decoupling
        # the pipes avoids head-of-line blocking (a busy receiver must
        # not freeze the sender's NIC for other flows); the window
        # bounds switch buffering per flow and keeps tx/rx pipelined so
        # an uncontended flow still sees the full link bandwidth.
        def rx_leg(chunk_bytes: int):
            yield dnic.rx.acquire()
            try:
                yield self.sim.timeout(chunk_bytes / dnic.bandwidth)
            finally:
                dnic.rx.release()

        rx_procs: list = []
        remaining = nbytes + self.per_message_bytes
        while remaining > 0:
            chunk = min(remaining, self.chunk_bytes)
            yield snic.tx.acquire()
            try:
                yield self.sim.timeout(chunk / snic.bandwidth)
            finally:
                snic.tx.release()
            rx_procs.append(self.sim.process(rx_leg(chunk)))
            if len(rx_procs) > FLOW_WINDOW:
                oldest = rx_procs.pop(0)
                if oldest.is_alive:
                    yield oldest
            remaining -= chunk
        live = [p for p in rx_procs if p.is_alive]
        if live:
            yield self.sim.all_of(live)

        snic.tx_bytes += nbytes
        dnic.rx_bytes += nbytes
        flow.end = self.sim.now
        self.flows_completed += 1
        return flow
