"""Cluster network model: NICs, a non-blocking switch, and two flow models.

Every node owns a :class:`Nic` with independent transmit and receive
pipes (full-duplex Ethernet).  Two interchangeable models move bytes:

**Chunked** (the reference oracle).  A transfer is carved into
fixed-size chunks; each chunk holds the sender's tx pipe, is buffered
at the switch, then holds the receiver's rx pipe, with a small per-flow
window keeping tx/rx pipelined.  Faithful at packet-interleaving
granularity, but a 1 GB transfer costs ~4,000 chunks x ~5 heap events —
the event loop, not model fidelity, bounds how large a cluster can be
simulated.

**Fluid** (the fast path).  A transfer registers with a max-min
fair-share rate solver (:class:`FluidSolver`) over the tx/rx NIC pipes
and waits on a *single* completion event.  Per-flow rates are
recomputed only when the set of active flows changes (arrival,
departure, NIC fault) — the standard fluid/analytic bandwidth-sharing
technique for exactly this scaling problem.  A store-and-forward tail
(the last chunk's rx leg, which cannot overlap the tx stream) is
charged additively so sub-chunk messages keep the chunked model's
2x store-and-forward cost.

``model`` selects between them: ``"chunked"`` (default — bit-identical
to the pre-fluid schedule), ``"fluid"`` (wire transfers longer than two
chunks are rate-based; shorter ones — per-RPC headers, single flow
units — keep chunked fidelity), or ``"auto"`` (the crossover rises to
``fluid_threshold`` wire bytes).

When the two regimes share a pipe they are *coupled* so neither
double-books the wire: chunked transfers of at least one chunk claim a
phantom share in the water-filling while fluid flows are active, and
chunk service times stretch by the solver's fluid allocation on the
pipe (see :class:`FluidSolver`).

Both models preserve the same invariants:

* an uncontended flow achieves the full link bandwidth (no
  store-and-forward halving beyond the one-chunk tail),
* concurrent flows through one pipe share it fairly — chunked by FIFO /
  seeded-random chunk interleaving, fluid by max-min fair rates,
* byte counters are payload-only (framing costs wire time but never
  lands in ``tx_bytes``/``rx_bytes``; loopback is tallied separately),
* simultaneous completions resolve in FIFO (registration) order.

The switch is modelled as non-blocking (a 16-port gigabit switch has a
backplane far exceeding the sum of its ports), so contention arises
only at NICs — matching the paper's testbed.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.sim.engine import Event, Simulator, Timeout
from repro.sim.resources import Resource

__all__ = ["Nic", "Network", "Flow", "FluidSolver"]

#: Default chunk size used to discretise flows (bytes).  Chosen close to
#: a jumbo-frame TCP window slice: small enough for fair interleaving,
#: large enough to keep the event count manageable.
DEFAULT_CHUNK = 256 * 1024

#: Per-flow switch-buffer window, in chunks: how far a flow's tx legs
#: may run ahead of its rx legs.
FLOW_WINDOW = 3

#: Crossover for ``model="auto"``: transfers of at least this many wire
#: bytes take the fluid path.  Four chunks is where the chunked model's
#: event cost starts to dominate while its interleaving detail stops
#: mattering (the fluid rate and the chunk-fair share already agree to
#: well under a chunk time).
DEFAULT_FLUID_THRESHOLD = 4 * DEFAULT_CHUNK

#: A fluid flow with fewer remaining bytes than this is drained
#: (absolute float-residue guard; half a byte of wire time is far below
#: any tolerance in the experiments).
_DRAINED = 0.5


class Nic:
    """A full-duplex network interface with independent tx/rx pipes."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        bandwidth: float,
        network: Optional["Network"] = None,
    ):
        """``bandwidth`` is in bytes/second, applied to each direction."""
        if bandwidth <= 0:
            raise ValueError("NIC bandwidth must be positive")
        self.sim = sim
        self.name = name
        self.bandwidth = bandwidth
        self.tx = Resource(sim, 1, name=f"{name}.tx", policy="random")
        self.rx = Resource(sim, 1, name=f"{name}.rx", policy="random")
        #: Payload bytes sent/received over the wire.  Framing overhead
        #: (``Network.per_message_bytes``) is charged for *time* on the
        #: pipes but excluded here, so these counters compare directly
        #: against application-level byte counts.  Loopback transfers
        #: never touch the wire and are tallied in ``loopback_bytes``.
        self.tx_bytes = 0
        self.rx_bytes = 0
        #: Payload bytes moved through loopback (src == dst) transfers.
        self.loopback_bytes = 0
        #: Fault-injection state (see :mod:`repro.sim.faults`).  A down
        #: NIC loses every flow touching it; ``drop_prob`` loses a
        #: random fraction; ``extra_latency`` is added to the one-way
        #: latency of flows through this NIC.  Lost flows never
        #: complete — only sender-side timeouts (the RPC retry layer)
        #: notice them, exactly as on a real network.
        self._down = False
        self.drop_prob = 0.0
        self.extra_latency = 0.0
        #: Flows lost at the start of a transfer (down NIC or drop coin).
        self.flows_dropped = 0
        #: In-flight *fluid* flows stranded when a NIC went down
        #: (counted at the sender, like ``flows_dropped``).  Chunked
        #: flows have no mid-flight strand: their pipe holds are already
        #: committed chunk by chunk.
        self.flows_stranded = 0
        self._network = network

    def counters(self) -> dict:
        """Snapshot of this NIC's cumulative counters (observability)."""
        return {
            "tx_bytes": self.tx_bytes,
            "rx_bytes": self.rx_bytes,
            "loopback_bytes": self.loopback_bytes,
            "flows_dropped": self.flows_dropped,
            "flows_stranded": self.flows_stranded,
        }

    @property
    def down(self) -> bool:
        return self._down

    @down.setter
    def down(self, value: bool) -> None:
        value = bool(value)
        newly_down = value and not self._down
        self._down = value
        if newly_down and self._network is not None:
            # Strand in-flight fluid flows: a dead NIC carries nothing.
            self._network._nic_went_down(self)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Nic {self.name} {self.bandwidth/1e6:.0f} MB/s>"


class Flow:
    """Bookkeeping record for one transfer (returned for inspection)."""

    __slots__ = ("src", "dst", "nbytes", "start", "end")

    def __init__(self, src: str, dst: str, nbytes: int, start: float):
        self.src = src
        self.dst = dst
        self.nbytes = nbytes
        self.start = start
        self.end: Optional[float] = None

    @property
    def duration(self) -> float:
        if self.end is None:
            raise RuntimeError("flow still in progress")
        return self.end - self.start


class _FluidFlow:
    """Solver-side state for one rate-based transfer.

    ``done is None`` marks a *phantom*: a chunked transfer registered
    with the solver purely as a bandwidth competitor (infinite backlog,
    never completes through the solver), so fluid rates account for
    chunked load sharing the same pipes.
    """

    __slots__ = ("src", "dst", "remaining", "rate", "done", "_stamp", "_rx_fixed")

    def __init__(self, src: Nic, dst: Nic, nbytes: float, done: Optional[Event]):
        self.src = src
        self.dst = dst
        self.remaining = nbytes
        self.rate = 0.0
        self.done = done
        self._stamp = 0  # recompute round in which the rate was fixed
        self._rx_fixed = False  # bottlenecked by the rx pipe (vs tx)


class FluidSolver:
    """Max-min fair-share bandwidth allocation over NIC tx/rx pipes.

    Rates are recomputed (classic water-filling) only when the active
    flow set changes: arrival, departure/abandon, or a NIC going down —
    and at most once per sim *instant*: mutations mark the solver dirty
    and a zero-delay tick does one recompute for the whole batch, so a
    client issuing fifty async write-backs in one instant costs one
    water-filling pass, not fifty.  Between recomputes every flow drains
    linearly, so one generation-stamped timer for the earliest
    completion replaces the chunked model's per-chunk event storm.
    Stale timers (superseded by a later recompute) fire as no-ops — the
    heap needs no cancellation support.

    Per-pipe flow membership is maintained incrementally on
    add/discard, keeping one recompute at O(flows + pipes²) with small
    constants instead of rebuilding the pipe graph from scratch.

    Ties complete in registration (FIFO) order: the flow dict preserves
    insertion order and simultaneous completions are released in it.

    **Cross-model coupling.**  When fluid and chunked flows share a
    pipe, neither model may pretend it owns the wire.  Chunked
    transfers of at least one chunk register a *phantom* flow
    (``add_phantom``) while any real fluid flow is active, so
    water-filling reserves them a fair share; symmetrically, the
    chunked leg reads ``tx_rate``/``rx_rate`` — link bandwidth minus
    the solver's fluid allocation on that pipe, floored at a fair
    share — for its chunk service times.  Pure-fluid and pure-chunked
    workloads never pay for this: no phantoms are registered and the
    rate helpers short-circuit to full bandwidth.
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._flows: dict[_FluidFlow, None] = {}  # insertion-ordered set
        # Persistent pipe membership: nic -> insertion-ordered flow set.
        self._tx: dict[Nic, dict[_FluidFlow, None]] = {}
        self._rx: dict[Nic, dict[_FluidFlow, None]] = {}
        self._clock = 0.0  # sim time of the last drain integration
        self._gen = 0  # invalidates superseded completion timers
        self._tick_armed = False
        self._tick_timer: Optional[Timeout] = None
        #: Rate recomputations performed (solver cost telemetry).
        self.recomputes = 0
        #: Real (non-phantom) fluid flows currently registered.
        self.fluid_count = 0
        # Fluid (non-phantom) bandwidth allocated per pipe, refreshed at
        # each recompute; read by the chunked leg for coupling.
        self.alloc_tx: dict[Nic, float] = {}
        self.alloc_rx: dict[Nic, float] = {}

    def __len__(self) -> int:
        return len(self._flows)

    # -- flow lifecycle -----------------------------------------------------
    def add(self, src: Nic, dst: Nic, nbytes: float) -> _FluidFlow:
        """Register a flow; its ``done`` event fires when it drains."""
        flow = _FluidFlow(src, dst, nbytes, Event(self.sim))
        self.fluid_count += 1
        self._insert(flow)
        return flow

    def add_phantom(self, src: Nic, dst: Nic) -> _FluidFlow:
        """Register a chunked transfer as a pure bandwidth competitor.

        The phantom claims a max-min fair share in every recompute
        (reducing what real fluid flows on the same pipes get) but has
        infinite backlog and no completion event — the chunked leg
        still moves its own bytes chunk by chunk, at the coupled
        ``tx_rate``/``rx_rate``.  Withdraw with :meth:`discard`.
        """
        flow = _FluidFlow(src, dst, float("inf"), None)
        self._insert(flow)
        return flow

    def _insert(self, flow: _FluidFlow) -> None:
        self._integrate()
        self._flows[flow] = None
        self._tx.setdefault(flow.src, {})[flow] = None
        self._rx.setdefault(flow.dst, {})[flow] = None
        self._mark_dirty()

    def discard(self, flow: _FluidFlow) -> None:
        """Withdraw a flow (abandoned transfer); completed flows no-op."""
        if flow in self._flows:
            self._integrate()
            self._remove(flow)
            self._mark_dirty()

    def strand_nic(self, nic: Nic) -> None:
        """A NIC died: every in-flight flow touching it is lost.

        The victims' completion events never fire — like a chunked flow
        dropped on the wire, only a sender-side timeout (the RPC retry
        layer) notices.  Survivors immediately re-share the freed
        bandwidth.
        """
        # Phantoms are exempt: the chunked transfer behind one keeps its
        # committed chunk-by-chunk schedule when a NIC dies (chunked
        # flows are only dropped at transfer start), so it must keep
        # claiming wire share here too.
        victims = [f for f in self._tx.get(nic, ()) if f.done is not None] + [
            f
            for f in self._rx.get(nic, ())
            if f.done is not None and f.src is not nic
        ]
        if not victims:
            return
        self._integrate()
        for flow in victims:
            self._remove(flow)
            flow.src.flows_stranded += 1
        self._mark_dirty()

    # -- internals ----------------------------------------------------------
    def _remove(self, flow: _FluidFlow) -> None:
        del self._flows[flow]
        if flow.done is not None:
            self.fluid_count -= 1
        for nic, members in ((flow.src, self._tx), (flow.dst, self._rx)):
            d = members[nic]
            del d[flow]
            if not d:
                del members[nic]

    def _integrate(self) -> None:
        """Drain every flow at its current rate up to ``sim.now``."""
        dt = self.sim.now - self._clock
        if dt > 0.0:
            for flow in self._flows:
                remaining = flow.remaining - flow.rate * dt
                flow.remaining = remaining if remaining > 0.0 else 0.0
        self._clock = self.sim.now

    def _mark_dirty(self) -> None:
        """Invalidate the completion timer; recompute on a 0-delay tick.

        The generation bump makes any armed completion timer a no-op;
        the zero-delay tick coalesces every same-instant mutation into
        one recompute.  Correct because no simulated time can pass
        between the mutation and the tick.
        """
        self._gen += 1
        if not self._tick_armed:
            self._tick_armed = True
            # One reusable tick timer: it is guaranteed processed by the
            # time the armed flag clears, so re-arming it in place beats
            # allocating a Timeout per flow-set mutation.
            timer = self._tick_timer
            if timer is None:
                self._tick_timer = timer = Timeout(self.sim, 0.0)
            else:
                timer.reset(0.0)
            timer.add_callback(self._tick)

    def _tick(self, _ev: Event) -> None:
        self._tick_armed = False
        if self.fluid_count == 0:
            # Only phantoms (or nothing) left: no rates to solve, no
            # completion to time — but the cached fluid allocation must
            # drop to zero so chunked legs see the wire as free again.
            if self.alloc_tx or self.alloc_rx:
                self.alloc_tx = {}
                self.alloc_rx = {}
            return
        self._recompute()
        dt = min(
            f.remaining / f.rate for f in self._flows if f.done is not None
        )
        gen = self._gen
        timer = Timeout(self.sim, dt if dt > 0.0 else 0.0)
        timer.add_callback(lambda _e: self._fire(gen))

    def _recompute(self) -> None:
        """Water-filling: fix the bottleneck pipe's fair share, repeat.

        Pipe states are ``[capacity_left, n_unfixed]``; each round picks
        the pipe with the smallest fair share, fixes its unfixed flows
        at that share, and charges each fixed flow against its other
        pipe.  Every flow is fixed exactly once (round-stamped), so one
        pass costs O(flows) plus O(pipes) per round.
        """
        self.recomputes += 1
        stamp = self.recomputes
        tx_state = {nic: [nic.bandwidth, len(d)] for nic, d in self._tx.items()}
        rx_state = {nic: [nic.bandwidth, len(d)] for nic, d in self._rx.items()}
        while True:
            share = float("inf")
            best = None
            for members, state in ((self._tx, tx_state), (self._rx, rx_state)):
                for nic, st in state.items():
                    if st[1] > 0 and st[0] / st[1] < share:
                        share = st[0] / st[1]
                        best = (members, state, nic)
            if best is None:
                break
            members, state, nic = best
            other_state = rx_state if state is tx_state else tx_state
            rx_fixed = state is rx_state
            for flow in members[nic]:
                if flow._stamp == stamp:
                    continue
                flow._stamp = stamp
                flow.rate = share
                flow._rx_fixed = rx_fixed
                other = other_state[flow.src if rx_fixed else flow.dst]
                other[0] -= share
                other[1] -= 1
            state[nic][1] = 0
        self._refresh_alloc()

    def _refresh_alloc(self) -> None:
        """Cache the per-pipe *fluid* (non-phantom) allocation.

        Phantom shares are excluded on purpose: they are the wire time
        the chunked side is entitled to, and the chunked pipes already
        serialise their own transfers against each other.
        """
        alloc_tx: dict[Nic, float] = {}
        alloc_rx: dict[Nic, float] = {}
        for flow in self._flows:
            if flow.done is None:
                continue
            alloc_tx[flow.src] = alloc_tx.get(flow.src, 0.0) + flow.rate
            alloc_rx[flow.dst] = alloc_rx.get(flow.dst, 0.0) + flow.rate
        self.alloc_tx = alloc_tx
        self.alloc_rx = alloc_rx

    def tx_rate(self, nic: Nic) -> float:
        """Chunk service rate on ``nic``'s tx pipe under fluid load.

        Link bandwidth minus the fluid allocation, floored at a max-min
        fair share (an unregistered chunked transfer — one too small to
        carry a phantom — must still make progress on a fluid-saturated
        pipe, exactly as its packets would interleave on a real wire).
        """
        if not self._flows:
            return nic.bandwidth
        avail = nic.bandwidth - self.alloc_tx.get(nic, 0.0)
        floor = nic.bandwidth / (1 + len(self._tx.get(nic, ())))
        return avail if avail > floor else floor

    def rx_rate(self, nic: Nic) -> float:
        """Chunk service rate on ``nic``'s rx pipe (see :meth:`tx_rate`)."""
        if not self._flows:
            return nic.bandwidth
        avail = nic.bandwidth - self.alloc_rx.get(nic, 0.0)
        floor = nic.bandwidth / (1 + len(self._rx.get(nic, ())))
        return avail if avail > floor else floor

    def tail_rate(self, nic: Nic) -> float:
        """Drain rate for a completed flow's store-and-forward tail.

        A store-and-forward pipe is not processor-sharing at chunk
        granularity: a chunk is always *served* at full bandwidth, and
        contention shows up as queueing behind other flows' chunks.
        The tail chunk therefore queues only behind survivors that are
        **rx-bottlenecked** on this pipe (they burst chunks into it as
        fast as it drains); tx-paced survivors — flows whose rate was
        fixed by a shared sender pipe — serialise upstream and leave
        the rx pipe idle between their chunks.  One chunk time per
        rx-bottlenecked survivor plus the tail's own service matches
        the chunked model's last-chunk arbitration wait.
        """
        members = self._rx.get(nic)
        if not members:
            return nic.bandwidth
        queue = sum(1 for f in members if f._rx_fixed)
        return nic.bandwidth / (1 + queue)

    def _fire(self, gen: int) -> None:
        if gen != self._gen or not self._flows:
            return  # superseded by a later arrival/departure/fault
        self._integrate()
        done = [f for f in self._flows if f.remaining <= _DRAINED]
        if not done:
            # Float residue left the leading flow a hair short of zero;
            # rates are unchanged since this timer was armed (the
            # generation matched), so that flow is complete by now.
            # (Phantoms carry infinite backlog and never qualify.)
            done = [
                min(
                    (f for f in self._flows if f.done is not None),
                    key=lambda f: f.remaining,
                )
            ]
        for flow in done:
            self._remove(flow)
        for flow in done:  # FIFO: dict preserves registration order
            flow.done.succeed()
        self._mark_dirty()


class Network:
    """Registry of NICs plus the transfer primitive.

    ``latency`` is the one-way message latency (propagation + switch +
    interrupt handling), charged once per transfer.  ``per_message_bytes``
    models framing/RPC header overhead added to every transfer.
    ``model`` picks the flow model — ``"chunked"`` | ``"fluid"`` |
    ``"auto"`` (see the module docstring); ``fluid_threshold`` is the
    auto-mode crossover in wire bytes.
    """

    def __init__(
        self,
        sim: Simulator,
        latency: float = 60e-6,
        chunk_bytes: int = DEFAULT_CHUNK,
        per_message_bytes: int = 120,
        model: str = "chunked",
        fluid_threshold: int = DEFAULT_FLUID_THRESHOLD,
    ):
        if chunk_bytes < 1:
            raise ValueError("chunk_bytes must be >= 1")
        if model not in ("chunked", "fluid", "auto"):
            raise ValueError(f"unknown network model {model!r}")
        if fluid_threshold < 0:
            raise ValueError("fluid_threshold must be >= 0")
        self.sim = sim
        self.latency = latency
        self.chunk_bytes = chunk_bytes
        self.per_message_bytes = per_message_bytes
        self.model = model
        self.fluid_threshold = fluid_threshold
        self._nics: dict[str, Nic] = {}
        self._fluid = FluidSolver(sim)
        #: Cached bound method: the per-flow drop check sits on the hot
        #: path of every transfer and attribute-chasing ``sim.rng.random``
        #: each time is measurable at millions of flows.
        self._rng_random = sim.rng.random
        self.flows_completed = 0
        #: Completed wire transfers by model (loopback counts in neither).
        self.flows_chunked = 0
        self.flows_fluid = 0

    def add_nic(self, name: str, bandwidth: float) -> Nic:
        """Register a NIC for node ``name`` (bytes/second per direction)."""
        if name in self._nics:
            raise ValueError(f"duplicate NIC for node {name!r}")
        nic = Nic(self.sim, name, bandwidth, network=self)
        self._nics[name] = nic
        return nic

    def nic(self, name: str) -> Nic:
        """Look up the NIC registered for ``name``."""
        try:
            return self._nics[name]
        except KeyError:
            raise KeyError(f"no NIC registered for node {name!r}") from None

    @property
    def fluid_flows_active(self) -> int:
        """Real fluid flows currently registered with the rate solver
        (phantom competitors from coupled chunked transfers excluded)."""
        return self._fluid.fluid_count

    @property
    def fluid_recomputes(self) -> int:
        """Rate recomputations the solver has performed."""
        return self._fluid.recomputes

    def _nic_went_down(self, nic: Nic) -> None:
        """Fault hook (``nic.down = True``): strand in-flight fluid flows."""
        self._fluid.strand_nic(nic)

    def _stranded(self):
        """Park the calling transfer forever: a flow lost on the wire.

        The yielded event never fires; only an interrupt (an RPC retry
        timer unwinding the waiter) ever leaves this generator.  If the
        event is somehow succeeded, the assertion makes the bug loud
        instead of letting the transfer fall through into the live
        latency/byte-moving code below it.
        """
        yield Event(self.sim)
        raise AssertionError("stranded flow must never resume")

    def transfer(self, src: str, dst: str, nbytes: int):
        """Process generator moving ``nbytes`` from ``src`` to ``dst``.

        Yields until the last byte has been received.  Loopback
        transfers (src == dst) skip the wire entirely; the memory-copy
        cost of loopback is charged by the caller as CPU time, which is
        how the Direct-pNFS prototype's loopback conduit is modelled.

        Byte accounting is uniform across models: every completed
        transfer counts one ``flows_completed``; ``nbytes`` of *payload*
        lands in the NIC's ``tx_bytes``/``rx_bytes`` for wire transfers
        and in ``loopback_bytes`` for loopback ones.  The
        ``per_message_bytes`` framing overhead occupies pipe time (it
        slows the wire) but is deliberately excluded from all byte
        counters, so they stay comparable with application-level
        accounting.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        flow = Flow(src, dst, nbytes, self.sim.now)
        if src == dst:
            lnic = self._nics.get(src)
            if lnic is not None:
                lnic.loopback_bytes += nbytes
            flow.end = self.sim.now
            self.flows_completed += 1
            return flow

        snic = self.nic(src)
        dnic = self.nic(dst)
        dropped = snic._down or dnic._down
        for nic in (snic, dnic):
            if not dropped and nic.drop_prob > 0.0:
                dropped = float(self._rng_random()) < nic.drop_prob
        if dropped:
            # The flow vanishes on the wire: it never completes, and no
            # error surfaces here — a waiting process hangs until an
            # RPC timeout (repro.rpc) interrupts it.
            snic.flows_dropped += 1
            yield from self._stranded()

        latency = self.latency + snic.extra_latency + dnic.extra_latency
        if latency > 0:
            yield self.sim.timeout(latency)

        wire_bytes = nbytes + self.per_message_bytes
        # Crossover: the solver only pays off when a flow spans many
        # chunks.  A flow of one or two chunks lives mostly in
        # store-and-forward fill/drain, where chunk-level detail *is*
        # the physics (and the rate model visibly diverges under heavy
        # fan-out), while the event savings are nil — so even in
        # "fluid" mode such flows (every per-RPC header/reply, and
        # single flow units that exceed one chunk only by their framing
        # bytes) keep the chunked leg.  "auto" raises the bar to
        # ``fluid_threshold`` to keep chunk-level interleaving fidelity
        # for moderately sized flows too.
        if self.model == "fluid":
            use_fluid = wire_bytes > 2 * self.chunk_bytes
        elif self.model == "auto":
            use_fluid = wire_bytes >= self.fluid_threshold
        else:
            use_fluid = False
        if use_fluid:
            yield from self._fluid_leg(snic, dnic, wire_bytes)
            self.flows_fluid += 1
        else:
            yield from self._chunked_leg(snic, dnic, wire_bytes)
            self.flows_chunked += 1

        snic.tx_bytes += nbytes
        dnic.rx_bytes += nbytes
        flow.end = self.sim.now
        self.flows_completed += 1
        return flow

    def _fluid_leg(self, snic: Nic, dnic: Nic, wire_bytes: int):
        """Rate-based serialisation: one registration, one completion."""
        fluid = self._fluid.add(snic, dnic, float(wire_bytes))
        try:
            yield fluid.done
        finally:
            # Interrupt unwind (RPC retry timer) or fault strand: make
            # sure the flow stops consuming solver bandwidth.  A no-op
            # after normal completion.
            self._fluid.discard(fluid)
        # Store-and-forward tail: the last chunk's rx leg cannot overlap
        # the tx stream, so sub-chunk messages cost two wire crossings
        # exactly as under the chunked model; for large flows the tail
        # is one chunk time — noise.  Charged at ``tail_rate``: full
        # bandwidth on an idle or tx-paced pipe, one extra chunk time
        # per rx-bottlenecked survivor still bursting into it — the
        # arbitration wait the chunked model's last chunk would see.
        tail = min(wire_bytes, self.chunk_bytes) / self._fluid.tail_rate(dnic)
        if tail > 0:
            yield self.sim.timeout(tail)

    def _chunked_leg(self, snic: Nic, dnic: Nic, wire_bytes: int):
        """Store-and-forward through the switch with a small per-flow
        window: a chunk occupies the sender's tx pipe, is buffered at
        the switch, then occupies the receiver's rx pipe.  Decoupling
        the pipes avoids head-of-line blocking (a busy receiver must
        not freeze the sender's NIC for other flows); the window
        bounds switch buffering per flow and keeps tx/rx pipelined so
        an uncontended flow still sees the full link bandwidth.

        Chunk service times are coupled to the fluid solver: a chunk
        serialises at the pipe's bandwidth minus the current fluid
        allocation (full bandwidth when no fluid flow is active), and a
        chunked transfer of at least one chunk registers a phantom
        competitor with the solver while real fluid flows share its
        pipes, so neither model double-books the wire.  The phantom
        check is per chunk, so a fluid flow arriving mid-transfer is
        seen within one chunk time; tiny header/reply messages skip
        registration (their wire share is noise, their solver churn is
        not) and rely on the fair-share floor in ``tx_rate``/``rx_rate``.
        """
        solver = self._fluid

        def rx_leg(chunk_bytes: int):
            yield dnic.rx.acquire()
            try:
                yield self.sim.timeout(chunk_bytes / solver.rx_rate(dnic))
            finally:
                dnic.rx.release()

        couple = wire_bytes >= self.chunk_bytes
        phantom = None
        rx_procs: deque = deque()
        remaining = wire_bytes
        try:
            while remaining > 0:
                if couple and phantom is None and solver.fluid_count:
                    phantom = solver.add_phantom(snic, dnic)
                chunk = min(remaining, self.chunk_bytes)
                yield snic.tx.acquire()
                try:
                    yield self.sim.timeout(chunk / solver.tx_rate(snic))
                finally:
                    snic.tx.release()
                rx_procs.append(self.sim.process(rx_leg(chunk)))
                if len(rx_procs) > FLOW_WINDOW:
                    oldest = rx_procs.popleft()
                    if oldest.is_alive:
                        yield oldest
                remaining -= chunk
            live = [p for p in rx_procs if p.is_alive]
            if live:
                yield self.sim.all_of(live)
        finally:
            if phantom is not None:
                solver.discard(phantom)
