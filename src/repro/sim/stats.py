"""Measurement helpers: counters, throughput meters, latency recorders.

The benchmark harness reports what the paper reports: aggregate
throughput in MB/s (decimal megabytes, total payload bytes divided by
the makespan of the client group), wall-clock runtimes, and
transactions per second.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["Counter", "ThroughputMeter", "LatencyRecorder", "MB"]

#: One decimal megabyte — the unit of every figure in the paper.
MB = 1e6


@dataclass
class Counter:
    """Named monotonic counter."""

    name: str = ""
    value: float = 0

    def add(self, amount: float = 1) -> None:
        self.value += amount


class ThroughputMeter:
    """Accumulates completed payload bytes with their completion times.

    ``aggregate_mbps(start, end)`` reproduces the paper's metric:
    total bytes moved by all clients divided by the group makespan.
    """

    def __init__(self, name: str = ""):
        self.name = name
        self.total_bytes = 0
        self.first_at = math.inf
        self.last_at = -math.inf

    def record(self, nbytes: int, now: float) -> None:
        """Record ``nbytes`` of payload completed at time ``now``."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        self.total_bytes += nbytes
        self.first_at = min(self.first_at, now)
        self.last_at = max(self.last_at, now)

    def aggregate_mbps(self, start: float, end: float) -> float:
        """Total MB moved divided by the ``end - start`` makespan."""
        if end <= start:
            raise ValueError("end must exceed start")
        return (self.total_bytes / MB) / (end - start)


class LatencyRecorder:
    """Stores operation durations; offers mean and percentiles."""

    def __init__(self, name: str = ""):
        self.name = name
        self.samples: list[float] = []

    def record(self, duration: float) -> None:
        if duration < 0:
            raise ValueError("duration must be >= 0")
        self.samples.append(duration)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        if not self.samples:
            raise ValueError("no samples")
        return sum(self.samples) / len(self.samples)

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile, ``p`` in [0, 100]."""
        if not self.samples:
            raise ValueError("no samples")
        if not 0 <= p <= 100:
            raise ValueError("p must be in [0, 100]")
        ordered = sorted(self.samples)
        rank = max(1, math.ceil(p / 100 * len(ordered)))
        return ordered[rank - 1]
