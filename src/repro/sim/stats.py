"""Measurement helpers: counters, throughput meters, latency recorders.

The benchmark harness reports what the paper reports: aggregate
throughput in MB/s (decimal megabytes, total payload bytes divided by
the makespan of the client group), wall-clock runtimes, and
transactions per second.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

__all__ = ["Counter", "ThroughputMeter", "LatencyRecorder", "MB", "nearest_rank"]

#: One decimal megabyte — the unit of every figure in the paper.
MB = 1e6


def nearest_rank(sorted_values: Sequence[float], q: float) -> float:
    """The q-quantile of ``sorted_values`` by the nearest-rank method.

    Nearest rank: the smallest value with at least ``ceil(q * n)``
    values at or below it — index ``ceil(q * n) - 1``.  Correct for
    small samples (q=0.95 of n=20 is the 19th value, not the max; of
    n=1 it is the only value).

    The one canonical quantile helper in the repository:
    :mod:`repro.tracing` and :class:`LatencyRecorder` both delegate
    here (they used to carry diverging copies).
    """
    if not sorted_values:
        raise ValueError("no values")
    if not 0.0 < q <= 1.0:
        raise ValueError(f"quantile must be in (0, 1], got {q}")
    return sorted_values[max(0, math.ceil(q * len(sorted_values)) - 1)]


@dataclass
class Counter:
    """Named monotonic counter."""

    name: str = ""
    value: float = 0

    def add(self, amount: float = 1) -> None:
        self.value += amount


class ThroughputMeter:
    """Accumulates completed payload bytes with their completion times.

    ``aggregate_mbps(start, end)`` reproduces the paper's metric:
    total bytes moved by all clients divided by the group makespan.
    """

    def __init__(self, name: str = ""):
        self.name = name
        self.total_bytes = 0
        self.first_at = math.inf
        self.last_at = -math.inf

    def record(self, nbytes: int, now: float) -> None:
        """Record ``nbytes`` of payload completed at time ``now``."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        self.total_bytes += nbytes
        self.first_at = min(self.first_at, now)
        self.last_at = max(self.last_at, now)

    def aggregate_mbps(self, start: float, end: float) -> float:
        """Total MB moved divided by the ``end - start`` makespan.

        An empty meter reports 0.0 regardless of the window.  A
        zero-width window with data in it means every byte completed in
        one sim instant — the rate is unbounded, reported as ``inf``
        rather than blowing up the report path.  Only a *negative*
        window is a caller bug.
        """
        if end < start:
            raise ValueError("end must not precede start")
        if self.total_bytes == 0:
            return 0.0
        if end == start:
            return math.inf
        return (self.total_bytes / MB) / (end - start)


class LatencyRecorder:
    """Stores operation durations; offers mean and percentiles.

    The sort backing :meth:`percentile` is cached and invalidated on
    :meth:`record`, so percentile sweeps (p50/p95/p99 in one report
    line) sort once instead of once per quantile.
    """

    def __init__(self, name: str = ""):
        self.name = name
        self.samples: list[float] = []
        self._sorted: list[float] | None = None

    def record(self, duration: float) -> None:
        if duration < 0:
            raise ValueError("duration must be >= 0")
        self.samples.append(duration)
        self._sorted = None

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        if not self.samples:
            raise ValueError("no samples")
        return sum(self.samples) / len(self.samples)

    def _ordered(self) -> list[float]:
        if self._sorted is None:
            self._sorted = sorted(self.samples)
        return self._sorted

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile, ``p`` in [0, 100]."""
        if not self.samples:
            raise ValueError("no samples")
        if not 0 <= p <= 100:
            raise ValueError("p must be in [0, 100]")
        ordered = self._ordered()
        if p == 0:
            return ordered[0]
        return nearest_rank(ordered, p / 100)
