"""CPU service model.

Protocol work is charged to a node's CPU as seconds of *reference-speed
work*; a node with ``speed`` 1.3 completes 1 second of work in
1/1.3 simulated seconds.  The CPU is a multi-core FIFO resource, so a
busy server delays request processing — the mechanism behind the
paper's "client and server CPU performance becomes the limiting
factor" observation for warm-cache reads (§6.2.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.engine import Simulator
from repro.sim.resources import Resource

__all__ = ["CpuSpec", "Cpu"]


@dataclass(frozen=True)
class CpuSpec:
    """Core count and relative speed (1.0 = reference core)."""

    cores: int = 2
    speed: float = 1.0

    def __post_init__(self):
        if self.cores < 1:
            raise ValueError("cores must be >= 1")
        if self.speed <= 0:
            raise ValueError("speed must be positive")


class Cpu:
    """Multi-core FIFO processor."""

    def __init__(self, sim: Simulator, spec: CpuSpec, name: str = "cpu"):
        self.sim = sim
        self.spec = spec
        self.name = name
        self.cores = Resource(sim, spec.cores, name=f"{name}.cores")
        self.busy_time = 0.0

    def consume(self, work_seconds: float):
        """Process generator: occupy one core for ``work / speed``."""
        if work_seconds < 0:
            raise ValueError("work must be >= 0")
        if work_seconds == 0:
            return
        yield self.cores.acquire()
        try:
            duration = work_seconds / self.spec.speed
            yield self.sim.timeout(duration)
            self.busy_time += duration
        finally:
            self.cores.release()

    @property
    def queue_len(self) -> int:
        """Work items waiting for a core (instantaneous queue depth)."""
        return self.cores.queue_len

    @property
    def utilisation_hint(self) -> float:
        """Fraction of one core-lifetime spent busy (coarse diagnostic)."""
        if self.sim.now == 0:
            return 0.0
        return self.busy_time / (self.sim.now * self.spec.cores)
